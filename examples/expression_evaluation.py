#!/usr/bin/env python3
"""Parallel expression-tree evaluation via tree contraction.

Demonstrates the PRAM application chain the paper's introduction
motivates: list ranking → Euler tour → leaf numbering → rake-based tree
contraction, evaluating an arithmetic expression tree in Θ(log n)
data-parallel rounds.

Also solves a first-order linear recurrence stored as a linked list
with one AFFINE list scan — the other classic scan application.

Run:  python examples/expression_evaluation.py [n_leaves]
"""

import sys
import time

import numpy as np

from repro import (
    evaluate_expression_tree,
    random_expression_tree,
    recurrence_list,
    solve_linear_recurrence,
)


def expression_demo(n_leaves: int) -> None:
    rng = np.random.default_rng(1)
    tree = random_expression_tree(n_leaves, rng, value_low=0.9, value_high=1.1)
    print(f"random expression tree: {n_leaves} leaves, "
          f"{tree.n} nodes, ops = {{+, ×}}")

    t0 = time.perf_counter()
    serial = tree.evaluate_serial()
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    contracted = evaluate_expression_tree(tree, algorithm="sublist", rng=rng)
    t_par = time.perf_counter() - t0

    rounds = int(np.ceil(np.log2(n_leaves))) if n_leaves > 1 else 0
    print(f"serial post-order value : {serial:.6e} ({t_serial * 1e3:.1f} ms)")
    print(f"rake contraction value  : {contracted:.6e} ({t_par * 1e3:.1f} ms, "
          f"≈{rounds} doubling rounds)")
    assert np.isclose(serial, contracted, rtol=1e-7)
    print("values agree ✓\n")


def recurrence_demo(n: int = 100_000) -> None:
    rng = np.random.default_rng(2)
    # a noisy decay process: x_{k+1} = a_k x_k + b_k
    a = rng.uniform(0.95, 1.0, n)
    b = rng.uniform(0.0, 0.1, n)
    order = rng.permutation(n)  # coefficients arrive in linked order
    lst = recurrence_list(a, b, order=order)
    xs = solve_linear_recurrence(lst, x0=10.0, rng=rng)
    print(f"linear recurrence over a {n}-node linked list (one AFFINE scan)")
    print(f"x_0 = {xs[order[0]]:.4f}")
    print(f"x_{n // 2} = {xs[order[n // 2]]:.4f}")
    print(f"x_{n - 1} = {xs[order[-1]]:.4f}")
    # spot check against direct iteration over a prefix
    x = 10.0
    for k in range(1000):
        assert np.isclose(xs[order[k]], x, rtol=1e-9)
        x = a[k] * x + b[k]
    print("first 1000 states verified against direct iteration ✓")


if __name__ == "__main__":
    n_leaves = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    expression_demo(n_leaves)
    recurrence_demo()
