#!/usr/bin/env python3
"""Quickstart: list ranking and list scan with `repro`.

Builds a randomly-ordered linked list, ranks it, scans it under several
operators, and cross-checks every parallel algorithm against the serial
reference.

Run:  python examples/quickstart.py [n]
"""

import sys

import numpy as np

from repro import (
    ALGORITHMS,
    AFFINE,
    LinkedList,
    list_rank,
    list_scan,
    random_list,
    serial_list_scan,
    validate_list_strict,
)


def main(n: int = 100_000) -> None:
    rng = np.random.default_rng(42)

    # A linked list is a successor array (tail = self-loop), a head
    # index, and per-node values.  This one is laid out in random order
    # in memory — the paper's standard workload.
    lst = random_list(n, rng, values=rng.integers(-100, 100, n))
    validate_list_strict(lst)
    print(f"built a {n}-node list; head={lst.head}, tail={lst.tail}")

    # --- list ranking: the position of each node ----------------------
    ranks = list_rank(lst)  # default: the paper's sublist algorithm
    print(f"rank of head = {ranks[lst.head]} (always 0)")
    print(f"rank of tail = {ranks[lst.tail]} (always n-1 = {n - 1})")

    # --- list scan: exclusive prefix sums along the links --------------
    sums = list_scan(lst, "sum")
    print(f"prefix sum at tail = {sums[lst.tail]}")

    maxes = list_scan(lst, "max", inclusive=True)
    print(f"running max at tail = {maxes[lst.tail]} (= global max "
          f"{lst.values.max()})")

    # non-commutative operators work too: compose affine maps x ↦ ax+b
    # (a short list here — composing thousands of integer slopes would
    # overflow int64)
    small = random_list(12, rng)
    affine_vals = np.stack(
        [rng.integers(1, 3, 12), rng.integers(-5, 6, 12)], axis=1
    ).astype(np.int64)
    affine_lst = LinkedList(small.next, small.head, affine_vals)
    comp = list_scan(affine_lst, AFFINE, inclusive=True)
    print(f"composed 12 affine maps in list order: "
          f"x -> {comp[small.tail][0]}*x + {comp[small.tail][1]}")

    # --- every algorithm computes the same answer ----------------------
    expect = serial_list_scan(lst)
    for algorithm in ALGORITHMS:
        if algorithm == "auto":
            continue
        got = list_scan(lst, algorithm=algorithm, rng=rng)
        status = "ok" if np.array_equal(got, expect) else "MISMATCH"
        print(f"  {algorithm:<16} {status}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100_000)
