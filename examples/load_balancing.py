#!/usr/bin/env python3
"""Scan-based load balancing of linked work queues.

A classic use of list scan (paper Section 1's "load balancing [11]"):
work items arrive as a linked list with wildly varying costs; assigning
contiguous, weight-balanced chunks to processors needs each item's
prefix weight — a list scan — because the items are not in an array.

Run:  python examples/load_balancing.py
"""

import numpy as np

from repro import partition_list, random_list, reorder_by_rank, list_rank
from repro.apps.load_balance import partition_summary


def main(n: int = 200_000, n_processors: int = 8) -> None:
    rng = np.random.default_rng(3)

    # heavy-tailed task costs: most tasks cheap, a few enormous
    weights = np.minimum(rng.pareto(1.5, n) * 10 + 1, 10_000).astype(np.int64)
    tasks = random_list(n, rng, values=weights)
    print(f"{n} linked tasks, total weight {weights.sum():,}, "
          f"heaviest {weights.max():,}")

    # naive assignment: equal COUNTS of tasks per processor
    ranks = list_rank(tasks, rng=rng)
    naive_owner = (ranks * n_processors // n).astype(np.int64)
    naive = partition_summary(tasks, naive_owner, n_processors)

    # scan-based assignment: equal WEIGHT per processor
    owner = partition_list(tasks, n_processors, rng=rng)
    balanced = partition_summary(tasks, owner, n_processors)

    print(f"\n{'proc':>5} {'naive weight':>14} {'balanced weight':>16} "
          f"{'balanced #tasks':>16}")
    for p in range(n_processors):
        print(f"{p:>5} {naive['totals'][p]:>14,.0f} "
              f"{balanced['totals'][p]:>16,.0f} {balanced['counts'][p]:>16,}")
    print(f"\nimbalance (max/mean): naive {naive['imbalance']:.3f} → "
          f"scan-balanced {balanced['imbalance']:.3f}")

    # the assignment is contiguous along the list: processors own runs
    along = owner[reorder_by_rank(np.arange(n), ranks).argsort()]  # noqa: F841
    order = reorder_by_rank(np.arange(n, dtype=np.int64), ranks)
    runs = int((np.diff(owner[order]) != 0).sum()) + 1
    print(f"contiguous runs along the list: {runs} (= {n_processors} procs)")


if __name__ == "__main__":
    main()
