#!/usr/bin/env python3
"""Explore the paper's Section 4 performance model interactively.

Shows the sublist-length distribution, the decaying live count g(s),
the optimal pack schedule from the Eq. 6 recurrence, and what tuning
(m, S1) does across problem sizes — all from the analytical model, no
simulation required.

Run:  python examples/pack_schedule_explorer.py
"""

import numpy as np

from repro import (
    PAPER_C90_COSTS,
    expected_live_sublists,
    expected_longest,
    expected_order_stat,
    optimal_schedule,
    predict_run,
    tuned_parameters,
)
from repro.analysis.cost_model import phase13_time_from_schedule
from repro.core.schedule import uniform_schedule


def ascii_plot(xs, ys, width=64, height=12, label="") -> None:
    """Tiny ASCII scatter of a decreasing curve."""
    xs, ys = np.asarray(xs, float), np.asarray(ys, float)
    grid = [[" "] * width for _ in range(height)]
    x0, x1 = xs.min(), xs.max()
    y0, y1 = ys.min(), ys.max()
    for x, y in zip(xs, ys):
        col = int((x - x0) / max(x1 - x0, 1e-9) * (width - 1))
        row = int((y - y0) / max(y1 - y0, 1e-9) * (height - 1))
        grid[height - 1 - row][col] = "*"
    print(label)
    for line in grid:
        print("   |" + "".join(line))
    print("   +" + "-" * width)
    print(f"    x: {x0:.0f} … {x1:.0f}   y: {y0:.1f} … {y1:.1f}\n")


def main() -> None:
    n, m = 10_000, 200

    print(f"=== sublist lengths, n={n}, m={m} (paper Fig. 11) ===")
    idx = np.asarray([1, m // 4, m // 2, 3 * m // 4, m + 1])
    for i in idx:
        print(f"  E[{int(i):>3}-th shortest] = "
              f"{expected_order_stat(int(i), n, m):7.1f} nodes")
    print(f"  mean = {n / m:.1f}, expected longest = "
          f"{expected_longest(n, m):.1f}\n")

    print(f"=== live sublists g(s) and the pack schedule (paper Fig. 12) ===")
    sch = optimal_schedule(n, m, 14.7, PAPER_C90_COSTS)
    s_axis = np.linspace(0, sch[-1], 60)
    ascii_plot(s_axis, expected_live_sublists(s_axis, n, m),
               label=f"g(s) = m·exp(−m·s/n); packs at the {len(sch)} marks below")
    gaps = np.diff(np.concatenate(([0.0], sch)))
    print("  pack points:", np.array2string(np.round(sch, 1), separator=", "))
    print("  gaps       :", np.array2string(np.round(gaps, 1), separator=", "))
    t_opt = phase13_time_from_schedule(n, m, sch)
    t_uni = phase13_time_from_schedule(n, m, uniform_schedule(n, m, len(sch)))
    print(f"  model time: optimal {t_opt:,.0f} clocks vs uniform "
          f"{t_uni:,.0f} (+{100 * (t_uni / t_opt - 1):.1f}%)\n")

    print("=== tuned parameters across n (paper Fig. 14 / Section 4.4) ===")
    print(f"{'n':>10} {'m':>7} {'S1':>7} {'packs':>6} {'clk/elem':>9} {'ns/elem':>8}")
    for k in range(13, 26, 2):
        n_i = 1 << k
        m_i, s1_i = tuned_parameters(n_i)
        pred = predict_run(n_i)
        print(f"{n_i:>10} {m_i:>7} {s1_i:>7.1f} {pred.n_packs:>6} "
              f"{pred.clocks_per_element:>9.2f} {pred.ns_per_element:>8.1f}")
    print("\nper-element cost falls toward the paper's ≈8.6 clk asymptote.")


if __name__ == "__main__":
    main()
