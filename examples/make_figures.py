#!/usr/bin/env python3
"""Regenerate the paper's figure data as CSV files.

Writes one CSV per figure into ``figures/`` (no plotting dependencies;
load them with any tool).  Equivalent to ``python -m repro figures``.

Run:  python examples/make_figures.py [out_dir]
"""

import sys

from repro.bench.figures import ALL_FIGURES


def main(out_dir: str = "figures") -> None:
    for name in sorted(ALL_FIGURES):
        print(f"generating {name} …", flush=True)
        data = ALL_FIGURES[name](out_dir=out_dir)
        print(f"  {len(data['rows'])} rows: {', '.join(data['header'])}")
    print(f"\nCSV series written to {out_dir}/")
    print("Each file matches one figure of Reid-Miller & Blelloch (1994);")
    print("see EXPERIMENTS.md for the paper-vs-measured comparison.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figures")
