#!/usr/bin/env python3
"""Reproduce the paper's headline measurements on the simulated C-90.

Runs the five list-ranking algorithms on the cycle-cost simulator and
prints a miniature of Figures 1 and 15: ns/element per algorithm on one
CPU across list lengths, and the sublist algorithm's multiprocessor
scaling.

Run:  python examples/cray_c90_reproduction.py
"""

import numpy as np

from repro import (
    CRAY_C90,
    anderson_miller_scan_sim,
    random_list,
    random_mate_scan_sim,
    serial_scan_sim,
    sublist_rank_sim,
    sublist_scan_sim,
    wyllie_scan_sim,
)

K = 1024


def figure1_mini() -> None:
    print(f"=== Figure 1 (mini): ns/element on one simulated {CRAY_C90.name} CPU ===")
    header = f"{'n':>8} {'Miller/Reif':>12} {'And./Miller':>12} {'Wyllie':>8} {'Serial':>8} {'ours':>8}"
    print(header)
    for size_k in (8, 64, 512, 2048):
        n = size_k * K
        lst = random_list(n, np.random.default_rng(size_k))
        rm = random_mate_scan_sim(lst, rng=0).ns_per_element
        am = anderson_miller_scan_sim(lst, rng=0).ns_per_element
        wy = wyllie_scan_sim(lst).ns_per_element
        se = serial_scan_sim(lst).ns_per_element
        ours = sublist_scan_sim(lst, rng=0).ns_per_element
        print(f"{size_k:>7}K {rm:12.0f} {am:12.0f} {wy:8.0f} {se:8.0f} {ours:8.1f}")
    print()


def figure15_mini() -> None:
    print("=== Figure 15 (mini): the sublist algorithm on 1–8 CPUs ===")
    n = 2048 * K
    lst = random_list(n, np.random.default_rng(0))
    base = None
    print(f"{'CPUs':>5} {'ns/element':>11} {'speedup':>8}")
    for p in (1, 2, 4, 8):
        res = sublist_rank_sim(lst, n_processors=p, rng=0)
        base = base or res.cycles
        print(f"{p:>5} {res.ns_per_element:>11.2f} {base / res.cycles:>8.2f}")
    print()
    res = sublist_rank_sim(lst, n_processors=8, rng=0)
    print("8-CPU cycle breakdown:")
    for name, cycles in sorted(res.breakdown.items(), key=lambda kv: -kv[1]):
        print(f"   {name:<18} {cycles:>12.0f} clocks "
              f"({100 * cycles / res.cycles:4.1f}%)")


if __name__ == "__main__":
    figure1_mini()
    figure15_mini()
