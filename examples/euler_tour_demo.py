#!/usr/bin/env python3
"""Euler-tour tree computations via list ranking.

The paper's Section 1 motivates list ranking through exactly this kind
of workload: "finding the Euler tour of a tree" and related tree
computations.  This example builds a random rooted tree, expands it
into its Euler-tour *linked list*, and computes depths, preorder /
postorder numbers and subtree sizes — every one of them a list rank or
list scan over that irregular list.

Run:  python examples/euler_tour_demo.py [n_vertices]
"""

import sys

import numpy as np

from repro import (
    build_euler_tour,
    list_rank,
    random_parent_tree,
    tree_measures,
    validate_list_strict,
)


def main(n: int = 50_000) -> None:
    rng = np.random.default_rng(7)
    parent = random_parent_tree(n, rng)
    print(f"random recursive tree with {n} vertices (root = 0)")

    # the Euler tour is a linked list of 2(n−1) darts
    tour = build_euler_tour(parent)
    validate_list_strict(tour.tour)
    print(f"Euler tour: {tour.tour.n} darts, head dart "
          f"{tour.tour.head} ({int(tour.dart_from[tour.tour.head])} → "
          f"{int(tour.dart_to[tour.tour.head])})")

    # ranking the tour list orders the darts — the fundamental step
    rank = list_rank(tour.tour, rng=rng)
    print(f"tour positions computed; first dart rank = {rank[tour.tour.head]}")

    # all per-vertex measures come from scans over the same list
    measures = tree_measures(parent, algorithm="sublist", rng=rng)
    depth = measures["depth"]
    size = measures["subtree_size"]
    pre = measures["preorder"]

    print(f"max depth                 : {depth.max()}")
    print(f"mean depth                : {depth.mean():.2f} "
          f"(theory for random recursive trees ≈ ln n = {np.log(n):.2f})")
    print(f"root subtree size         : {size[0]} (= n)")
    print(f"leaves                    : {(size == 1).sum()}")
    deepest = int(np.argmax(depth))
    print(f"deepest vertex            : {deepest} at depth {depth[deepest]}, "
          f"preorder #{pre[deepest]}")

    # spot-check against a direct computation
    check = np.zeros(n, dtype=np.int64)
    for v in range(1, n):
        check[v] = check[parent[v]] + 1
    assert np.array_equal(check, depth), "depth mismatch!"
    print("depths verified against direct propagation ✓")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50_000)
