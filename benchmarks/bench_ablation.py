"""Ablations of the design decisions DESIGN.md calls out.

* pack schedule: optimal (Eq. 6) vs uniform vs pack-every-step vs
  almost-never-pack, measured on the simulator;
* splitter strategy: equally spaced vs random vs random-with-
  competition (the paper's Section 2.4 discussion);
* short-vector fallback (the Section 6 future-work idea) on the host
  backend;
* the self-loop/identity trick vs a masked traversal loop (host wall
  clock) — the paper's "avoiding conditional tests except when load
  balancing".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import print_table, record
from repro.bench.workloads import get_random_list, get_valued_list
from repro.core.operators import SUM
from repro.core.sublist import SublistConfig, sublist_list_scan
from repro.simulate.sublist_sim import SimSublistConfig, sublist_rank_sim

N = 1 << 20


# ----------------------------------------------------------------------
# pack-schedule ablation (simulated cycles)
# ----------------------------------------------------------------------

def _schedule_ablation():
    lst = get_random_list(N)
    out = {}
    out["optimal"] = sublist_rank_sim(lst, rng=0).cycles
    # uniform schedule: emulate by a pathologically small then large s1
    cfg_tiny = SimSublistConfig(s1=1.0)  # guard saves it, but packs early
    out["s1_too_small"] = sublist_rank_sim(lst, sim_config=cfg_tiny, rng=0).cycles
    cfg_huge = SimSublistConfig(s1=10_000.0)  # one pack far too late
    out["s1_too_large"] = sublist_rank_sim(lst, sim_config=cfg_huge, rng=0).cycles
    return out


@pytest.mark.benchmark(group="ablation-schedule")
def test_ablation_pack_schedule(benchmark):
    res = benchmark.pedantic(_schedule_ablation, rounds=1, iterations=1)
    print_table(
        ["schedule", "simulated clocks", "vs optimal"],
        [[k, v, v / res["optimal"]] for k, v in res.items()],
        title=f"Pack-schedule ablation, n = {N}",
    )
    record(
        "ablation",
        "tuned S1 beats too-early packing",
        None,
        res["s1_too_small"] / res["optimal"],
        "× slower",
        ok=res["s1_too_small"] >= res["optimal"] * 0.999,
    )
    record(
        "ablation",
        "tuned S1 beats too-late packing (tail chasing)",
        None,
        res["s1_too_large"] / res["optimal"],
        "× slower",
        ok=res["s1_too_large"] > res["optimal"],
    )


# ----------------------------------------------------------------------
# splitter-strategy ablation (simulated cycles, random layout)
# ----------------------------------------------------------------------

def _splitter_ablation():
    lst = get_random_list(N)
    out = {}
    for strat in ("spaced", "random", "random_competition"):
        cfg = SimSublistConfig(splitters=strat)
        out[strat] = sublist_rank_sim(lst, sim_config=cfg, rng=0).cycles
    return out


@pytest.mark.benchmark(group="ablation-splitters")
def test_ablation_splitter_strategy(benchmark):
    res = benchmark.pedantic(_splitter_ablation, rounds=1, iterations=1)
    base = res["spaced"]
    print_table(
        ["strategy", "simulated clocks", "vs spaced"],
        [[k, v, v / base] for k, v in res.items()],
        title="Splitter-strategy ablation on a randomly ordered list",
    )
    # on random layouts all three are equivalent (the paper's argument
    # for the cheap equally-spaced choice)
    spread = max(res.values()) / min(res.values())
    record(
        "ablation",
        "splitter strategies equivalent on random layouts",
        1.0,
        spread,
        "max/min cycles",
        ok=spread < 1.15,
    )


# ----------------------------------------------------------------------
# the self-loop trick vs masked traversal (host wall clock)
# ----------------------------------------------------------------------

def _masked_traversal(lst):
    """Phase-1-like traversal testing for segment ends at every step —
    the conditional the paper's self-loop trick removes.  The list is
    cut at the same splitters as the self-loop variant, so the two
    benchmarks do identical traversal work and differ only in the
    per-step masking."""
    n = lst.n
    values = lst.values
    m = 1024
    starts = (np.arange(1, m + 1) * n) // (m + 1)
    ends = np.zeros(n, dtype=bool)
    ends[starts] = True  # walkers stop *at* a splitter position
    nxt = lst.next
    cur = starts.astype(np.int64)
    cur = nxt[cur].astype(np.int64)  # begin after the splitter
    acc = np.zeros(m, dtype=np.int64)
    alive = np.ones(m, dtype=bool)
    while alive.any():
        idx = cur[alive]
        acc[alive] += values[idx]
        done = ends[idx] | (nxt[idx] == idx)
        cur[alive] = nxt[idx]
        sub = np.flatnonzero(alive)
        alive[sub[done]] = False
    return acc.sum()


def _selfloop_traversal(lst):
    """The paper's loop: no conditionals, pack on a schedule."""
    n = lst.n
    nxt = lst.next.copy()
    values = lst.values.copy()
    m = 1024
    starts = (np.arange(1, m + 1) * n) // (m + 1)
    # make the traversal self-terminating
    saved = nxt[starts].copy()
    nxt[starts] = starts
    vsaved = values[starts].copy()
    values[starts] = 0
    cur = starts.astype(np.int64)
    acc = np.zeros(m, dtype=np.int64)
    for _ in range(8):
        for _ in range(max(1, n // (m * 8))):
            acc += values[cur]
            cur = nxt[cur]
        live = cur != nxt[cur]
        if not live.any():
            break
        cur, acc = cur[live], acc[live]
    # finish stragglers
    while True:
        live = cur != nxt[cur]
        if not live.any():
            break
        cur, acc = cur[live], acc[live]
        acc += values[cur]
        cur = nxt[cur]
    nxt[starts] = saved
    values[starts] = vsaved
    return acc.sum()


@pytest.mark.benchmark(group="ablation-selfloop")
def test_ablation_masked_traversal(benchmark):
    lst = get_valued_list(N)
    benchmark(_masked_traversal, lst)


@pytest.mark.benchmark(group="ablation-selfloop")
def test_ablation_selfloop_traversal(benchmark):
    lst = get_valued_list(N)
    benchmark(_selfloop_traversal, lst)


# ----------------------------------------------------------------------
# short-vector fallback (host wall clock)
# ----------------------------------------------------------------------

@pytest.mark.benchmark(group="ablation-fallback")
@pytest.mark.parametrize("fallback", [0, 64], ids=["pure_paper", "serial_tail"])
def test_ablation_short_vector_fallback(benchmark, fallback):
    lst = get_valued_list(N)
    cfg = SublistConfig(short_vector_fallback=fallback)
    rng = np.random.default_rng(0)
    benchmark(lambda: sublist_list_scan(lst, SUM, config=cfg, rng=rng))


# ----------------------------------------------------------------------
# early reconnection (Section 6) — host measurement + machine model
# ----------------------------------------------------------------------

def _early_reconnect_study():
    from repro.analysis.extensions import (
        early_reconnect_advantage,
        with_half_length,
    )
    from repro.core.early_reconnect import early_reconnect_list_scan
    from repro.core.stats import ScanStats

    lst = get_random_list(N)
    s_plain, s_early = ScanStats(), ScanStats()
    early_reconnect_list_scan(lst, switch_count=0, rng=1, stats=s_plain)
    early_reconnect_list_scan(lst, switch_count=None, rng=1, stats=s_early)
    model = {
        n_half: early_reconnect_advantage(N, 3000, costs=with_half_length(n_half))
        for n_half in (21, 100, 500, 2000)
    }
    return {
        "rounds_plain": s_plain.rounds,
        "rounds_early": s_early.rounds,
        "model": model,
    }


@pytest.mark.benchmark(group="ablation-early-reconnect")
def test_ablation_early_reconnect(benchmark):
    res = benchmark.pedantic(_early_reconnect_study, rounds=1, iterations=1)
    print_table(
        ["half-perf length", "tail/reconnect cost ratio"],
        [[k, v] for k, v in res["model"].items()],
        title="Section 6: early-reconnect advantage vs machine pipe length",
    )
    record(
        "ablation",
        "early reconnect removes short-vector rounds",
        None,
        res["rounds_plain"] / res["rounds_early"],
        "× fewer rounds",
        ok=res["rounds_early"] < res["rounds_plain"],
    )
    record(
        "ablation",
        "not worth it on the C-90 (paper left it as future work)",
        1.0,
        res["model"][21],
        "cost ratio",
        ok=res["model"][21] < 1.0,
    )
    record(
        "ablation",
        "pays off on long-half-length machines (paper Section 6)",
        1.0,
        res["model"][2000],
        "cost ratio",
        ok=res["model"][2000] > 1.0,
    )
