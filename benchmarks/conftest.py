"""Shared configuration for the paper-reproduction benchmarks.

Every module regenerates one table or figure of Reid-Miller &
Blelloch (1994).  Benchmarks print their regenerated rows/series
directly (run pytest with ``-s`` to see them mid-run; the
paper-vs-measured summary prints at the end of the session either
way).

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — extend the sweeps to the paper's largest
  sizes (32768K elements).  Default sweeps stop around 2M elements to
  keep a full benchmark run under a few minutes.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import all_records, summary_lines

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    records = all_records()
    if not records:
        return
    terminalreporter.write_sep("=", "paper vs measured (EXPERIMENTS.md summary)")
    for line in summary_lines():
        terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def full_sweep() -> bool:
    return FULL
