"""Shared configuration for the paper-reproduction benchmarks.

Every module regenerates one table or figure of Reid-Miller &
Blelloch (1994).  Benchmarks print their regenerated rows/series
directly (run pytest with ``-s`` to see them mid-run; the
paper-vs-measured summary prints at the end of the session either
way).

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — extend the sweeps to the paper's largest
  sizes (32768K elements).  Default sweeps stop around 2M elements to
  keep a full benchmark run under a few minutes.
* ``REPRO_BENCH_SMOKE=1`` — shrink the sweeps to small sizes so the
  whole suite finishes in seconds; this is what the CI ``bench-smoke``
  job runs.  Mutually exclusive with ``REPRO_BENCH_FULL`` (smoke wins).
* ``REPRO_BENCH_JSON=path.json`` — at the end of the session, write
  every paper-vs-measured record (including trace attachments) to the
  given path.  CI uploads this file as the workflow artifact.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import all_records, summary_lines, write_records_json

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
FULL = not SMOKE and os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    records = all_records()
    if not records:
        return
    terminalreporter.write_sep("=", "paper vs measured (EXPERIMENTS.md summary)")
    for line in summary_lines():
        terminalreporter.write_line(line)
    json_path = os.environ.get("REPRO_BENCH_JSON", "")
    if json_path:
        count = write_records_json(json_path)
        terminalreporter.write_line(
            f"wrote {count} record(s) to {json_path}"
        )


@pytest.fixture(scope="session")
def full_sweep() -> bool:
    return FULL


@pytest.fixture(scope="session")
def smoke() -> bool:
    return SMOKE
