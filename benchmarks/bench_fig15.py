"""Figure 15 — the sublist algorithm on 1, 2, 4, 8 dedicated processors.

Paper: ns/element falls with n for every processor count; the curves
separate cleanly (more CPUs → faster) for large n while the 1-CPU
version wins on small lists; 8 CPUs reach ≈5.4 ns/element (6.7×).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import print_table, record
from repro.bench.workloads import K, get_random_list
from repro.simulate.serial_sim import serial_rank_sim
from repro.simulate.sublist_sim import sublist_rank_sim

from conftest import FULL

SIZES_K = [8, 32, 128, 512, 2048] + ([8192, 32768] if FULL else [])
PROCS = [1, 2, 4, 8]


def _sweep():
    rows = []
    for size_k in SIZES_K:
        n = size_k * K
        lst = get_random_list(n)
        serial = serial_rank_sim(lst).ns_per_element
        per_p = [
            sublist_rank_sim(lst, n_processors=p, rng=0).ns_per_element
            for p in PROCS
        ]
        rows.append([f"{size_k}K", serial] + per_p)
    return rows


@pytest.mark.benchmark(group="fig15")
def test_fig15_multiprocessor_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        ["n", "serial"] + [f"p={p}" for p in PROCS],
        rows,
        title="Figure 15: sublist algorithm ns per element, 1–8 CPUs",
    )
    last = rows[-1]
    serial, p_vals = last[1], last[2:]
    record(
        "fig15",
        "8-CPU ns/element at largest n (paper: ≈5.4 ns at 32768K)",
        5.4,
        p_vals[-1],
        "ns/el",
        ok=p_vals[-1] < 12.0,
    )
    record(
        "fig15",
        "CPU curves ordered at large n (more CPUs → faster)",
        None,
        float(all(a > b for a, b in zip(p_vals, p_vals[1:]))),
        "",
        ok=all(a > b for a, b in zip(p_vals, p_vals[1:])),
    )
    record(
        "fig15",
        "8 CPUs vs serial at largest n (paper: ≈26×)",
        26.0,
        serial / p_vals[-1],
        "×",
        ok=serial / p_vals[-1] > 10.0,
    )
    # small lists: multiprocessing overhead visible (1 CPU competitive)
    first_p = np.asarray(rows[0][2:], dtype=np.float64)
    record(
        "fig15",
        "1 CPU beats 8 CPUs on the smallest list (multitasking overhead)",
        None,
        first_p[0] / first_p[-1],
        "× (should be <1)",
        ok=first_p[0] < first_p[-1],
    )
