"""Calibration sweep: fit-ready timings plus a fit sanity check.

Times the three routable algorithms (forced, no engine overhead)
across a size sweep and registers every observation via
``record_fit_sample`` — so the session's JSON artifact doubles as the
input for ``repro-c90 calibrate fit --from-bench``.  Then fits a
profile from those very samples in-process and records two claims:

* the fit succeeds with sane (positive) coefficients and modest
  residuals — the paper's Section 4.4 "the equations predict the
  measurements" claim, transplanted to this host;
* the fitted profile's routing differs from the static C-90 table
  somewhere in the sweep range (on a CPython/NumPy host the serial
  crossover sits far below the C-90's, because the interpreted
  traversal is much slower *relative to* the vectorized kernels than
  the C-90's scalar unit was relative to its vector unit).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.harness import print_table, record, record_fit_sample
from repro.calibrate import FitSample, fit_profile
from repro.core.list_scan import list_scan
from repro.engine.router import Router
from repro.lists.generate import random_list


def _time_best(lst, algorithm, repeats, rng):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        list_scan(lst, algorithm=algorithm, rng=rng)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.benchmark(group="calibration")
def test_calibration_sweep_and_fit(smoke, full_sweep):
    if smoke:
        sweeps = {
            "serial": (1 << 8, 1 << 10, 1 << 12, 1 << 13),
            "wyllie": (1 << 10, 1 << 12, 1 << 14, 1 << 15),
            "sublist": (1 << 10, 1 << 12, 1 << 14, 1 << 15),
        }
        repeats = 3
    else:
        top = 21 if full_sweep else 18
        sweeps = {
            "serial": tuple(1 << k for k in range(8, 17, 2)),
            "wyllie": tuple(1 << k for k in range(10, top, 2)),
            "sublist": tuple(1 << k for k in range(10, top, 2)),
        }
        repeats = 5

    rng = np.random.default_rng(20260808)
    rows = []
    samples = []
    for algorithm, sizes in sweeps.items():
        for n in sizes:
            lst = random_list(int(n), rng=rng)
            seconds = _time_best(lst, algorithm, repeats, rng)
            record_fit_sample(algorithm, n, seconds)
            samples.append(FitSample(kind=algorithm, x=int(n), seconds=seconds))
            rows.append([algorithm, n, seconds * 1e3, seconds / n * 1e9])
    print_table(
        ["algorithm", "n", "ms (best of k)", "ns/node"],
        rows,
        title=f"calibration sweep (best of {repeats})",
    )

    profile = fit_profile(samples, source="bench", created_at=time.time())
    print_table(["field", "value"], profile.summary_rows(),
                title="fitted profile")

    worst_residual = max(profile.residuals.values())
    record(
        "calibration",
        "cost-model refit converges with sane coefficients",
        paper=None,
        measured=worst_residual,
        unit="rms rel residual",
        ok=worst_residual < 1.0,
        note=f"kinds: {', '.join(profile.fitted_kinds)}",
    )

    static = Router()
    fitted = Router(costs=profile.costs)
    probe_top = max(max(s) for s in sweeps.values())
    probes = [1 << k for k in range(6, probe_top.bit_length())]
    changed = sum(
        1 for n in probes if static.choose(n) != fitted.choose(n)
    )
    record(
        "calibration",
        "fitted profile changes routing vs the static C-90 table",
        paper=None,
        measured=float(changed),
        unit="probe sizes rerouted",
        ok=changed >= 1,
        note=(
            f"serial crossover {static.crossover():,} -> "
            f"{fitted.crossover():,} nodes"
        ),
    )
