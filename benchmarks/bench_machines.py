"""Cross-machine study: C-90 vs Y-MP vs the DECstation workstation.

The paper's acknowledgements note both Y-MP and C-90 time were used;
its abstract anchors the workstation comparison.  This bench runs the
same workload across the three machine models and checks the expected
ordering and rough generational factors: the C-90 is ~2× the Y-MP per
element (dual pipes + faster clock), and both are orders of magnitude
ahead of a scalar workstation on this problem.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import print_table, record
from repro.bench.workloads import K, get_random_list
from repro.machine.config import CRAY_C90, CRAY_YMP, DECSTATION_5000
from repro.machine.vm import VectorVM
from repro.simulate.serial_sim import serial_rank_sim
from repro.simulate.sublist_sim import sublist_rank_sim

N = 1024 * K


def _cross_machine():
    lst = get_random_list(N)
    out = {}
    for config in (CRAY_C90, CRAY_YMP):
        ours = sublist_rank_sim(lst, config=config, rng=0)
        serial = serial_rank_sim(lst, config=config)
        out[config.name] = {
            "ours_ns": ours.ns_per_element,
            "serial_ns": serial.ns_per_element,
        }
    dec = VectorVM(DECSTATION_5000)
    dec.scalar_traverse(N)
    out[DECSTATION_5000.name] = {
        "ours_ns": float("nan"),
        "serial_ns": dec.time_ns / N,
    }
    return out


@pytest.mark.benchmark(group="machines")
def test_cross_machine_comparison(benchmark):
    res = benchmark.pedantic(_cross_machine, rounds=1, iterations=1)
    rows = [
        [name, v["ours_ns"], v["serial_ns"]]
        for name, v in res.items()
    ]
    print_table(
        ["machine", "ours ns/elem (1 CPU)", "serial ns/elem"],
        rows,
        title=f"Cross-machine comparison at n = {N // K}K",
    )
    c90 = res["CRAY C-90"]
    ymp = res["CRAY Y-MP"]
    dec = res["DECstation 5000/240"]
    gen_factor = ymp["ours_ns"] / c90["ours_ns"]
    record(
        "machines",
        "C-90 vs Y-MP generational factor (dual pipes + clock: ≈2–3×)",
        2.5,
        gen_factor,
        "×",
        ok=1.5 < gen_factor < 4.0,
    )
    record(
        "machines",
        "our algorithm beats the serial scan on both Crays",
        None,
        float(
            c90["ours_ns"] < c90["serial_ns"]
            and ymp["ours_ns"] < ymp["serial_ns"]
        ),
        "",
        ok=c90["ours_ns"] < c90["serial_ns"] and ymp["ours_ns"] < ymp["serial_ns"],
    )
    record(
        "machines",
        "even the C-90 *serial* scan beats the workstation",
        None,
        dec["serial_ns"] / c90["serial_ns"],
        "×",
        ok=dec["serial_ns"] > 2 * c90["serial_ns"],
    )
