"""Figure 3 — Wyllie's algorithm on 1, 2, 4, 8 processors.

Two signatures: (a) the *sawtooth* — per-element time jumps whenever
⌈log(n−1)⌉ increases, then drifts down as the constants amortize; and
(b) near-linear scaling with processor count ("it does scale linearly
with the number of processors") with the one-processor version winning
on small lists (no multitasking overhead).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import print_table, record
from repro.bench.workloads import get_random_list
from repro.simulate.wyllie_sim import wyllie_rank_sim

from conftest import FULL

# dense sizes to expose the sawtooth: powers of two ±1 and midpoints;
# the paper's Figure 3 sweeps 16 … 4M, where the smallest sizes show
# the one-processor version winning (no multitasking overhead)
_BASE = [1 << k for k in range(7, 22 if FULL else 20)]
SIZES = sorted(
    {n for b in _BASE for n in (b - 1, b + 2, b + (b >> 1))}
)
PROCS = [1, 2, 4, 8]


def _sweep():
    rows = []
    for n in SIZES:
        lst = get_random_list(n)
        per_p = [
            wyllie_rank_sim(lst, n_processors=p).ns_per_element for p in PROCS
        ]
        rows.append([n] + per_p)
    return rows


@pytest.mark.benchmark(group="fig03")
def test_fig03_wyllie_multiprocessor(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        ["n"] + [f"p={p}" for p in PROCS],
        rows,
        title="Figure 3: Wyllie ns per element on 1/2/4/8 simulated CPUs",
    )
    data = np.asarray([r[1:] for r in rows], dtype=np.float64)
    ns = np.asarray([r[0] for r in rows], dtype=np.float64)

    # (a) sawtooth on one CPU: per-element time is NOT monotone — it
    # jumps right after each power of two
    p1 = data[:, 0]
    jumps = 0
    for i in range(len(SIZES) - 1):
        if ns[i + 1] > ns[i] and p1[i + 1] > p1[i] * 1.02:
            jumps += 1
    record(
        "fig03",
        "sawtooth: upward jumps in 1-CPU curve (paper: one per ⌈log n−1⌉ step)",
        None,
        float(jumps),
        "jumps",
        ok=jumps >= len(_BASE) - 2,
    )

    # (b) near-linear processor scaling at the largest size
    speedup8 = data[-1, 0] / data[-1, 3]
    record(
        "fig03",
        "Wyllie 8-CPU speedup at largest n (paper: ≈linear)",
        8.0,
        speedup8,
        "×",
        ok=speedup8 > 5.0,
    )

    # (c) one CPU wins on small lists (no multitasking overhead)
    record(
        "fig03",
        "1 CPU faster than 8 CPUs on the smallest list",
        None,
        data[0, 0] / data[0, 3],
        "× (should be <1)",
        ok=data[0, 0] < data[0, 3],
    )
