"""Figure 14 — predicted vs measured performance of the vectorized
LIST_SCAN on one processor.

Paper: the Eq. 3/7 model, evaluated at the tuned (m, S₁), tracks the
measured curve closely across 8K…32768K, and "the running time
decreases until it reaches an asymptote of about 8.6 clocks per
element" (≈36 ns at 4.2 ns/clock).
"""

from __future__ import annotations

import pytest

from repro.analysis.predict import predict_run
from repro.bench.harness import print_table, record
from repro.bench.workloads import K, get_random_list
from repro.simulate.sublist_sim import SimSublistConfig, sublist_rank_sim

from conftest import FULL

SIZES_K = [8, 32, 128, 512, 2048] + ([8192, 32768] if FULL else [])


def _predicted_vs_measured():
    rows = []
    for size_k in SIZES_K:
        n = size_k * K
        pred = predict_run(n)
        lst = get_random_list(n)
        cfg = SimSublistConfig(m=pred.m, s1=pred.s1)
        meas = sublist_rank_sim(lst, sim_config=cfg, rng=0)
        rows.append(
            [
                f"{size_k}K",
                pred.m,
                pred.ns_per_element,
                meas.ns_per_element,
                meas.cycles_per_element,
            ]
        )
    return rows


@pytest.mark.benchmark(group="fig14")
def test_fig14_predicted_vs_measured(benchmark):
    rows = benchmark.pedantic(_predicted_vs_measured, rounds=1, iterations=1)
    print_table(
        ["n", "tuned m", "predicted ns/el", "measured ns/el", "measured clk/el"],
        rows,
        title="Figure 14: predicted vs measured, 1 simulated C-90 CPU",
    )
    # prediction accuracy across the sweep
    worst = max(abs(r[3] - r[2]) / r[2] for r in rows)
    record(
        "fig14",
        "max |measured−predicted|/predicted (paper: 'accurate predictor')",
        0.0,
        worst,
        "rel err",
        ok=worst < 0.35,
    )
    # the falling curve and the asymptote
    per_elem = [r[4] for r in rows]
    record(
        "fig14",
        "clk/element at largest n (paper asymptote ≈8.6)",
        8.6,
        per_elem[-1],
        "clk/el",
        ok=8.0 <= per_elem[-1] <= 12.0,
    )
    record(
        "fig14",
        "per-element time decreases with n",
        None,
        float(per_elem[-1] < per_elem[0]),
        "",
        ok=per_elem[-1] < per_elem[0],
    )
