"""Serving front-end: adaptive batch window vs. no batching.

The serving layer's claim is the paper's economics applied to the
network edge: admitting many concurrent clients' requests into one
fused ``run_batch`` beats executing each request the moment it
arrives.  The baseline is the same server with ``flush_size=1`` and a
near-zero window — every admission flushes immediately, one engine
call per request.  The measured configuration lets the SLO-aware
window batch admissions.

Records the ordering claim ("adaptive window ≥ 2× no-batching
throughput at equal-or-better p95") in the harness registry; the CI
smoke job runs the small shape.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.bench.harness import print_table, record_speedup
from repro.engine import Engine
from repro.serve import ScanServer, ServeConfig
from repro.serve.client import run_bench

SLO_P95 = 0.050


def _drive(clients: int, requests: int, sizes, **config_kw) -> dict:
    """One fresh server + engine, driven to completion by the bench
    client; returns the client's report (verify off: the measurement
    targets the serving path, not client-side reference scans)."""

    async def main():
        engine = Engine(executor="sync", max_pending=4096)
        server = ScanServer(engine, ServeConfig(port=0, **config_kw))
        await server.start()
        try:
            return await run_bench(
                "127.0.0.1",
                server.port,
                clients=clients,
                requests=requests,
                sizes=sizes,
                verify=False,
                seed=7,
            )
        finally:
            await server.shutdown()

    return asyncio.run(main())


@pytest.mark.benchmark(group="serve")
def test_adaptive_window_vs_no_batching(benchmark, full_sweep, smoke):
    clients = 4 if smoke else 8
    requests = 40 if smoke else (300 if full_sweep else 150)
    sizes = (16, 48, 128) if smoke else (16, 64, 256, 1024)

    baseline = _drive(
        clients,
        requests,
        sizes,
        flush_size=1,  # no batching: every admission flushes alone
        min_window=1e-4,
        max_window=1e-4,
        slo_p95=SLO_P95,
    )

    measured = benchmark.pedantic(
        lambda: _drive(
            clients,
            requests,
            sizes,
            flush_size=64,
            slo_p95=SLO_P95,  # adaptive window (defaults: 0.5–25 ms)
        ),
        rounds=1,
        iterations=1,
    )

    for report in (baseline, measured):
        counters = report["counters"]
        assert counters["ok"] == clients * requests, counters
        assert counters["mismatched"] == 0

    base_p95 = baseline["latency"]["p95"]
    adapt_p95 = measured["latency"]["p95"]
    print_table(
        ["configuration", "seconds", "responses/s", "p50 ms", "p95 ms"],
        [
            ["flush_size=1 (no batching)", baseline["elapsed"],
             baseline["throughput_rps"], 1e3 * baseline["latency"]["p50"],
             1e3 * base_p95],
            ["adaptive window", measured["elapsed"],
             measured["throughput_rps"], 1e3 * measured["latency"]["p50"],
             1e3 * adapt_p95],
        ],
        title=f"serving throughput, {clients} clients x {requests} requests",
    )
    # "equal or better p95": batching must not buy throughput by
    # blowing the latency target the window steers toward
    p95_ok = adapt_p95 <= max(base_p95, SLO_P95)
    record_speedup(
        "serve_adaptive_window",
        "adaptive batch window >= 2x no-batching throughput at "
        "equal-or-better p95",
        baseline_seconds=baseline["elapsed"],
        measured_seconds=measured["elapsed"]
        if p95_ok
        else float("inf"),  # a blown SLO forfeits the claim
        threshold=2.0,
        note=(
            f"p95 {1e3 * adapt_p95:.2f}ms vs baseline "
            f"{1e3 * base_p95:.2f}ms (SLO {1e3 * SLO_P95:.0f}ms); "
            f"{clients} clients x {requests} requests, sizes {sizes}"
        ),
    )
