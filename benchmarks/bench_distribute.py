"""Sharded / out-of-core list ranking: scaling and memory evidence.

Two recorded (not asserted) claims for the distributed path
(``repro.distribute``, docs/distributed.md):

* **Scaling vs workers** — the three-phase sharded scan over the
  pooled backends against the single-kernel sublist baseline, at 1, 2
  and 4 workers.  Chunk contraction/expansion parallelizes; the
  reduced solve and chunk dispatch are the serial fraction, so the
  curve records where the crossover lives on this host rather than
  asserting a threshold (NumPy already releases the GIL in the bulk
  ops, and process transport pays for pickling/shm round-trips).
* **Out-of-core peak RSS** — a memmapped list whose on-disk footprint
  exceeds the configured memory budget ranks correctly while the
  lease gate keeps chunk buffers inside the budget; the record carries
  the file bytes, budget, lease peak and process peak RSS as evidence.
"""

from __future__ import annotations

import resource
import time

import numpy as np
import pytest

from repro.bench.harness import print_table, record, record_speedup
from repro.core.sublist import sublist_list_scan
from repro.distribute import (
    DistributedConfig,
    create_output_memmap,
    open_memmap_list,
    sharded_forest_scan,
    sharded_list_scan,
    write_memmap_list,
)
from repro.engine.workers import create_backend
from repro.lists.generate import INDEX_DTYPE, blocked_list


@pytest.mark.benchmark(group="distribute")
@pytest.mark.parametrize("executor", ["threads", "processes"])
def test_sharded_scaling_vs_workers(benchmark, executor, smoke, full_sweep):
    n = (1 << 17) if smoke else ((1 << 22) if full_sweep else (1 << 20))
    rng = np.random.default_rng(20260808)
    lst = blocked_list(n, 256, rng, values=rng.integers(-9, 9, n))

    t0 = time.perf_counter()
    expect = sublist_list_scan(lst, rng=1)
    t_base = time.perf_counter() - t0

    rows = [["sublist (1 kernel)", "-", t_base, n / t_base / 1e6]]
    times = {}
    for workers in (1, 2, 4):
        backend = create_backend(executor, workers)
        cfg = DistributedConfig(num_chunks=4 * workers)
        try:
            runner = lambda: sharded_list_scan(
                lst, config=cfg, backend=backend, rng=1
            )
            if workers == 4:
                got = benchmark.pedantic(runner, rounds=1, iterations=1)
                t = benchmark.stats.stats.mean
            else:
                t0 = time.perf_counter()
                got = runner()
                t = time.perf_counter() - t0
        finally:
            backend.close()
        np.testing.assert_array_equal(got, expect)
        times[workers] = t
        rows.append([f"sharded ({executor})", workers, t, n / t / 1e6])

    print_table(
        ["driver", "workers", "seconds", "Mnodes/s"],
        rows,
        title=f"sharded scaling, {n:,} nodes (blocked layout)",
    )
    record_speedup(
        "distribute",
        f"sharded scan scaling vs workers ({executor}, recorded)",
        times[1],
        times[4],
        threshold=0.0,  # recorded, not asserted: the curve is the claim
        note=(
            f"{n:,} nodes; 1/2/4 workers: "
            f"{times[1]:.3f}/{times[2]:.3f}/{times[4]:.3f}s; "
            f"single-kernel sublist {t_base:.3f}s"
        ),
    )


@pytest.mark.benchmark(group="distribute")
def test_out_of_core_rank_peak_rss(benchmark, tmp_path, smoke, full_sweep):
    n = (1 << 18) if smoke else ((1 << 23) if full_sweep else (1 << 21))
    budget = 4 << 20  # far below the on-disk footprint
    write_memmap_list(tmp_path, n, layout="blocked", seed=9)
    mlist = open_memmap_list(tmp_path)
    out = create_output_memmap(tmp_path, n, INDEX_DTYPE)
    file_bytes = 3 * n * np.dtype(INDEX_DTYPE).itemsize
    cfg = DistributedConfig(memory_budget_bytes=budget, chunk_nodes=1 << 15)
    report: dict[str, object] = {}
    # the process backend engages the lease gate (chunks ship through
    # shared memory); inline backends bound residency by running one
    # chunk at a time instead
    backend = create_backend("processes", 2)

    def run():
        sharded_forest_scan(
            mlist.next,
            mlist.values,
            np.array([mlist.head], dtype=INDEX_DTYPE),
            "sum",
            config=cfg,
            backend=backend,
            out=out,
            rng=1,
            report=report,
        )
        return out

    try:
        got = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        backend.close()
    assert np.array_equal(np.sort(np.asarray(got)), np.arange(n))

    peak_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss << 10
    print_table(
        ["metric", "value"],
        [
            ["nodes", n],
            ["memmap file bytes", file_bytes],
            ["memory budget bytes", budget],
            ["lease peak bytes", report["gate_peak_bytes"]],
            ["chunks", report["num_chunks"]],
            ["peak RSS bytes (whole process)", peak_rss],
        ],
        title="out-of-core rank: footprint vs budget",
    )
    record(
        "distribute",
        "memmapped list larger than the budget ranks out-of-core",
        paper=None,
        measured=float(file_bytes) / budget,
        unit="x file/budget",
        ok=bool(file_bytes > budget)
        and int(report["gate_peak_bytes"]) <= budget,
        note=(
            f"{n:,} nodes, {file_bytes:,}B on disk vs {budget:,}B budget; "
            f"lease peak {report['gate_peak_bytes']:,}B; "
            f"process peak RSS {peak_rss:,}B (high-water across the "
            "whole bench session, recorded as evidence not asserted)"
        ),
    )
