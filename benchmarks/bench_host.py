"""Host-backend wall-clock benchmarks (pytest-benchmark).

These measure the *real* NumPy implementations on the machine running
the suite, demonstrating that the paper's algorithmic claims survive
three decades later: the sublist algorithm's work efficiency beats
Wyllie's O(n log n) at scale, both beat the scalar traversal, and the
crossovers have the same structure as Figure 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.anderson_miller import anderson_miller_list_scan
from repro.baselines.random_mate import random_mate_list_scan
from repro.baselines.serial import serial_list_scan
from repro.baselines.wyllie import wyllie_suffix
from repro.bench.workloads import K, get_valued_list
from repro.core.sublist import sublist_list_scan

N_SMALL = 4 * K
N_LARGE = 1024 * K


@pytest.mark.benchmark(group=f"host-{N_LARGE // K}K")
def test_host_sublist_large(benchmark):
    lst = get_valued_list(N_LARGE)
    rng = np.random.default_rng(0)
    out = benchmark(lambda: sublist_list_scan(lst, rng=rng))
    assert out[lst.head] == 0


@pytest.mark.benchmark(group=f"host-{N_LARGE // K}K")
def test_host_wyllie_large(benchmark):
    lst = get_valued_list(N_LARGE)
    benchmark(lambda: wyllie_suffix(lst))


@pytest.mark.benchmark(group=f"host-{N_LARGE // K}K")
def test_host_serial_large(benchmark):
    lst = get_valued_list(N_LARGE)
    benchmark.pedantic(lambda: serial_list_scan(lst), rounds=1, iterations=1)


@pytest.mark.benchmark(group=f"host-{N_LARGE // K}K")
def test_host_random_mate_large(benchmark):
    lst = get_valued_list(N_LARGE)
    rng = np.random.default_rng(0)
    benchmark.pedantic(
        lambda: random_mate_list_scan(lst, rng=rng), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group=f"host-{N_LARGE // K}K")
def test_host_anderson_miller_large(benchmark):
    lst = get_valued_list(N_LARGE)
    rng = np.random.default_rng(0)
    benchmark.pedantic(
        lambda: anderson_miller_list_scan(lst, rng=rng), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group=f"host-{N_SMALL // K}K")
def test_host_sublist_small(benchmark):
    lst = get_valued_list(N_SMALL)
    rng = np.random.default_rng(0)
    benchmark(lambda: sublist_list_scan(lst, rng=rng))


@pytest.mark.benchmark(group=f"host-{N_SMALL // K}K")
def test_host_wyllie_small(benchmark):
    """Wyllie wins on short lists — the paper's small-n regime."""
    lst = get_valued_list(N_SMALL)
    benchmark(lambda: wyllie_suffix(lst))


@pytest.mark.benchmark(group=f"host-{N_SMALL // K}K")
def test_host_serial_small(benchmark):
    lst = get_valued_list(N_SMALL)
    benchmark(lambda: serial_list_scan(lst))
