"""Table 1 — comparison of the list-ranking algorithms.

Paper columns: asymptotic time, work, constants, space.  Measured
counterparts here: per-element work (element operations), per-element
auxiliary space (peak words), and simulated time per element — all at
n = 64K, the size the paper's table is framed around.

Paper's space column: serial n, Wyllie 4n, ours 3n + 5m,
random mate ≥ 5n.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines.anderson_miller import anderson_miller_list_scan
from repro.baselines.random_mate import random_mate_list_scan
from repro.baselines.wyllie import wyllie_suffix
from repro.bench.harness import print_table, record
from repro.bench.workloads import K, get_random_list
from repro.core.stats import ScanStats
from repro.core.sublist import sublist_list_scan
from repro.simulate.contraction_sim import (
    anderson_miller_scan_sim,
    random_mate_scan_sim,
)
from repro.simulate.serial_sim import serial_rank_sim
from repro.simulate.sublist_sim import sublist_rank_sim
from repro.simulate.wyllie_sim import wyllie_rank_sim

N = 64 * K


def _measure():
    lst = get_random_list(N)
    out = {}

    st = ScanStats()
    sublist_list_scan(lst, rng=0, stats=st)
    out["ours"] = {
        "work": st.work_per_element(N),
        "space": st.peak_aux_words / N,
        "time": sublist_rank_sim(lst, rng=0).ns_per_element,
    }

    st = ScanStats()
    wyllie_suffix(lst, stats=st)
    out["wyllie"] = {
        "work": st.work_per_element(N),
        "space": st.peak_aux_words / N,
        "time": wyllie_rank_sim(lst).ns_per_element,
    }

    st = ScanStats()
    random_mate_list_scan(lst, rng=0, stats=st)
    out["random_mate"] = {
        "work": st.work_per_element(N),
        "space": st.peak_aux_words / N,
        "time": random_mate_scan_sim(lst, rng=0).ns_per_element,
    }

    st = ScanStats()
    anderson_miller_list_scan(lst, rng=0, stats=st)
    out["anderson_miller"] = {
        "work": st.work_per_element(N),
        "space": st.peak_aux_words / N,
        "time": anderson_miller_scan_sim(lst, rng=0).ns_per_element,
    }

    out["serial"] = {
        "work": 1.0,
        "space": 0.0,
        "time": serial_rank_sim(lst).ns_per_element,
    }
    return out


@pytest.mark.benchmark(group="table1")
def test_table1_algorithm_comparison(benchmark):
    m = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [
        ["Serial", "O(n)", m["serial"]["work"], m["serial"]["space"], m["serial"]["time"]],
        ["Wyllie", "O(n log n)", m["wyllie"]["work"], m["wyllie"]["space"], m["wyllie"]["time"]],
        ["Ours", "O(n)", m["ours"]["work"], m["ours"]["space"], m["ours"]["time"]],
        ["Random Mate", "O(n)", m["random_mate"]["work"], m["random_mate"]["space"], m["random_mate"]["time"]],
        ["Anderson/Miller", "O(n)", m["anderson_miller"]["work"], m["anderson_miller"]["space"], m["anderson_miller"]["time"]],
    ]
    print_table(
        ["algorithm", "work (paper)", "work/elem (measured)", "aux words/elem", "sim ns/elem"],
        rows,
        title=f"Table 1: algorithm comparison at n = 64K",
    )

    # work column: Wyllie's measured work/element ≈ ⌈log(n−1)⌉, ours O(1)
    record(
        "table1",
        "Wyllie work/element ≈ log2 n (paper: O(n log n) total)",
        math.ceil(math.log2(N - 1)),
        m["wyllie"]["work"],
        "ops/elem",
        ok=abs(m["wyllie"]["work"] - math.log2(N)) < 1.5,
    )
    record(
        "table1",
        "ours work/element bounded (paper: O(n) with small constants)",
        2.0,
        m["ours"]["work"],
        "ops/elem",
        ok=m["ours"]["work"] < 4.0,
    )
    # space column orderings: ours < wyllie < random mate (per element)
    record(
        "table1",
        "space: ours ≈ 3n+5m → aux ≪ Wyllie's 4n ≪ random mate's ≥5n",
        None,
        float(
            m["ours"]["space"]
            < m["wyllie"]["space"]
            < m["random_mate"]["space"]
        ),
        "",
        ok=m["ours"]["space"] < m["wyllie"]["space"] < m["random_mate"]["space"],
        note=(
            f"(ours {m['ours']['space']:.2f}, wyllie {m['wyllie']['space']:.2f}, "
            f"rm {m['random_mate']['space']:.2f} words/elem)"
        ),
    )
    # time ordering at 64K
    record(
        "table1",
        "time ordering at 64K: ours < serial < others",
        None,
        float(
            m["ours"]["time"] < m["serial"]["time"] < m["anderson_miller"]["time"]
        ),
        "",
        ok=m["ours"]["time"] < m["serial"]["time"] < m["anderson_miller"]["time"],
    )
