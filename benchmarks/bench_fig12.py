"""Figure 12 — g(s) and the optimal pack-schedule step function.

Paper: for n = 10000, m = 200 and 11 packs (S₁ = 14.7), the optimal
pack points sit under the decaying g(s) = m·e^(−ms/n) with spacing that
widens over time; the area between the step function and g(s) is the
wasted tail-chasing work the schedule minimizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.cost_model import phase13_time_from_schedule
from repro.analysis.distribution import expected_live_sublists
from repro.bench.harness import print_table, record
from repro.core.schedule import optimal_schedule, uniform_schedule

N, M, S1 = 10_000, 200, 14.7


def _schedule_report():
    sch = optimal_schedule(N, M, S1)
    g_at = expected_live_sublists(sch, N, M)
    t_opt = phase13_time_from_schedule(N, M, sch)
    t_uni = phase13_time_from_schedule(N, M, uniform_schedule(N, M, len(sch)))
    # wasted work: steps executed on sublists that are already finished
    pts = np.concatenate(([0.0], sch))
    executed = float(
        np.sum(np.diff(pts) * expected_live_sublists(pts[:-1], N, M))
    )
    return {
        "schedule": sch,
        "g_at": g_at,
        "t_opt": t_opt,
        "t_uni": t_uni,
        "executed": executed,
    }


@pytest.mark.benchmark(group="fig12")
def test_fig12_pack_schedule(benchmark):
    rep = benchmark.pedantic(_schedule_report, rounds=1, iterations=1)
    sch, g_at = rep["schedule"], rep["g_at"]
    rows = [
        [i + 1, float(s), float(g)]
        for i, (s, g) in enumerate(zip(sch, g_at))
    ]
    print_table(
        ["pack #", "S_i (steps)", "g(S_i) live sublists"],
        rows,
        title=f"Figure 12: optimal pack schedule, n={N}, m={M}, S1={S1}",
    )
    record(
        "fig12",
        "number of packs (paper: 11)",
        11.0,
        float(len(sch)),
        "packs",
        ok=9 <= len(sch) <= 13,
    )
    gaps = np.diff(np.concatenate(([0.0], sch)))
    record(
        "fig12",
        "pack gaps widen over time (paper: 'increasingly further apart')",
        None,
        float(np.all(np.diff(gaps) >= -1e-9)),
        "",
        ok=bool(np.all(np.diff(gaps) >= -1e-9)),
    )
    # executed work ≥ n (can't do better) but within a modest factor
    record(
        "fig12",
        "traversal work vs lower bound n (area under step function)",
        1.0,
        rep["executed"] / N,
        "× n",
        ok=1.0 <= rep["executed"] / N < 1.6,
    )
    record(
        "fig12",
        "optimal schedule beats uniform at same pack count",
        None,
        rep["t_uni"] / rep["t_opt"],
        "× slower (uniform)",
        ok=rep["t_uni"] > rep["t_opt"],
    )
