"""Application-level wall-clock benchmarks (pytest-benchmark).

The paper's closing question — "whether having a fast list ranking
implementation is useful as a primitive for other major applications"
— answered with the applications built on the library: Euler-tour tree
measures, rake-based expression evaluation, scan-based load balancing,
and linear recurrences, all on the host backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.euler_tour import random_parent_tree, tree_measures
from repro.apps.load_balance import partition_list
from repro.apps.recurrence import recurrence_list, solve_linear_recurrence
from repro.apps.tree_contraction import (
    evaluate_expression_tree,
    random_expression_tree,
)
from repro.bench.workloads import get_valued_list

N_TREE = 100_000
N_REC = 500_000


@pytest.mark.benchmark(group="apps")
def test_app_euler_tour_measures(benchmark):
    parent = random_parent_tree(N_TREE, rng=0)
    rng = np.random.default_rng(0)
    result = benchmark(
        lambda: tree_measures(parent, algorithm="sublist", rng=rng)
    )
    assert result["subtree_size"][0] == N_TREE


@pytest.mark.benchmark(group="apps")
def test_app_expression_evaluation(benchmark):
    tree = random_expression_tree(20_000, rng=0, value_low=0.9, value_high=1.1)
    rng = np.random.default_rng(0)
    got = benchmark(
        lambda: evaluate_expression_tree(tree, algorithm="sublist", rng=rng)
    )
    assert got == pytest.approx(tree.evaluate_serial(), rel=1e-6)


@pytest.mark.benchmark(group="apps")
def test_app_load_balancing(benchmark):
    lst = get_valued_list(N_REC)
    weights = np.abs(lst.values) + 1
    from repro.lists.generate import LinkedList

    work = LinkedList(lst.next, lst.head, weights)
    rng = np.random.default_rng(0)
    owner = benchmark(lambda: partition_list(work, 16, rng=rng))
    assert owner.max() == 15


@pytest.mark.benchmark(group="apps")
def test_app_linear_recurrence(benchmark):
    rng = np.random.default_rng(0)
    a = rng.uniform(0.9, 1.1, N_REC)
    b = rng.uniform(-0.5, 0.5, N_REC)
    lst = recurrence_list(a, b, order=rng.permutation(N_REC))
    xs = benchmark(lambda: solve_linear_recurrence(lst, x0=1.0, rng=rng))
    assert np.isfinite(xs).all()
