"""Batched-engine throughput vs. sequential dispatch.

The engine's claim mirrors the paper's: many independent traversals
kept at full (vector) width beat the same traversals run one at a
time.  Here the "vector" is NumPy bulk work across a fused forest of
requests, and the baseline is one ``list_scan(algorithm="auto")`` call
per list — so both sides use cost-model routing and the comparison
isolates *batching*, not algorithm choice.

Records the headline ordering claim ("batching ≥ 1× sequential on
mixed workloads") in the harness registry, plus the cache's effect on
a repeated workload and the worker-scaling curves of the pooled
execution backends (speedup vs workers for ``threads`` and
``processes`` against the ``sync`` driver).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.harness import print_table, record, record_speedup
from repro.core.list_scan import list_scan
from repro.engine import Engine
from repro.lists.generate import random_list, random_values


def _mixed_workload(count, min_n, max_n, seed):
    rng = np.random.default_rng(seed)
    sizes = np.exp(
        rng.uniform(np.log(min_n), np.log(max_n), count)
    ).astype(np.int64)
    return [
        random_list(int(n), rng, values=random_values(int(n), rng))
        for n in sizes
    ]


def _sequential_seconds(lists):
    t0 = time.perf_counter()
    results = [list_scan(lst, "sum", algorithm="auto") for lst in lists]
    return time.perf_counter() - t0, results


@pytest.mark.benchmark(group="engine")
def test_engine_vs_sequential_mixed(benchmark, full_sweep, smoke):
    count = 24 if smoke else (256 if full_sweep else 96)
    max_n = (1 << 11) if smoke else ((1 << 17) if full_sweep else (1 << 14))
    lists = _mixed_workload(count, 32, max_n, seed=20240805)
    total_nodes = sum(lst.n for lst in lists)

    t_seq, seq_results = _sequential_seconds(lists)

    engine = Engine(cache_capacity=0)  # isolate batching from caching
    eng_results = benchmark.pedantic(
        lambda: engine.map_scan(lists, "sum"), rounds=1, iterations=1
    )
    t_eng = engine.stats.seconds_executing

    for got, ref in zip(eng_results, seq_results):
        np.testing.assert_array_equal(got, ref)

    print_table(
        ["driver", "seconds", "Mnodes/s"],
        [
            ["sequential auto list_scan", t_seq, total_nodes / t_seq / 1e6],
            ["batched engine", t_eng, total_nodes / t_eng / 1e6],
        ],
        title=f"mixed workload: {count} lists, {total_nodes:,} nodes",
    )
    print_table(["counter", "value"], engine.stats.as_rows(),
                title="engine stats")
    record_speedup(
        "engine",
        "batched engine >= 1x sequential list_scan on mixed workloads",
        t_seq,
        t_eng,
        note=f"{count} lists, {total_nodes:,} nodes",
    )


@pytest.mark.benchmark(group="engine")
def test_engine_fault_isolation_overhead(benchmark, full_sweep, smoke):
    """Probe-time validation + containment must not eat the batching win.

    Runs the same healthy workload through the hardened serving path
    (``validate="fast"``, the default) and with validation off, and
    records the overhead ratio: the hardened engine should keep at
    least half the unvalidated throughput (in practice far more — the
    O(n) vectorized checks are cheap next to the scan itself).
    """
    count = 16 if smoke else (128 if full_sweep else 64)
    max_n = (1 << 10) if smoke else (1 << 13)
    lists = _mixed_workload(count, 32, max_n, seed=11)

    unvalidated = Engine(cache_capacity=0, validate="off")
    unvalidated.map_scan(lists, "sum")
    t_off = unvalidated.stats.seconds_executing

    hardened = Engine(cache_capacity=0, validate="fast")
    results = benchmark.pedantic(
        lambda: hardened.map_scan(lists, "sum"), rounds=1, iterations=1
    )
    t_on = hardened.stats.seconds_executing

    for got, ref in zip(results, unvalidated.map_scan(lists, "sum")):
        np.testing.assert_array_equal(got, ref)
    assert hardened.stats.errors == 0

    record_speedup(
        "engine",
        "hardened serving path keeps >= 0.5x unvalidated throughput",
        t_off,
        t_on,
        threshold=0.5,
        note=f"{count} lists, probe-time validation 'fast' vs 'off'",
    )


@pytest.mark.benchmark(group="engine")
def test_engine_cache_repeated_workload(benchmark, smoke):
    count = 12 if smoke else 48
    max_n = (1 << 10) if smoke else (1 << 13)
    lists = _mixed_workload(count, 64, max_n, seed=7)
    engine = Engine(cache_capacity=256)
    cold_results = engine.map_scan(lists, "sum")
    t_cold = engine.stats.seconds_executing

    warm_results = benchmark.pedantic(
        lambda: engine.map_scan(lists, "sum"), rounds=1, iterations=1
    )
    t_warm = engine.stats.seconds_executing - t_cold

    for got, ref in zip(warm_results, cold_results):
        np.testing.assert_array_equal(got, ref)
    assert engine.stats.cache_hits == len(lists)
    record_speedup(
        "engine",
        "structural result cache speedup on a repeated workload",
        t_cold,
        t_warm,
        note=f"{len(lists)} lists resubmitted verbatim",
    )


@pytest.mark.benchmark(group="engine")
def test_engine_worker_scaling(benchmark, full_sweep, smoke):
    """Speedup-vs-workers curves for the pooled backends (paper Fig. 14).

    The paper's Section 5 scales the sublist algorithm across 1–8 C-90
    CPUs; the engine's analogue divides a batch's *shards* among
    workers.  This records one scaling point per (executor, worker
    count) pair against the sync driver on a cold-cache, big-list
    workload spread over several size classes (equal sizes would fuse
    into one shard and leave nothing to parallelize).

    The issue's gate — ``processes`` at 4 workers ≥ 1.5× sync — is
    recorded with its real threshold so the registry's ``ok`` flag
    reports it honestly, but the hard assertion is correctness only:
    on a CI box with few cores (or one), no executor can physically
    reach the gate, and a capacity-dependent hard-fail would flake the
    suite exactly like a noisy-runner timing bound (see
    ``test_trace_off_overhead``).
    """
    import os

    count = 10 if smoke else (48 if full_sweep else 24)
    max_n = (1 << 11) if smoke else ((1 << 16) if full_sweep else (1 << 14))
    lists = _mixed_workload(count, 256, max_n, seed=31)
    total_nodes = sum(lst.n for lst in lists)

    warm = _mixed_workload(4, 256, 512, seed=5)

    def run(executor, workers):
        with Engine(
            cache_capacity=0, executor=executor, max_workers=workers, seed=9
        ) as engine:
            # spin the pool up (forkserver/spawn workers cold-start in
            # ~seconds) so the curve measures steady-state serving —
            # the regime the >= 1.5x gate is a claim about — and not
            # one-time pool construction
            engine.map_scan(warm, "sum", parallel=(executor != "sync"))
            t0 = time.perf_counter()
            results = engine.map_scan(
                lists, "sum", parallel=(executor != "sync")
            )
            return time.perf_counter() - t0, results

    run("sync", 1)  # warm-up (allocator, router calibration, imports)
    t_sync, ref = benchmark.pedantic(
        lambda: run("sync", 1), rounds=1, iterations=1
    )

    cpus = os.cpu_count() or 1
    worker_counts = [1, 2] if smoke else sorted({1, 2, 4, cpus})
    rows = [["sync", 1, t_sync, 1.0]]
    gate = None
    for executor in ("threads", "processes"):
        for workers in worker_counts:
            t, results = run(executor, workers)
            for got, want in zip(results, ref):
                np.testing.assert_array_equal(got, want)  # bit-identical
            speedup = t_sync / t if t > 0 else float("inf")
            rows.append([executor, workers, t, speedup])
            # curve points are measurements, not gates: threshold 0 so
            # only the explicit 1.5x record below carries an ok verdict
            record_speedup(
                "engine_scaling",
                f"{executor} executor, {workers} worker(s) vs sync driver",
                t_sync,
                t,
                threshold=0.0,
                note=(
                    f"{count} lists, {total_nodes:,} nodes, cold cache, "
                    f"{cpus} cpu(s) on this host"
                ),
            )
            if executor == "processes" and workers == max(worker_counts):
                gate = (workers, t)
    assert gate is not None
    workers, t = gate
    record_speedup(
        "engine_scaling",
        f"processes executor at {workers} workers >= 1.5x sync driver",
        t_sync,
        t,
        threshold=1.5,
        note=(
            f"issue gate (needs >= 4 usable cores; this host has {cpus}); "
            f"{count} lists, {total_nodes:,} nodes, cold cache"
        ),
    )
    print_table(
        ["executor", "workers", "seconds", "speedup vs sync"],
        rows,
        title=(
            f"worker scaling: {count} lists, {total_nodes:,} nodes, "
            f"{cpus} cpu(s)"
        ),
    )


@pytest.mark.benchmark(group="trace")
def test_trace_off_overhead(benchmark, smoke):
    """Tracing must be free when off and cheap when disabled.

    ``trace=None`` skips every hook via ``is not None`` guards;
    ``trace="off"`` routes every hook through the shared disabled
    tracer (the call sites stay live, so this is the configuration
    whose cost is actually interesting).  The recorded claim is the
    issue's gate: the ``trace="off"`` overhead on ``list_scan`` stays
    under 2%.  The hard assertion is deliberately looser (<10%) so a
    noisy CI runner cannot flake the suite; the recorded ``ok`` flag
    still reports the 2% gate.
    """
    from repro.trace import Tracer, compare_trace, trace_to_dict

    n = 30_000 if smoke else 100_000
    repeats = 3 if smoke else 5
    rng = np.random.default_rng(42)
    lst = random_list(n, rng, values=random_values(n, rng))

    def timed(trace):
        t0 = time.perf_counter()
        out = list_scan(lst.copy(), "sum", algorithm="sublist", rng=0, trace=trace)
        return time.perf_counter() - t0, out

    # warm-up (schedule caches, numpy allocator)
    timed(None)

    t_none = t_off = t_on = float("inf")
    ref = out_off = out_on = None
    tracer = Tracer()
    for _ in range(repeats):  # interleave to decorrelate from drift
        dt, ref = timed(None)
        t_none = min(t_none, dt)
        dt, out_off = timed("off")
        t_off = min(t_off, dt)
        tracer.reset()
        dt, out_on = timed(tracer)
        t_on = min(t_on, dt)

    np.testing.assert_array_equal(out_off, ref)
    np.testing.assert_array_equal(out_on, ref)

    overhead_off = t_off / t_none - 1.0
    overhead_on = t_on / t_none - 1.0
    print_table(
        ["configuration", "seconds", "overhead"],
        [
            ["trace=None", t_none, 0.0],
            ["trace='off'", t_off, overhead_off],
            ["trace=Tracer()", t_on, overhead_on],
        ],
        title=f"tracing overhead on list_scan, n={n:,} (min of {repeats})",
    )
    report = compare_trace(tracer)
    record(
        "trace",
        "trace='off' overhead on list_scan < 2%",
        paper=0.02,
        measured=overhead_off,
        unit="frac",
        ok=overhead_off < 0.02,
        trace={
            "enabled_overhead": overhead_on,
            "compare": report.as_dict(),
            "spans": trace_to_dict(tracer.last_root()),
        },
    )
    benchmark.pedantic(lambda: timed("off"), rounds=1, iterations=1)
    assert overhead_off < 0.10, (
        f"trace='off' overhead {overhead_off:.1%} exceeds the loose 10% bound"
    )
