"""Figure 11 — expected vs observed sublist length order statistics.

Paper: for n = 1000 and m ∈ {100, 150, 200, 250}, the analytic expected
length of the i-th shortest sublist (the exponential order-statistic
formula of Section 4.1) is overlaid on averages of 20 random splits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.distribution import (
    empirical_order_stats,
    expected_longest,
    expected_order_stat,
)
from repro.bench.harness import print_table, record

N = 1000
MS = [100, 150, 200, 250]
SAMPLES = 20


def _compare():
    out = {}
    rng = np.random.default_rng(11)
    for m in MS:
        obs = empirical_order_stats(N, m, samples=SAMPLES, rng=rng)
        idx = np.arange(1, m + 2)
        exp = expected_order_stat(idx, N, m)
        # median relative error over the central 80% of order indices
        sel = slice(m // 10, -max(m // 10, 1))
        rel = np.abs(obs["mean"][sel] - exp[sel]) / np.maximum(exp[sel], 1.0)
        out[m] = {
            "median_rel_err": float(np.median(rel)),
            "observed_longest": float(obs["mean"][-1]),
            "expected_longest": float(expected_longest(N, m)),
        }
    return out


@pytest.mark.benchmark(group="fig11")
def test_fig11_order_statistics(benchmark):
    stats = benchmark.pedantic(_compare, rounds=1, iterations=1)
    rows = [
        [
            m,
            stats[m]["expected_longest"],
            stats[m]["observed_longest"],
            100 * stats[m]["median_rel_err"],
        ]
        for m in MS
    ]
    print_table(
        ["m", "E[longest] (model)", "longest (20-sample mean)", "median rel err %"],
        rows,
        title=f"Figure 11: sublist order statistics, n={N}, {SAMPLES} samples",
    )
    for m in MS:
        record(
            "fig11",
            f"order-statistic model tracks data (m={m})",
            0.0,
            stats[m]["median_rel_err"],
            "median rel err",
            ok=stats[m]["median_rel_err"] < 0.25,
        )
    # paper's visual: larger m → shorter longest sublist, less variation
    longest = [stats[m]["observed_longest"] for m in MS]
    record(
        "fig11",
        "longest sublist shrinks as m grows",
        None,
        float(all(a > b for a, b in zip(longest, longest[1:]))),
        "",
        ok=all(a > b for a, b in zip(longest, longest[1:])),
    )
