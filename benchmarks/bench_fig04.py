"""Figure 4 — relative speedup of the sublist algorithm vs processors.

Paper: speedup curves for n = 8K, 128K and 2M over 1–8 processors; the
2M curve reaches ≈6.7 at 8 CPUs while 8K saturates early (the
constants and Phase 2 don't parallelize).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import print_table, record
from repro.bench.workloads import K, get_random_list
from repro.simulate.sublist_sim import sublist_rank_sim

SIZES_K = [8, 128, 2048]
PROCS = [1, 2, 3, 4, 5, 6, 7, 8]


def _speedups():
    table = {}
    for size_k in SIZES_K:
        n = size_k * K
        lst = get_random_list(n)
        base = sublist_rank_sim(lst, n_processors=1, rng=0).cycles
        table[size_k] = [
            base / sublist_rank_sim(lst, n_processors=p, rng=0).cycles
            for p in PROCS
        ]
    return table


@pytest.mark.benchmark(group="fig04")
def test_fig04_relative_speedup(benchmark):
    table = benchmark.pedantic(_speedups, rounds=1, iterations=1)
    rows = [
        [p] + [table[size_k][i] for size_k in SIZES_K]
        for i, p in enumerate(PROCS)
    ]
    print_table(
        ["p"] + [f"n={size_k}K" for size_k in SIZES_K],
        rows,
        title="Figure 4: relative speedup of the sublist algorithm",
    )
    s8_2m = table[2048][-1]
    record(
        "fig04",
        "speedup at p=8, n=2M (paper: ≈6.5–6.7)",
        6.7,
        s8_2m,
        "×",
        ok=4.5 < s8_2m <= 8.0,
    )
    # larger problems scale better (paper's n=8K curve flattens)
    record(
        "fig04",
        "larger n scales better: s8(2M) > s8(128K) > s8(8K)",
        None,
        float(table[2048][-1] > table[128][-1] > table[8][-1]),
        "",
        ok=table[2048][-1] > table[128][-1] > table[8][-1],
    )
    # monotone in p for the big size
    mono = all(a <= b * 1.02 for a, b in zip(table[2048], table[2048][1:]))
    record(
        "fig04",
        "speedup monotone in p at n=2M",
        None,
        float(mono),
        "",
        ok=mono,
    )
