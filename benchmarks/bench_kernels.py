"""Section 3 — the per-kernel timing equations.

The paper fits every subroutine to ``T(x) = a·x + b`` clocks.  This
bench (a) prints the machine model's derived equations next to the
paper's, and (b) *measures* the two hot kernels from actual simulated
runs — fitting (a, b) to the phase-1/phase-3 traversal step costs
recorded by the simulator — to confirm the simulation reproduces the
equations it was derived from end to end.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.harness import print_table, record
from repro.bench.workloads import get_random_list
from repro.core.operators import AFFINE, SUM
from repro.core.sublist import sublist_list_scan
from repro.kernels import HAVE_NUMBA, available_backends
from repro.machine.calibration import compare_with_paper
from repro.machine.config import CRAY_C90
from repro.simulate.sublist_sim import sublist_rank_sim


@pytest.mark.benchmark(group="kernels")
def test_section3_kernel_equations(benchmark):
    table = benchmark.pedantic(
        lambda: compare_with_paper(CRAY_C90), rounds=1, iterations=1
    )
    rows = [
        [
            name,
            f"{row['paper_a']:.1f}x + {row['paper_b']:.0f}",
            f"{row['model_a']:.2f}x + {row['model_b']:.0f}",
            100 * row["rel_err_a"],
        ]
        for name, row in table.items()
    ]
    print_table(
        ["kernel", "paper equation", "model equation", "slope err %"],
        rows,
        title="Section 3: kernel timing equations (clocks)",
    )
    worst = max(row["rel_err_a"] for row in table.values())
    record(
        "kernels",
        "worst kernel slope error vs paper equations",
        0.0,
        worst,
        "rel err",
        ok=worst < 0.15,
    )


@pytest.mark.benchmark(group="kernels")
def test_phase_costs_scale_with_n(benchmark, smoke):
    """End-to-end check: phase-1 + phase-3 cycles grow ≈ linearly in n
    with slope ≈ a = 8.4 (the combined rank slope)."""

    def run():
        sizes = (
            [1 << 13, 1 << 14, 1 << 15]
            if smoke
            else [1 << 16, 1 << 18, 1 << 20]
        )
        totals = []
        for n in sizes:
            res = sublist_rank_sim(get_random_list(n), rng=0)
            totals.append(res.breakdown["phase1"] + res.breakdown["phase3"])
        return np.asarray(sizes, dtype=float), np.asarray(totals)

    sizes, totals = benchmark.pedantic(run, rounds=1, iterations=1)
    slope = np.polyfit(sizes, totals, 1)[0]
    print_table(
        ["n", "phase1+3 clocks", "clocks/elem"],
        [[int(n), t, t / n] for n, t in zip(sizes, totals)],
        title="Phases 1+3 cost vs n (paper slope a = 8.4 clk/elem)",
    )
    record(
        "kernels",
        "phase-1+3 marginal cost per element (paper a = 8.4)",
        8.4,
        float(slope),
        "clk/elem",
        ok=7.0 < slope < 11.0,
    )


def _time_backend(lst, op, backend, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = sublist_list_scan(lst, op, rng=0, kernel_backend=backend)
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.mark.benchmark(group="kernel-backends")
def test_kernel_backend_comparison(benchmark, smoke, full_sweep):
    """Wall-clock comparison of the pluggable hot-loop backends.

    The ratios are *recorded* in the harness registry (the CI artifact),
    never asserted: the interpreted ``python`` backend exists for
    correctness coverage and is expected slow, and the ``numba`` ratio
    depends on the host.  When numba is not importable the record says
    so honestly (``ok=False``: the compiled claim was not measured)
    instead of quietly passing.
    """
    from repro.lists.generate import random_list

    n = 20_000 if smoke else (500_000 if full_sweep else 100_000)
    rng = np.random.default_rng(3)
    lst = random_list(n, rng, values=rng.integers(-50, 50, n))
    affine = random_list(
        n,
        rng,
        values=np.stack(
            [rng.uniform(0.5, 1.5, n), rng.uniform(-1, 1, n)], axis=1
        ),
    )

    def run():
        rows = []
        for op_label, work, op in (("sum", lst, SUM), ("affine", affine, AFFINE)):
            t_ref, ref = _time_backend(work, op, "numpy")
            for backend in available_backends():
                if backend == "numpy":
                    rows.append([op_label, backend, t_ref, 1.0])
                    continue
                t_b, got = _time_backend(work, op, backend)
                if op is SUM:
                    np.testing.assert_array_equal(got, ref)
                else:
                    np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)
                rows.append([op_label, backend, t_b, t_ref / t_b])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        ["operator", "backend", "seconds", "speedup vs numpy"],
        rows,
        title=f"kernel backends, n = {n:,} (recorded, never asserted)",
    )
    for op_label, backend, _, ratio in rows:
        if backend == "numpy":
            continue
        record(
            "kernel_backends",
            f"{backend} backend vs numpy reference ({op_label})",
            None,
            float(ratio),
            "x",
            ok=True,
            note=f"n={n:,}; informational — ratio recorded, not asserted",
        )
    if not HAVE_NUMBA:
        record(
            "kernel_backends",
            "numba backend vs numpy reference",
            None,
            0.0,
            "x",
            ok=False,
            note="numba not importable on this host; compiled speedup unmeasured",
        )
