"""Section 3 — the per-kernel timing equations.

The paper fits every subroutine to ``T(x) = a·x + b`` clocks.  This
bench (a) prints the machine model's derived equations next to the
paper's, and (b) *measures* the two hot kernels from actual simulated
runs — fitting (a, b) to the phase-1/phase-3 traversal step costs
recorded by the simulator — to confirm the simulation reproduces the
equations it was derived from end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import print_table, record
from repro.bench.workloads import get_random_list
from repro.machine.calibration import compare_with_paper
from repro.machine.config import CRAY_C90
from repro.simulate.sublist_sim import sublist_rank_sim


@pytest.mark.benchmark(group="kernels")
def test_section3_kernel_equations(benchmark):
    table = benchmark.pedantic(
        lambda: compare_with_paper(CRAY_C90), rounds=1, iterations=1
    )
    rows = [
        [
            name,
            f"{row['paper_a']:.1f}x + {row['paper_b']:.0f}",
            f"{row['model_a']:.2f}x + {row['model_b']:.0f}",
            100 * row["rel_err_a"],
        ]
        for name, row in table.items()
    ]
    print_table(
        ["kernel", "paper equation", "model equation", "slope err %"],
        rows,
        title="Section 3: kernel timing equations (clocks)",
    )
    worst = max(row["rel_err_a"] for row in table.values())
    record(
        "kernels",
        "worst kernel slope error vs paper equations",
        0.0,
        worst,
        "rel err",
        ok=worst < 0.15,
    )


@pytest.mark.benchmark(group="kernels")
def test_phase_costs_scale_with_n(benchmark, smoke):
    """End-to-end check: phase-1 + phase-3 cycles grow ≈ linearly in n
    with slope ≈ a = 8.4 (the combined rank slope)."""

    def run():
        sizes = (
            [1 << 13, 1 << 14, 1 << 15]
            if smoke
            else [1 << 16, 1 << 18, 1 << 20]
        )
        totals = []
        for n in sizes:
            res = sublist_rank_sim(get_random_list(n), rng=0)
            totals.append(res.breakdown["phase1"] + res.breakdown["phase3"])
        return np.asarray(sizes, dtype=float), np.asarray(totals)

    sizes, totals = benchmark.pedantic(run, rounds=1, iterations=1)
    slope = np.polyfit(sizes, totals, 1)[0]
    print_table(
        ["n", "phase1+3 clocks", "clocks/elem"],
        [[int(n), t, t / n] for n, t in zip(sizes, totals)],
        title="Phases 1+3 cost vs n (paper slope a = 8.4 clk/elem)",
    )
    record(
        "kernels",
        "phase-1+3 marginal cost per element (paper a = 8.4)",
        8.4,
        float(slope),
        "clk/elem",
        ok=7.0 < slope < 11.0,
    )
