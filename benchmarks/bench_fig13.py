"""Figure 13 — the geometric optimality condition of the pack points.

Paper Eq. 5: at each interior pack point the slope of g equals the
slope of the secant through (S_{i−1}, g(S_{i−1})) and the c/a-shifted
next point.  This bench verifies the condition numerically on the
Eq. 6-generated schedule and confirms it matches an independent direct
minimization of the Eq. 4 objective.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.cost_model import phase13_time_from_schedule
from repro.bench.harness import print_table, record
from repro.core.schedule import (
    numeric_optimal_schedule,
    optimal_schedule,
    slope_condition_residuals,
)

N, M, S1 = 10_000, 200, 14.7


def _verify():
    sch = optimal_schedule(N, M, S1, guard="none")
    res = slope_condition_residuals(sch, N, M)
    num = numeric_optimal_schedule(N, M, len(sch))
    res_num = slope_condition_residuals(num, N, M)
    t_rec = phase13_time_from_schedule(N, M, sch)
    t_num = phase13_time_from_schedule(N, M, num)
    return sch, res, num, res_num, t_rec, t_num


@pytest.mark.benchmark(group="fig13")
def test_fig13_slope_condition(benchmark):
    sch, res, num, res_num, t_rec, t_num = benchmark.pedantic(
        _verify, rounds=1, iterations=1
    )
    rows = [
        [i + 1, float(sch[i]), float(num[i]), float(res[i]) if i < len(res) else 0.0]
        for i in range(len(sch))
    ]
    print_table(
        ["i", "S_i (Eq. 6)", "S_i (direct minimization)", "Eq. 5 residual"],
        rows,
        title="Figure 13: optimality condition at each pack point",
    )
    interior = np.abs(res[:-1]) if len(res) > 1 else np.abs(res)
    record(
        "fig13",
        "max |Eq. 5 residual| at interior points (should be ≈0)",
        0.0,
        float(interior.max()) if interior.size else 0.0,
        "",
        ok=bool(interior.size == 0 or interior.max() < 1e-6),
    )
    record(
        "fig13",
        "Eq. 6 schedule time vs direct minimization",
        1.0,
        t_rec / t_num,
        "ratio",
        ok=t_rec <= t_num * 1.05,
    )
