"""Figure 1 — execution time per element of five list-ranking algorithms
on one (simulated) Cray C-90 processor.

Paper series (ns/element, 8K … 32768K): Miller/Reif highest
(≈1000 ns), then Anderson/Miller, then Wyllie (rising with log n,
sawtoothed), the flat serial line (≈143 ns), and our algorithm lowest
at large n (dropping toward ≈36 ns).  The qualitative content — the
ordering at large n, Wyllie's growth, the ours-vs-serial crossover in
the few-K range — is what this bench regenerates.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import print_table, record
from repro.bench.workloads import K, get_random_list
from repro.simulate.contraction_sim import (
    anderson_miller_scan_sim,
    random_mate_scan_sim,
)
from repro.simulate.serial_sim import serial_rank_sim
from repro.simulate.sublist_sim import sublist_rank_sim
from repro.simulate.wyllie_sim import wyllie_rank_sim

from conftest import FULL

SIZES_K = [8, 32, 128, 512, 2048] + ([8192, 32768] if FULL else [])


def _series():
    rows = []
    for size_k in SIZES_K:
        n = size_k * K
        lst = get_random_list(n)
        ours = sublist_rank_sim(lst, rng=0).ns_per_element
        wyllie = wyllie_rank_sim(lst).ns_per_element
        serial = serial_rank_sim(lst).ns_per_element
        rm = random_mate_scan_sim(lst, rng=0).ns_per_element
        am = anderson_miller_scan_sim(lst, rng=0).ns_per_element
        rows.append([f"{size_k}K", rm, am, wyllie, serial, ours])
    return rows


@pytest.mark.benchmark(group="fig01")
def test_fig01_five_algorithm_sweep(benchmark):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    print_table(
        ["n", "Miller/Reif", "Anderson/Miller", "Wyllie", "Serial", "Blelloch/Reid-Miller"],
        rows,
        title="Figure 1: ns per element, 1 simulated C-90 CPU",
    )
    last = rows[-1]
    rm, am, wyllie, serial, ours = last[1:]
    record(
        "fig01",
        f"ours at {last[0]} (paper → ≈36 ns/elem at 32768K)",
        36.0,
        ours,
        "ns/elem",
        ok=ours < serial,
    )
    record(
        "fig01",
        "serial flat line (paper ≈143 ns/elem)",
        143.0,
        serial,
        "ns/elem",
        ok=abs(serial - 143) / 143 < 0.1,
    )
    record(
        "fig01",
        "ordering at large n: ours < serial < AM < RM",
        None,
        float(ours < serial < am < rm),
        "",
        ok=ours < serial < am < rm,
    )
    # Wyllie's work inefficiency: rising ns/elem across the sweep
    wyllie_series = [r[3] for r in rows]
    record(
        "fig01",
        "Wyllie degrades with n (paper: 'quickly degrades')",
        None,
        wyllie_series[-1] / wyllie_series[0],
        "× growth",
        ok=wyllie_series[-1] > wyllie_series[0],
    )


@pytest.mark.benchmark(group="fig01-crossover")
def test_fig01_wyllie_crossover(benchmark):
    """Paper: "For lists shorter than 7000 elements Wyllie's algorithm
    is faster than ours."  Locate our crossover."""

    def crossover():
        lo = None
        for n in [512, 1024, 2048, 4096, 8192, 16384, 32768, 65536]:
            lst = get_random_list(n)
            ours = sublist_rank_sim(lst, rng=0).cycles
            wy = wyllie_rank_sim(lst).cycles
            if wy > ours and lo is None:
                lo = n
        return lo or 10**9

    cross = benchmark.pedantic(crossover, rounds=1, iterations=1)
    record(
        "fig01",
        "ours-vs-Wyllie crossover (paper ≈7000 elements)",
        7000.0,
        float(cross),
        "elements",
        ok=cross <= 65536,
        note="(our constants differ; same qualitative crossover)",
    )
