"""Headline quantitative claims from the abstract / Sections 1 and 6.

* "On a single processor it also achieves a factor of four speed up
  over a serial list scan on the CRAY C-90."
* "We obtain an addition[al] 6.7 speedup on 8 processors."
* "it achieves over two orders of magnitude speedup over a DECstation
  5000 workstation."
* "if the vectorized algorithm does twice as much work as the serial
  code … the best you can expect is a 6-9 fold speedup on one
  processor" — our 1-CPU speedup must respect that ceiling.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import print_table, record
from repro.bench.workloads import K, get_random_list
from repro.machine.config import DECSTATION_5000
from repro.machine.vm import VectorVM
from repro.simulate.serial_sim import serial_rank_sim
from repro.simulate.sublist_sim import sublist_rank_sim

from conftest import FULL

N = (32768 if FULL else 4096) * K


def _headline():
    lst = get_random_list(N)
    serial = serial_rank_sim(lst)
    one = sublist_rank_sim(lst, n_processors=1, rng=0)
    eight = sublist_rank_sim(lst, n_processors=8, rng=0)
    dec = VectorVM(DECSTATION_5000)
    dec.scalar_traverse(N)
    return {
        "serial_ns": serial.ns_per_element,
        "one_ns": one.ns_per_element,
        "eight_ns": eight.ns_per_element,
        "dec_ns": dec.time_ns / N,
    }


@pytest.mark.benchmark(group="claims")
def test_headline_claims(benchmark):
    h = benchmark.pedantic(_headline, rounds=1, iterations=1)
    print_table(
        ["configuration", "ns/element"],
        [
            ["DECstation 5000 serial", h["dec_ns"]],
            ["C-90 serial", h["serial_ns"]],
            ["C-90 ours, 1 CPU", h["one_ns"]],
            ["C-90 ours, 8 CPUs", h["eight_ns"]],
        ],
        title=f"Headline claims at n = {N // K}K",
    )

    v1 = h["serial_ns"] / h["one_ns"]
    record(
        "claims",
        "1-CPU speedup over C-90 serial (paper: ≈4×)",
        4.0,
        v1,
        "×",
        ok=3.0 < v1 < 9.0,
    )
    record(
        "claims",
        "1-CPU speedup within the gather/scatter ceiling (paper: 6–9× max)",
        9.0,
        v1,
        "×",
        ok=v1 <= 9.0,
    )
    v8 = h["one_ns"] / h["eight_ns"]
    record(
        "claims",
        "additional speedup on 8 CPUs (paper: 6.7×)",
        6.7,
        v8,
        "×",
        ok=4.5 < v8 <= 8.0,
    )
    dec_factor = h["dec_ns"] / h["eight_ns"]
    record(
        "claims",
        "vs DECstation 5000 (paper: over two orders of magnitude)",
        100.0,
        dec_factor,
        "×",
        ok=dec_factor >= 50.0,
    )
