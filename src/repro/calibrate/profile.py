"""The on-disk calibration profile: versioned, schema-validated JSON.

A profile is the unit of exchange between the fitter, the CI
``calibration-smoke`` job, and a running engine: one JSON document
holding a complete :class:`~repro.analysis.cost_model.KernelCosts`
table (in *host nanoseconds* — ``clock_ns = 1.0`` so "clocks" are ns),
the refit ``m(n)``/``S₁(n)`` cubic-in-``log n`` tuning coefficients,
the host fingerprint the samples came from, and enough fit metadata
(sample counts, RMS residuals) to judge whether the profile should be
trusted.

Validation is strict and runs on every load: a profile with a
non-positive slope, a NaN, a wrong schema version, or a missing field
raises :class:`ProfileError` instead of silently mis-routing every
request that follows.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Any

from ..analysis.cost_model import KernelCosts

__all__ = [
    "SCHEMA_VERSION",
    "CalibrationProfile",
    "ProfileError",
    "host_fingerprint",
    "load_profile",
]

#: Bump on any incompatible change to the JSON layout.
SCHEMA_VERSION = 1

#: Every cost field must be finite and >= 0; these slopes must be > 0
#: (a zero or negative per-element cost routes everything to that
#: kernel — the "absurd coefficient" class the CI check job rejects).
_POSITIVE_SLOPES = (
    "serial_per_elem",
    "initial_rank_per_elem",
    "final_rank_per_elem",
    "initial_pack_per_elem",
    "final_pack_per_elem",
    "wyllie_round_per_elem",
)

_COST_FIELDS = tuple(f.name for f in dataclasses.fields(KernelCosts))

#: Sample kinds the fitter knows how to ingest.
FIT_KINDS = ("serial", "wyllie", "sublist")


class ProfileError(ValueError):
    """A calibration profile failed schema or sanity validation."""


def host_fingerprint() -> dict[str, Any]:
    """Identify the machine a profile was fitted on.

    Routing constants are meaningless across hosts (that is the whole
    point of this package), so every profile records where its samples
    were measured and ``calibrate check`` can warn on a mismatch.
    """
    import numpy

    uname = platform.uname()
    return {
        "platform": sys.platform,
        "machine": uname.machine,
        "system": uname.system,
        "release": uname.release,
        "node": uname.node,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count() or 1,
    }


@dataclass(frozen=True)
class CalibrationProfile:
    """One fitted calibration: cost table + tuning fits + provenance.

    Attributes
    ----------
    costs:
        Full kernel cost table in host nanoseconds (``clock_ns == 1.0``
        for fitted profiles, so predicted "clocks" read directly as
        ns).
    m_coeffs / s1_coeffs:
        Cubic-in-``ln n`` coefficients (highest power first) for the
        tuned sublist count and first pack point, refit against
        ``costs`` the same way the paper fits its Section 4.4 cubics —
        or ``None`` when the fit skipped the tuning stage.
    samples:
        Per-kind ingested sample counts (``{"serial": 5, …}``).
    residuals:
        Per-kind RMS relative residual of the fit (observed vs fitted
        model, dimensionless).
    source:
        Where the samples came from: ``"bench"``, ``"trace"``,
        ``"live"``, or ``"drift"`` (auto-refit).
    created_at:
        Unix timestamp (seconds) supplied by the caller — injected, not
        read here, so deterministic tests can fix it.
    host:
        :func:`host_fingerprint` of the fitting machine.
    """

    costs: KernelCosts
    created_at: float
    source: str = "live"
    host: dict[str, Any] = field(default_factory=host_fingerprint)
    m_coeffs: tuple[float, float, float, float] | None = None
    s1_coeffs: tuple[float, float, float, float] | None = None
    samples: dict[str, int] = field(default_factory=dict)
    residuals: dict[str, float] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (the on-disk schema)."""
        return {
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "source": self.source,
            "host": dict(self.host),
            "costs": dataclasses.asdict(self.costs),
            "tuning": (
                None
                if self.m_coeffs is None or self.s1_coeffs is None
                else {
                    "m_coeffs": list(self.m_coeffs),
                    "s1_coeffs": list(self.s1_coeffs),
                }
            ),
            "fit": {
                "samples": dict(self.samples),
                "residuals": dict(self.residuals),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def save(self, path: str) -> None:
        """Validate, then write the profile to ``path``."""
        self.validate()
        with open(path, "w") as fp:
            fp.write(self.to_json())
            fp.write("\n")

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CalibrationProfile":
        """Parse and validate one profile document.

        Raises :class:`ProfileError` on any schema violation.
        """
        if not isinstance(data, dict):
            raise ProfileError(f"profile must be a JSON object, got {type(data).__name__}")
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ProfileError(
                f"unsupported profile schema_version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        for key in ("created_at", "source", "host", "costs", "fit"):
            if key not in data:
                raise ProfileError(f"profile is missing required key {key!r}")
        costs_doc = data["costs"]
        if not isinstance(costs_doc, dict):
            raise ProfileError("'costs' must be an object")
        missing = set(_COST_FIELDS) - set(costs_doc)
        if missing:
            raise ProfileError(f"'costs' is missing fields: {sorted(missing)}")
        unknown = set(costs_doc) - set(_COST_FIELDS)
        if unknown:
            raise ProfileError(f"'costs' has unknown fields: {sorted(unknown)}")
        try:
            costs = KernelCosts(**{k: float(v) for k, v in costs_doc.items()})
        except (TypeError, ValueError) as exc:
            raise ProfileError(f"bad cost value: {exc}") from None
        tuning = data.get("tuning")
        m_coeffs = s1_coeffs = None
        if tuning is not None:
            if (
                not isinstance(tuning, dict)
                or "m_coeffs" not in tuning
                or "s1_coeffs" not in tuning
            ):
                raise ProfileError("'tuning' must hold m_coeffs and s1_coeffs")
            m_coeffs = _coeff_tuple(tuning["m_coeffs"], "m_coeffs")
            s1_coeffs = _coeff_tuple(tuning["s1_coeffs"], "s1_coeffs")
        fit = data["fit"]
        if not isinstance(fit, dict):
            raise ProfileError("'fit' must be an object")
        samples_doc = fit.get("samples", {})
        residuals_doc = fit.get("residuals", {})
        if not isinstance(samples_doc, dict) or not isinstance(residuals_doc, dict):
            raise ProfileError("'fit.samples' and 'fit.residuals' must be objects")
        try:
            samples = {str(k): int(v) for k, v in samples_doc.items()}
            residuals = {str(k): float(v) for k, v in residuals_doc.items()}
        except (TypeError, ValueError) as exc:
            raise ProfileError(f"bad fit metadata: {exc}") from None
        host = data["host"]
        if not isinstance(host, dict):
            raise ProfileError("'host' must be an object")
        profile = cls(
            costs=costs,
            created_at=float(data["created_at"]),
            source=str(data["source"]),
            host=host,
            m_coeffs=m_coeffs,
            s1_coeffs=s1_coeffs,
            samples=samples,
            residuals=residuals,
            schema_version=int(version),
        )
        profile.validate()
        return profile

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Sanity-check the profile; raises :class:`ProfileError`.

        Rejects the "absurd coefficient" class: non-finite values
        anywhere, negative costs, non-positive per-element slopes
        (``a <= 0`` would make that kernel free and absorb all
        routing), a non-positive clock period, unknown sample kinds,
        and sample counts below the fitter's minimum of 2 per fitted
        kind.
        """
        for name in _COST_FIELDS:
            value = float(getattr(self.costs, name))
            if not math.isfinite(value):
                raise ProfileError(f"costs.{name} is not finite: {value!r}")
            if value < 0.0:
                raise ProfileError(f"costs.{name} is negative: {value!r}")
        for name in _POSITIVE_SLOPES:
            if float(getattr(self.costs, name)) <= 0.0:
                raise ProfileError(
                    f"costs.{name} must be > 0 (a non-positive per-element "
                    "slope routes every request to this kernel)"
                )
        if self.costs.clock_ns <= 0.0:
            raise ProfileError(f"costs.clock_ns must be > 0, got {self.costs.clock_ns!r}")
        if not math.isfinite(self.created_at) or self.created_at < 0:
            raise ProfileError(f"created_at must be a finite timestamp, got {self.created_at!r}")
        for coeffs, label in ((self.m_coeffs, "m_coeffs"), (self.s1_coeffs, "s1_coeffs")):
            if coeffs is None:
                continue
            if len(coeffs) != 4 or not all(math.isfinite(c) for c in coeffs):
                raise ProfileError(f"tuning.{label} must be 4 finite floats, got {coeffs!r}")
        for kind, count in self.samples.items():
            if kind not in FIT_KINDS:
                raise ProfileError(
                    f"unknown sample kind {kind!r}; expected one of {FIT_KINDS}"
                )
            if count < 2:
                raise ProfileError(
                    f"kind {kind!r} was fitted from {count} sample(s); "
                    "a linear fit needs at least 2"
                )
        for kind, residual in self.residuals.items():
            if kind not in FIT_KINDS:
                raise ProfileError(f"residual for unknown kind {kind!r}")
            if not math.isfinite(residual) or residual < 0:
                raise ProfileError(f"residual for {kind!r} must be finite and >= 0")
        if not self.samples:
            raise ProfileError("profile was fitted from no samples")

    @property
    def fitted_kinds(self) -> tuple[str, ...]:
        """The kinds this profile's samples actually covered."""
        return tuple(kind for kind in FIT_KINDS if self.samples.get(kind, 0) >= 2)

    def summary_rows(self) -> list[list[object]]:
        """Rows for ``bench.harness.format_table`` (``calibrate show``)."""
        c = self.costs
        rows: list[list[object]] = [
            ["source", self.source],
            ["created_at (unix)", self.created_at],
            ["host", f"{self.host.get('node', '?')} ({self.host.get('machine', '?')}, "
                     f"{self.host.get('cpu_count', '?')} cpu)"],
            ["clock_ns", c.clock_ns],
            ["serial T(n)", f"{c.serial_per_elem:.4g}·n + {c.serial_const:.4g}"],
            ["wyllie round T(n)", f"{c.wyllie_round_per_elem:.4g}·n + {c.wyllie_round_const:.4g}"],
            ["combined rank a·x+b", f"{c.a:.4g}·x + {c.b:.4g}"],
            ["combined pack c·x+d", f"{c.c:.4g}·x + {c.d:.4g}"],
            ["bookkeeping e·m+f", f"{c.e:.4g}·m + {c.f:.4g}"],
        ]
        if self.m_coeffs is not None:
            rows.append(["m(n) cubic (ln n)", ", ".join(f"{v:.4g}" for v in self.m_coeffs)])
        if self.s1_coeffs is not None:
            rows.append(["S1(n) cubic (ln n)", ", ".join(f"{v:.4g}" for v in self.s1_coeffs)])
        for kind in FIT_KINDS:
            if kind in self.samples:
                rows.append([
                    f"fit[{kind}]",
                    f"{self.samples[kind]} sample(s), "
                    f"RMS rel residual {self.residuals.get(kind, float('nan')):.3g}",
                ])
        return rows


def _coeff_tuple(values: Any, label: str) -> tuple[float, float, float, float]:
    try:
        coeffs = tuple(float(v) for v in values)
    except (TypeError, ValueError):
        raise ProfileError(f"tuning.{label} must be a list of floats") from None
    if len(coeffs) != 4:
        raise ProfileError(f"tuning.{label} must have exactly 4 coefficients")
    return coeffs  # type: ignore[return-value]


def load_profile(path: str) -> CalibrationProfile:
    """Read and validate a profile file; raises :class:`ProfileError`
    on malformed JSON as well as schema violations."""
    try:
        with open(path) as fp:
            data = json.load(fp)
    except OSError as exc:
        raise ProfileError(f"{path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ProfileError(f"{path}: not valid JSON: {exc}") from None
    return CalibrationProfile.from_dict(data)
