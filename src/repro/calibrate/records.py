"""Fit-ready calibration records and their extraction from artifacts.

A :class:`FitSample` is one observation the fitter can consume: *this
kind of run, over x elements, took this many wall seconds*.  Three
producers exist:

* the bench harness — benchmarks call
  ``bench.harness.record_fit_sample`` while timing forced-algorithm
  runs, and ``write_records_json`` lands them in the CI artifact under
  ``"fit_samples"`` (:func:`samples_from_bench_payload` reads them
  back, plus any ``DeviationReport`` trace attachments);
* the tracer — a ``repro-c90 trace --json`` payload carries the run's
  wall seconds and its deviation report
  (:func:`samples_from_trace_payload`);
* live measurement — :mod:`repro.calibrate.live` times the kernels
  directly.

:func:`load_samples` sniffs which artifact layout a JSON file uses, so
``repro-c90 calibrate fit`` accepts any of them interchangeably.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from .profile import FIT_KINDS, ProfileError

__all__ = [
    "FitSample",
    "load_samples",
    "samples_from_bench_payload",
    "samples_from_trace_payload",
]


@dataclass(frozen=True)
class FitSample:
    """One timing observation: ``kind`` over ``x`` elements in ``seconds``.

    ``x`` is the linear model's abscissa — total nodes for all three
    kinds.  ``n_lists`` matters for ``wyllie`` (pointer jumping over a
    forest of ``n_lists`` chains converges in ``log2(x / n_lists)``
    rounds); it defaults to 1 (one chain).
    """

    kind: str
    x: int
    seconds: float
    n_lists: int = 1
    source: str = ""
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FIT_KINDS:
            raise ValueError(
                f"unknown sample kind {self.kind!r}; expected one of {FIT_KINDS}"
            )
        if self.x < 1:
            raise ValueError(f"sample size must be >= 1, got {self.x}")
        if self.n_lists < 1:
            raise ValueError(f"n_lists must be >= 1, got {self.n_lists}")
        if not self.seconds > 0.0:
            raise ValueError(f"observed seconds must be > 0, got {self.seconds!r}")

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "x": self.x,
            "seconds": self.seconds,
            "n_lists": self.n_lists,
        }
        if self.source:
            out["source"] = self.source
        if self.meta:
            out["meta"] = dict(self.meta)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FitSample":
        try:
            return cls(
                kind=str(data["kind"]),
                x=int(data["x"]),
                seconds=float(data["seconds"]),
                n_lists=int(data.get("n_lists", 1)),
                source=str(data.get("source", "")),
                meta=dict(data.get("meta", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfileError(f"malformed fit sample {data!r}: {exc}") from None


def _sample_from_compare(
    compare: dict[str, Any], seconds: float | None, source: str
) -> FitSample | None:
    """One ``sublist`` sample from a ``DeviationReport.as_dict()``.

    Prefers the report's own ``observed_seconds`` (the scan span's
    duration); falls back to the phase-duration sum, then to the
    caller-supplied wall time.
    """
    try:
        n = int(compare["n"])
    except (KeyError, TypeError, ValueError):
        return None
    observed = compare.get("observed_seconds")
    if not observed:
        durations = compare.get("phase_durations") or {}
        observed = sum(
            float(v) for k, v in durations.items() if k.startswith("phase")
        ) or None
    if not observed:
        observed = seconds
    if not observed or observed <= 0 or n < 1:
        return None
    return FitSample(
        kind="sublist",
        x=n,
        seconds=float(observed),
        source=source,
        meta={
            "m": compare.get("m"),
            "decay_ratio": (compare.get("trajectory") or {}).get("decay_ratio"),
        },
    )


def samples_from_trace_payload(payload: dict[str, Any]) -> list[FitSample]:
    """Samples from one ``repro-c90 trace --json`` payload.

    The payload's top-level ``seconds``/``n``/``algorithm`` give one
    sample for whatever algorithm ran (when it is a fittable kind);
    the embedded deviation report refines the ``sublist`` sample with
    the scan span's own duration (excluding list generation and
    engine admission overhead).
    """
    samples: list[FitSample] = []
    algorithm = payload.get("algorithm")
    compare = payload.get("compare")
    if isinstance(compare, dict):
        sample = _sample_from_compare(
            compare, payload.get("seconds"), source="trace"
        )
        if sample is not None:
            samples.append(sample)
    if algorithm in FIT_KINDS and not samples:
        try:
            samples.append(
                FitSample(
                    kind=str(algorithm),
                    x=int(payload["n"]),
                    seconds=float(payload["seconds"]),
                    source="trace",
                )
            )
        except (KeyError, TypeError, ValueError):
            pass
    return samples


def samples_from_bench_payload(payload: dict[str, Any]) -> list[FitSample]:
    """Samples from one bench artifact (``write_records_json`` output).

    Reads the explicit ``fit_samples`` array benchmarks emit via
    ``record_fit_sample``, plus a ``sublist`` sample from every record
    whose ``trace`` attachment is a deviation report.
    """
    samples: list[FitSample] = []
    for doc in payload.get("fit_samples", []) or []:
        if isinstance(doc, dict):
            samples.append(FitSample.from_dict(doc))
    for rec in payload.get("records", []) or []:
        trace = rec.get("trace") if isinstance(rec, dict) else None
        if isinstance(trace, dict):
            sample = _sample_from_compare(trace, None, source="bench")
            if sample is not None:
                samples.append(sample)
    return samples


def load_samples(path: str) -> list[FitSample]:
    """Sniff one JSON artifact and extract every fit sample in it.

    Accepts a bench artifact (object with ``records``/``fit_samples``),
    a trace payload (object with ``trace``/``compare``), or a bare
    array of serialized samples.  Raises :class:`ProfileError` when the
    file is unreadable or matches no known layout.
    """
    try:
        with open(path) as fp:
            payload = json.load(fp)
    except OSError as exc:
        raise ProfileError(f"{path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ProfileError(f"{path}: not valid JSON: {exc}") from None
    if isinstance(payload, list):
        return [FitSample.from_dict(doc) for doc in payload]
    if isinstance(payload, dict):
        if "records" in payload or "fit_samples" in payload:
            return samples_from_bench_payload(payload)
        if "trace" in payload or "compare" in payload:
            return samples_from_trace_payload(payload)
    raise ProfileError(
        f"{path}: unrecognized artifact layout (expected a bench record "
        "file, a trace payload, or an array of samples)"
    )
