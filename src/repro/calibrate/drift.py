"""Drift detection: is the active calibration still telling the truth?

The paper validates its model by comparing predicted and measured
runtimes (Section 4.4) — we run that comparison continuously.  Every
engine execution reports ``(kind, x, seconds)`` plus the router's
prediction for that run; every traced sublist run additionally reports
the observed Eq. 2 decay ratio.  The detector keeps a bounded rolling
window of observations and flags a run when

* ``observed / predicted`` falls outside the configured ratio band
  (``1/tolerance .. tolerance``), or
* the observed decay ratio strays more than ``decay_tolerance`` from
  the model's ``e^(−m·s/n)`` expectation (the same band
  ``trace.compare.deviation_ok`` uses).

``auto_refit_after = K`` turns the alarm into a actuator: after K
*consecutive* out-of-tolerance runs, :meth:`DriftDetector.observe_run`
returns ``refit=True`` and the engine refits a fresh profile from the
window's samples (see ``Engine.recalibrate``).  The detector never
reads a clock and never calls back into the engine — it is a pure
bookkeeper behind its own lock, so the engine can consult it from any
worker thread without ordering constraints.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from ..sanitize.runtime import guarded
from .records import FitSample

__all__ = ["DriftConfig", "DriftDetector", "DriftVerdict"]


@dataclass(frozen=True)
class DriftConfig:
    """Tolerances and windowing for the drift detector.

    ``tolerance`` is a multiplicative band: a run drifts when observed
    wall time is more than ``tolerance``× the prediction or less than
    ``1/tolerance``× it.  The default is deliberately loose — host
    timing noise on small runs is large, and a false alert that
    triggers an auto-refit from noisy samples is worse than a missed
    one.  ``decay_tolerance`` mirrors ``trace.compare.deviation_ok``.
    ``min_seconds`` ignores runs too short to time meaningfully.
    ``auto_refit_after = 0`` disables auto-refit (alerts only).
    """

    tolerance: float = 3.0
    decay_tolerance: float = 0.35
    window: int = 64
    auto_refit_after: int = 0
    min_seconds: float = 1e-4

    def __post_init__(self) -> None:
        if not self.tolerance > 1.0:
            raise ValueError(f"tolerance must be > 1, got {self.tolerance!r}")
        if not 0.0 < self.decay_tolerance < 1.0:
            raise ValueError(
                f"decay_tolerance must be in (0, 1), got {self.decay_tolerance!r}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.auto_refit_after < 0:
            raise ValueError(
                f"auto_refit_after must be >= 0, got {self.auto_refit_after}"
            )
        if self.min_seconds < 0.0:
            raise ValueError(f"min_seconds must be >= 0, got {self.min_seconds!r}")


@dataclass(frozen=True)
class DriftVerdict:
    """Outcome of one observation.

    ``alert`` — this run was out of tolerance; ``refit`` — the
    consecutive-alert threshold was crossed and the caller should
    recalibrate from :meth:`DriftDetector.samples`.  ``ratio`` is
    observed/predicted (``None`` when the run was skipped as too short
    or unpredicted).
    """

    alert: bool = False
    refit: bool = False
    ratio: float | None = None


@dataclass
class _DriftState:
    observations: int = 0
    alerts: int = 0
    decay_alerts: int = 0
    consecutive: int = 0
    refits_signalled: int = 0
    window: deque[FitSample] = field(default_factory=deque)


class DriftDetector:
    """Thread-safe rolling comparison of observed vs predicted runtimes."""

    def __init__(self, config: DriftConfig | None = None) -> None:
        self.config = config or DriftConfig()
        self._lock = threading.Lock()
        self._state = _DriftState(
            window=deque(maxlen=self.config.window)
        )

    def observe_run(
        self,
        kind: str,
        x: int,
        seconds: float,
        predicted_ns: float | None,
        n_lists: int = 1,
    ) -> DriftVerdict:
        """Record one executed run and judge it against the prediction.

        ``predicted_ns`` is the router's cost-model prediction for this
        run in nanoseconds (``predicted_clocks × clock_ns``); pass
        ``None`` when no prediction applies (the run still lands in the
        refit window).
        """
        cfg = self.config
        if seconds < cfg.min_seconds or x < 1:
            return DriftVerdict()
        try:
            sample = FitSample(
                kind=kind, x=x, seconds=seconds, n_lists=n_lists, source="drift"
            )
        except ValueError:
            return DriftVerdict()
        ratio: float | None = None
        if predicted_ns is not None and predicted_ns > 0.0:
            ratio = (seconds * 1e9) / predicted_ns
        with guarded(self._lock, "drift.window"):
            state = self._state
            state.observations += 1
            state.window.append(sample)
            if ratio is None:
                return DriftVerdict(ratio=None)
            drifted = ratio > cfg.tolerance or ratio < 1.0 / cfg.tolerance
            return self._judge_locked(drifted, ratio)

    def observe_decay(self, observed: float, expected: float) -> DriftVerdict:
        """Judge one traced Eq. 2 decay ratio against the model's.

        Both values are end-of-phase-1 ``live/m`` fractions (what
        ``trace.compare`` reports as ``decay_ratio`` vs
        ``e^(−m·s₁/n)``); drift is an absolute gap beyond
        ``decay_tolerance``.  Decay alerts count toward the same
        consecutive-run refit trigger as duration alerts.
        """
        cfg = self.config
        with guarded(self._lock, "drift.window"):
            state = self._state
            state.observations += 1
            drifted = abs(observed - expected) > cfg.decay_tolerance
            if drifted:
                state.decay_alerts += 1
            return self._judge_locked(drifted, None)

    def _judge_locked(self, drifted: bool, ratio: float | None) -> DriftVerdict:
        state = self._state
        if not drifted:
            state.consecutive = 0
            return DriftVerdict(ratio=ratio)
        state.alerts += 1
        state.consecutive += 1
        refit = (
            self.config.auto_refit_after > 0
            and state.consecutive >= self.config.auto_refit_after
        )
        if refit:
            state.refits_signalled += 1
            state.consecutive = 0
        return DriftVerdict(alert=True, refit=refit, ratio=ratio)

    def samples(self) -> list[FitSample]:
        """The current refit window, oldest first."""
        with guarded(self._lock, "drift.window", "read"):
            return list(self._state.window)

    def reset(self) -> None:
        """Drop the window and the consecutive-alert streak.

        Called after a recalibration: old observations were judged (and
        measured) against the previous profile.
        """
        with guarded(self._lock, "drift.window"):
            self._state = _DriftState(window=deque(maxlen=self.config.window))

    def snapshot(self) -> dict[str, int]:
        with guarded(self._lock, "drift.window", "read"):
            state = self._state
            return {
                "observations": state.observations,
                "alerts": state.alerts,
                "decay_alerts": state.decay_alerts,
                "consecutive": state.consecutive,
                "refits_signalled": state.refits_signalled,
                "window": len(state.window),
            }
