"""Direct measurement of fit samples on this machine.

``repro-c90 calibrate fit --live`` needs timings without a prior bench
run or trace artifact: generate randomly-ordered lists (the paper's
canonical workload), force each routable algorithm in turn, and time
the scans with an injectable clock.  Sizes are chosen so the whole
sweep finishes in a few seconds — the serial traversal is a Python
pointer-chase and gets a smaller sweep than the vectorized kernels.

Each ``(algorithm, n)`` cell is timed ``repeats`` times and the
*minimum* is kept: for calibration we want the cost equation's clean
signal, and min-of-k is the standard estimator for that (interference
only ever adds time).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence

import numpy as np

from ..core.list_scan import list_scan
from ..lists.generate import random_list
from .records import FitSample

__all__ = ["DEFAULT_SIZES", "measure_samples"]

#: Per-algorithm default size sweeps.  Serial is a per-node Python
#: loop (~µs/node), so its sweep stays small; the vectorized
#: algorithms need larger n for the per-element term to dominate
#: timer noise.
DEFAULT_SIZES: dict[str, tuple[int, ...]] = {
    "serial": (1 << 8, 1 << 10, 1 << 12, 1 << 14),
    "wyllie": (1 << 10, 1 << 12, 1 << 14, 1 << 16),
    "sublist": (1 << 10, 1 << 12, 1 << 14, 1 << 16),
}


def measure_samples(
    sizes: dict[str, Sequence[int]] | None = None,
    repeats: int = 3,
    seed: int = 0,
    clock: Callable[[], float] = time.perf_counter,
    kernel_backend: str | None = None,
) -> list[FitSample]:
    """Time forced-algorithm scans and return fit-ready samples.

    Parameters
    ----------
    sizes:
        Mapping of algorithm name to its size sweep; defaults to
        :data:`DEFAULT_SIZES`.  Algorithms absent from the mapping are
        skipped, so ``{"serial": [...]}`` measures only the serial
        kernel.
    repeats:
        Timed repetitions per cell; the minimum is recorded.
    seed:
        Seed for the random list layouts (and the sublist algorithm's
        splitter draws), so a sweep is reproducible.
    clock / kernel_backend:
        Injectable timer and sublist kernel backend.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    sweeps = DEFAULT_SIZES if sizes is None else sizes
    rng = np.random.default_rng(seed)
    samples: list[FitSample] = []
    for algorithm, ns in sweeps.items():
        for n in ns:
            lst = random_list(int(n), rng=rng)
            best = float("inf")
            for _ in range(repeats):
                kwargs: dict[str, object] = {"rng": rng}
                if algorithm == "sublist" and kernel_backend is not None:
                    kwargs["kernel_backend"] = kernel_backend
                t0 = clock()
                list_scan(lst, algorithm=algorithm, **kwargs)
                elapsed = clock() - t0
                if elapsed < best:
                    best = elapsed
            if best > 0.0:
                samples.append(
                    FitSample(
                        kind=algorithm,
                        x=int(n),
                        seconds=best,
                        source="live",
                    )
                )
    return samples
