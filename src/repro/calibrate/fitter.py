"""Least-squares refits of the paper's cost model for the host machine.

Three fits, one per routable kind (matching the router's candidates):

``serial``
    ``T(n) = a·n + b`` directly — the host's pointer-chasing traversal
    (the analogue of the paper's measured ``34·m + 255``).
``wyllie``
    ``T(n) = rounds(n)·(a·n + b)`` with ``rounds = ⌈log₂(n/k)⌉`` known
    per sample, so the round cost is still a linear least squares over
    the design ``[rounds·n, rounds]``.
``sublist``
    the full Section 4 model has too many coefficients to identify
    from end-to-end timings, so the *group* of vectorized kernels
    (rank, pack, bookkeeping) is scaled together: a least-squares
    ``alpha`` maps the paper-shaped prediction
    (``analysis.predict.predict_run`` under the base table) onto the
    observed nanoseconds, preserving the paper's internal ratios
    while fitting the host's absolute speed.  This is the same
    one-knob-per-machine discipline ``machine.calibration`` uses for
    simulated machines, driven by measurements instead of spec sheets.

Fitted profiles are expressed in host nanoseconds (``clock_ns = 1.0``),
so a router prediction reads directly as wall time and the drift
detector can compare it against observed durations.

The tuning stage then re-runs the paper's Section 4.4 procedure
against the *fitted* table: grid-tune ``(m, S₁)`` across a size sweep
and refit the cubic-in-``log n`` polynomials
(``core.tuning.fit_polylog``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from collections.abc import Sequence

import numpy as np

from ..analysis.cost_model import KernelCosts, PAPER_C90_COSTS
from ..analysis.predict import predict_run
from ..core.tuning import fit_polylog
from .profile import CalibrationProfile, host_fingerprint
from .records import FitSample

__all__ = ["FitError", "FitResult", "fit_linear", "fit_profile"]

#: Cost fields scaled together by the sublist group factor ``alpha``
#: (the vectorized kernels of Sections 3/4.2).
_VECTOR_FIELDS = (
    "initialize_per_elem",
    "initialize_const",
    "initial_rank_per_elem",
    "initial_rank_const",
    "initial_pack_per_elem",
    "initial_pack_const",
    "find_sublist_per_elem",
    "find_sublist_const",
    "final_rank_per_elem",
    "final_rank_const",
    "final_pack_per_elem",
    "final_pack_const",
    "restore_per_elem",
    "restore_const",
    "sync_const",
)

#: Default size sweep for the tuning-polynomial refit (Section 4.4's
#: "tune every n, then fit cubics in log n").
DEFAULT_TUNE_SIZES = (1 << 9, 1 << 11, 1 << 13, 1 << 15, 1 << 17, 1 << 19, 1 << 21)


class FitError(ValueError):
    """The samples cannot produce a sane calibration."""


@dataclass(frozen=True)
class FitResult:
    """One linear fit: slope/intercept plus fit-quality metadata."""

    slope: float
    intercept: float
    rms_rel_residual: float
    n_samples: int


def _lstsq(design: np.ndarray, ys: np.ndarray) -> np.ndarray:
    coef, *_ = np.linalg.lstsq(design, ys, rcond=None)
    return np.asarray(coef, dtype=np.float64)


def _rel_residual(predicted: np.ndarray, observed: np.ndarray) -> float:
    rel = (predicted - observed) / np.maximum(np.abs(observed), 1e-30)
    return float(np.sqrt(np.mean(rel**2)))


def fit_linear(
    xs: Sequence[float], ys: Sequence[float], label: str = "linear"
) -> FitResult:
    """Least-squares ``y = a·x + b`` with a non-negativity repair.

    Raises :class:`FitError` with fewer than 2 samples, a degenerate
    design (all ``x`` equal), or a non-positive fitted slope.  A
    negative intercept (possible when the true ``b`` is tiny and the
    noise isn't) is repaired by refitting the slope through the
    origin — the paper's intercepts are scalar overheads and cannot be
    negative.
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.size != y.size:
        raise FitError(f"{label}: {x.size} x values vs {y.size} y values")
    if x.size < 2:
        raise FitError(f"{label}: need at least 2 samples, got {x.size}")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise FitError(f"{label}: samples contain non-finite values")
    if float(np.ptp(x)) == 0.0:
        raise FitError(f"{label}: all samples share x={x[0]:g}; cannot fit a slope")
    design = np.stack([x, np.ones_like(x)], axis=1)
    slope, intercept = _lstsq(design, y)
    if intercept < 0.0 or slope <= 0.0:
        # a negative coefficient is always noise, not physics (costs
        # are positive): drop to the through-origin estimator, which
        # is positive whenever the observations are
        intercept = 0.0
        slope = float(np.dot(x, y) / np.dot(x, x))
    if not math.isfinite(slope) or slope <= 0.0:
        raise FitError(f"{label}: fitted slope {slope:g} is not positive")
    predicted = slope * x + intercept
    return FitResult(
        slope=float(slope),
        intercept=float(intercept),
        rms_rel_residual=_rel_residual(predicted, y),
        n_samples=int(x.size),
    )


def _wyllie_rounds(sample: FitSample) -> float:
    longest = max(2.0, sample.x / sample.n_lists)
    return float(math.ceil(math.log2(longest)))


def _fit_wyllie(samples: list[FitSample]) -> FitResult:
    """``T = rounds·(a·n + b)`` — linear in ``(rounds·n, rounds)``."""
    rounds = np.asarray([_wyllie_rounds(s) for s in samples], dtype=np.float64)
    x = np.asarray([s.x for s in samples], dtype=np.float64)
    y = np.asarray([s.seconds * 1e9 for s in samples], dtype=np.float64)
    if x.size < 2:
        raise FitError(f"wyllie: need at least 2 samples, got {x.size}")
    if float(np.ptp(rounds * x)) == 0.0:
        raise FitError("wyllie: degenerate sample sizes; cannot fit a slope")
    design = np.stack([rounds * x, rounds], axis=1)
    slope, intercept = _lstsq(design, y)
    if intercept < 0.0 or slope <= 0.0:
        intercept = 0.0
        slope = float(np.dot(rounds * x, y) / np.dot(rounds * x, rounds * x))
    if not math.isfinite(slope) or slope <= 0.0:
        raise FitError(f"wyllie: fitted round slope {slope:g} is not positive")
    predicted = rounds * (slope * x + intercept)
    return FitResult(
        slope=float(slope),
        intercept=float(intercept),
        rms_rel_residual=_rel_residual(predicted, y),
        n_samples=int(x.size),
    )


def _fit_sublist_alpha(
    samples: list[FitSample], base: KernelCosts
) -> FitResult:
    """Group scale ``alpha``: observed ns ≈ alpha · model(n) + beta."""
    if len(samples) < 2:
        raise FitError(f"sublist: need at least 2 samples, got {len(samples)}")
    cycles = np.asarray(
        [predict_run(s.x, base).cycles for s in samples], dtype=np.float64
    )
    y = np.asarray([s.seconds * 1e9 for s in samples], dtype=np.float64)
    if float(np.ptp(cycles)) == 0.0:
        raise FitError("sublist: degenerate sample sizes; cannot fit a scale")
    design = np.stack([cycles, np.ones_like(cycles)], axis=1)
    alpha, beta = _lstsq(design, y)
    if beta < 0.0 or alpha <= 0.0:
        beta = 0.0
        alpha = float(np.dot(cycles, y) / np.dot(cycles, cycles))
    if not math.isfinite(alpha) or alpha <= 0.0:
        raise FitError(f"sublist: fitted scale {alpha:g} is not positive")
    predicted = alpha * cycles + beta
    return FitResult(
        slope=float(alpha),
        intercept=float(beta),
        rms_rel_residual=_rel_residual(predicted, y),
        n_samples=len(samples),
    )


def fit_profile(
    samples: Sequence[FitSample],
    base: KernelCosts = PAPER_C90_COSTS,
    source: str = "live",
    created_at: float = 0.0,
    tune: bool = True,
    tune_sizes: Sequence[int] = DEFAULT_TUNE_SIZES,
) -> CalibrationProfile:
    """Fit a full calibration profile from timing samples.

    Parameters
    ----------
    samples:
        At least 2 samples of at least one fit kind.  Kinds that are
        missing inherit the base table's coefficients rescaled by the
        fitted group factor, so the profile stays unit-consistent (all
        nanoseconds) even from a partial sample set.
    base:
        The cost table giving the sublist model its *shape* (internal
        kernel ratios); the paper's C-90 table by default, or the
        current profile's table when auto-refitting.
    source / created_at:
        Provenance recorded in the profile (``created_at`` is injected
        by the caller — this module never reads a clock).
    tune:
        Re-run the Section 4.4 tuning sweep against the fitted table
        and store the refit ``m(n)``/``S₁(n)`` cubics.

    Raises
    ------
    FitError
        When no kind has enough samples or any fit produces an absurd
        (non-positive) coefficient.
    """
    by_kind: dict[str, list[FitSample]] = {}
    for sample in samples:
        by_kind.setdefault(sample.kind, []).append(sample)
    if not any(len(v) >= 2 for v in by_kind.values()):
        raise FitError(
            "need at least 2 samples of one kind "
            f"(got {({k: len(v) for k, v in by_kind.items()}) or 'none'})"
        )

    fits: dict[str, FitResult] = {}
    if len(by_kind.get("serial", ())) >= 2:
        serial_samples = by_kind["serial"]
        fits["serial"] = fit_linear(
            [s.x for s in serial_samples],
            [s.seconds * 1e9 for s in serial_samples],
            label="serial",
        )
    if len(by_kind.get("wyllie", ())) >= 2:
        fits["wyllie"] = _fit_wyllie(by_kind["wyllie"])
    if len(by_kind.get("sublist", ())) >= 2:
        fits["sublist"] = _fit_sublist_alpha(by_kind["sublist"], base)

    # The group factor that carries paper-shaped coefficients into host
    # nanoseconds.  Preference order: the sublist fit measures the
    # vector kernels directly; the others are crude fallbacks that at
    # least keep the units consistent when only one kind was sampled.
    if "sublist" in fits:
        alpha = fits["sublist"].slope
    elif "wyllie" in fits:
        alpha = fits["wyllie"].slope / base.wyllie_round_per_elem
    else:
        alpha = fits["serial"].slope / base.serial_per_elem

    fields: dict[str, float] = {
        name: float(getattr(base, name)) * alpha for name in _VECTOR_FIELDS
    }
    if "sublist" in fits:
        # the fit's intercept is unmodelled per-run overhead; fold it
        # into the bookkeeping constant (paper: part of f)
        fields["initialize_const"] += fits["sublist"].intercept
    if "serial" in fits:
        fields["serial_per_elem"] = fits["serial"].slope
        fields["serial_const"] = fits["serial"].intercept
    else:
        fields["serial_per_elem"] = base.serial_per_elem * alpha
        fields["serial_const"] = base.serial_const * alpha
    if "wyllie" in fits:
        fields["wyllie_round_per_elem"] = fits["wyllie"].slope
        fields["wyllie_round_const"] = fits["wyllie"].intercept
    else:
        fields["wyllie_round_per_elem"] = base.wyllie_round_per_elem * alpha
        fields["wyllie_round_const"] = base.wyllie_round_const * alpha
    costs = replace(KernelCosts(), **fields, clock_ns=1.0)

    m_coeffs = s1_coeffs = None
    if tune:
        if len(tune_sizes) < 4:
            raise FitError("tuning refit needs at least 4 sweep sizes")
        polyfit = fit_polylog([int(n) for n in tune_sizes], costs)
        m_coeffs = tuple(float(c) for c in polyfit.m_coeffs)
        s1_coeffs = tuple(float(c) for c in polyfit.s1_coeffs)

    profile = CalibrationProfile(
        costs=costs,
        created_at=float(created_at),
        source=source,
        host=host_fingerprint(),
        m_coeffs=m_coeffs,
        s1_coeffs=s1_coeffs,
        samples={kind: fit.n_samples for kind, fit in fits.items()},
        residuals={kind: fit.rms_rel_residual for kind, fit in fits.items()},
    )
    profile.validate()
    return profile
