"""Online cost-model recalibration (closing the Section 4.4 loop).

The paper's central empirical claim is that the Section 3/4 kernel
equations *predict measured runtimes*: every kernel is ``T = a·x + b``,
the live-sublist trajectory follows ``g(s) = m·e^(−m·s/n)`` (Eq. 2),
and the tuned ``m(n)``/``S₁(n)`` are cubic polynomials of ``log n``
(Section 4.4).  The engine's router applies exactly those equations —
but, out of the box, with the coefficients measured on a 1994 Cray
C-90.  This package fits the same equations to *this* machine:

* :mod:`records <repro.calibrate.records>` — fit-ready ``(kind, x,
  seconds)`` samples, extracted from live traces
  (``repro.trace.compare``), from CI bench artifacts
  (``bench.harness.write_records_json`` output), or measured directly
  (:mod:`live <repro.calibrate.live>`);
* :mod:`fitter <repro.calibrate.fitter>` — least-squares refits of the
  per-kernel linear coefficients and the polylog tuning fits;
* :mod:`profile <repro.calibrate.profile>` — the versioned,
  schema-validated on-disk calibration profile (host fingerprint,
  sample counts, residuals);
* :mod:`drift <repro.calibrate.drift>` — per-request comparison of
  observed durations / decay ratios against the active profile, with
  health counters and optional auto-refit.

The profile hot-swaps into a running engine via
``Engine.recalibrate()`` (atomic router-cache invalidation — see
``engine.router.Router.set_costs``) or is built offline with
``repro-c90 calibrate fit``.  See ``docs/calibration.md``.
"""

from .drift import DriftConfig, DriftDetector, DriftVerdict
from .fitter import FitError, FitResult, fit_linear, fit_profile
from .live import measure_samples
from .profile import (
    CalibrationProfile,
    ProfileError,
    SCHEMA_VERSION,
    host_fingerprint,
    load_profile,
)
from .records import (
    FitSample,
    load_samples,
    samples_from_bench_payload,
    samples_from_trace_payload,
)

__all__ = [
    "CalibrationProfile",
    "DriftConfig",
    "DriftDetector",
    "DriftVerdict",
    "FitError",
    "FitResult",
    "FitSample",
    "ProfileError",
    "SCHEMA_VERSION",
    "fit_linear",
    "fit_profile",
    "host_fingerprint",
    "load_profile",
    "load_samples",
    "measure_samples",
    "samples_from_bench_payload",
    "samples_from_trace_payload",
]
