"""Miller/Reif random-mate list ranking (paper Section 2.3).

"One of the simplest work efficient parallel algorithms was devised by
Miller and Reif.  It used randomization to break contention so that
processors at neighboring nodes do not attempt to dereference their
successor pointers simultaneously."

Each round every live node flips a coin; a node ``v`` whose coin is
*heads* splices out its successor ``u`` when ``u``'s coin is *tails*
(and ``u`` is not the tail anchor).  Heads→tails pairs are vertex
disjoint, so all splices of a round commute; an expected 1/4 of the
live nodes drop out per round, giving O(log n) rounds.  A splice
records ``(v, u, value_of_v_before)`` on a per-round stack; after the
contracted list is scanned serially, the stacks are replayed in
reverse, reconstructing each spliced node's scan as
``out[u] = out[v] ⊕ saved_value`` — the "reconstruction phase, in which
spliced out nodes are reintroduced in reverse order from which they
were removed".

Like the paper's implementation, live nodes are *packed* every round so
the vector work tracks the live count and the algorithm stays work
efficient — and, like the paper measured, the constant factors (coin
flips, two-sided masks, per-round packs, reconstruction traffic) make
it an order of magnitude slower than the sublist algorithm.
"""

from __future__ import annotations


import numpy as np

from ..core.operators import Operator, SUM, get_operator
from ..core.stats import ScanStats
from ..lists.generate import INDEX_DTYPE, LinkedList
from .serial import serial_list_scan

__all__ = ["random_mate_list_scan", "random_mate_list_rank"]

#: Below this many live nodes the contraction switches to the serial scan.
_SERIAL_SWITCH = 4


def random_mate_list_scan(
    lst: LinkedList,
    op: Operator | str = SUM,
    inclusive: bool = False,
    rng: np.random.Generator | int | None = None,
    stats: ScanStats | None = None,
) -> np.ndarray:
    """Exclusive (or inclusive) list scan by random-mate contraction."""
    op = get_operator(op)
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    n = lst.n
    values = lst.values
    out = np.empty_like(values)

    if n <= _SERIAL_SWITCH:
        serial_list_scan(lst, op, inclusive=inclusive, out=out)
        return out

    nxt = lst.next.copy()
    val = values.copy()
    tail = lst.tail
    live = np.arange(n, dtype=INDEX_DTYPE)
    if stats is not None:
        stats.alloc(3 * n)  # nxt copy + val copy + live index vector

    # contraction ------------------------------------------------------
    rounds: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    coin = np.empty(n, dtype=bool)
    while live.size > _SERIAL_SWITCH:
        k = live.size
        coin[live] = gen.random(k) < 0.5
        succ = nxt[live]
        splice = (
            coin[live]
            & ~coin[succ]
            & (succ != live)  # I am not the tail myself
            & (succ != tail)  # never splice out the anchor
        )
        if stats is not None:
            stats.add_round()
            stats.add_work(k, phase="contract")
            stats.add_gather(2 * k)
        if np.any(splice):
            v = live[splice]
            u = succ[splice]
            rounds.append((v, u, val[v].copy()))
            val[v] = op.combine(val[v], val[u])
            nxt[v] = nxt[u]
            # pack: drop the spliced-out nodes from the live vector
            dead = np.zeros(n, dtype=bool)
            dead[u] = True
            live = live[~dead[live]]
            if stats is not None:
                stats.add_pack()
                stats.add_scatter(3 * v.size + live.size)
                stats.alloc(3 * v.size)  # reconstruction stack entries

    # serial base case on the contracted chain -------------------------
    contracted = LinkedList(nxt, lst.head, val)
    _serial_scan_live(contracted, live, op, out)
    if stats is not None:
        stats.add_work(live.size, phase="base")

    # reconstruction in reverse round order ----------------------------
    for v, u, val_before in reversed(rounds):
        out[u] = op.combine(out[v], val_before)
        if stats is not None:
            stats.add_round()
            stats.add_work(v.size, phase="reconstruct")
            stats.add_gather(v.size)
            stats.add_scatter(v.size)
    if stats is not None:
        stats.free(3 * n)

    if inclusive:
        out = op.combine(out, values)
    return out


def _serial_scan_live(
    contracted: LinkedList, live: np.ndarray, op: Operator, out: np.ndarray
) -> None:
    """Serial exclusive scan over the contracted chain (live nodes only)."""
    acc = op.identity_for(contracted.values.dtype)
    cur = contracted.head
    nxt = contracted.next
    val = contracted.values
    for _ in range(live.size):
        out[cur] = acc
        acc = op.combine(acc, val[cur])
        succ = int(nxt[cur])
        if succ == cur:
            break
        cur = succ


def random_mate_list_rank(
    lst: LinkedList,
    rng: np.random.Generator | int | None = None,
    stats: ScanStats | None = None,
) -> np.ndarray:
    """List ranking via random mate (scan of ones under ``+``)."""
    ones = LinkedList(lst.next, lst.head, np.ones(lst.n, dtype=np.int64))
    return random_mate_list_scan(ones, SUM, rng=rng, stats=stats)
