"""Comparison algorithms from the paper's Section 2."""

from .anderson_miller import anderson_miller_list_rank, anderson_miller_list_scan
from .random_mate import random_mate_list_rank, random_mate_list_scan
from .serial import serial_list_rank, serial_list_scan, serial_scan_segment
from .wyllie import (
    build_predecessors,
    wyllie_list_rank,
    wyllie_list_scan,
    wyllie_prefix,
    wyllie_rounds,
    wyllie_suffix,
)
