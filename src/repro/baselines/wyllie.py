"""Wyllie's pointer-jumping algorithm (paper Section 2.2).

"The first parallel algorithm for list ranking is due to Wyllie.  …
Each processor, in parallel, modifies its next pointer to point to its
successor's successor."  After ⌈log₂ n⌉ rounds every pointer has
converged and the accumulated values give the scan.  The algorithm is
simple and fully vectorizable but *work-inefficient*: it performs
Θ(n log n) element operations, which is exactly the sawtooth
degradation measured in the paper's Figures 1 and 3.

Two dataflow variants are provided:

* :func:`wyllie_suffix` — the paper's form: jump along ``next`` toward
  the tail, accumulating inclusive *suffix* sums.  Converting a suffix
  sum to the exclusive prefix scan requires the operator to be an
  invertible (group) operation, which holds for the paper's use cases
  (ranking = +).
* :func:`wyllie_prefix` — jumps along *predecessor* pointers toward the
  head, accumulating inclusive *prefix* sums directly; works for any
  associative operator (including non-commutative ``AFFINE``) at the
  cost of one extra scatter to build the predecessor array.

Both variants use the paper's self-loop-with-identity trick so the
round loop contains no conditionals: the terminal node's working value
is the operator identity, so the repeated self-combinations at the
clamped end contribute nothing.  Reads and writes are double-buffered
("on each call to the inner loop we switch back and forth between
arrays we read from and arrays we write to").
"""

from __future__ import annotations

import math

import numpy as np

from ..core.operators import Operator, SUM, get_operator
from ..core.stats import ScanStats
from ..lists.generate import INDEX_DTYPE, LinkedList

__all__ = [
    "wyllie_list_scan",
    "wyllie_list_rank",
    "wyllie_prefix",
    "wyllie_suffix",
    "wyllie_rounds",
    "build_predecessors",
]


def wyllie_rounds(n: int) -> int:
    """Number of pointer-jumping rounds needed for an ``n``-node list.

    Each round doubles the accumulated window.  The deepest node needs
    a window of ``n − 1`` proper values (the terminal node holds the
    identity), so ⌈log₂(n−1)⌉ rounds suffice — the paper's
    ``⌈log n − 1⌉`` step function whose jumps cause the sawtooth in
    Figures 1 and 3.
    """
    if n <= 2:
        return 0
    return int(math.ceil(math.log2(n - 1)))


def build_predecessors(lst: LinkedList) -> np.ndarray:
    """Predecessor array: ``pred[next[i]] = i``; the head self-loops."""
    n = lst.n
    idx = np.arange(n, dtype=INDEX_DTYPE)
    pred = np.empty(n, dtype=INDEX_DTYPE)
    pred[lst.head] = lst.head
    proper = lst.next != idx
    pred[lst.next[proper]] = idx[proper]
    return pred


def wyllie_prefix(
    lst: LinkedList,
    op: Operator | str = SUM,
    inclusive: bool = False,
    stats: ScanStats | None = None,
) -> np.ndarray:
    """Pointer jumping along predecessor links — valid for any operator.

    Maintains the invariant that after ``k`` rounds, node ``v``'s
    working value is the ⊕-sum of the (up to) ``2^k`` node values
    ending at ``v``, with the head's working value pinned at the
    identity so window clamping at the head is harmless.
    """
    op = get_operator(op)
    n = lst.n
    values = lst.values
    pred0 = build_predecessors(lst)

    work = values.copy()
    ident = op.identity_for(values.dtype)
    work[lst.head] = ident
    ptr = pred0.copy()
    rounds = wyllie_rounds(n)
    if stats is not None:
        stats.alloc(3 * n)  # pred + working value + pointer double-buffer
    for _ in range(rounds):
        # double-buffered: read old work/ptr, write fresh arrays
        work = op.combine(work[ptr], work)
        ptr = ptr[ptr]
        if stats is not None:
            stats.add_round()
            stats.add_work(n, phase="wyllie")
            stats.add_gather(3 * n)  # work[ptr] (value_width-ignored) + ptr[ptr]
    # fold the head's true value back in
    head_val = values[lst.head]
    if inclusive:
        out = op.combine(head_val, work)
    else:
        out = np.empty_like(values)
        out[...] = op.combine(head_val, work[pred0])
        out[lst.head] = ident
    if stats is not None:
        stats.free(3 * n)
    return out


def wyllie_suffix(
    lst: LinkedList,
    op: Operator | str = SUM,
    inclusive: bool = False,
    stats: ScanStats | None = None,
) -> np.ndarray:
    """The paper's variant: jump along ``next``, accumulate suffix sums,
    then convert to a prefix scan via the operator's inverse.

    Requires ``op.invertible`` (e.g. ``SUM``, ``XOR``).  The working
    tail value is the identity, so ``work[v]`` converges to the ⊕-sum
    of values from ``v`` through the *penultimate* node; the exclusive
    prefix is then ``total ⊖ work[v]`` where ``total = work[head]``.
    """
    op = get_operator(op)
    if not op.invertible:
        raise ValueError(
            f"wyllie_suffix requires an invertible operator; {op.name} is not. "
            "Use wyllie_prefix instead."
        )
    n = lst.n
    values = lst.values
    tail = lst.tail
    ident = op.identity_for(values.dtype)

    work = values.copy()
    work[tail] = ident
    ptr = lst.next.copy()
    rounds = wyllie_rounds(n)
    if stats is not None:
        stats.alloc(2 * n)
    for _ in range(rounds):
        work = op.combine(work, work[ptr])
        ptr = ptr[ptr]
        if stats is not None:
            stats.add_round()
            stats.add_work(n, phase="wyllie")
            stats.add_gather(2 * n)
    # work[v] = v ⊕ … ⊕ (last-1); exclusive prefix = total ⊖ suffix
    total = work[lst.head]
    out = op.remove(total, work)
    if inclusive:
        out = op.combine(out, values)
    if stats is not None:
        stats.free(2 * n)
    return out


def wyllie_list_scan(
    lst: LinkedList,
    op: Operator | str = SUM,
    inclusive: bool = False,
    variant: str = "auto",
    stats: ScanStats | None = None,
) -> np.ndarray:
    """List scan via Wyllie pointer jumping.

    ``variant`` selects the dataflow: ``"suffix"`` (the paper's,
    invertible operators only), ``"prefix"`` (any operator), or
    ``"auto"`` (suffix when the operator allows, else prefix).
    """
    op = get_operator(op)
    if variant == "auto":
        variant = "suffix" if op.invertible else "prefix"
    if variant == "suffix":
        return wyllie_suffix(lst, op, inclusive=inclusive, stats=stats)
    if variant == "prefix":
        return wyllie_prefix(lst, op, inclusive=inclusive, stats=stats)
    raise ValueError(f"unknown variant {variant!r}; expected suffix/prefix/auto")


def wyllie_list_rank(
    lst: LinkedList, stats: ScanStats | None = None
) -> np.ndarray:
    """List ranking via Wyllie: scan of all-ones values under ``+``."""
    ones = LinkedList(lst.next, lst.head, np.ones(lst.n, dtype=np.int64))
    return wyllie_suffix(ones, SUM, inclusive=False, stats=stats)
