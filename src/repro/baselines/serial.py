"""The serial list-scan algorithm (paper Section 2.1).

"The serial list scan simply walks down the list saving the accumulated
values of the previous nodes until it reaches the end of the list."  On
the Cray C-90 it costs 8.4 clock cycles (≈35 ns — the paper reports the
loop at 34 clocks / 1960 ns per 58 elements… the figure caption gives
the per-element numbers) per element; here it is the correctness oracle
for every parallel algorithm and the Phase-2 base case of the sublist
algorithm.

Semantics: an *exclusive* prescan.  ``out[head]`` is the operator
identity and ``out[v] = values[head] ⊕ … ⊕ values[pred(v)]`` for every
other node ``v`` — including the tail, which the paper's do/while
pseudocode happens to skip; we define the primitive to cover all ``n``
nodes (the paper's Phase 3 likewise writes every node).
"""

from __future__ import annotations


import numpy as np

from ..core.operators import Operator, SUM, get_operator
from ..lists.generate import LinkedList

__all__ = [
    "serial_list_scan",
    "serial_list_rank",
    "serial_scan_segment",
]


def serial_list_scan(
    lst: LinkedList,
    op: Operator | str = SUM,
    inclusive: bool = False,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Scan a linked list by direct traversal (the reference algorithm).

    Parameters
    ----------
    lst:
        The list to scan.  Not modified.
    op:
        Binary associative operator (or its name).
    inclusive:
        If True, ``out[v]`` includes ``values[v]`` itself.
    out:
        Optional preallocated result array.

    Returns
    -------
    numpy.ndarray
        Scan values indexed by node (same shape as ``lst.values``).
    """
    op = get_operator(op)
    values = lst.values
    nxt = lst.next
    n = lst.n
    if out is None:
        out = np.empty_like(values)
    acc = op.identity_for(values.dtype)
    cur = lst.head
    for _ in range(n):
        if inclusive:
            acc = op.combine(acc, values[cur])
            out[cur] = acc
        else:
            out[cur] = acc
            acc = op.combine(acc, values[cur])
        succ = int(nxt[cur])
        if succ == cur:
            break
        cur = succ
    return out


def serial_list_rank(lst: LinkedList, out: np.ndarray | None = None) -> np.ndarray:
    """Rank each node: its distance in links from the head (head = 0).

    Implemented as a direct traversal rather than a scan of ones, so it
    is an *independent* oracle for the rank = scan(+, 1) identity test.
    """
    n = lst.n
    if out is None:
        out = np.empty(n, dtype=np.int64)
    cur = lst.head
    nxt = lst.next
    for k in range(n):
        out[cur] = k
        succ = int(nxt[cur])
        if succ == cur:
            break
        cur = succ
    return out


def serial_scan_segment(
    nxt: np.ndarray,
    values: np.ndarray,
    start: int,
    op: Operator,
    carry_in,
    out: np.ndarray | None = None,
) -> object:
    """Scan a single sublist starting at ``start`` until its self-loop tail.

    Writes exclusive scan values (seeded with ``carry_in``) into ``out``
    when given, and returns the carry after the segment — the sum of
    ``carry_in`` and every value on the segment.  This is the scalar
    building block used by the test oracle for Phase 1 / Phase 3
    invariants of the sublist algorithm.
    """
    op = get_operator(op)
    acc = carry_in
    cur = int(start)
    for _ in range(nxt.shape[0]):
        if out is not None:
            out[cur] = acc
        acc = op.combine(acc, values[cur])
        succ = int(nxt[cur])
        if succ == cur:
            return acc
        cur = succ
    raise ValueError("segment did not terminate within the node count; "
                     "the successor array appears corrupted")
