"""Anderson/Miller randomized list ranking (paper Section 2.3).

Anderson and Miller modified random mate "so that it avoids load
balancing (packing).  Processors are assigned the work of log n nodes.
At each round a processor attempts to remove one node in its queue …
in order to splice out its own node, the processor needs reverse link
pointers so that it can get the previous node to jump over the
processor's node.  If a processor is able to splice out its node in one
round, in the next round it attempts to splice out the next node in its
queue.  In this simple way processors remain busy without load
balancing being required."

This implementation follows the paper's own experimental choice: "In
our implementation of this algorithm we did not apply Wyllie's
algorithm.  We simply stopped processors from attempting to splice out
nodes once they had completed their block of nodes."  Since every node
other than the head and tail belongs to some processor's block, the
fully contracted list is the two-node chain head→tail, after which the
recorded splices are replayed in reverse to reconstruct all scan
values.

Contention rule: a processor may splice its current node ``v`` only
when its coin is heads *and* the predecessor of ``v`` is not itself
being spliced this round (another processor's heads-up current node).
This makes each round's splice set vertex-disjoint along the chain, so
the doubly-linked updates commute.  "Again only a small constant
proportion (≥ 1/4) of the processors remove nodes on each round."
"""

from __future__ import annotations

import math

import numpy as np

from ..core.operators import Operator, SUM, get_operator
from ..core.stats import ScanStats
from ..lists.generate import INDEX_DTYPE, LinkedList
from .serial import serial_list_scan
from .wyllie import build_predecessors

__all__ = ["anderson_miller_list_scan", "anderson_miller_list_rank"]

_SERIAL_SWITCH = 4


def anderson_miller_list_scan(
    lst: LinkedList,
    op: Operator | str = SUM,
    inclusive: bool = False,
    block_size: int | None = None,
    rng: np.random.Generator | int | None = None,
    stats: ScanStats | None = None,
) -> np.ndarray:
    """Exclusive (or inclusive) list scan by queued splice-out.

    ``block_size`` defaults to ⌈log₂ n⌉ nodes per virtual processor.
    """
    op = get_operator(op)
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    n = lst.n
    values = lst.values
    out = np.empty_like(values)
    if n <= _SERIAL_SWITCH:
        serial_list_scan(lst, op, inclusive=inclusive, out=out)
        return out

    if block_size is None:
        block_size = max(1, int(math.ceil(math.log2(n))))
    if block_size < 1:
        raise ValueError("block_size must be >= 1")

    nxt = lst.next.copy()
    prev = build_predecessors(lst)
    val = values.copy()
    head, tail = lst.head, lst.tail
    if stats is not None:
        stats.alloc(5 * n)  # next/prev/value copies + queue cursors + flags

    # processor queues: processor j owns nodes [j·b, min((j+1)·b, n)).
    cursor = np.arange(0, n, block_size, dtype=INDEX_DTYPE)  # current node
    limit = np.minimum(cursor + block_size, n)
    # skip queue entries that can never be spliced (head / tail anchors)
    cursor, limit = _advance(cursor, limit, head, tail)
    active = cursor < limit
    cursor, limit = cursor[active], limit[active]

    rounds: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    heads_up = np.zeros(n, dtype=bool)  # is node a current node with coin=H?
    while cursor.size:
        k = cursor.size
        coin = gen.random(k) < 0.5
        heads_up[cursor] = coin
        pred = prev[cursor]
        blocked = heads_up[pred]
        splice = coin & ~blocked
        heads_up[cursor] = False  # reset for the next round
        if stats is not None:
            stats.add_round()
            stats.add_work(k, phase="contract")
            stats.add_gather(2 * k)
        if np.any(splice):
            v = cursor[splice]
            p = prev[v]
            w = nxt[v]
            rounds.append((p, v, val[p].copy()))
            val[p] = op.combine(val[p], val[v])
            nxt[p] = w
            prev[w] = p
            if stats is not None:
                stats.add_scatter(4 * v.size)
                stats.alloc(3 * v.size)
            # successful processors move to the next node of their queue
            cursor = cursor.copy()
            cursor[splice] += 1
            cursor, limit = _advance(cursor, limit, head, tail)
            active = cursor < limit
            cursor, limit = cursor[active], limit[active]

    # fully contracted: only head → tail remain ------------------------
    ident = op.identity_for(values.dtype)
    out[head] = ident
    out[tail] = op.combine(ident, val[head])

    # reconstruction in reverse round order ----------------------------
    for p, v, val_before in reversed(rounds):
        out[v] = op.combine(out[p], val_before)
        if stats is not None:
            stats.add_round()
            stats.add_work(p.size, phase="reconstruct")
            stats.add_gather(p.size)
            stats.add_scatter(p.size)
    if stats is not None:
        stats.free(5 * n)

    if inclusive:
        out = op.combine(out, values)
    return out


def _advance(
    cursor: np.ndarray, limit: np.ndarray, head: int, tail: int
) -> tuple[np.ndarray, np.ndarray]:
    """Skip queue positions holding the head or tail anchor (those nodes
    are never spliced; at most two skips ever happen in total)."""
    for _ in range(2):
        at_anchor = (cursor < limit) & ((cursor == head) | (cursor == tail))
        if not np.any(at_anchor):
            break
        cursor = cursor.copy()
        cursor[at_anchor] += 1
    return cursor, limit


def anderson_miller_list_rank(
    lst: LinkedList,
    rng: np.random.Generator | int | None = None,
    stats: ScanStats | None = None,
) -> np.ndarray:
    """List ranking via Anderson/Miller (scan of ones under ``+``)."""
    ones = LinkedList(lst.next, lst.head, np.ones(lst.n, dtype=np.int64))
    return anderson_miller_list_scan(ones, SUM, rng=rng, stats=stats)
