"""Benchmark / load client for the serving front-end.

``run_bench`` opens ``clients`` concurrent connections to a running
:class:`~repro.serve.server.ScanServer`, drives each with a stream of
deterministic scan requests (mixed list sizes, optional poison
messages exercising the structured error path), honors ``retry_after``
hints on shed responses, and verifies every result bit-for-bit against
the reference :func:`~repro.core.list_scan.list_scan`.

The report is a JSON-safe dict built around the same
:class:`~repro.engine.histogram.LatencyHistogram` the engine uses, so
``repro-c90 bench-client`` can print latency p50/p95/p99 in exactly
the shape the server's ``/stats`` endpoint reports — the CI smoke job
uploads this as its latency artifact.

Used by ``repro-c90 bench-client``, the serve test suite, and the CI
``serve-smoke`` job.
"""

from __future__ import annotations

import asyncio
from typing import Any

import numpy as np

from ..core.list_scan import list_scan
from ..engine.histogram import LatencyHistogram
from ..lists.generate import LinkedList, random_list  # noqa: F401 (LinkedList in annotations)
from .protocol import FrameDecoder, encode_frame

__all__ = ["run_bench", "bench_client"]


class _Workload:
    """Deterministic request stream for one client."""

    def __init__(
        self,
        name: str,
        requests: int,
        sizes: tuple[int, ...],
        poison_every: int,
        op: str,
        algorithm: str,
        seed: int,
    ):
        self.name = name
        self.requests = requests
        self.sizes = sizes
        self.poison_every = poison_every
        self.op = op
        self.algorithm = algorithm
        self.rng = np.random.default_rng(seed)

    def make(self, index: int) -> tuple[dict[str, Any], LinkedList | None]:
        """Build request ``index``: the wire message + reference list.

        Every ``poison_every``-th request is structurally broken (every
        node its own successor — a cycle that cannot cover the list),
        which sails through wire validation and comes back as the
        engine's structured ``bad-structure`` error; reference is None.
        """
        n = int(self.sizes[index % len(self.sizes)])
        if self.poison_every and (index + 1) % self.poison_every == 0:
            message = {
                "id": index,
                "type": "scan",
                "client": self.name,
                "next": [0] * max(2, n),
                "head": 0,
                "op": self.op,
            }
            return message, None
        values = self.rng.integers(-100, 100, size=n)
        lst = random_list(n, rng=self.rng, values=values)
        message = {
            "id": index,
            "type": "scan",
            "client": self.name,
            "next": lst.next.tolist(),
            "head": int(lst.head),
            "values": values.tolist(),
            "op": self.op,
            "inclusive": False,
            "algorithm": self.algorithm,
        }
        return message, lst


async def bench_client(
    host: str,
    port: int,
    workload: _Workload,
    histogram: LatencyHistogram,
    counters: dict[str, int],
    max_outstanding: int = 32,
    max_retries: int = 20,
    verify: bool = True,
) -> None:
    """Drive one connection through its workload (framed dialect).

    Keeps up to ``max_outstanding`` requests in flight; a shed response
    (``rate-limited`` / ``overloaded``) sleeps the advertised
    ``retry_after`` and resends, up to ``max_retries`` per request.
    Mutates the shared ``histogram``/``counters`` (single event loop —
    no locking needed).
    """
    reader, writer = await asyncio.open_connection(host, port)
    decoder = FrameDecoder()
    loop = asyncio.get_running_loop()
    outstanding: dict[int, tuple[LinkedList | None, float, int]] = {}
    next_index = 0
    done = 0
    try:
        while done < workload.requests:
            while (
                next_index < workload.requests
                and len(outstanding) < max_outstanding
            ):
                message, reference = workload.make(next_index)
                outstanding[next_index] = (reference, loop.time(), 0)
                writer.write(encode_frame(message))
                counters["sent"] += 1
                next_index += 1
            await writer.drain()
            data = await reader.read(1 << 16)
            if not data:
                counters["disconnects"] += 1
                break
            for response in decoder.feed(data):
                done += await _settle(
                    response,
                    workload,
                    outstanding,
                    histogram,
                    counters,
                    writer,
                    loop,
                    max_retries,
                    verify,
                )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _settle(
    response: dict[str, Any],
    workload: _Workload,
    outstanding: dict[int, tuple[LinkedList | None, float, int]],
    histogram: LatencyHistogram,
    counters: dict[str, int],
    writer: asyncio.StreamWriter,
    loop: asyncio.AbstractEventLoop,
    max_retries: int,
    verify: bool,
) -> int:
    """Account one response; returns 1 when its request is finished."""
    index = response.get("id")
    entry = outstanding.get(index)  # type: ignore[arg-type]
    if entry is None:
        counters["unmatched"] += 1
        return 0
    reference, sent_at, retries = entry
    if response.get("ok"):
        del outstanding[index]  # type: ignore[arg-type]
        histogram.observe(loop.time() - sent_at)
        counters["ok"] += 1
        if reference is None:
            counters["poison_accepted"] += 1  # poison must NOT succeed
        elif verify:
            expected = list_scan(reference, op=workload.op, inclusive=False)
            if response.get("result") == expected.tolist():
                counters["verified"] += 1
            else:
                counters["mismatched"] += 1
        return 1
    error = response.get("error") or {}
    code = error.get("code", "")
    if code in ("rate-limited", "overloaded") and retries < max_retries:
        counters["shed"] += 1
        outstanding[index] = (reference, sent_at, retries + 1)  # type: ignore[index]
        retry_after = response.get("retry_after")
        await asyncio.sleep(
            float(retry_after) if retry_after is not None else 0.005
        )
        message, _ = workload.make(int(index))  # type: ignore[arg-type]
        writer.write(encode_frame(message))
        counters["sent"] += 1
        return 0
    del outstanding[index]  # type: ignore[arg-type]
    histogram.observe(loop.time() - sent_at)
    counters["errors"] += 1
    if reference is None and code:
        counters["poison_rejected"] += 1  # structured error: the good path
    if code in ("rate-limited", "overloaded"):
        counters["gave_up"] += 1
    return 1


async def _request_stats(host: str, port: int) -> dict[str, Any]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(encode_frame({"id": "stats", "type": "stats"}))
        await writer.drain()
        decoder = FrameDecoder()
        while True:
            data = await reader.read(1 << 16)
            if not data:
                raise ConnectionError("server closed before answering stats")
            messages = decoder.feed(data)
            if messages:
                return messages[0]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _request_shutdown(host: str, port: int) -> dict[str, Any]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(encode_frame({"id": "shutdown", "type": "shutdown"}))
        await writer.drain()
        decoder = FrameDecoder()
        data = await reader.read(1 << 16)
        messages = decoder.feed(data) if data else []
        return messages[0] if messages else {"ok": False}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_bench(
    host: str,
    port: int,
    clients: int = 4,
    requests: int = 100,
    sizes: tuple[int, ...] = (16, 64, 256),
    poison_every: int = 0,
    op: str = "sum",
    algorithm: str = "auto",
    max_outstanding: int = 32,
    verify: bool = True,
    seed: int = 0,
    fetch_stats: bool = False,
    shutdown: bool = False,
) -> dict[str, Any]:
    """Run the full benchmark; returns the JSON-safe report.

    ``clients`` connections run concurrently, each sending ``requests``
    messages.  With ``poison_every=k``, every ``k``-th request per
    client is structurally broken and must come back as a structured
    error.  ``shutdown`` sends the admin shutdown message afterwards
    (the server must have been started with ``allow_shutdown``).
    """
    histogram = LatencyHistogram()
    counters: dict[str, int] = {
        "sent": 0,
        "ok": 0,
        "errors": 0,
        "shed": 0,
        "gave_up": 0,
        "verified": 0,
        "mismatched": 0,
        "poison_rejected": 0,
        "poison_accepted": 0,
        "unmatched": 0,
        "disconnects": 0,
    }
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    await asyncio.gather(
        *(
            bench_client(
                host,
                port,
                _Workload(
                    name=f"bench-{i}",
                    requests=requests,
                    sizes=sizes,
                    poison_every=poison_every,
                    op=op,
                    algorithm=algorithm,
                    seed=seed * 1_000_003 + i,
                ),
                histogram,
                counters,
                max_outstanding=max_outstanding,
                verify=verify,
            )
            for i in range(clients)
        )
    )
    elapsed = loop.time() - t0
    report: dict[str, Any] = {
        "clients": clients,
        "requests_per_client": requests,
        "elapsed": round(elapsed, 6),
        "throughput_rps": round((counters["ok"] + counters["errors"]) / elapsed, 2)
        if elapsed > 0
        else None,
        "counters": counters,
        "latency": histogram.snapshot(),
    }
    if fetch_stats:
        reply = await _request_stats(host, port)
        report["server_stats"] = reply.get("stats")
    if shutdown:
        reply = await _request_shutdown(host, port)
        report["shutdown"] = bool(reply.get("ok"))
    return report
