"""Per-client fairness: token buckets and in-flight caps.

A shared batching engine has a classic failure mode: one greedy client
fills the submission queue and every other client's latency collapses
— the request-level analogue of the load imbalance the paper's
Section 3 splitter strategy exists to prevent.  The serving layer
therefore polices admission per client *before* a request reaches the
queue:

* a **token bucket** bounds each client's sustained request rate while
  allowing bursts (capacity ``burst``, refill ``rate`` tokens/second);
* an **in-flight cap** bounds how many of one client's requests may be
  admitted-but-unanswered at once, so a client cannot monopolize the
  batch window even while under its rate.

Rejections are *shed*, not queued: the caller turns them into
structured ``rate-limited`` responses with a ``retry_after`` hint
(time until the bucket refills), so a well-behaved client can pace
itself without guessing.

Like the batch window, this module is pure decision logic — every
method takes ``now`` as an argument; no wall clock is read here
(``injectable-clock`` holds for the serving layer).
"""

from __future__ import annotations

__all__ = ["TokenBucket", "ClientGovernor"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Starts full.  ``try_take`` either takes one token (returns 0.0) or
    returns the seconds until one will be available — the caller's
    ``retry_after`` hint.
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float):
        if rate <= 0.0:
            raise ValueError("rate must be positive")
        if burst < 1.0:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last: float | None = None

    def _refill(self, now: float) -> None:
        if self._last is not None and now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now

    def try_take(self, now: float) -> float:
        """Take one token at ``now``; 0.0 on success, else seconds to wait."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate

    @property
    def full(self) -> bool:
        return self.tokens >= self.burst


class _ClientState:
    __slots__ = ("bucket", "inflight")

    def __init__(self, bucket: TokenBucket | None):
        self.bucket = bucket
        self.inflight = 0


class ClientGovernor:
    """Admission policy across clients: buckets + in-flight caps.

    Parameters
    ----------
    rate / burst:
        Token-bucket parameters applied to every client
        (``rate=None`` disables rate limiting).
    max_inflight:
        Per-client cap on admitted-but-unanswered requests
        (``None`` = unlimited).

    ``admit`` returns ``None`` on success (the caller must later call
    ``settle`` for the same client exactly once) or a
    ``(code, retry_after)`` pair naming the structured rejection —
    ``retry_after`` is ``None`` when no refill estimate exists (the
    in-flight cap clears when a response leaves, which the bucket
    cannot predict).
    """

    def __init__(
        self,
        rate: float | None = None,
        burst: float = 32.0,
        max_inflight: int | None = None,
    ):
        if rate is not None and rate <= 0.0:
            raise ValueError("rate must be positive (or None)")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 (or None)")
        self.rate = rate
        self.burst = burst
        self.max_inflight = max_inflight
        self._clients: dict[object, _ClientState] = {}
        self.admitted = 0
        self.rejected = 0

    def _state(self, client: object) -> _ClientState:
        state = self._clients.get(client)
        if state is None:
            bucket = (
                TokenBucket(self.rate, self.burst) if self.rate is not None else None
            )
            state = self._clients[client] = _ClientState(bucket)
        return state

    def admit(self, client: object, now: float) -> tuple[str, float | None] | None:
        """Admit one request from ``client`` at ``now``, or reject it."""
        state = self._state(client)
        if (
            self.max_inflight is not None
            and state.inflight >= self.max_inflight
        ):
            self.rejected += 1
            return ("rate-limited", None)
        if state.bucket is not None:
            wait = state.bucket.try_take(now)
            if wait > 0.0:
                self.rejected += 1
                return ("rate-limited", wait)
        state.inflight += 1
        self.admitted += 1
        return None

    def settle(self, client: object) -> None:
        """A previously admitted request was answered (or failed)."""
        state = self._clients.get(client)
        if state is not None and state.inflight > 0:
            state.inflight -= 1

    def forget(self, client: object) -> None:
        """Drop a departed client's idle state (keeps the map bounded)."""
        state = self._clients.get(client)
        if state is not None and state.inflight == 0:
            del self._clients[client]

    def inflight(self, client: object) -> int:
        state = self._clients.get(client)
        return state.inflight if state is not None else 0

    def snapshot(self) -> dict[str, object]:
        """JSON-safe gauges for the ``/stats`` endpoint."""
        return {
            "clients": len(self._clients),
            "admitted": self.admitted,
            "rejected": self.rejected,
            "inflight": sum(s.inflight for s in self._clients.values()),
            "rate": self.rate,
            "burst": self.burst if self.rate is not None else None,
            "max_inflight": self.max_inflight,
        }
