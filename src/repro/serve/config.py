"""Serving-layer configuration.

One frozen dataclass carries every knob of the front-end so the CLI,
the tests and embedded uses construct servers the same way.  The
defaults are tuned for a loopback demo: a 50 ms p95 SLO with a batch
window adapting between 0.5 ms and half the SLO.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Configuration for :class:`repro.serve.server.ScanServer`.

    Batching
    --------
    flush_size:
        Flush as soon as this many requests are pending (the *size*
        trigger).  ``1`` disables batching entirely — the baseline the
        adaptive window is benchmarked against.
    max_batch:
        Hard cap on requests drained into one ``run_batch`` call.
    slo_p95 / min_window / max_window / initial_window:
        The adaptive *deadline* trigger (see
        :class:`repro.serve.window.AdaptiveWindow`): the oldest queued
        request never waits longer than the current window, and the
        window is retuned after every flush so observed p95 latency
        tracks ``slo_p95``.  ``initial_window=None`` starts at
        ``max_window`` (laziest legal window, adapts down under load).

    Fairness
    --------
    rate / burst:
        Per-client token bucket: sustained requests/second and burst
        allowance.  ``rate=None`` disables rate limiting.
    max_inflight:
        Per-client cap on admitted-but-unanswered requests
        (``None`` = unlimited).

    Shedding
    --------
    Admission never blocks: when the engine's submission queue is full
    the request is rejected with a structured ``overloaded`` error and
    a ``retry_after`` hint instead of stalling the connection.

    Lifecycle
    ---------
    allow_shutdown:
        Honor the ``{"type": "shutdown"}`` admin message (used by the
        CI smoke job to stop the loopback server cleanly).  Off by
        default: a remote peer must not be able to stop the server.
    stats_interval:
        Seconds between stats-snapshot lines on stderr (0 disables).
    """

    host: str = "127.0.0.1"
    port: int = 8090
    flush_size: int = 64
    max_batch: int = 1024
    slo_p95: float = 0.050
    min_window: float = 0.0005
    max_window: float = 0.025
    initial_window: float | None = None
    rate: float | None = None
    burst: float = 32.0
    max_inflight: int | None = 256
    allow_shutdown: bool = False
    stats_interval: float = 0.0
    max_frame_bytes: int = 64 << 20

    def __post_init__(self) -> None:
        if self.flush_size < 1:
            raise ValueError("flush_size must be >= 1")
        if self.max_batch < self.flush_size:
            raise ValueError("max_batch must be >= flush_size")
        if self.slo_p95 <= 0.0:
            raise ValueError("slo_p95 must be positive")
        if not 0.0 < self.min_window <= self.max_window:
            raise ValueError("need 0 < min_window <= max_window")
        if self.rate is not None and self.rate <= 0.0:
            raise ValueError("rate must be positive (or None)")
        if self.burst < 1.0:
            raise ValueError("burst must be >= 1")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 (or None)")
        if self.max_frame_bytes < 1024:
            raise ValueError("max_frame_bytes must be >= 1024")
