"""SLO-aware adaptive batch window.

The paper's economics — throughput comes from batching many small
walks into one full-width vector pass — turn into a latency/throughput
dial at the serving layer: the longer the server waits before flushing
the submission queue, the larger (and cheaper per request) the fused
batch, but every queued request pays the wait.  This module owns that
dial.

A flush fires on whichever trigger arrives first:

* **size** — ``flush_size`` requests are pending (the batch is already
  worth executing; waiting longer only adds latency), or
* **deadline** — the *oldest* queued request has waited ``window``
  seconds (bounding the latency any request can pay to batching).

The window is retuned online (AIMD, the classic congestion-control
shape) from the observed admission→response latencies: when the recent
p95 overshoots the SLO the window halves (latency is compounding —
back off fast); when it sits comfortably under the SLO the window
grows by a small factor (drift toward bigger, cheaper batches).  The
controller steers on the same histogramed latencies the engine's
``queue_wait``/``execute`` spans record, so the policy is validated by
the exact telemetry the trace subsystem already exposes.

This class is pure decision logic: every method takes the current time
as an argument and nothing here reads a wall clock, so tests drive it
with a counting clock and the ``injectable-clock`` lint rule holds for
the whole serving layer.
"""

from __future__ import annotations

from collections import deque

__all__ = ["AdaptiveWindow"]


class AdaptiveWindow:
    """Flush-on-size-or-deadline policy with an AIMD-tuned deadline.

    Parameters
    ----------
    slo_p95:
        Target 95th-percentile admission→response latency, seconds.
    min_window / max_window:
        Clamp for the adaptive deadline.
    initial:
        Starting window (``None`` → ``max_window``: start lazy, adapt
        down when the SLO is threatened).
    flush_size:
        Size trigger; ``1`` makes every request flush immediately
        (the no-batching baseline).
    sample_size:
        Sliding window of recent latencies the controller steers on.
    shrink / grow:
        Multiplicative decrease on SLO overshoot, multiplicative
        increase inside the headroom band.
    headroom:
        Fraction of the SLO under which the window may grow (between
        ``headroom * slo_p95`` and ``slo_p95`` the window holds).
    """

    def __init__(
        self,
        slo_p95: float = 0.050,
        min_window: float = 0.0005,
        max_window: float = 0.025,
        initial: float | None = None,
        flush_size: int = 64,
        sample_size: int = 256,
        shrink: float = 0.5,
        grow: float = 1.25,
        headroom: float = 0.7,
    ) -> None:
        if slo_p95 <= 0.0:
            raise ValueError("slo_p95 must be positive")
        if not 0.0 < min_window <= max_window:
            raise ValueError("need 0 < min_window <= max_window")
        if flush_size < 1:
            raise ValueError("flush_size must be >= 1")
        if not 0.0 < shrink < 1.0:
            raise ValueError("shrink must be in (0, 1)")
        if grow <= 1.0:
            raise ValueError("grow must be > 1")
        if not 0.0 < headroom < 1.0:
            raise ValueError("headroom must be in (0, 1)")
        self.slo_p95 = slo_p95
        self.min_window = min_window
        self.max_window = max_window
        self.flush_size = flush_size
        self.shrink = shrink
        self.grow = grow
        self.headroom = headroom
        self.window = max_window if initial is None else min(
            max(initial, min_window), max_window
        )
        self._samples: deque[float] = deque(maxlen=sample_size)
        self.grows = 0
        self.shrinks = 0
        self.flushes = 0

    # ------------------------------------------------------------------
    # flush triggers
    # ------------------------------------------------------------------

    def deadline(self, oldest_admitted_at: float) -> float:
        """Absolute time by which the oldest request forces a flush."""
        return oldest_admitted_at + self.window

    def should_flush(
        self, now: float, pending: int, oldest_admitted_at: float | None
    ) -> bool:
        """True when either the size or the deadline trigger has fired."""
        if pending <= 0 or oldest_admitted_at is None:
            return False
        if pending >= self.flush_size:
            return True
        return now >= self.deadline(oldest_admitted_at)

    # ------------------------------------------------------------------
    # online tuning
    # ------------------------------------------------------------------

    def note_latency(self, seconds: float) -> None:
        """Feed one observed admission→response latency."""
        self._samples.append(max(0.0, seconds))

    def observed_p95(self) -> float | None:
        """p95 of the recent latency samples (``None`` when empty)."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(0, -(-95 * len(ordered) // 100) - 1)  # ceil(0.95 n) - 1
        return ordered[rank]

    def adapt(self) -> None:
        """Retune the window after a flush (AIMD against the SLO)."""
        self.flushes += 1
        p95 = self.observed_p95()
        if p95 is None:
            return
        if p95 > self.slo_p95:
            shrunk = max(self.min_window, self.window * self.shrink)
            if shrunk < self.window:
                self.shrinks += 1
            self.window = shrunk
        elif p95 < self.headroom * self.slo_p95:
            grown = min(self.max_window, self.window * self.grow)
            if grown > self.window:
                self.grows += 1
            self.window = grown

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """JSON-safe controller state for the ``/stats`` endpoint."""
        p95 = self.observed_p95()
        return {
            "window": self.window,
            "slo_p95": self.slo_p95,
            "observed_p95": p95,
            "flush_size": self.flush_size,
            "flushes": self.flushes,
            "grows": self.grows,
            "shrinks": self.shrinks,
            "samples": len(self._samples),
        }
