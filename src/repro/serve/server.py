"""The asyncio serving front-end: admission, batching, shedding.

``ScanServer`` is the network layer above the batched engine.  Many
concurrent clients connect over TCP (length-prefixed JSON frames or
JSONL — see ``serve.protocol``); their requests are admitted into the
engine's bounded :class:`~repro.engine.queue.SubmissionQueue`; a
single flush task drains the queue into ``Engine.run_batch`` whenever
the SLO-adaptive batch window (``serve.window``) fires; responses are
routed back to the connection that asked.

The control flow per request::

    client ──frame──► admit (parse → fairness → queue.submit(block=False))
                        │ shed: rate-limited / overloaded (+retry_after)
                        ▼
                 SubmissionQueue ──window fires──► flush task
                                                      │ run_batch
                                                      ▼ (executor thread)
    client ◄─frame── respond (latency observed → histograms → window)

Key properties:

* **Admission never blocks.**  ``submit(block=False)`` turns queue
  saturation into a structured ``overloaded`` response with a
  ``retry_after`` hint (current window + smoothed flush time), so an
  overloaded server degrades into explicit shed responses instead of
  hung clients.
* **One flush at a time.**  The engine call runs on a dedicated
  worker thread (the event loop never blocks on a kernel); admissions
  continue concurrently and fall into the *next* batch.
* **Telemetry end to end.**  Every response's admission→response
  latency feeds the engine's ``total`` histogram and the adaptive
  window's SLO controller; a traced server additionally records
  ``accept``/``admit``/``flush``/``respond`` spans around the engine's
  own ``run_batch`` trees.
* **Clean shutdown.**  ``shutdown()`` stops accepting, lets the flush
  task drain what was admitted, then ``Engine.close()`` answers
  anything still queued with structured ``shutdown`` errors — no
  request is ever silently dropped.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import struct
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..engine.engine import Engine
from ..engine.errors import RequestError
from ..engine.queue import BackpressureError, QueueClosedError, ScanResponse
from ..sanitize.runtime import start_loop_watchdog
from ..trace.tracer import Tracer, null_span, resolve_trace
from .config import ServeConfig
from .fairness import ClientGovernor
from .protocol import (
    ADMIN_TYPES,
    ProtocolError,
    decode_message,
    encode_frame,
    encode_line,
    error_to_wire,
    parse_request,
    response_to_wire,
)
from .window import AdaptiveWindow

__all__ = ["ScanServer"]

_LEN = struct.Struct(">I")


class _Connection:
    """One client connection: mode-aware, write-serialized."""

    __slots__ = ("conn_id", "writer", "mode", "closed", "_send_lock")

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter, mode: str):
        self.conn_id = conn_id
        self.writer = writer
        self.mode = mode
        self.closed = False
        self._send_lock = asyncio.Lock()

    async def send(self, message: dict[str, Any]) -> bool:
        """Write one message; False when the peer is gone."""
        data = (
            encode_frame(message)
            if self.mode == "frame"
            else encode_line(message)
        )
        async with self._send_lock:
            if self.closed:
                return False
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                self.closed = True
                return False
        return True

    def close(self) -> None:
        self.closed = True
        with contextlib.suppress(Exception):
            self.writer.close()


class _Pending:
    """Bookkeeping for one admitted-but-unanswered request."""

    __slots__ = ("conn", "wire_id", "client", "admitted_at")

    def __init__(
        self, conn: _Connection, wire_id: object, client: object, admitted_at: float
    ):
        self.conn = conn
        self.wire_id = wire_id
        self.client = client
        self.admitted_at = admitted_at


class ScanServer:
    """Asyncio TCP front-end serving scan/rank requests through an engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.engine.Engine` executing the batches;
        the server owns its lifecycle (``shutdown()`` closes it).
    config:
        A :class:`~repro.serve.config.ServeConfig`.
    clock:
        Zero-argument time source for admission stamps and latency
        accounting; defaults to the *engine's* clock so queue-wait
        telemetry and server latencies share one epoch.  Injectable
        for deterministic tests (``injectable-clock`` lint rule).
    trace:
        ``None`` / ``"off"`` / a :class:`~repro.trace.Tracer` — same
        contract as the engine.  Records ``accept``/``admit``/
        ``flush``/``respond`` spans; the engine's ``run_batch`` trees
        appear alongside (they execute on the flush worker thread).

    Usage::

        engine = Engine(max_pending=1024)
        server = ScanServer(engine, ServeConfig(port=0))
        await server.start()     # server.port has the bound port
        ...
        await server.shutdown()
    """

    def __init__(
        self,
        engine: Engine,
        config: ServeConfig | None = None,
        clock: Any = None,
        trace: str | Tracer | None = None,
    ):
        self.engine = engine
        self.config = config if config is not None else ServeConfig()
        self.clock = clock if clock is not None else engine.clock
        self.trace = resolve_trace(trace)
        self.window = AdaptiveWindow(
            slo_p95=self.config.slo_p95,
            min_window=self.config.min_window,
            max_window=self.config.max_window,
            initial=self.config.initial_window,
            flush_size=self.config.flush_size,
        )
        self.governor = ClientGovernor(
            rate=self.config.rate,
            burst=self.config.burst,
            max_inflight=self.config.max_inflight,
        )
        self.counters: dict[str, int] = {
            "connections": 0,
            "http_requests": 0,
            "messages": 0,
            "responses": 0,
            "protocol_errors": 0,
            "shed_rate_limited": 0,
            "shed_overloaded": 0,
        }
        self.port: int | None = None
        self._conn_ids = itertools.count(1)
        self._conns: dict[int, _Connection] = {}
        self._pending: dict[int, _Pending] = {}
        self._wake: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._server: asyncio.AbstractServer | None = None
        self._flush_task: asyncio.Task[None] | None = None
        self._stats_task: asyncio.Task[None] | None = None
        self._shutdown_task: asyncio.Task[None] | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-flush"
        )
        self._flush_ema: float | None = None
        self._watchdog: Any = None
        self._running = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ScanServer":
        """Bind, start accepting, and start the flush loop."""
        if self._running:
            raise RuntimeError("server already started")
        self._running = True
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_frame_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._flush_task = asyncio.create_task(self._flush_loop())
        if self.config.stats_interval > 0:
            self._stats_task = asyncio.create_task(self._stats_loop())
        # no-op unless a sanitizer scope is active (CI sanitize job,
        # pytest plugin): measures event-loop scheduling stalls
        self._watchdog = start_loop_watchdog()
        return self

    async def wait_closed(self) -> None:
        """Block until :meth:`shutdown` completes."""
        assert self._stopped is not None, "server never started"
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Stop accepting, drain admitted work, close the engine.

        Order matters: the flush task finishes (delivering every
        response for work already admitted), then ``Engine.close()``
        answers anything still queued with structured ``shutdown``
        errors, and only then do connections close — so a client that
        got a request admitted always gets *some* response.
        """
        if not self._running:
            return
        self._running = False
        assert self._wake is not None and self._stopped is not None
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        self._wake.set()
        if self._flush_task is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await self._flush_task
        # fail whatever is still queued (none, unless the final flush
        # itself raced a last admission) with structured shutdown errors
        for resp in self.engine.close():
            entry = self._pending.pop(resp.request_id, None)
            if entry is not None and resp.error is not None:
                self.governor.settle(entry.client)
                await entry.conn.send(error_to_wire(entry.wire_id, resp.error))
        if self._stats_task is not None:
            self._stats_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._stats_task
        for conn in list(self._conns.values()):
            conn.close()
        self._conns.clear()
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        self._executor.shutdown(wait=True)
        self._stopped.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_id = next(self._conn_ids)
        self.counters["connections"] += 1
        try:
            first = await reader.readexactly(1)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        if first == b"G":
            await self._handle_http(first, reader, writer)
            return
        mode = "jsonl" if first == b"{" else "frame"
        conn = _Connection(conn_id, writer, mode)
        self._conns[conn_id] = conn
        tracer = self.trace
        span = tracer.span if tracer is not None else null_span
        with span("accept", conn=conn_id, mode=mode):
            pass
        try:
            if mode == "jsonl":
                await self._read_jsonl(conn, reader, first)
            else:
                await self._read_frames(conn, reader, first)
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.LimitOverrunError):
            pass
        finally:
            self._conns.pop(conn_id, None)
            conn.close()
            self.governor.forget(f"conn-{conn_id}")
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_jsonl(
        self, conn: _Connection, reader: asyncio.StreamReader, first: bytes
    ) -> None:
        data = first + await reader.readline()
        while data:
            line = data.strip()
            if line:
                await self._handle_payload(conn, line)
            data = await reader.readline()

    async def _read_frames(
        self, conn: _Connection, reader: asyncio.StreamReader, first: bytes
    ) -> None:
        header = first + await reader.readexactly(_LEN.size - 1)
        while True:
            (length,) = _LEN.unpack(header)
            if length > self.config.max_frame_bytes:
                self.counters["protocol_errors"] += 1
                await conn.send(
                    error_to_wire(
                        None,
                        RequestError(
                            code="bad-message",
                            message=(
                                f"frame of {length} bytes exceeds the "
                                f"{self.config.max_frame_bytes}-byte limit"
                            ),
                            phase="admit",
                        ),
                    )
                )
                return
            payload = await reader.readexactly(length)
            await self._handle_payload(conn, payload)
            header = await reader.readexactly(_LEN.size)

    async def _handle_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Minimal HTTP: ``GET /stats`` → the stats snapshot as JSON."""
        self.counters["http_requests"] += 1
        try:
            request_line = first + await reader.readline()
            while True:  # drain headers
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else ""
            if path.split("?")[0].rstrip("/") in ("/stats", ""):
                status = "200 OK"
                body = json.dumps(self.stats_snapshot(), indent=2).encode("utf-8")
            else:
                status = "404 Not Found"
                body = b'{"error": "unknown path; try GET /stats"}'
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            with contextlib.suppress(ConnectionError):
                await writer.drain()
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    async def _handle_payload(self, conn: _Connection, payload: bytes) -> None:
        self.counters["messages"] += 1
        try:
            message = decode_message(payload, self.config.max_frame_bytes)
        except ProtocolError as exc:
            self.counters["protocol_errors"] += 1
            await conn.send(error_to_wire(exc.wire_id, exc.error))
            return
        mtype = message.get("type", "scan")
        if mtype in ADMIN_TYPES:
            await self._handle_admin(conn, message)
            return
        reply = self._admit(conn, message)
        if reply is not None:
            await conn.send(reply)

    def _retry_after(self) -> float:
        """Shed hint: roughly one window plus one smoothed flush."""
        return self.window.window + (self._flush_ema or 0.0)

    def _admit(
        self, conn: _Connection, message: dict[str, Any]
    ) -> dict[str, Any] | None:
        """Parse → fairness → enqueue; returns an error reply or None.

        Synchronous on purpose: the admit span opens and closes without
        touching an ``await``, so concurrent connections cannot
        interleave spans on the event-loop thread.
        """
        tracer = self.trace
        span = tracer.span if tracer is not None else null_span
        now = self.clock()
        wire_id = message.get("id")
        client = message.get("client") or f"conn-{conn.conn_id}"
        with span("admit", conn=conn.conn_id, client=str(client)):
            try:
                request = parse_request(message)
            except ProtocolError as exc:
                self.counters["protocol_errors"] += 1
                if tracer is not None:
                    tracer.event("rejected", code=exc.error.code)
                return error_to_wire(exc.wire_id, exc.error)
            rejection = self.governor.admit(client, now)
            if rejection is not None:
                code, retry_after = rejection
                if retry_after is None:
                    retry_after = self._retry_after()
                self.counters["shed_rate_limited"] += 1
                self.engine.observe_shed()
                if tracer is not None:
                    tracer.event("shed", code=code, retry_after=retry_after)
                return error_to_wire(
                    wire_id,
                    RequestError(
                        code=code,
                        message=(
                            f"client {client!r} exceeded its rate/in-flight "
                            "budget"
                        ),
                        phase="admit",
                    ),
                    retry_after,
                )
            try:
                self.engine.queue.submit(request, block=False)
            except BackpressureError as exc:
                self.governor.settle(client)
                self.counters["shed_overloaded"] += 1
                self.engine.observe_shed()
                retry_after = self._retry_after()
                if tracer is not None:
                    tracer.event("shed", code="overloaded", retry_after=retry_after)
                return error_to_wire(
                    wire_id,
                    RequestError(
                        code="overloaded", message=str(exc), phase="admit"
                    ),
                    retry_after,
                )
            except QueueClosedError:
                self.governor.settle(client)
                return error_to_wire(
                    wire_id,
                    RequestError(
                        code="shutdown",
                        message="server is shutting down",
                        phase="shutdown",
                    ),
                )
            self._pending[request.request_id] = _Pending(conn, wire_id, client, now)
            if tracer is not None:
                tracer.event("admitted", request_id=request.request_id, n=request.n)
        assert self._wake is not None
        self._wake.set()
        return None

    async def _handle_admin(
        self, conn: _Connection, message: dict[str, Any]
    ) -> None:
        wire_id = message.get("id")
        mtype = message["type"]
        if mtype == "ping":
            await conn.send({"id": wire_id, "ok": True, "pong": True})
        elif mtype == "stats":
            await conn.send(
                {"id": wire_id, "ok": True, "stats": self.stats_snapshot()}
            )
        elif mtype == "shutdown":
            if not self.config.allow_shutdown:
                await conn.send(
                    error_to_wire(
                        wire_id,
                        RequestError(
                            code="forbidden",
                            message=(
                                "server was started without allow_shutdown; "
                                "refusing remote shutdown"
                            ),
                            phase="admit",
                        ),
                    )
                )
                return
            await conn.send({"id": wire_id, "ok": True, "stopping": True})
            # detach: shutting down from inside this connection's reader
            # task would deadlock on our own teardown
            self._shutdown_task = asyncio.create_task(self.shutdown())

    # ------------------------------------------------------------------
    # the flush loop
    # ------------------------------------------------------------------

    async def _flush_loop(self) -> None:
        assert self._wake is not None
        try:
            while self._running:
                self._wake.clear()
                queue = self.engine.queue
                oldest = queue.oldest_submitted_at()
                if oldest is None:
                    if not self._running:
                        break
                    await self._wake.wait()
                    continue
                now = self.clock()
                if self.window.should_flush(now, len(queue), oldest):
                    await self._flush()
                    continue
                delay = max(0.0, self.window.deadline(oldest) - now)
                with contextlib.suppress(asyncio.TimeoutError, TimeoutError):
                    await asyncio.wait_for(self._wake.wait(), timeout=delay)
        finally:
            # shutdown path: one final drain so admitted work completes
            await self._flush()

    async def _flush(self) -> None:
        tracer = self.trace
        span = tracer.span if tracer is not None else null_span
        with span("flush", window=self.window.window) as flush_span:
            batch = self.engine.queue.drain(self.config.max_batch)
            if tracer is not None and flush_span is not None:
                flush_span.attrs["requests"] = len(batch)
        if not batch:
            return
        t0 = self.clock()
        loop = asyncio.get_running_loop()
        try:
            responses = await loop.run_in_executor(
                self._executor, self.engine.run_batch, batch
            )
        except Exception as exc:
            # run_batch never raises per request; reaching here means the
            # batch as a whole could not run (e.g. backend torn down mid-
            # shutdown).  Answer every member so no client hangs.
            error = RequestError.from_exception(exc, code="execution", phase="execute")
            responses = [
                ScanResponse(
                    request_id=req.request_id,
                    n=req.n,
                    tag=req.tag,
                    ok=False,
                    error=error,
                )
                for req in batch
            ]
        flush_dt = self.clock() - t0
        self._flush_ema = (
            flush_dt
            if self._flush_ema is None
            else 0.8 * self._flush_ema + 0.2 * flush_dt
        )
        now = self.clock()
        outgoing: list[tuple[_Connection, dict[str, Any]]] = []
        with span("respond", responses=len(responses)):
            for resp in responses:
                entry = self._pending.pop(resp.request_id, None)
                if entry is None:  # direct run_batch callers, never ours
                    continue
                latency = max(0.0, now - entry.admitted_at)
                self.engine.observe_response(latency)
                self.window.note_latency(latency)
                self.governor.settle(entry.client)
                outgoing.append(
                    (entry.conn, response_to_wire(entry.wire_id, resp, latency))
                )
        self.window.adapt()
        self.counters["responses"] += len(outgoing)
        for conn, payload in outgoing:
            await conn.send(payload)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def stats_snapshot(self) -> dict[str, Any]:
        """The ``/stats`` payload: engine snapshot + server gauges.

        The engine part is exactly
        :meth:`~repro.engine.engine.EngineStats.snapshot` — the same
        serializer ``repro-c90 batch --stats`` prints.  ``calibration``
        carries the active profile's provenance and the drift
        detector's health counters (``active: false`` while routing on
        the static paper table); see ``docs/calibration.md``.
        """
        return {
            # locked snapshot: the flush worker thread mutates these
            # counters concurrently with the event loop rendering them
            "engine": self.engine.stats_snapshot(),
            "calibration": self.engine.calibration_snapshot(),
            "server": {
                **self.counters,
                "pending": len(self._pending),
                "queued": len(self.engine.queue),
                "window": self.window.snapshot(),
                "fairness": self.governor.snapshot(),
            },
        }

    async def _stats_loop(self) -> None:
        while self._running:
            await asyncio.sleep(self.config.stats_interval)
            print(
                json.dumps({"stats": self.stats_snapshot()}),
                file=sys.stderr,
                flush=True,
            )
