"""Wire protocol: length-prefixed JSON frames, JSONL, and ``/stats``.

The serving front-end speaks three self-identifying dialects on one
port, distinguished by the first byte of the connection:

* ``0x00``–``0x03`` — **length-prefixed frames**: a 4-byte big-endian
  payload length followed by one UTF-8 JSON object.  The binary-safe
  dialect; the bench client's default.  (Sane frame lengths are far
  below 2\\ :sup:`26`, so the first byte of a legal frame is always a
  low control byte — which no JSON text and no HTTP method starts
  with.)
* ``{`` — **JSONL**: one JSON object per ``\\n``-terminated line.  The
  ``netcat``-friendly dialect.
* ``G`` — a minimal **HTTP GET**: ``GET /stats`` returns the engine's
  :meth:`~repro.engine.engine.EngineStats.snapshot` (plus the server's
  own gauges) as ``application/json``, so a browser or ``curl`` can
  watch a running server without a custom client.

Message shapes
--------------

Request (client → server)::

    {"id": 7, "type": "scan", "next": [1, 2, 2], "head": 0,
     "values": [5, 1, 2], "op": "sum", "inclusive": false,
     "algorithm": "auto"}

``type`` may also be ``"rank"`` (values forced to ones), ``"stats"``
(returns the stats snapshot), ``"ping"``, or ``"shutdown"`` (honored
only when the server was started with ``allow_shutdown``).  ``id`` is
an opaque JSON value echoed on the response.

Response (server → client)::

    {"id": 7, "ok": true, "result": [0, 5, 6], "algorithm": "serial",
     "cached": false, "coalesced": false, "batch_lists": 12, "n": 3,
     "latency": 0.0041}

    {"id": 9, "ok": false,
     "error": {"code": "overloaded", "message": "…",
               "phase": "admit", "exception": null},
     "retry_after": 0.012}

Failures reuse the engine's structured
:class:`~repro.engine.errors.RequestError` — the same shape a
validation failure or a quarantined kernel crash produces — with the
admission-time codes ``bad-message``, ``bad-field``, ``rate-limited``
and ``overloaded`` (see ``engine/errors.py``).  ``retry_after`` rides
next to the error on shed responses.
"""

from __future__ import annotations

import json
import struct
from typing import Any

import numpy as np

from ..core.list_scan import ALGORITHMS
from ..core.operators import get_operator
from ..engine.errors import RequestError
from ..engine.queue import ScanRequest, ScanResponse
from ..lists.generate import INDEX_DTYPE, LinkedList

__all__ = [
    "ProtocolError",
    "FrameDecoder",
    "encode_frame",
    "encode_line",
    "decode_message",
    "parse_request",
    "response_to_wire",
    "error_to_wire",
    "REQUEST_TYPES",
    "ADMIN_TYPES",
    "MAX_FRAME_BYTES",
]

#: Default hard cap on one frame/line (64 MiB ≈ a 4M-node list).
MAX_FRAME_BYTES = 64 << 20

#: Message types that carry a list-scan problem.
REQUEST_TYPES = ("scan", "rank")

#: Message types handled by the server itself, never queued.
ADMIN_TYPES = ("stats", "ping", "shutdown")

_LEN = struct.Struct(">I")


class ProtocolError(Exception):
    """A message failed before it could become a :class:`ScanRequest`.

    Carries the structured :class:`RequestError` (code ``bad-message``
    for unparseable bytes, ``bad-field`` for a parseable payload with
    missing/invalid fields) that the server writes back — when it can
    still extract a wire ``id`` to address the reply to.
    """

    def __init__(self, error: RequestError, wire_id: object = None):
        self.error = error
        self.wire_id = wire_id
        super().__init__(f"[{error.code}] {error.message}")


def _bad_message(message: str, wire_id: object = None) -> ProtocolError:
    return ProtocolError(
        RequestError(code="bad-message", message=message, phase="admit"),
        wire_id,
    )


def _bad_field(message: str, wire_id: object = None) -> ProtocolError:
    return ProtocolError(
        RequestError(code="bad-field", message=message, phase="admit"),
        wire_id,
    )


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


def encode_frame(message: dict[str, Any]) -> bytes:
    """One length-prefixed frame: ``>I`` byte length + UTF-8 JSON."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return _LEN.pack(len(payload)) + payload


def encode_line(message: dict[str, Any]) -> bytes:
    """One JSONL record (newline-terminated UTF-8 JSON)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(payload: bytes, max_bytes: int = MAX_FRAME_BYTES) -> dict[str, Any]:
    """Parse one frame/line payload into a JSON object.

    Raises :class:`ProtocolError` (``bad-message``) for oversized,
    undecodable, or non-object payloads.
    """
    if len(payload) > max_bytes:
        raise _bad_message(
            f"message of {len(payload)} bytes exceeds the {max_bytes}-byte limit"
        )
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _bad_message(f"undecodable message: {exc}") from exc
    if not isinstance(message, dict):
        raise _bad_message(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


class FrameDecoder:
    """Incremental decoder for the length-prefixed dialect.

    Feed raw bytes; iterate complete frames.  Used by tests and by
    sync clients — the asyncio server reads frames directly off its
    stream with ``readexactly``.
    """

    def __init__(self, max_bytes: int = MAX_FRAME_BYTES):
        self.max_bytes = max_bytes
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Absorb ``data``; return every now-complete message."""
        self._buf.extend(data)
        out: list[dict[str, Any]] = []
        while len(self._buf) >= _LEN.size:
            (length,) = _LEN.unpack_from(self._buf)
            if length > self.max_bytes:
                raise _bad_message(
                    f"frame of {length} bytes exceeds the "
                    f"{self.max_bytes}-byte limit"
                )
            if len(self._buf) < _LEN.size + length:
                break
            payload = bytes(self._buf[_LEN.size : _LEN.size + length])
            del self._buf[: _LEN.size + length]
            out.append(decode_message(payload, self.max_bytes))
        return out


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------


def _require_int(message: dict[str, Any], field: str, wire_id: object) -> int:
    value = message.get(field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad_field(
            f"field {field!r} must be an integer, got "
            f"{type(value).__name__ if value is not None else 'nothing'}",
            wire_id,
        )
    return value


def _index_array(message: dict[str, Any], wire_id: object) -> np.ndarray:
    raw = message.get("next")
    if not isinstance(raw, list) or not raw:
        raise _bad_field(
            "field 'next' must be a non-empty array of successor indices",
            wire_id,
        )
    try:
        nxt = np.asarray(raw, dtype=INDEX_DTYPE)
    except (TypeError, ValueError, OverflowError) as exc:
        raise _bad_field(f"field 'next' is not an index array: {exc}", wire_id) from exc
    if nxt.ndim != 1:
        raise _bad_field("field 'next' must be one-dimensional", wire_id)
    return nxt


def parse_request(message: dict[str, Any], tag: object = None) -> ScanRequest:
    """Turn one ``scan``/``rank`` wire message into a :class:`ScanRequest`.

    Only *shape* is checked here (field presence and JSON types);
    structural problems — out-of-range successors, broken cycles, NaN
    under a hostile operator — flow through the engine's own
    probe-time validation and come back as the same ``ok=False``
    responses a library caller would see.  Raises
    :class:`ProtocolError` (``bad-field``) on shape problems.
    """
    wire_id = message.get("id")
    kind = message.get("type", "scan")
    if kind not in REQUEST_TYPES:
        raise _bad_field(
            f"type must be one of {REQUEST_TYPES} for a request, got {kind!r}",
            wire_id,
        )
    nxt = _index_array(message, wire_id)
    head = _require_int(message, "head", wire_id)
    if not 0 <= head < nxt.shape[0]:
        raise _bad_field(
            f"head {head} out of range for a {nxt.shape[0]}-node list", wire_id
        )

    values = None
    if kind == "scan" and message.get("values") is not None:
        raw_values = message["values"]
        if not isinstance(raw_values, list):
            raise _bad_field("field 'values' must be an array", wire_id)
        try:
            values = np.asarray(raw_values)
        except (TypeError, ValueError) as exc:
            raise _bad_field(
                f"field 'values' is not a value array: {exc}", wire_id
            ) from exc
        if values.dtype == object:
            raise _bad_field("field 'values' mixes incompatible types", wire_id)
    # kind == "rank" (or scan without values): LinkedList defaults to
    # all-ones values, which is exactly list ranking

    op_name = message.get("op", "sum")
    try:
        op = get_operator(op_name)
    except (KeyError, ValueError, TypeError) as exc:
        raise _bad_field(f"unknown operator {op_name!r}", wire_id) from exc

    inclusive = message.get("inclusive", False)
    if not isinstance(inclusive, bool):
        raise _bad_field("field 'inclusive' must be a boolean", wire_id)

    algorithm = message.get("algorithm", "auto")
    if algorithm != "auto" and algorithm not in ALGORITHMS:
        raise _bad_field(
            f"unknown algorithm {algorithm!r}; expected 'auto' or one of "
            f"{ALGORITHMS}",
            wire_id,
        )

    try:
        lst = LinkedList(nxt, head, values)
    except Exception as exc:  # shape/dtype coercion failures
        raise _bad_field(f"could not build the list: {exc}", wire_id) from exc
    return ScanRequest(
        lst=lst, op=op, inclusive=inclusive, algorithm=algorithm, tag=tag
    )


# ----------------------------------------------------------------------
# response encoding
# ----------------------------------------------------------------------


def _error_payload(error: RequestError) -> dict[str, Any]:
    return {
        "code": error.code,
        "message": error.message,
        "phase": error.phase,
        "exception": error.exception,
    }


def response_to_wire(
    wire_id: object, resp: ScanResponse, latency: float | None = None
) -> dict[str, Any]:
    """Serialize one engine :class:`ScanResponse` for the wire."""
    if not resp.ok:
        assert resp.error is not None
        return error_to_wire(wire_id, resp.error)
    assert resp.result is not None
    out: dict[str, Any] = {
        "id": wire_id,
        "ok": True,
        "result": resp.result.tolist(),
        "algorithm": resp.algorithm,
        "cached": resp.cached,
        "coalesced": resp.coalesced,
        "batch_lists": resp.batch_lists,
        "n": resp.n,
    }
    if latency is not None:
        out["latency"] = latency
    return out


def error_to_wire(
    wire_id: object,
    error: RequestError,
    retry_after: float | None = None,
) -> dict[str, Any]:
    """Serialize one structured failure (optionally with a shed hint)."""
    out: dict[str, Any] = {"id": wire_id, "ok": False, "error": _error_payload(error)}
    if retry_after is not None:
        out["retry_after"] = retry_after
    return out
