"""Async serving front-end for the batched engine.

Where ``repro.engine`` batches requests arriving *in one process*,
this package batches requests arriving *over the network*: an asyncio
TCP server admits scan/rank requests from many concurrent clients into
the engine's bounded submission queue, flushes them through
``Engine.run_batch`` under an SLO-aware adaptive batch window, and
sheds load with structured errors when saturated — the serving-system
realization of the paper's core economics (throughput comes from
keeping many independent walks fused at full vector width).

Modules
-------

``config``    :class:`ServeConfig` — every front-end knob in one
              frozen dataclass
``protocol``  wire dialects (length-prefixed JSON frames / JSONL /
              ``GET /stats``), request parsing onto
              :class:`~repro.engine.queue.ScanRequest`, structured
              error serialization
``window``    :class:`AdaptiveWindow` — flush on size or deadline,
              AIMD-retuned against a p95 latency SLO
``fairness``  :class:`ClientGovernor` — per-client token buckets and
              in-flight caps
``server``    :class:`ScanServer` — the asyncio front-end itself
``client``    :func:`run_bench` — the benchmark/load client used by
              ``repro-c90 bench-client``, the tests, and CI

Lazy re-exports (PEP 562) keep ``import repro.serve`` cheap — the
server pulls in the engine only when actually constructed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

__all__ = [
    "ServeConfig",
    "ScanServer",
    "AdaptiveWindow",
    "ClientGovernor",
    "TokenBucket",
    "ProtocolError",
    "FrameDecoder",
    "encode_frame",
    "encode_line",
    "decode_message",
    "parse_request",
    "response_to_wire",
    "error_to_wire",
    "run_bench",
]

_EXPORTS = {
    "ServeConfig": ("repro.serve.config", "ServeConfig"),
    "ScanServer": ("repro.serve.server", "ScanServer"),
    "AdaptiveWindow": ("repro.serve.window", "AdaptiveWindow"),
    "ClientGovernor": ("repro.serve.fairness", "ClientGovernor"),
    "TokenBucket": ("repro.serve.fairness", "TokenBucket"),
    "ProtocolError": ("repro.serve.protocol", "ProtocolError"),
    "FrameDecoder": ("repro.serve.protocol", "FrameDecoder"),
    "encode_frame": ("repro.serve.protocol", "encode_frame"),
    "encode_line": ("repro.serve.protocol", "encode_line"),
    "decode_message": ("repro.serve.protocol", "decode_message"),
    "parse_request": ("repro.serve.protocol", "parse_request"),
    "response_to_wire": ("repro.serve.protocol", "response_to_wire"),
    "error_to_wire": ("repro.serve.protocol", "error_to_wire"),
    "run_bench": ("repro.serve.client", "run_bench"),
}

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .client import run_bench
    from .config import ServeConfig
    from .fairness import ClientGovernor, TokenBucket
    from .protocol import (
        FrameDecoder,
        ProtocolError,
        decode_message,
        encode_frame,
        encode_line,
        error_to_wire,
        parse_request,
        response_to_wire,
    )
    from .server import ScanServer
    from .window import AdaptiveWindow


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
