"""Chunk planning and boundary-node discovery.

Chunks are contiguous index ranges of the successor array — the only
partition an out-of-core pass can afford, since a chunk must be one
sequential read of the backing file.  The *entry nodes* of a chunk are
where global lists enter it: targets of edges that cross a chunk
boundary, plus the list heads themselves.  Cutting the chunk's edges
at entries (and at chunk exits) decomposes it into disjoint segments,
each starting at an entry — the unit the distributed three-phase
algorithm contracts to a single (segment-sum, exit) pair.

Everything here streams: ``find_entries`` reads the successor array
one chunk at a time, so it works identically on an in-memory array and
an ``np.memmap`` without ever materialising the whole thing.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..lists.generate import INDEX_DTYPE

__all__ = ["ChunkPlan", "plan_chunks", "find_entries"]


@dataclass(frozen=True)
class ChunkPlan:
    """Contiguous partition of ``[0, n)`` into near-equal chunks."""

    offsets: np.ndarray  # shape (num_chunks + 1,), ascending, [0 ... n]

    @property
    def n(self) -> int:
        return int(self.offsets[-1])

    @property
    def num_chunks(self) -> int:
        return int(self.offsets.shape[0] - 1)

    def bounds(self, c: int) -> tuple[int, int]:
        return int(self.offsets[c]), int(self.offsets[c + 1])

    def chunk_of(self, nodes: np.ndarray) -> np.ndarray:
        """Chunk index owning each global node id (vectorised)."""
        return np.searchsorted(self.offsets, nodes, side="right") - 1


def plan_chunks(n: int, num_chunks: int) -> ChunkPlan:
    """Split ``[0, n)`` into ``num_chunks`` near-equal contiguous ranges."""
    if n < 0:
        raise ValueError("n must be >= 0")
    num_chunks = max(1, min(int(num_chunks), max(1, n)))
    offsets = np.linspace(0, n, num_chunks + 1).astype(INDEX_DTYPE)
    offsets[0] = 0
    offsets[-1] = n
    return ChunkPlan(offsets=offsets)


def find_entries(
    nxt_reader: Callable[[int, int], np.ndarray],
    plan: ChunkPlan,
    heads: np.ndarray,
) -> list[np.ndarray]:
    """Per-chunk sorted global entry-node ids.

    ``nxt_reader(lo, hi)`` returns the successor slice for ``[lo, hi)``
    — a closure over an ndarray or a memmap, so this pass streams the
    array once regardless of where it lives.

    An entry is a node some list *enters* the chunk at: the target of
    any cross-chunk edge, or a list head.  Self-loops (list tails) are
    not edges.  The per-chunk result arrays are sorted and duplicate
    free; concatenating them yields the globally sorted reduced node
    set, which is what the orchestrator builds the reduced list over.
    """
    targets: list[np.ndarray] = [np.asarray(heads, dtype=INDEX_DTYPE).ravel()]
    for c in range(plan.num_chunks):
        lo, hi = plan.bounds(c)
        if hi == lo:
            continue
        nxt_c = np.asarray(nxt_reader(lo, hi))
        # self-loops (tails) point inside the chunk by construction, so
        # a simple out-of-range test finds exactly the crossing edges
        cross = (nxt_c < lo) | (nxt_c >= hi)
        targets.append(nxt_c[cross].astype(INDEX_DTYPE, copy=False))
    every = np.unique(np.concatenate(targets))
    # bucket the global entry set back into chunks; np.unique sorted it,
    # so each per-chunk slice is sorted too
    cuts = np.searchsorted(every, plan.offsets)
    return [every[cuts[c] : cuts[c + 1]] for c in range(plan.num_chunks)]
