"""Bounded admission for shared-memory chunk leases.

The out-of-core contract is a *fixed* resident budget no matter how
large the list is, so chunk buffers cannot simply be allocated as fast
as driver threads can dispatch them.  :class:`LeaseGate` is the
admission valve: every in-flight chunk reserves its byte footprint
before creating segments and returns it after the parent releases
them, blocking excess dispatchers until memory frees up.  Segment
*ownership* stays where it always was — created by the parent via the
``engine.workers`` export helpers into a per-task lease list and
closed+unlinked in that task's ``finally`` — the gate only bounds how
many such lists exist at once.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from collections.abc import Iterator

__all__ = ["LeaseGate"]


class LeaseGate:
    """Counting byte-semaphore with oversize admission.

    A reservation larger than the whole budget is admitted once the
    gate is empty (otherwise a single chunk bigger than the budget
    would deadlock); it simply runs alone.
    """

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._outstanding = 0
        self._peak = 0
        self._cv = threading.Condition()

    @property
    def outstanding_bytes(self) -> int:
        with self._cv:
            return self._outstanding

    @property
    def peak_bytes(self) -> int:
        """High-water mark of reserved bytes (budget-compliance telemetry)."""
        with self._cv:
            return self._peak

    @contextmanager
    def admit(self, nbytes: int) -> Iterator[None]:
        nbytes = max(0, int(nbytes))
        with self._cv:
            while self._outstanding > 0 and self._outstanding + nbytes > self.max_bytes:
                self._cv.wait()
            self._outstanding += nbytes
            self._peak = max(self._peak, self._outstanding)
        try:
            yield
        finally:
            with self._cv:
                self._outstanding -= nbytes
                self._cv.notify_all()
