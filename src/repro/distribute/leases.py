"""Bounded admission for shared-memory chunk leases.

The out-of-core contract is a *fixed* resident budget no matter how
large the list is, so chunk buffers cannot simply be allocated as fast
as driver threads can dispatch them.  :class:`LeaseGate` is the
admission valve: every in-flight chunk reserves its byte footprint
before creating segments and returns it after the parent releases
them, blocking excess dispatchers until memory frees up.  Segment
*ownership* stays where it always was — created by the parent via the
``engine.workers`` export helpers into a per-task lease list and
closed+unlinked in that task's ``finally`` — the gate only bounds how
many such lists exist at once.

The gate is instrumented for the sanitizer suite: reservations flow
through the resource ledger (an admit without a matching return is a
``lease-bytes`` leak at settlement), and the condition-variable wait
uses :func:`~repro.sanitize.runtime.cv_wait` so the race detector sees
the hidden release/reacquire inside ``Condition.wait``.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager

from ..sanitize.runtime import cv_wait, guarded, note_lease_admitted, note_lease_returned

__all__ = ["LeaseGate"]


class LeaseGate:
    """Counting byte-semaphore with oversize admission.

    A reservation larger than the whole budget is admitted once the
    gate is empty (otherwise a single chunk bigger than the budget
    would deadlock); it simply runs alone.
    """

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._outstanding = 0
        self._peak = 0
        self._cv = threading.Condition()

    @property
    def outstanding_bytes(self) -> int:
        with guarded(self._cv, "lease.gate", "read"):
            return self._outstanding

    @property
    def peak_bytes(self) -> int:
        """High-water mark of reserved bytes (budget-compliance telemetry)."""
        with guarded(self._cv, "lease.gate", "read"):
            return self._peak

    @contextmanager
    def admit(self, nbytes: int) -> Iterator[None]:
        nbytes = max(0, int(nbytes))
        with guarded(self._cv, "lease.gate"):
            while self._outstanding > 0 and self._outstanding + nbytes > self.max_bytes:
                cv_wait(self._cv)
            self._outstanding += nbytes
            self._peak = max(self._peak, self._outstanding)
        note_lease_admitted(nbytes)
        try:
            yield
        finally:
            with guarded(self._cv, "lease.gate"):
                self._outstanding -= nbytes
                self._cv.notify_all()
            note_lease_returned(nbytes)
