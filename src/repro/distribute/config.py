"""Configuration for the sharded / out-of-core list-ranking path.

The distributed path exists for problems that dwarf one worker's
memory (ROADMAP: Sanders/Schimek/Uhl/Weidmann's three-phase shape;
Jacob/Lieber/Sitchinava's PEM model for the out-of-core variant), so
its knobs are *capacity* knobs: a memory budget for the resident
working set, a chunk size carved out of that budget, and the node
count above which the engine stops fusing in one kernel and starts
chunking.  Everything derives from ``memory_budget_bytes`` unless
pinned explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DistributedConfig", "DEFAULT_MEMORY_BUDGET_BYTES"]

#: Default resident-set budget for one sharded scan: chunk buffers in
#: flight (parent + leases) must fit inside this.
DEFAULT_MEMORY_BUDGET_BYTES = 256 << 20

#: Scratch multiplier per resident node: successor + value + output
#: buffers plus kernel temporaries (pack schedule, tails, prefix).
_WORKING_SET_FACTOR = 4

#: Chunks smaller than this lose more to dispatch than they gain from
#: parallelism; the planner never goes below it (except n itself).
_MIN_CHUNK_NODES = 1024


@dataclass(frozen=True)
class DistributedConfig:
    """Tuning for :func:`repro.distribute.sharded_forest_scan`.

    ``memory_budget_bytes``
        Bound on the resident working set of one sharded scan — chunk
        copies, shared-memory leases and reduced-list scratch.  The
        planner sizes chunks so ``max_inflight`` of them fit.
    ``chunk_nodes`` / ``num_chunks``
        Pin the partition explicitly (``num_chunks`` wins); ``None``
        derives from the budget and the backend width.
    ``min_nodes``
        Engine routing threshold: fused shards at least this large go
        through the sharded path.  ``None`` derives it from the budget
        (shard when the whole working set would blow it); ``0`` shards
        everything (tests / CLI demos).
    ``max_inflight``
        Chunks resident at once (drives lease-pool admission).
        ``None`` → backend width.
    """

    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES
    chunk_nodes: int | None = None
    num_chunks: int | None = None
    min_nodes: int | None = None
    max_inflight: int | None = None

    def __post_init__(self) -> None:
        if self.memory_budget_bytes < 1:
            raise ValueError("memory_budget_bytes must be positive")
        if self.chunk_nodes is not None and self.chunk_nodes < 1:
            raise ValueError("chunk_nodes must be positive when given")
        if self.num_chunks is not None and self.num_chunks < 1:
            raise ValueError("num_chunks must be positive when given")
        if self.min_nodes is not None and self.min_nodes < 0:
            raise ValueError("min_nodes must be >= 0 when given")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be positive when given")

    def bytes_per_node(self, value_dtype: np.dtype) -> int:
        """Resident bytes one node costs while its chunk is in flight."""
        index_bytes = 8  # INDEX_DTYPE is int64
        return _WORKING_SET_FACTOR * (index_bytes + 2 * np.dtype(value_dtype).itemsize)

    def resolve_inflight(self, workers: int) -> int:
        return self.max_inflight if self.max_inflight is not None else max(1, workers)

    def resolve_num_chunks(self, n: int, value_dtype: np.dtype, workers: int) -> int:
        """How many chunks to carve ``n`` nodes into."""
        if n <= 0:
            return 1
        if self.num_chunks is not None:
            return int(min(self.num_chunks, max(1, n)))
        if self.chunk_nodes is not None:
            return int(max(1, -(-n // self.chunk_nodes)))
        # budget-derived: max_inflight chunks must fit the budget...
        inflight = self.resolve_inflight(workers)
        per_node = self.bytes_per_node(value_dtype)
        budget_chunk = max(_MIN_CHUNK_NODES, self.memory_budget_bytes // (per_node * inflight))
        chunks_for_budget = -(-n // budget_chunk)
        # ...but never fewer chunks than workers when the problem is
        # big enough to split usefully
        if n >= 2 * _MIN_CHUNK_NODES * workers:
            chunks_for_budget = max(chunks_for_budget, workers)
        return int(max(1, chunks_for_budget))

    def resolved_min_nodes(self, value_dtype: np.dtype) -> int:
        """Node count above which the engine routes to the sharded path."""
        if self.min_nodes is not None:
            return self.min_nodes
        return int(self.memory_budget_bytes // self.bytes_per_node(value_dtype))

    def should_shard(self, n_nodes: int, value_dtype: np.dtype) -> bool:
        """Capacity routing: shard when the fused working set would
        overrun the budget (PEM-style), not on predicted latency."""
        return n_nodes >= self.resolved_min_nodes(value_dtype)
