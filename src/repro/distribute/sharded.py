"""Three-phase sharded list scan over the engine's worker pool.

The distributed shape (Sanders/Schimek/Uhl/Weidmann, PAPERS.md):

1. **Contract** — each chunk of the successor array reduces, in
   parallel, to one ``(exit, segment-sum)`` pair per entry node
   (:func:`repro.distribute.chunks.contract_chunk`).
2. **Reduce** — the entry nodes form a list at most as long as the
   boundary set; the existing serial/Wyllie/sublist kernels solve it
   in the parent, router-selected like any fused shard.
3. **Expand** — each chunk reruns its local scan seeded with the entry
   carries from the reduced solve, producing final values in parallel.

Chunks reach worker processes through the same shared-memory transport
as fused shards (``engine.workers``); a :class:`~repro.distribute.
leases.LeaseGate` bounds the bytes in flight so the resident set stays
inside ``DistributedConfig.memory_budget_bytes`` even when the inputs
are ``np.memmap``-backed files much larger than RAM (the PEM-grounded
out-of-core mode — memmapped chunks are copied into bounded buffers
and their pages dropped as soon as each chunk retires).

Results are bit-identical to the in-memory kernels for integer
operators (associativity is exact); floating-point operators
re-associate across segment boundaries exactly like the sublist
algorithm itself and match within the documented tolerance
(``docs/kernels.md``).
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from ..core.operators import SUM, Operator, get_operator
from ..core.stats import ScanStats
from ..engine.router import Router, default_router
from ..engine.workers import (
    SHM_MIN_BYTES,
    ExecutionBackend,
    _alloc_out,
    _export_array,
    _release,
    create_backend,
    run_fused_kernel,
    shippable_operator,
)
from ..kernels.backend import KernelBackend
from ..lists.generate import INDEX_DTYPE, LinkedList
from ..trace.tracer import Tracer, null_span, resolve_trace
from .chunks import (
    ChunkResult,
    _ChunkTask,
    _contract_chunk_task,
    _expand_chunk_task,
    contract_chunk,
    expand_chunk,
)
from .config import DistributedConfig
from .leases import LeaseGate
from .oocore import drop_resident_range, flush_range
from .partition import find_entries, plan_chunks

__all__ = ["sharded_forest_scan", "sharded_list_scan", "sharded_list_rank"]


def _kernel_backend_name(kernel_backend: str | KernelBackend | None) -> str:
    if kernel_backend is None:
        return "numpy"
    if isinstance(kernel_backend, str):
        return kernel_backend
    return getattr(kernel_backend, "name", "numpy")


class _ChunkIO:
    """Chunk-granular array access with bounded residency.

    Slices in-memory arrays directly; copies memmap chunks into private
    buffers and drops the source pages immediately, so streaming a file
    much larger than RAM keeps only in-flight chunks resident.
    """

    def __init__(self, arr: np.ndarray) -> None:
        self.arr = arr
        self.is_memmap = isinstance(arr, np.memmap)

    def fetch(self, lo: int, hi: int, writable: bool = False) -> np.ndarray:
        sl = self.arr[lo:hi]
        if self.is_memmap or (writable and not sl.flags.writeable):
            buf = np.array(sl)
            if self.is_memmap:
                drop_resident_range(self.arr, lo, hi)
            return buf
        return sl

    def store(self, lo: int, hi: int, chunk: np.ndarray) -> None:
        self.arr[lo:hi] = chunk
        if self.is_memmap:
            flush_range(self.arr, lo, hi)
            drop_resident_range(self.arr, lo, hi)


def sharded_forest_scan(
    nxt: np.ndarray,
    values: np.ndarray,
    heads: np.ndarray,
    op: Operator | str = SUM,
    *,
    inclusive: bool = False,
    config: DistributedConfig | None = None,
    backend: ExecutionBackend | str | None = None,
    router: Router | None = None,
    rng: np.random.Generator | int | None = None,
    out: np.ndarray | None = None,
    stats: ScanStats | None = None,
    trace: str | Tracer | None = None,
    kernel_backend: str | KernelBackend | None = None,
    report: dict[str, Any] | None = None,
) -> np.ndarray:
    """Scan a forest too large for one fused kernel, in chunks.

    ``nxt``/``values`` (and ``out``) may be plain arrays or
    ``np.memmap`` instances — memmapped inputs stream chunk by chunk
    inside the configured memory budget.  ``backend`` is an engine
    :class:`~repro.engine.workers.ExecutionBackend` (shared with the
    caller) or an executor name to build privately; ``router`` picks
    the Phase-2 algorithm for the reduced list.  ``report``, when a
    dict, is filled with partition/reduction telemetry.

    The inputs are never modified.  Returns ``out``.
    """
    op = get_operator(op)
    cfg = config or DistributedConfig()
    tracer = resolve_trace(trace)
    span = tracer.span if tracer is not None else null_span
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    heads = np.ascontiguousarray(np.asarray(heads, dtype=INDEX_DTYPE).ravel())
    n = int(nxt.shape[0])
    if out is None:
        out = np.empty(values.shape, dtype=values.dtype)
    if n == 0:
        return out

    own_backend = not isinstance(backend, ExecutionBackend)
    exec_backend = (
        backend
        if isinstance(backend, ExecutionBackend)
        else create_backend(backend or "sync", None)
    )
    try:
        return _sharded_scan(
            nxt, values, heads, op, inclusive, cfg, exec_backend,
            router or default_router(), gen, out, stats, tracer, span,
            kernel_backend, report,
        )
    finally:
        if own_backend:
            exec_backend.close()


def _sharded_scan(
    nxt: np.ndarray,
    values: np.ndarray,
    heads: np.ndarray,
    op: Operator,
    inclusive: bool,
    cfg: DistributedConfig,
    backend: ExecutionBackend,
    router: Router,
    gen: np.random.Generator,
    out: np.ndarray,
    stats: ScanStats | None,
    tracer: Tracer | None,
    span: Any,
    kernel_backend: str | KernelBackend | None,
    report: dict[str, Any] | None,
) -> np.ndarray:
    n = int(nxt.shape[0])
    workers = int(getattr(backend, "max_workers", None) or 1)
    num_chunks = cfg.resolve_num_chunks(n, values.dtype, workers)
    ship = shippable_operator(op) if backend.offloads_kernels else None
    offload = ship is not None
    gate = LeaseGate(cfg.memory_budget_bytes)
    seed_root = int(gen.integers(0, 2**63))
    traced = tracer is not None and tracer.enabled
    kb_name = _kernel_backend_name(kernel_backend)
    nxt_io = _ChunkIO(nxt)
    values_io = _ChunkIO(values)
    out_io = _ChunkIO(out)
    merge_lock = threading.Lock()

    def merge_stats(kstats: ScanStats) -> None:
        if stats is not None:
            with merge_lock:
                stats.merge(kstats)

    def adopt(spans: list[dict[str, Any]], parent: Any) -> None:
        if traced and spans:
            from ..trace.export import span_from_dict

            assert tracer is not None
            with merge_lock:
                tracer.adopt([span_from_dict(rec) for rec in spans], parent=parent)

    with span(
        "sharded_scan",
        n=n,
        lists=int(heads.shape[0]),
        chunks=num_chunks,
        offload=offload,
        budget_bytes=cfg.memory_budget_bytes,
    ) as root_span:
        with span("plan", parent=root_span, chunks=num_chunks):
            plan = plan_chunks(n, num_chunks)
            entries_per_chunk = find_entries(
                lambda lo, hi: nxt_io.fetch(lo, hi), plan, heads
            )
        entries_all = (
            np.concatenate(entries_per_chunk)
            if entries_per_chunk
            else np.empty(0, dtype=INDEX_DTYPE)
        )
        entry_cuts = np.zeros(plan.num_chunks + 1, dtype=INDEX_DTYPE)
        for c, e in enumerate(entries_per_chunk):
            entry_cuts[c + 1] = entry_cuts[c] + e.shape[0]
        n_reduced = int(entries_all.shape[0])

        # ---------------- Phase 1: contract chunks in parallel --------
        with span("contract", parent=root_span, chunks=plan.num_chunks) as contract_span:

            def run_contract(c: int) -> ChunkResult:
                lo, hi = plan.bounds(c)
                entries = entries_per_chunk[c]
                if hi == lo or entries.shape[0] == 0:
                    return ChunkResult(
                        exits=np.empty(0, dtype=INDEX_DTYPE),
                        sums=np.empty(0, dtype=values.dtype),
                    )
                seed = seed_root + c
                if offload:
                    chunk_bytes = (
                        (hi - lo) * (nxt.dtype.itemsize + values.dtype.itemsize)
                        + entries.nbytes
                    )
                    with gate.admit(chunk_bytes):
                        leases: list[Any] = []
                        try:
                            assert ship is not None
                            op_name, pair, identity = ship
                            task = _ChunkTask(
                                nxt=_export_array(
                                    nxt_io.fetch(lo, hi), leases, SHM_MIN_BYTES
                                ),
                                values=_export_array(
                                    values_io.fetch(lo, hi), leases, SHM_MIN_BYTES
                                ),
                                lo=lo,
                                hi=hi,
                                entries=_export_array(entries, leases, SHM_MIN_BYTES),
                                op_name=op_name,
                                seed=seed,
                                traced=traced,
                                kernel_backend=kb_name,
                                pair=pair,
                                identity=identity,
                            )
                            exits, sums, kstats, spans = backend.run_task(
                                _contract_chunk_task, task
                            )
                        finally:
                            _release(leases, unlink=True)
                    merge_stats(kstats)
                    adopt(spans, contract_span)
                    return ChunkResult(exits=exits, sums=sums)
                kstats = ScanStats()
                with span(
                    "chunk_contract",
                    parent=contract_span,
                    chunk=c,
                    lo=lo,
                    hi=hi,
                    entries=int(entries.shape[0]),
                ):
                    result = contract_chunk(
                        nxt_io.fetch(lo, hi),
                        values_io.fetch(lo, hi, writable=True),
                        lo,
                        hi,
                        entries,
                        op,
                        np.random.default_rng(seed),
                        stats=kstats,
                        kernel_backend=kernel_backend,
                    )
                merge_stats(kstats)
                return result

            chunk_results = backend.map_shards(run_contract, list(range(plan.num_chunks)))

        # ---------------- Phase 2: solve the reduced list --------------
        reduced_algorithm = "serial"
        carries_all = np.empty(0, dtype=values.dtype)
        if n_reduced > 0:
            exits_all = np.concatenate([r.exits for r in chunk_results])
            sums_all = np.concatenate([r.sums for r in chunk_results]).astype(
                values.dtype, copy=False
            )
            reduced_nxt = np.arange(n_reduced, dtype=INDEX_DTYPE)
            linked = exits_all >= 0
            # every non-terminal exit is an entry node by construction,
            # and entries_all is globally sorted, so positions resolve
            # by binary search
            reduced_nxt[linked] = np.searchsorted(entries_all, exits_all[linked])
            reduced_heads = np.searchsorted(entries_all, heads).astype(
                INDEX_DTYPE, copy=False
            )
            reduced_algorithm = router.choose(n_reduced, int(heads.shape[0]))
            kstats = ScanStats()
            carries_all = np.empty(n_reduced, dtype=values.dtype)
            with span(
                "reduce",
                parent=root_span,
                n_reduced=n_reduced,
                algorithm=reduced_algorithm,
            ):
                run_fused_kernel(
                    reduced_nxt,
                    sums_all,
                    reduced_heads,
                    op,
                    False,  # exclusive: carries are prefixes *before* each entry
                    reduced_algorithm,
                    np.random.default_rng(seed_root + plan.num_chunks),
                    kstats,
                    carries_all,
                    tracer,
                    kernel_backend=kernel_backend,
                )
            merge_stats(kstats)

        # ---------------- Phase 3: expand chunks in parallel -----------
        with span("expand", parent=root_span, chunks=plan.num_chunks) as expand_span:

            def run_expand(c: int) -> None:
                lo, hi = plan.bounds(c)
                entries = entries_per_chunk[c]
                if hi == lo or entries.shape[0] == 0:
                    return
                carries = carries_all[entry_cuts[c] : entry_cuts[c + 1]]
                seed = seed_root + c  # same seed → same splitters as Phase 1
                if offload:
                    chunk_bytes = (
                        (hi - lo)
                        * (nxt.dtype.itemsize + 2 * values.dtype.itemsize)
                        + entries.nbytes
                        + carries.nbytes
                    )
                    with gate.admit(chunk_bytes):
                        leases: list[Any] = []
                        try:
                            assert ship is not None
                            op_name, pair, identity = ship
                            out_ref = _alloc_out(
                                (hi - lo,), values.dtype, leases, SHM_MIN_BYTES
                            )
                            task = _ChunkTask(
                                nxt=_export_array(
                                    nxt_io.fetch(lo, hi), leases, SHM_MIN_BYTES
                                ),
                                values=_export_array(
                                    values_io.fetch(lo, hi), leases, SHM_MIN_BYTES
                                ),
                                lo=lo,
                                hi=hi,
                                entries=_export_array(entries, leases, SHM_MIN_BYTES),
                                op_name=op_name,
                                seed=seed,
                                traced=traced,
                                kernel_backend=kb_name,
                                pair=pair,
                                identity=identity,
                                inclusive=inclusive,
                                carries=_export_array(carries, leases, SHM_MIN_BYTES),
                                out=out_ref,
                            )
                            payload, kstats, spans = backend.run_task(
                                _expand_chunk_task, task
                            )
                            if payload is not None:
                                out_io.store(lo, hi, np.asarray(payload))
                            else:
                                out_shm = leases[0]  # _alloc_out ran first
                                view = np.ndarray(
                                    (hi - lo,), dtype=values.dtype, buffer=out_shm.buf
                                )
                                out_io.store(lo, hi, view)
                                del view
                        finally:
                            _release(leases, unlink=True)
                    merge_stats(kstats)
                    adopt(spans, expand_span)
                    return
                kstats = ScanStats()
                out_c = np.empty(hi - lo, dtype=values.dtype)
                with span(
                    "chunk_expand",
                    parent=expand_span,
                    chunk=c,
                    lo=lo,
                    hi=hi,
                    entries=int(entries.shape[0]),
                ):
                    expand_chunk(
                        nxt_io.fetch(lo, hi),
                        values_io.fetch(lo, hi, writable=True),
                        lo,
                        hi,
                        entries,
                        carries,
                        op,
                        inclusive,
                        out_c,
                        np.random.default_rng(seed),
                        stats=kstats,
                        kernel_backend=kernel_backend,
                    )
                out_io.store(lo, hi, out_c)
                merge_stats(kstats)

            backend.map_shards(run_expand, list(range(plan.num_chunks)))

    if report is not None:
        report.update(
            num_chunks=plan.num_chunks,
            n_reduced=n_reduced,
            reduced_algorithm=reduced_algorithm,
            offloaded=offload,
            gate_peak_bytes=gate.peak_bytes,
            memory_budget_bytes=cfg.memory_budget_bytes,
        )
    return out


def sharded_list_scan(
    lst: LinkedList,
    op: Operator | str = SUM,
    inclusive: bool = False,
    **kwargs: Any,
) -> np.ndarray:
    """Sharded scan of one linked list (see :func:`sharded_forest_scan`)."""
    heads = np.asarray([lst.head], dtype=INDEX_DTYPE)
    return sharded_forest_scan(
        lst.next, lst.values, heads, op, inclusive=inclusive, **kwargs
    )


def sharded_list_rank(lst: LinkedList, **kwargs: Any) -> np.ndarray:
    """Rank every node (link distance from the head, head = 0): the
    exclusive all-ones sum, matching :func:`repro.core.list_rank`."""
    values = np.ones(lst.n, dtype=INDEX_DTYPE)
    heads = np.asarray([lst.head], dtype=INDEX_DTYPE)
    return sharded_forest_scan(lst.next, values, heads, SUM, inclusive=False, **kwargs)
