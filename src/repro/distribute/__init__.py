"""Sharded and out-of-core list ranking (``docs/distributed.md``).

The three-phase distributed shape — contract chunks in parallel, solve
the reduced boundary list with the existing kernels, expand back —
running on the engine's persistent worker pool, with an
``np.memmap``-backed streaming mode for lists larger than RAM.
"""

from .config import DEFAULT_MEMORY_BUDGET_BYTES, DistributedConfig
from .leases import LeaseGate
from .oocore import (
    MemmapList,
    create_output_memmap,
    open_memmap_list,
    write_memmap_list,
)
from .partition import ChunkPlan, find_entries, plan_chunks
from .sharded import sharded_forest_scan, sharded_list_rank, sharded_list_scan

__all__ = [
    "DEFAULT_MEMORY_BUDGET_BYTES",
    "ChunkPlan",
    "DistributedConfig",
    "LeaseGate",
    "MemmapList",
    "create_output_memmap",
    "find_entries",
    "open_memmap_list",
    "plan_chunks",
    "sharded_forest_scan",
    "sharded_list_rank",
    "sharded_list_scan",
    "write_memmap_list",
]
