"""Per-chunk contraction and expansion kernels.

One chunk of the three-phase distributed algorithm
(Sanders/Schimek/Uhl/Weidmann shape):

Phase 1 — :func:`contract_chunk`: cut the chunk's edges at entry nodes
and chunk boundaries, scan each resulting segment with the existing
forest kernels, and reduce it to one ``(exit, segment-sum)`` pair per
entry.  Phase 3 — :func:`expand_chunk`: rerun the same local scan
seeded with the entry carries the reduced global solve produced, which
yields every node's final rank/scan value.

Both kernels are pure functions of their chunk slice, so they run
anywhere: inline on the engine thread (``sync``/``threads``) or inside
a pool worker via the module-level ``_contract_chunk_task`` /
``_expand_chunk_task`` entry points, whose arrays travel through the
same ``_ArrayRef`` shared-memory transport the fused engine path uses.

Dense-entry chunks (poor layout locality: nearly every node is an
entry) skip the sublist machinery — its virtual-processor bookkeeping
degenerates when segments average a node or two — and pointer-jump
with the vectorised Wyllie kernel instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.forest import forest_list_scan, forest_tails, wyllie_forest_scan
from ..core.operators import Operator, get_operator
from ..core.stats import ScanStats
from ..kernels.backend import KernelBackend, resolve_backend
from ..kernels.pairs import PairSpec, operator_from_pair
from ..lists.generate import INDEX_DTYPE
from ..trace.tracer import Tracer
from ..engine.workers import _ArrayRef, _attach_array, _release

__all__ = ["contract_chunk", "expand_chunk", "ChunkResult"]

#: Above this entry density the local scan pointer-jumps (Wyllie)
#: instead of running the sublist kernel — see the module docstring.
DENSE_ENTRY_RATIO = 4


@dataclass
class ChunkResult:
    """Phase-1 output for one chunk: one slot per entry, entry order."""

    exits: np.ndarray  # global id of the segment's successor, -1 = list tail
    sums: np.ndarray  # operator-sum of the segment's values


def _local_successors(
    nxt_c: np.ndarray, lo: int, hi: int, entries_local: np.ndarray
) -> np.ndarray:
    """Chunk-local successor array with segments cut apart.

    An edge survives only when it stays inside the chunk, does not
    enter an entry node (that node starts the *next* segment), and is
    not a self-loop; every cut edge becomes a local self-loop, i.e. a
    segment tail.  The result is a forest of disjoint segments, each
    rooted at an entry — exactly what the forest kernels consume.
    """
    n_c = hi - lo
    idx = np.arange(n_c, dtype=INDEX_DTYPE)
    tgt = nxt_c.astype(INDEX_DTYPE, copy=False) - lo
    internal = (tgt >= 0) & (tgt < n_c) & (tgt != idx)
    entry_mask = np.zeros(n_c, dtype=bool)
    entry_mask[entries_local] = True
    enters_entry = np.zeros(n_c, dtype=bool)
    enters_entry[internal] = entry_mask[tgt[internal]]
    keep = internal & ~enters_entry
    return np.where(keep, tgt, idx).astype(INDEX_DTYPE, copy=False)


def _local_scan(
    loc_nxt: np.ndarray,
    values_c: np.ndarray,
    entries_local: np.ndarray,
    op: Operator,
    carries: np.ndarray | None,
    out: np.ndarray,
    rng: np.random.Generator,
    stats: ScanStats | None,
    trace: Tracer | None,
    kernel_backend: str | KernelBackend | None,
) -> None:
    """Exclusive scan of every segment, seeded by its carry."""
    n_c = loc_nxt.shape[0]
    if entries_local.shape[0] * DENSE_ENTRY_RATIO >= n_c:
        wyllie_forest_scan(loc_nxt, values_c, entries_local, op, carries, out, stats=stats)
        return
    forest_list_scan(
        loc_nxt,
        values_c,
        entries_local,
        op,
        carries=carries,
        rng=rng,
        stats=stats,
        out=out,
        trace=trace,
        kernel_backend=kernel_backend,
    )


def contract_chunk(
    nxt_c: np.ndarray,
    values_c: np.ndarray,
    lo: int,
    hi: int,
    entries: np.ndarray,
    op: Operator,
    rng: np.random.Generator,
    stats: ScanStats | None = None,
    trace: Tracer | None = None,
    kernel_backend: str | KernelBackend | None = None,
) -> ChunkResult:
    """Phase 1: reduce the chunk to one boundary pair per entry.

    ``nxt_c`` / ``values_c`` are the chunk's slices ``[lo:hi)`` of the
    global arrays; ``entries`` its sorted global entry ids.  Neither
    input is modified (``values_c`` must be writable — the kernels
    mutate and restore it in place, as everywhere in this codebase).
    """
    if entries.shape[0] == 0:
        empty_i = np.empty(0, dtype=INDEX_DTYPE)
        return ChunkResult(exits=empty_i, sums=np.empty(0, dtype=values_c.dtype))
    entries_local = (entries - lo).astype(INDEX_DTYPE, copy=False)
    loc_nxt = _local_successors(nxt_c, lo, hi, entries_local)
    prefix = np.empty_like(values_c)
    _local_scan(
        loc_nxt, values_c, entries_local, op, None, prefix, rng, stats, trace, kernel_backend
    )
    tails = forest_tails(loc_nxt, entries_local)
    sums = op.combine(prefix[tails], values_c[tails])
    exit_global = np.asarray(nxt_c)[tails].astype(INDEX_DTYPE, copy=False)
    # a tail whose *global* successor is itself ends the whole list
    exits = np.where(exit_global == tails + lo, -1, exit_global).astype(
        INDEX_DTYPE, copy=False
    )
    return ChunkResult(exits=exits, sums=np.ascontiguousarray(sums))


def expand_chunk(
    nxt_c: np.ndarray,
    values_c: np.ndarray,
    lo: int,
    hi: int,
    entries: np.ndarray,
    carries: np.ndarray,
    op: Operator,
    inclusive: bool,
    out_c: np.ndarray,
    rng: np.random.Generator,
    stats: ScanStats | None = None,
    trace: Tracer | None = None,
    kernel_backend: str | KernelBackend | None = None,
) -> None:
    """Phase 3: final per-node values for the chunk, written to ``out_c``.

    ``carries[k]`` is the global exclusive prefix at ``entries[k]`` —
    the reduced solve's output — which seeds the same segment scan
    Phase 1 ran, turning local offsets into global ranks.
    """
    if entries.shape[0] == 0:
        return
    entries_local = (entries - lo).astype(INDEX_DTYPE, copy=False)
    loc_nxt = _local_successors(nxt_c, lo, hi, entries_local)
    _local_scan(
        loc_nxt, values_c, entries_local, op, carries, out_c, rng, stats, trace, kernel_backend
    )
    if inclusive:
        out_c[...] = op.combine(out_c, values_c)


# ----------------------------------------------------------------------
# process-pool task entry points (picklable, module level)
# ----------------------------------------------------------------------


@dataclass
class _ChunkTask:
    """One chunk crossing the process boundary.

    Arrays travel as :class:`repro.engine.workers._ArrayRef` (shared
    memory above the inline threshold), the operator by name / pair
    opcode exactly like :class:`repro.engine.workers._FusedTask`.
    ``out`` is only set for expansion: a shared slot the worker fills,
    or ``None``/inline → the result rides back in the return payload.
    """

    nxt: _ArrayRef
    values: _ArrayRef
    lo: int
    hi: int
    entries: _ArrayRef
    op_name: str
    seed: int
    traced: bool
    kernel_backend: str = "numpy"
    pair: tuple[int, int, int, int] | None = None
    identity: Any = None
    inclusive: bool = False
    carries: _ArrayRef | None = None
    out: _ArrayRef | None = None


def _task_operator(task: _ChunkTask) -> Operator:
    if task.pair is not None:
        return operator_from_pair(
            task.op_name, PairSpec.from_tuple(task.pair), task.identity
        )
    return get_operator(task.op_name)


def _task_backend(task: _ChunkTask) -> KernelBackend:
    try:
        return resolve_backend(task.kernel_backend)
    except ValueError:  # pragma: no cover - worker env without numba
        return resolve_backend("numpy")


def _contract_chunk_task(
    task: _ChunkTask,
) -> tuple[np.ndarray, np.ndarray, ScanStats, list[dict[str, Any]]]:
    """Worker entry point for Phase 1: returns ``(exits, sums, stats, spans)``."""
    from ..trace.export import span_to_dict

    holds: list[Any] = []
    nxt_c = values_c = entries = None
    try:
        nxt_c = _attach_array(task.nxt, holds)
        values_c = _attach_array(task.values, holds)
        entries = _attach_array(task.entries, holds)
        tracer = Tracer() if task.traced else None
        kstats = ScanStats()
        result = contract_chunk(
            nxt_c,
            values_c,
            task.lo,
            task.hi,
            entries,
            _task_operator(task),
            np.random.default_rng(task.seed),
            stats=kstats,
            trace=tracer,
            kernel_backend=_task_backend(task),
        )
        spans = [span_to_dict(root) for root in tracer.roots] if tracer else []
        exits = result.exits.copy() if result.exits.base is not None else result.exits
        sums = result.sums.copy() if result.sums.base is not None else result.sums
        return exits, sums, kstats, spans
    finally:
        del nxt_c, values_c, entries
        _release(holds, unlink=False)


def _expand_chunk_task(
    task: _ChunkTask,
) -> tuple[np.ndarray | None, ScanStats, list[dict[str, Any]]]:
    """Worker entry point for Phase 3.

    Writes into the shared ``out`` slot when one was allocated (payload
    ``None``), otherwise returns the chunk's result array by value.
    """
    from ..trace.export import span_to_dict

    holds: list[Any] = []
    nxt_c = values_c = entries = carries = out_c = None
    try:
        nxt_c = _attach_array(task.nxt, holds)
        values_c = _attach_array(task.values, holds)
        entries = _attach_array(task.entries, holds)
        assert task.carries is not None and task.out is not None
        carries = _attach_array(task.carries, holds)
        out_c = _attach_array(task.out, holds)
        tracer = Tracer() if task.traced else None
        kstats = ScanStats()
        expand_chunk(
            nxt_c,
            values_c,
            task.lo,
            task.hi,
            entries,
            carries,
            _task_operator(task),
            task.inclusive,
            out_c,
            np.random.default_rng(task.seed),
            stats=kstats,
            trace=tracer,
            kernel_backend=_task_backend(task),
        )
        spans = [span_to_dict(root) for root in tracer.roots] if tracer else []
        payload = out_c if task.out.shm_name is None else None
        if payload is not None and payload.base is not None:
            payload = payload.copy()
        return payload, kstats, spans
    finally:
        del nxt_c, values_c, entries, carries, out_c
        _release(holds, unlink=False)
