"""Out-of-core helpers: memmapped lists with bounded residency.

Jacob/Lieber/Sitchinava's PEM analysis (PAPERS.md) motivates ranking
lists larger than RAM by streaming the successor array in chunks.
The NumPy side of that is ``np.memmap``; the part NumPy does not do is
keeping the *resident set* bounded — file-backed pages stay mapped and
counted against RSS until the kernel reclaims them, so a naive pass
over a 3×-RAM file peaks at machine capacity.  :func:`drop_resident_
range` evicts a processed chunk's pages immediately (``madvise(MADV_
DONTNEED)`` on the element range, best effort), and :func:`flush_
range` commits written output pages first so nothing is lost.

:func:`write_memmap_list` builds benchmark/test lists directly on disk
without ever materialising them in memory (ordered or blocked layouts,
written chunk by chunk), and :func:`open_memmap_list` maps them back.
"""

from __future__ import annotations

import json
import mmap
from contextlib import suppress
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..lists.generate import INDEX_DTYPE
from ..sanitize.runtime import note_memmap, note_memmap_flush

__all__ = [
    "MemmapList",
    "create_output_memmap",
    "drop_resident_range",
    "flush_range",
    "open_memmap_list",
    "write_memmap_list",
]

_META_NAME = "list.json"
_NEXT_NAME = "next.dat"
_VALUES_NAME = "values.dat"

#: Streaming write granularity for :func:`write_memmap_list`.
_WRITE_CHUNK = 1 << 20


def _byte_range(arr: np.memmap, lo: int, hi: int) -> tuple[int, int]:
    """Page-aligned (start, length) of elements ``[lo, hi)`` within the
    mapping, clamped to the map."""
    page = mmap.PAGESIZE
    start = arr.offset + lo * arr.dtype.itemsize
    stop = arr.offset + hi * arr.dtype.itemsize
    start = (start // page) * page
    stop = min(-(-stop // page) * page, arr.offset + arr.nbytes)
    return start, max(0, stop - start)


def drop_resident_range(arr: np.ndarray, lo: int, hi: int) -> None:
    """Evict elements ``[lo, hi)`` of a memmap from this process's
    resident set (best effort; a plain ndarray is a no-op).

    For a ``MAP_SHARED`` file mapping ``MADV_DONTNEED`` only drops the
    process's page references — file contents are untouched (dirty
    pages must be flushed first; see :func:`flush_range`).
    """
    if not isinstance(arr, np.memmap) or hi <= lo:
        return
    raw = getattr(arr, "_mmap", None)
    if raw is None:
        return
    start, length = _byte_range(arr, lo, hi)
    if length <= 0:
        return
    with suppress(Exception):  # madvise is advisory everywhere
        raw.madvise(mmap.MADV_DONTNEED, start, length)


def flush_range(arr: np.ndarray, lo: int, hi: int) -> None:
    """Commit written elements ``[lo, hi)`` of a memmap to its file."""
    if not isinstance(arr, np.memmap) or hi <= lo:
        return
    raw = getattr(arr, "_mmap", None)
    if raw is None:
        return
    start, length = _byte_range(arr, lo, hi)
    if length <= 0:
        return
    with suppress(Exception):
        raw.flush(start, length)
        note_memmap_flush(arr)


@dataclass(frozen=True)
class MemmapList:
    """A linked list whose arrays live in files, not RAM.

    Deliberately *not* a :class:`repro.lists.generate.LinkedList` —
    that class's contiguity normalisation would hide the memmap types
    the streaming path keys off.  ``next``/``values`` are ``np.memmap``
    instances opened read-only by default.
    """

    next: np.memmap
    values: np.memmap
    head: int

    @property
    def n(self) -> int:
        return int(self.next.shape[0])


def write_memmap_list(
    directory: str | Path,
    n: int,
    layout: str = "ordered",
    block: int = 1 << 16,
    value_dtype: np.dtype = INDEX_DTYPE,
    seed: int = 0,
) -> Path:
    """Stream a list of ``n`` nodes onto disk; returns the directory.

    Layouts mirror ``lists.generate`` but are written chunk by chunk so
    peak memory stays O(chunk), letting tests and benches build lists
    far larger than the configured budget:

    ``ordered``
        ``next[i] = i + 1`` — the fully local layout.
    ``blocked``
        node order permuted independently inside each ``block``-sized
        window (seeded), so links stay window-local but non-trivial —
        the locality story of ``lists.generate.blocked_list``.

    Values are all ones (the list-ranking convention), so the expected
    exclusive scan at a node equals its rank.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if n < 1:
        raise ValueError("n must be >= 1")
    if layout not in ("ordered", "blocked"):
        raise ValueError(f"unknown memmap layout {layout!r}")
    nxt_mm = np.memmap(
        directory / _NEXT_NAME, dtype=INDEX_DTYPE, mode="w+", shape=(n,)
    )
    note_memmap(nxt_mm, str(directory / _NEXT_NAME), "w+")
    val_mm = np.memmap(
        directory / _VALUES_NAME, dtype=np.dtype(value_dtype), mode="w+", shape=(n,)
    )
    note_memmap(val_mm, str(directory / _VALUES_NAME), "w+")
    rng = np.random.default_rng(seed)
    head = 0
    try:
        if layout == "ordered":
            for lo in range(0, n, _WRITE_CHUNK):
                hi = min(n, lo + _WRITE_CHUNK)
                nxt_mm[lo:hi] = np.arange(lo + 1, hi + 1, dtype=INDEX_DTYPE)
                val_mm[lo:hi] = 1
                flush_range(nxt_mm, lo, hi)
                flush_range(val_mm, lo, hi)
                drop_resident_range(nxt_mm, lo, hi)
                drop_resident_range(val_mm, lo, hi)
            nxt_mm[n - 1] = n - 1  # tail self-loop
            head = 0
        else:  # blocked: permute node ids window by window
            block = max(2, int(block))
            prev: int | None = None
            for lo in range(0, n, block):
                hi = min(n, lo + block)
                order = lo + rng.permutation(hi - lo).astype(INDEX_DTYPE)
                # list order visits this window's nodes in `order`; link
                # the previous window's last node into our first
                nxt_window = np.empty(hi - lo, dtype=INDEX_DTYPE)
                nxt_window[order[:-1] - lo] = order[1:]
                nxt_window[order[-1] - lo] = order[-1]  # provisional tail
                nxt_mm[lo:hi] = nxt_window
                val_mm[lo:hi] = 1
                if prev is None:
                    head = int(order[0])
                else:
                    nxt_mm[prev] = order[0]
                prev = int(order[-1])
                flush_range(nxt_mm, lo, hi)
                flush_range(val_mm, lo, hi)
                drop_resident_range(nxt_mm, lo, hi)
                drop_resident_range(val_mm, lo, hi)
    finally:
        nxt_mm.flush()
        val_mm.flush()
        del nxt_mm, val_mm
    meta = {
        "n": n,
        "head": head,
        "layout": layout,
        "value_dtype": np.dtype(value_dtype).str,
        "seed": seed,
    }
    (directory / _META_NAME).write_text(json.dumps(meta))
    return directory


def open_memmap_list(directory: str | Path, mode: str = "r") -> MemmapList:
    """Map a list written by :func:`write_memmap_list`."""
    directory = Path(directory)
    meta = json.loads((directory / _META_NAME).read_text())
    n = int(meta["n"])
    nxt = np.memmap(directory / _NEXT_NAME, dtype=INDEX_DTYPE, mode=mode, shape=(n,))
    note_memmap(nxt, str(directory / _NEXT_NAME), mode)
    values = np.memmap(
        directory / _VALUES_NAME, dtype=np.dtype(meta["value_dtype"]), mode=mode, shape=(n,)
    )
    note_memmap(values, str(directory / _VALUES_NAME), mode)
    return MemmapList(next=nxt, values=values, head=int(meta["head"]))


def create_output_memmap(
    directory: str | Path, n: int, dtype: np.dtype = INDEX_DTYPE
) -> np.memmap:
    """Writable output array on disk for an out-of-core scan."""
    path = Path(directory) / "out.dat"
    out = np.memmap(path, dtype=np.dtype(dtype), mode="w+", shape=(n,))
    note_memmap(out, str(path), "w+")
    return out
