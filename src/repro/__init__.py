"""repro — List Ranking and List Scan on the (simulated) Cray C-90.

A full reproduction of Reid-Miller & Blelloch, *List Ranking and List
Scan on the Cray C-90* (CMU-CS-94-101, SPAA 1994): the work-efficient
sublist list-scan algorithm, the four comparison algorithms (serial,
Wyllie, Miller/Reif random mate, Anderson/Miller), the Section 4
analytical performance model (sublist-length distribution, optimal
pack schedules, parameter tuning), and a cycle-cost simulator of the
Cray C-90 vector multiprocessor that regenerates every figure and
table of the paper's evaluation.

Quick start::

    import numpy as np
    from repro import random_list, list_rank, list_scan

    lst = random_list(1_000_000, rng=0)
    ranks = list_rank(lst)                 # position of each node
    sums = list_scan(lst, "sum")           # exclusive prefix sums

Simulated Cray C-90 run::

    from repro import sublist_scan_sim, CRAY_C90

    result = sublist_scan_sim(lst, n_processors=8)
    print(result.ns_per_element, "ns/element on", result.config.name)
"""

from .analysis.cost_model import KernelCosts, PAPER_C90_COSTS
from .analysis.distribution import (
    expected_live_sublists,
    expected_longest,
    expected_order_stat,
)
from .analysis.predict import predict_curve, predict_run
from .apps.euler_tour import build_euler_tour, random_parent_tree, tree_measures
from .apps.load_balance import partition_list
from .apps.recurrence import recurrence_list, solve_linear_recurrence
from .apps.reorder import list_to_array, scan_via_reorder
from .apps.tree_contraction import (
    ExpressionTree,
    evaluate_expression_tree,
    random_expression_tree,
)
from .baselines.anderson_miller import anderson_miller_list_scan
from .baselines.random_mate import random_mate_list_scan
from .baselines.serial import serial_list_rank, serial_list_scan
from .baselines.wyllie import wyllie_list_rank, wyllie_list_scan
from .core.list_scan import ALGORITHMS, list_rank, list_scan
from .core.operators import (
    AFFINE,
    AND,
    MAX,
    MIN,
    OR,
    PROD,
    SUM,
    XOR,
    Operator,
    get_operator,
)
from .analysis.extensions import early_reconnect_advantage, with_half_length
from .core.early_reconnect import early_reconnect_list_scan
from .core.forest import forest_list_scan
from .core.segmented import segmented_list_scan, segmented_operator
from .core.schedule import optimal_schedule, uniform_schedule
from .core.stats import ScanStats
from .core.sublist import SublistConfig, sublist_list_rank, sublist_list_scan
from .core.tuning import fit_polylog, tuned_parameters
from .lists.convert import rank_to_order, reorder_by_rank
from .lists.generate import (
    LinkedList,
    blocked_list,
    from_order,
    ordered_list,
    pathological_bank_list,
    random_list,
    reversed_list,
)
from .lists.validate import ListStructureError, is_valid_list, validate_list_strict
from .machine.config import CRAY_C90, CRAY_YMP, DECSTATION_5000, MachineConfig
from .machine.vm import VectorVM
from .simulate.contraction_sim import anderson_miller_scan_sim, random_mate_scan_sim
from .simulate.result import SimResult
from .simulate.serial_sim import serial_scan_sim
from .simulate.sublist_sim import SimSublistConfig, sublist_rank_sim, sublist_scan_sim
from .simulate.wyllie_sim import wyllie_rank_sim, wyllie_scan_sim

__version__ = "1.0.0"

__all__ = [
    # lists
    "LinkedList",
    "random_list",
    "ordered_list",
    "reversed_list",
    "blocked_list",
    "pathological_bank_list",
    "from_order",
    "rank_to_order",
    "reorder_by_rank",
    "validate_list_strict",
    "is_valid_list",
    "ListStructureError",
    # operators
    "Operator",
    "get_operator",
    "SUM",
    "PROD",
    "MIN",
    "MAX",
    "XOR",
    "AND",
    "OR",
    "AFFINE",
    # core API
    "list_scan",
    "list_rank",
    "ALGORITHMS",
    "ScanStats",
    "SublistConfig",
    "sublist_list_scan",
    "sublist_list_rank",
    "optimal_schedule",
    "uniform_schedule",
    "tuned_parameters",
    "fit_polylog",
    # baselines
    "serial_list_scan",
    "serial_list_rank",
    "wyllie_list_scan",
    "wyllie_list_rank",
    "random_mate_list_scan",
    "anderson_miller_list_scan",
    # analysis
    "KernelCosts",
    "PAPER_C90_COSTS",
    "expected_live_sublists",
    "expected_longest",
    "expected_order_stat",
    "predict_run",
    "predict_curve",
    # machine + simulation
    "MachineConfig",
    "CRAY_C90",
    "CRAY_YMP",
    "DECSTATION_5000",
    "VectorVM",
    "SimResult",
    "SimSublistConfig",
    "serial_scan_sim",
    "wyllie_scan_sim",
    "wyllie_rank_sim",
    "sublist_scan_sim",
    "sublist_rank_sim",
    "random_mate_scan_sim",
    "anderson_miller_scan_sim",
    # extensions
    "early_reconnect_list_scan",
    "forest_list_scan",
    "segmented_list_scan",
    "segmented_operator",
    "early_reconnect_advantage",
    "with_half_length",
    # apps
    "ExpressionTree",
    "evaluate_expression_tree",
    "random_expression_tree",
    "recurrence_list",
    "solve_linear_recurrence",
    "build_euler_tour",
    "tree_measures",
    "random_parent_tree",
    "partition_list",
    "list_to_array",
    "scan_via_reorder",
]
