"""Pluggable compiled-kernel backends for the hot scan loops.

See ``kernels.backend`` for the backend matrix and selection
precedence, ``kernels.pairs`` for the ``(companion, cross, plus)``
operator-pair formulation, and ``kernels.loops`` for the loop kernels
themselves.  Documentation: ``docs/kernels.md``.
"""

from .backend import (
    ENV_VAR,
    KernelBackend,
    NumbaBackend,
    NumpyBackend,
    PythonLoopBackend,
    available_backends,
    default_backend_name,
    resolve_backend,
)
from .loops import BLOCK, HAVE_NUMBA
from .pairs import (
    OPCODE_UFUNCS,
    PairSpec,
    operator_from_pair,
    pair_for,
    register_pair,
)

__all__ = [
    "ENV_VAR",
    "KernelBackend",
    "NumbaBackend",
    "NumpyBackend",
    "PythonLoopBackend",
    "available_backends",
    "default_backend_name",
    "resolve_backend",
    "BLOCK",
    "HAVE_NUMBA",
    "OPCODE_UFUNCS",
    "PairSpec",
    "operator_from_pair",
    "pair_for",
    "register_pair",
]
