"""The three hot loops as compilable scalar kernels.

``core.sublist`` / ``core.forest`` run the paper's kernels one NumPy
array-op per lock-step vector step.  This module re-expresses the three
hottest of them as explicit scalar loops over the same arrays:

* the Phase-1/Phase-3 lock-step gather traversal (per virtual
  processor: gather value, fold, follow successor — ``gap`` steps);
* the pack/compress step driven by ``core.schedule`` (scatter finished
  sublists out, compact the live virtual processors in place);
* the Phase-2 reduced-list scan, as a Blelloch up-sweep/down-sweep
  *blocked* exclusive scan with a running inter-block carry — the shape
  of SNIPPETS.md snippet 1 — applied to the reduced chains in traversal
  order.

Every kernel is generic over the ``(companion, cross, plus)`` operator
pair formulation (``kernels.pairs``): scalar operators dispatch on one
opcode, width-2 operators (``AFFINE``) on three.  The loops are written
to be ``numba.njit``-compilable *and* runnable as plain Python — the
factory :func:`build_kernels` produces either build from the same
source, so the interpreted build (the ``"python"`` backend) tests
exactly the code the ``"numba"`` backend compiles, on hosts without
numba.

Numerics: the traversal and pack kernels perform the same per-element
operations in the same order as the NumPy path, so their results are
bit-identical for every supported dtype.  The blocked Phase-2 scan
*re-associates* (tree order instead of chain order): exact for integer
operators (associativity is exact mod 2**64), within documented
tolerance for floats (see ``docs/kernels.md``).  NaN caveat: the
MIN/MAX branches use comparisons, which do not propagate NaN the way
``np.minimum`` does — NaN inputs are undefined for comparison operators
here (the engine's validation rejects them upstream).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from .pairs import OP_ADD, OP_AND, OP_MAX, OP_MIN, OP_MUL, OP_OR, OP_XOR

__all__ = ["HAVE_NUMBA", "BLOCK", "build_kernels", "py_kernels", "jit_kernels"]

try:  # pragma: no cover - exercised only on hosts with numba
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the baked-in CI image lacks numba
    numba = None  # type: ignore[assignment]
    HAVE_NUMBA = False

#: Blelloch block length for the Phase-2 blocked scan (power of two;
#: snippet 1 uses work-group-sized blocks the same way).
BLOCK = 256


def build_kernels(jit: Callable[[Any], Any]) -> dict[str, Any]:
    """Build the kernel set, wrapping every function with ``jit``.

    ``jit`` is either the identity (interpreted build) or
    ``numba.njit(...)`` (compiled build); the two builds share this one
    definition, so they cannot drift apart.
    """

    @jit
    def combine(code: int, x: Any, y: Any) -> Any:
        # scalar opcode dispatch; x is earlier in list order.  The
        # bitwise branches go through an int64 cast so the function
        # types under float arguments too (those branches are
        # unreachable for floats — supports() gates bitwise opcodes to
        # signed-integer dtypes).
        if code == OP_ADD:
            return x + y
        if code == OP_MUL:
            return x * y
        if code == OP_MIN:
            return x if x < y else y
        if code == OP_MAX:
            return x if x > y else y
        if code == OP_XOR:
            return np.int64(x) ^ np.int64(y)
        if code == OP_AND:
            return np.int64(x) & np.int64(y)
        return np.int64(x) | np.int64(y)

    # ------------------------------------------------------------------
    # lock-step gather traversal (Phases 1 and 3)
    # ------------------------------------------------------------------

    @jit
    def phase1_traverse(nxt, values, vp_next, vp_sum, gap, code):  # type: ignore[no-untyped-def]
        for k in range(vp_next.shape[0]):
            cur = vp_next[k]
            acc = vp_sum[k]
            for _ in range(gap):
                acc = combine(code, acc, values[cur])
                cur = nxt[cur]
            vp_next[k] = cur
            vp_sum[k] = acc

    @jit
    def phase1_traverse_pair(nxt, values, vp_next, vp_sum, gap, cc, xc, pc):  # type: ignore[no-untyped-def]
        for k in range(vp_next.shape[0]):
            cur = vp_next[k]
            af = vp_sum[k, 0]
            as_ = vp_sum[k, 1]
            for _ in range(gap):
                vf = values[cur, 0]
                vs = values[cur, 1]
                nf = combine(cc, af, vf)
                ns = combine(pc, combine(xc, as_, vf), vs)
                af = nf
                as_ = ns
                cur = nxt[cur]
            vp_next[k] = cur
            vp_sum[k, 0] = af
            vp_sum[k, 1] = as_

    @jit
    def phase3_traverse(nxt, values, vp_next, vp_sum, gap, code, out):  # type: ignore[no-untyped-def]
        for k in range(vp_next.shape[0]):
            cur = vp_next[k]
            acc = vp_sum[k]
            for _ in range(gap):
                out[cur] = acc
                acc = combine(code, acc, values[cur])
                cur = nxt[cur]
            vp_next[k] = cur
            vp_sum[k] = acc

    @jit
    def phase3_traverse_pair(nxt, values, vp_next, vp_sum, gap, cc, xc, pc, out):  # type: ignore[no-untyped-def]
        for k in range(vp_next.shape[0]):
            cur = vp_next[k]
            af = vp_sum[k, 0]
            as_ = vp_sum[k, 1]
            for _ in range(gap):
                out[cur, 0] = af
                out[cur, 1] = as_
                vf = values[cur, 0]
                vs = values[cur, 1]
                nf = combine(cc, af, vf)
                ns = combine(pc, combine(xc, as_, vf), vs)
                af = nf
                as_ = ns
                cur = nxt[cur]
            vp_next[k] = cur
            vp_sum[k, 0] = af
            vp_sum[k, 1] = as_

    # ------------------------------------------------------------------
    # pack/compress (the step core.schedule's gap sequence drives)
    # ------------------------------------------------------------------

    @jit
    def pack_phase1(nxt, vp_next, vp_sum, vp_proc, sl_sum, sl_tail):  # type: ignore[no-untyped-def]
        live = 0
        for k in range(vp_next.shape[0]):
            cur = vp_next[k]
            if nxt[cur] == cur:
                proc = vp_proc[k]
                sl_sum[proc] = vp_sum[k]
                sl_tail[proc] = cur
            else:
                vp_next[live] = cur
                vp_sum[live] = vp_sum[k]
                vp_proc[live] = vp_proc[k]
                live += 1
        return live

    @jit
    def pack_phase1_pair(nxt, vp_next, vp_sum, vp_proc, sl_sum, sl_tail):  # type: ignore[no-untyped-def]
        live = 0
        for k in range(vp_next.shape[0]):
            cur = vp_next[k]
            if nxt[cur] == cur:
                proc = vp_proc[k]
                sl_sum[proc, 0] = vp_sum[k, 0]
                sl_sum[proc, 1] = vp_sum[k, 1]
                sl_tail[proc] = cur
            else:
                vp_next[live] = cur
                vp_sum[live, 0] = vp_sum[k, 0]
                vp_sum[live, 1] = vp_sum[k, 1]
                vp_proc[live] = vp_proc[k]
                live += 1
        return live

    @jit
    def pack_phase3(nxt, vp_next, vp_sum, out):  # type: ignore[no-untyped-def]
        live = 0
        for k in range(vp_next.shape[0]):
            cur = vp_next[k]
            if nxt[cur] == cur:
                out[cur] = vp_sum[k]
            else:
                vp_next[live] = cur
                vp_sum[live] = vp_sum[k]
                live += 1
        return live

    @jit
    def pack_phase3_pair(nxt, vp_next, vp_sum, out):  # type: ignore[no-untyped-def]
        live = 0
        for k in range(vp_next.shape[0]):
            cur = vp_next[k]
            if nxt[cur] == cur:
                out[cur, 0] = vp_sum[k, 0]
                out[cur, 1] = vp_sum[k, 1]
            else:
                vp_next[live] = cur
                vp_sum[live, 0] = vp_sum[k, 0]
                vp_sum[live, 1] = vp_sum[k, 1]
                live += 1
        return live

    # ------------------------------------------------------------------
    # Phase-2 reduced-list scan: Blelloch blocked exclusive scan
    # (snippet-1 shape: per-block up-sweep / clear-root / down-sweep,
    # with a running carry chaining the blocks)
    # ------------------------------------------------------------------

    @jit
    def blocked_exscan(vals, scanned, seed, ident, code, block, temp):  # type: ignore[no-untyped-def]
        m = vals.shape[0]
        carry = seed
        base = 0
        while base < m:
            size = m - base
            if size > block:
                size = block
            for i in range(size):
                temp[i] = vals[base + i]
            for i in range(size, block):
                temp[i] = ident
            # up-sweep (reduce)
            offset = 1
            d = block >> 1
            while d > 0:
                for i in range(d):
                    ai = offset * (2 * i + 1) - 1
                    bi = offset * (2 * i + 2) - 1
                    temp[bi] = combine(code, temp[ai], temp[bi])
                offset <<= 1
                d >>= 1
            total = temp[block - 1]
            temp[block - 1] = ident
            # down-sweep: left child takes the parent prefix, right
            # child takes combine(parent prefix, left subtree sum) —
            # the earlier operand stays on the left, so the sweep is
            # valid for non-commutative operators too.
            d = 1
            while d < block:
                offset >>= 1
                for i in range(d):
                    ai = offset * (2 * i + 1) - 1
                    bi = offset * (2 * i + 2) - 1
                    t = temp[ai]
                    par = temp[bi]
                    temp[ai] = par
                    temp[bi] = combine(code, par, t)
                d <<= 1
            for i in range(size):
                scanned[base + i] = combine(code, carry, temp[i])
            carry = combine(code, carry, total)
            base += block

    @jit
    def blocked_exscan_pair(  # type: ignore[no-untyped-def]
        vals, scanned, seed_f, seed_s, ident_f, ident_s, cc, xc, pc, block, temp
    ):
        m = vals.shape[0]
        carry_f = seed_f
        carry_s = seed_s
        base = 0
        while base < m:
            size = m - base
            if size > block:
                size = block
            for i in range(size):
                temp[i, 0] = vals[base + i, 0]
                temp[i, 1] = vals[base + i, 1]
            for i in range(size, block):
                temp[i, 0] = ident_f
                temp[i, 1] = ident_s
            offset = 1
            d = block >> 1
            while d > 0:
                for i in range(d):
                    ai = offset * (2 * i + 1) - 1
                    bi = offset * (2 * i + 2) - 1
                    f1 = temp[ai, 0]
                    s1 = temp[ai, 1]
                    f2 = temp[bi, 0]
                    s2 = temp[bi, 1]
                    temp[bi, 0] = combine(cc, f1, f2)
                    temp[bi, 1] = combine(pc, combine(xc, s1, f2), s2)
                offset <<= 1
                d >>= 1
            tot_f = temp[block - 1, 0]
            tot_s = temp[block - 1, 1]
            temp[block - 1, 0] = ident_f
            temp[block - 1, 1] = ident_s
            d = 1
            while d < block:
                offset >>= 1
                for i in range(d):
                    ai = offset * (2 * i + 1) - 1
                    bi = offset * (2 * i + 2) - 1
                    tf = temp[ai, 0]
                    ts = temp[ai, 1]
                    pf = temp[bi, 0]
                    ps = temp[bi, 1]
                    temp[ai, 0] = pf
                    temp[ai, 1] = ps
                    temp[bi, 0] = combine(cc, pf, tf)
                    temp[bi, 1] = combine(pc, combine(xc, ps, tf), ts)
                d <<= 1
            for i in range(size):
                f = temp[i, 0]
                s = temp[i, 1]
                scanned[base + i, 0] = combine(cc, carry_f, f)
                scanned[base + i, 1] = combine(pc, combine(xc, carry_s, f), s)
            nf = combine(cc, carry_f, tot_f)
            ns = combine(pc, combine(xc, carry_s, tot_f), tot_s)
            carry_f = nf
            carry_s = ns
            base += block

    @jit
    def reduced_scan(  # type: ignore[no-untyped-def]
        nxt, sums, seeds, heads, ident, code, block, out, order, ordered, scanned, temp
    ):
        # one chain per head: serialize the reduced chain in traversal
        # order, blocked-Blelloch-scan it, scatter the prefixes back.
        limit = order.shape[0]
        for k in range(heads.shape[0]):
            cur = heads[k]
            cnt = 0
            terminated = False
            while cnt < limit:
                order[cnt] = cur
                cnt += 1
                succ = nxt[cur]
                if succ == cur:
                    terminated = True
                    break
                cur = succ
            if not terminated:
                return -1
            for i in range(cnt):
                ordered[i] = sums[order[i]]
            blocked_exscan(
                ordered[:cnt], scanned[:cnt], seeds[k], ident, code, block, temp
            )
            for i in range(cnt):
                out[order[i]] = scanned[i]
        return 0

    @jit
    def reduced_scan_pair(  # type: ignore[no-untyped-def]
        nxt,
        sums,
        seeds,
        heads,
        ident_f,
        ident_s,
        cc,
        xc,
        pc,
        block,
        out,
        order,
        ordered,
        scanned,
        temp,
    ):
        limit = order.shape[0]
        for k in range(heads.shape[0]):
            cur = heads[k]
            cnt = 0
            terminated = False
            while cnt < limit:
                order[cnt] = cur
                cnt += 1
                succ = nxt[cur]
                if succ == cur:
                    terminated = True
                    break
                cur = succ
            if not terminated:
                return -1
            for i in range(cnt):
                ordered[i, 0] = sums[order[i], 0]
                ordered[i, 1] = sums[order[i], 1]
            blocked_exscan_pair(
                ordered[:cnt],
                scanned[:cnt],
                seeds[k, 0],
                seeds[k, 1],
                ident_f,
                ident_s,
                cc,
                xc,
                pc,
                block,
                temp,
            )
            for i in range(cnt):
                out[order[i], 0] = scanned[i, 0]
                out[order[i], 1] = scanned[i, 1]
        return 0

    return {
        "combine": combine,
        "phase1_traverse": phase1_traverse,
        "phase1_traverse_pair": phase1_traverse_pair,
        "phase3_traverse": phase3_traverse,
        "phase3_traverse_pair": phase3_traverse_pair,
        "pack_phase1": pack_phase1,
        "pack_phase1_pair": pack_phase1_pair,
        "pack_phase3": pack_phase3,
        "pack_phase3_pair": pack_phase3_pair,
        "blocked_exscan": blocked_exscan,
        "blocked_exscan_pair": blocked_exscan_pair,
        "reduced_scan": reduced_scan,
        "reduced_scan_pair": reduced_scan_pair,
    }


_PY_KERNELS: dict[str, Any] | None = None
_JIT_KERNELS: dict[str, Any] | None = None


def py_kernels() -> dict[str, Any]:
    """The interpreted build (plain Python; always available)."""
    global _PY_KERNELS
    if _PY_KERNELS is None:
        _PY_KERNELS = build_kernels(lambda fn: fn)
    return _PY_KERNELS


def jit_kernels() -> dict[str, Any]:
    """The numba build, compiled lazily on first use.

    ``nogil=True`` lets jitted kernels overlap under the ``threads``
    executor; ``fastmath`` stays off so float results are reproducible
    operation for operation.
    """
    global _JIT_KERNELS
    if not HAVE_NUMBA:  # pragma: no cover - numba absent in the CI image
        raise RuntimeError(
            "the numba kernel backend was requested but numba is not "
            "importable; install numba or select kernel_backend='numpy'"
        )
    if _JIT_KERNELS is None:  # pragma: no cover - needs numba
        _JIT_KERNELS = build_kernels(numba.njit(nogil=True, cache=True))
    return _JIT_KERNELS
