"""The ``(companion, cross, plus)`` operator-pair formulation.

Blelloch's scan generalizes from plain semigroup reduction to
first-order linear recurrences ``x_{k+1} = a_k · x_k + b_k`` by scanning
*pairs* ``z = (first, second)`` under the point operator

    op_point(z1, z2) = (companion(z1.first, z2.first),
                        plus(cross(z1.second, z2.first), z2.second))

where ``z1`` is earlier in list order (SNIPPETS.md snippets 2–3 are the
classic C formulation).  Every builtin scalar operator is the degenerate
case that uses only ``companion`` on the first component, and ``AFFINE``
is exactly the width-2 case with ``companion = cross = multiply`` and
``plus = add`` — so one pair-generic kernel covers all of them.

A :class:`PairSpec` is *plain data* (three small opcode integers plus a
width), which is what makes the compiled backend operator-generic and
what lets the engine ship pair-formulated operators across the process
boundary without pickling callables (see ``engine.workers``).

Custom operators opt in with :func:`register_pair`; the registrant
promises that ``op.combine`` computes exactly the pair formula for the
registered opcodes.  :func:`pair_for` only honors a registration whose
operator is the *identical* object, so a look-alike operator shadowing a
registered name can never ride the wrong opcodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.operators import (
    AFFINE,
    AND,
    BUILTIN_OPERATORS,
    MAX,
    MIN,
    OR,
    PROD,
    SUM,
    XOR,
    Operator,
)

__all__ = [
    "PairSpec",
    "OP_ADD",
    "OP_MUL",
    "OP_MIN",
    "OP_MAX",
    "OP_XOR",
    "OP_AND",
    "OP_OR",
    "OPCODE_UFUNCS",
    "BITWISE_OPCODES",
    "pair_for",
    "register_pair",
    "operator_from_pair",
]

# Scalar component opcodes.  The compiled loops dispatch on these with a
# small branch chain (see ``kernels.loops._make_kernels``); the order
# here must match ``OPCODE_UFUNCS``.
OP_ADD = 0
OP_MUL = 1
OP_MIN = 2
OP_MAX = 3
OP_XOR = 4
OP_AND = 5
OP_OR = 6

#: NumPy ufunc for each opcode (used to rehydrate a shipped PairSpec
#: into a vectorized operator in a worker process).
OPCODE_UFUNCS: tuple[np.ufunc, ...] = (
    np.add,
    np.multiply,
    np.minimum,
    np.maximum,
    np.bitwise_xor,
    np.bitwise_and,
    np.bitwise_or,
)

#: Opcodes that are only defined on integer dtypes.
BITWISE_OPCODES = frozenset({OP_XOR, OP_AND, OP_OR})


@dataclass(frozen=True)
class PairSpec:
    """Opcode-level description of an operator in pair form.

    ``width == 1``: values are scalars, only ``companion`` is used.
    ``width == 2``: values are ``(first, second)`` rows and the full
    ``op_point`` formula applies.  ``cross``/``plus`` are ``-1`` (unused)
    for width-1 specs.
    """

    width: int
    companion: int
    cross: int = -1
    plus: int = -1

    def __post_init__(self) -> None:
        if self.width not in (1, 2):
            raise ValueError("PairSpec width must be 1 or 2")
        codes = [self.companion]
        if self.width == 2:
            codes += [self.cross, self.plus]
        for code in codes:
            if not 0 <= code < len(OPCODE_UFUNCS):
                raise ValueError(f"unknown opcode {code}")

    @property
    def opcodes(self) -> tuple[int, ...]:
        """The opcodes this spec actually uses."""
        if self.width == 1:
            return (self.companion,)
        return (self.companion, self.cross, self.plus)

    def integer_only(self) -> bool:
        """Whether any component opcode is bitwise (integer dtypes only)."""
        return any(code in BITWISE_OPCODES for code in self.opcodes)

    def as_tuple(self) -> tuple[int, int, int, int]:
        """Plain-data form for crossing a process boundary."""
        return (self.width, self.companion, self.cross, self.plus)

    @classmethod
    def from_tuple(cls, data: tuple[int, int, int, int]) -> "PairSpec":
        width, companion, cross, plus = data
        if width == 1:
            return cls(width=1, companion=companion)
        return cls(width=width, companion=companion, cross=cross, plus=plus)


# registry: operator name -> (the exact Operator instance, its spec)
_PAIR_REGISTRY: dict[str, tuple[Operator, PairSpec]] = {}


def register_pair(op: Operator, spec: PairSpec) -> None:
    """Register a pair formulation for ``op``.

    The registrant promises ``op.combine`` computes exactly the pair
    formula for ``spec``'s opcodes (the compiled backend and the worker
    offload path both rely on it).  Registration is by name *and*
    identity: re-registering a name rebinds it to the new operator
    object.
    """
    expected_width = 2 if op.value_width else 1
    if spec.width != expected_width:
        raise ValueError(
            f"operator {op.name!r} has value_width={op.value_width} but the "
            f"spec is width-{spec.width}"
        )
    _PAIR_REGISTRY[op.name] = (op, spec)


def pair_for(op: Operator) -> PairSpec | None:
    """The pair formulation of ``op``, or ``None`` when it has none.

    Only honored when the registered operator is the *identical* object,
    so a custom operator shadowing a registered name falls back to the
    generic (NumPy ``combine``) path instead of silently computing with
    the wrong opcodes.
    """
    entry = _PAIR_REGISTRY.get(op.name)
    if entry is None or entry[0] is not op:
        return None
    return entry[1]


def operator_from_pair(
    name: str, spec: PairSpec, identity: object
) -> Operator:
    """Rehydrate an :class:`Operator` from a shipped pair spec.

    Used by worker processes for pair-formulated operators whose name is
    not a builtin: the combine is reconstructed from the opcodes, so
    only plain data crosses the process boundary.  The result computes
    exactly what the registrant's ``combine`` computes (that equivalence
    is the :func:`register_pair` contract).
    """
    if BUILTIN_OPERATORS.get(name) is not None:
        return BUILTIN_OPERATORS[name]
    if spec.width == 1:
        ufunc = OPCODE_UFUNCS[spec.companion]
        return Operator(name=name, combine=ufunc, identity=identity, ufunc=ufunc)

    companion = OPCODE_UFUNCS[spec.companion]
    cross = OPCODE_UFUNCS[spec.cross]
    plus = OPCODE_UFUNCS[spec.plus]

    def combine(first: np.ndarray, second: np.ndarray) -> np.ndarray:
        first = np.asarray(first)
        second = np.asarray(second)
        out = np.empty(
            np.broadcast_shapes(first.shape, second.shape), dtype=first.dtype
        )
        f1, s1 = first[..., 0], first[..., 1]
        f2, s2 = second[..., 0], second[..., 1]
        out[..., 0] = companion(f1, f2)
        out[..., 1] = plus(cross(s1, f2), s2)
        return out

    return Operator(
        name=name,
        combine=combine,
        identity=identity,
        value_width=2,
        commutative=False,
    )


# ----------------------------------------------------------------------
# builtin registrations — every builtin operator is pair-formulated,
# which is what lets AFFINE (and hence apps/recurrence.py) ride the
# compiled fast path alongside the scalar operators.
# ----------------------------------------------------------------------
register_pair(SUM, PairSpec(width=1, companion=OP_ADD))
register_pair(PROD, PairSpec(width=1, companion=OP_MUL))
register_pair(MIN, PairSpec(width=1, companion=OP_MIN))
register_pair(MAX, PairSpec(width=1, companion=OP_MAX))
register_pair(XOR, PairSpec(width=1, companion=OP_XOR))
register_pair(AND, PairSpec(width=1, companion=OP_AND))
register_pair(OR, PairSpec(width=1, companion=OP_OR))
register_pair(
    AFFINE, PairSpec(width=2, companion=OP_MUL, cross=OP_MUL, plus=OP_ADD)
)
