"""Pluggable kernel backends for the hot scan loops.

A :class:`KernelBackend` implements the three hottest kernels of the
sublist algorithm — the Phase-1/Phase-3 lock-step gather traversal, the
schedule-driven pack/compress, and the Phase-2 reduced-list scan —
behind one interface, so ``core.sublist`` and ``core.forest`` stay a
single implementation of the *algorithm* while the inner loops swap:

``numpy``
    The reference: exactly the array expressions the core modules have
    always run (it *is* those expressions, hoisted behind the
    interface).  Always available; the universal fallback.  Supports
    every operator, including unregistered custom ones.
``numba``
    The compiled loops of ``kernels.loops`` under ``numba.njit``.
    Auto-selected when numba is importable.  Requires a
    pair-formulated operator (``kernels.pairs``) and a signed-integer
    or float dtype; anything else falls back to ``numpy`` per call
    site.
``python``
    The *same* loop source, interpreted.  Far slower than ``numpy`` —
    it exists so the compiled code path (loop bodies, pack compaction,
    blocked Phase-2 scan) is exercised by tests on hosts without
    numba, not for production use.

Selection precedence: explicit argument (``Engine(kernel_backend=…)``,
``list_scan(kernel_backend=…)``, ``--kernel-backend``) beats the
``REPRO_KERNEL_BACKEND`` environment variable, which beats
auto-detection (numba if importable, else numpy).

Calling convention: traversal/pack methods *return* the (possibly
rebound) live arrays.  The numpy backend rebinds fresh arrays exactly
like the historical inline code; the loop backends mutate in place and
return compacted views.  Callers must therefore treat the returned
arrays as owning and never alias the inputs afterwards — which is how
the core modules always used them.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Any

import numpy as np

from ..analysis.cost_model import KernelCosts
from ..core.operators import Operator
from ..lists.generate import INDEX_DTYPE
from .loops import BLOCK, HAVE_NUMBA, jit_kernels, py_kernels
from .pairs import PairSpec, pair_for

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "PythonLoopBackend",
    "NumbaBackend",
    "available_backends",
    "default_backend_name",
    "resolve_backend",
    "ENV_VAR",
]

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_KERNEL_BACKEND"


class KernelBackend:
    """Interface for the three hot kernels (see module docstring)."""

    #: Registry key; also what ``_FusedTask`` ships to worker processes.
    name: str = "abstract"
    #: True when the loops are machine-compiled (drives cost scaling).
    compiled: bool = False
    #: Whether :meth:`reduced_scan` implements the blocked Phase-2 scan.
    has_blocked_scan: bool = False
    #: Per-backend calibration of the Section 3/4 coefficients: the
    #: factor applied to the per-element rank-step slopes (Phase 1/3
    #: traversal, the model's ``a``) and to the pack slopes (``c``).
    #: 1.0 means "the reference machine the table was calibrated for".
    rank_step_scale: float = 1.0
    pack_scale: float = 1.0

    def supports(self, op: Operator, values: np.ndarray) -> bool:
        """Whether this backend can run ``op`` over ``values``."""
        raise NotImplementedError

    def scaled_costs(self, costs: KernelCosts) -> KernelCosts:
        """``costs`` with this backend's calibration factors applied."""
        if self.rank_step_scale == 1.0 and self.pack_scale == 1.0:
            return costs
        return replace(
            costs,
            initial_rank_per_elem=costs.initial_rank_per_elem
            * self.rank_step_scale,
            final_rank_per_elem=costs.final_rank_per_elem
            * self.rank_step_scale,
            initial_pack_per_elem=costs.initial_pack_per_elem * self.pack_scale,
            final_pack_per_elem=costs.final_pack_per_elem * self.pack_scale,
        )

    # -- Phase 1/3 lock-step traversal ---------------------------------

    def traverse_phase1(
        self,
        nxt: np.ndarray,
        values: np.ndarray,
        vp_next: np.ndarray,
        vp_sum: np.ndarray,
        gap: int,
        op: Operator,
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def traverse_phase3(
        self,
        nxt: np.ndarray,
        values: np.ndarray,
        vp_next: np.ndarray,
        vp_sum: np.ndarray,
        gap: int,
        op: Operator,
        out: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    # -- pack/compress --------------------------------------------------

    def pack_phase1(
        self,
        nxt: np.ndarray,
        vp_next: np.ndarray,
        vp_sum: np.ndarray,
        vp_proc: np.ndarray,
        sl_sum: np.ndarray,
        sl_tail: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Scatter finished sublists out, compact the live set.

        Returns ``(vp_next, vp_sum, vp_proc, finished_count)``.
        """
        raise NotImplementedError

    def pack_phase3(
        self,
        nxt: np.ndarray,
        vp_next: np.ndarray,
        vp_sum: np.ndarray,
        out: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    # -- Phase-2 reduced scan -------------------------------------------

    def reduced_scan(
        self,
        sl_next: np.ndarray,
        sl_sum: np.ndarray,
        heads: np.ndarray,
        carries: np.ndarray | None,
        op: Operator,
        out: np.ndarray,
    ) -> None:
        """Blocked exclusive scan of the reduced chains into ``out``.

        Only meaningful when :attr:`has_blocked_scan` is true; callers
        keep the historical serial/Wyllie/recursive dispatch otherwise.
        """
        raise NotImplementedError


class NumpyBackend(KernelBackend):
    """The reference backend: the historical inline NumPy expressions.

    Bit-for-bit the computation ``core.sublist``/``core.forest`` always
    performed — the golden results every other backend is tested
    against.
    """

    name = "numpy"

    def supports(self, op: Operator, values: np.ndarray) -> bool:
        return True

    def traverse_phase1(
        self,
        nxt: np.ndarray,
        values: np.ndarray,
        vp_next: np.ndarray,
        vp_sum: np.ndarray,
        gap: int,
        op: Operator,
    ) -> tuple[np.ndarray, np.ndarray]:
        for _ in range(gap):
            vp_sum = op.combine(vp_sum, values[vp_next])
            vp_next = nxt[vp_next]
        return vp_next, vp_sum

    def traverse_phase3(
        self,
        nxt: np.ndarray,
        values: np.ndarray,
        vp_next: np.ndarray,
        vp_sum: np.ndarray,
        gap: int,
        op: Operator,
        out: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        for _ in range(gap):
            out[vp_next] = vp_sum
            vp_sum = op.combine(vp_sum, values[vp_next])
            vp_next = nxt[vp_next]
        return vp_next, vp_sum

    def pack_phase1(
        self,
        nxt: np.ndarray,
        vp_next: np.ndarray,
        vp_sum: np.ndarray,
        vp_proc: np.ndarray,
        sl_sum: np.ndarray,
        sl_tail: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        done = vp_next == nxt[vp_next]
        finished = vp_proc[done]
        sl_sum[finished] = vp_sum[done]
        sl_tail[finished] = vp_next[done]
        keep = ~done
        return vp_next[keep], vp_sum[keep], vp_proc[keep], int(finished.size)

    def pack_phase3(
        self,
        nxt: np.ndarray,
        vp_next: np.ndarray,
        vp_sum: np.ndarray,
        out: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        done = vp_next == nxt[vp_next]
        if np.any(done):
            out[vp_next] = vp_sum  # tails get their final scan
            keep = ~done
            vp_next = vp_next[keep]
            vp_sum = vp_sum[keep]
        return vp_next, vp_sum


class _LoopBackendBase(KernelBackend):
    """Shared implementation for the interpreted and compiled loops."""

    has_blocked_scan = True

    def kernels(self) -> dict[str, Any]:
        raise NotImplementedError

    def supports(self, op: Operator, values: np.ndarray) -> bool:
        spec = pair_for(op)
        if spec is None:
            return False
        if spec.width == 2 and not (
            values.ndim == 2 and values.shape[-1] == 2
        ):
            return False
        if spec.width == 1 and values.ndim != 1:
            return False
        kind = values.dtype.kind
        if kind == "f":
            return not spec.integer_only()
        # unsigned stays on the numpy path: the shared loop source casts
        # bitwise operands through int64, which overflows for uint64
        # when interpreted.
        return kind == "i"

    def _spec(self, op: Operator) -> PairSpec:
        spec = pair_for(op)
        if spec is None:  # pragma: no cover - supports() gates upstream
            raise RuntimeError(
                f"operator {op.name!r} has no pair formulation; the caller "
                "must check backend.supports() first"
            )
        return spec

    def traverse_phase1(
        self,
        nxt: np.ndarray,
        values: np.ndarray,
        vp_next: np.ndarray,
        vp_sum: np.ndarray,
        gap: int,
        op: Operator,
    ) -> tuple[np.ndarray, np.ndarray]:
        spec = self._spec(op)
        k = self.kernels()
        if spec.width == 1:
            k["phase1_traverse"](nxt, values, vp_next, vp_sum, gap, spec.companion)
        else:
            k["phase1_traverse_pair"](
                nxt, values, vp_next, vp_sum, gap,
                spec.companion, spec.cross, spec.plus,
            )
        return vp_next, vp_sum

    def traverse_phase3(
        self,
        nxt: np.ndarray,
        values: np.ndarray,
        vp_next: np.ndarray,
        vp_sum: np.ndarray,
        gap: int,
        op: Operator,
        out: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        spec = self._spec(op)
        k = self.kernels()
        if spec.width == 1:
            k["phase3_traverse"](
                nxt, values, vp_next, vp_sum, gap, spec.companion, out
            )
        else:
            k["phase3_traverse_pair"](
                nxt, values, vp_next, vp_sum, gap,
                spec.companion, spec.cross, spec.plus, out,
            )
        return vp_next, vp_sum

    def pack_phase1(
        self,
        nxt: np.ndarray,
        vp_next: np.ndarray,
        vp_sum: np.ndarray,
        vp_proc: np.ndarray,
        sl_sum: np.ndarray,
        sl_tail: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        k = self.kernels()
        total = vp_next.shape[0]
        if vp_sum.ndim == 2:
            live = k["pack_phase1_pair"](
                nxt, vp_next, vp_sum, vp_proc, sl_sum, sl_tail
            )
        else:
            live = k["pack_phase1"](
                nxt, vp_next, vp_sum, vp_proc, sl_sum, sl_tail
            )
        live = int(live)
        return (
            vp_next[:live],
            vp_sum[:live],
            vp_proc[:live],
            total - live,
        )

    def pack_phase3(
        self,
        nxt: np.ndarray,
        vp_next: np.ndarray,
        vp_sum: np.ndarray,
        out: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        k = self.kernels()
        if vp_sum.ndim == 2:
            live = int(k["pack_phase3_pair"](nxt, vp_next, vp_sum, out))
        else:
            live = int(k["pack_phase3"](nxt, vp_next, vp_sum, out))
        return vp_next[:live], vp_sum[:live]

    def reduced_scan(
        self,
        sl_next: np.ndarray,
        sl_sum: np.ndarray,
        heads: np.ndarray,
        carries: np.ndarray | None,
        op: Operator,
        out: np.ndarray,
    ) -> None:
        spec = self._spec(op)
        k = self.kernels()
        m = sl_next.shape[0]
        n_lists = heads.shape[0]
        dtype = sl_sum.dtype
        ident = op.identity_for(dtype)
        order = np.empty(m, dtype=INDEX_DTYPE)
        if spec.width == 1:
            seeds = np.empty(n_lists, dtype=dtype)
            seeds[:] = carries if carries is not None else ident
            ordered = np.empty(m, dtype=dtype)
            scanned = np.empty(m, dtype=dtype)
            temp = np.empty(BLOCK, dtype=dtype)
            rc = k["reduced_scan"](
                sl_next, sl_sum, seeds, heads, dtype.type(ident),
                spec.companion, BLOCK, out, order, ordered, scanned, temp,
            )
        else:
            ident = np.asarray(ident, dtype=dtype)
            seeds = np.empty((n_lists, 2), dtype=dtype)
            seeds[:] = carries if carries is not None else ident
            ordered = np.empty((m, 2), dtype=dtype)
            scanned = np.empty((m, 2), dtype=dtype)
            temp = np.empty((BLOCK, 2), dtype=dtype)
            rc = k["reduced_scan_pair"](
                sl_next, sl_sum, seeds, heads,
                dtype.type(ident[0]), dtype.type(ident[1]),
                spec.companion, spec.cross, spec.plus,
                BLOCK, out, order, ordered, scanned, temp,
            )
        if rc != 0:
            from ..lists.validate import ListStructureError

            raise ListStructureError(
                "reduced list did not terminate within its node count; "
                "the successor array appears to contain a cycle"
            )


class PythonLoopBackend(_LoopBackendBase):
    """The loop kernels, interpreted (testing build — slow).

    Runs the exact source the numba backend compiles, so the compiled
    code path is testable on hosts without numba.  Not calibrated:
    routing coefficients are left at the reference values.
    """

    name = "python"

    def kernels(self) -> dict[str, Any]:
        return py_kernels()


class NumbaBackend(_LoopBackendBase):
    """The loop kernels under ``numba.njit``.

    The 0.25 rank/pack factors are a documented rough estimate of the
    compiled loops versus the one-array-op-per-step NumPy path (the
    gather traversal fuses gather+fold+follow into one pass; packing
    fuses mask+scatter+three compactions into one).  The bench harness
    records the *measured* ratio per host (`benchmarks/bench_kernels.py`)
    — it is recorded, never asserted.
    """

    name = "numba"
    compiled = True
    rank_step_scale = 0.25
    pack_scale = 0.25

    def kernels(self) -> dict[str, Any]:
        return jit_kernels()


_NUMPY = NumpyBackend()
_PYTHON = PythonLoopBackend()
_NUMBA = NumbaBackend()

_REGISTRY: dict[str, KernelBackend] = {
    _NUMPY.name: _NUMPY,
    _PYTHON.name: _PYTHON,
    _NUMBA.name: _NUMBA,
}


def available_backends() -> tuple[str, ...]:
    """Backend names usable on this host."""
    names = ["numpy", "python"]
    if HAVE_NUMBA:
        names.append("numba")
    return tuple(names)


def default_backend_name() -> str:
    """Auto-detected default: numba when importable, else numpy."""
    return "numba" if HAVE_NUMBA else "numpy"


def resolve_backend(
    backend: str | KernelBackend | None = None,
) -> KernelBackend:
    """Resolve a backend selection to an instance.

    Precedence: explicit ``backend`` argument → ``REPRO_KERNEL_BACKEND``
    environment variable → auto-detection.
    """
    if isinstance(backend, KernelBackend):
        return backend
    name = backend or os.environ.get(ENV_VAR) or default_backend_name()
    name = name.strip().lower()
    if name == "numba" and not HAVE_NUMBA:
        raise ValueError(
            "kernel backend 'numba' requested but numba is not importable; "
            f"available backends: {', '.join(available_backends())}"
        )
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"available backends: {', '.join(available_backends())}"
        ) from None
