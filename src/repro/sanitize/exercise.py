"""Dynamic half of ``repro-c90 sanitize``: run violation fixtures.

A *fixture* here is any Python file exposing a top-level ``exercise()``
function.  The CLI discovers them in the scanned paths, imports each by
file path, and calls ``exercise()`` inside a fresh ``sanitizers()``
scope; whatever the detectors observe (races, leaks, stalls) becomes
findings.  The clean source tree ships no ``exercise()`` functions, so
the dynamic pass contributes nothing there — the seeded corpus under
``tests/fixtures/sanitize_bad/`` is where each detector proves it still
fires.
"""

from __future__ import annotations

import ast
import importlib.util
import sys
from dataclasses import dataclass, field
from pathlib import Path

from .runtime import Finding, sanitizers

__all__ = ["ExerciseResult", "has_exercise", "run_exercise"]

#: keep stall thresholds short for fixtures: a seeded blocking call
#: sleeps ~10x this, so detection is robust without slowing the gate
_FIXTURE_STALL_THRESHOLD = 0.08


@dataclass
class ExerciseResult:
    """Findings from running one fixture's ``exercise()``."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    error: str | None = None


def has_exercise(path: str | Path) -> bool:
    """Does this file define a module-level ``exercise`` function?"""
    try:
        tree = ast.parse(Path(path).read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return False
    return any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == "exercise"
        for node in tree.body
    )


def run_exercise(path: str | Path) -> ExerciseResult:
    """Import ``path`` and run its ``exercise()`` under the sanitizers."""
    path = Path(path)
    result = ExerciseResult(path=str(path))
    module_name = f"_repro_sanitize_fixture_{abs(hash(str(path.resolve())))}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        result.error = "could not load module"
        return result
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        with sanitizers(
            label=f"exercise:{path.name}", watchdog_threshold=_FIXTURE_STALL_THRESHOLD
        ) as state:
            spec.loader.exec_module(module)
            fn = getattr(module, "exercise", None)
            if not callable(fn):
                result.error = "no callable exercise()"
                return result
            fn()
        result.findings = state.findings()
    except Exception as exc:  # fixture bugs become findings, not crashes
        result.error = f"{type(exc).__name__}: {exc}"
    finally:
        sys.modules.pop(module_name, None)
    return result
