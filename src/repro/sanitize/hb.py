"""Happens-before race detection over vector clocks.

The engine's shared mutable state (``EngineStats`` counters, the
result cache, router state swaps, drift windows, the lease gate) is
touched from the event loop, the flush worker, the shard driver
threads, and test threads.  The locking discipline that keeps those
accesses safe is prose until something checks it; this module is the
checker, in the ThreadSanitizer tradition but annotation-driven: call
sites declare their accesses (``repro.sanitize.annotate_access`` /
``guarded``), and the detector verifies that every conflicting pair is
ordered by a *happens-before* edge.

Edges come from three sources, mirroring how the engine actually
synchronizes:

* **locks** — releasing a lock publishes the releasing thread's vector
  clock; a later acquire of the same lock joins it
  (:meth:`RaceDetector.on_acquire` / :meth:`RaceDetector.on_release`,
  fed by ``guarded()`` and by instrumented
  :class:`~repro.lint.lockorder.CheckedLock` instances);
* **handoffs** — a producer publishes on a channel key and a consumer
  joins it (:meth:`RaceDetector.publish` / :meth:`RaceDetector.join`):
  queue submit→drain and shard future→respond edges;
* **atomic cells** — single-reference swaps like
  ``Router._RouterState`` get release/acquire semantics without a
  report (:meth:`RaceDetector.atomic_write` /
  :meth:`RaceDetector.atomic_read`), modelling the CPython
  atomic-assignment idiom the router documents.

Two accesses to the same cell race when at least one is a write and
neither happens-before the other.  Detection is *interleaving-
independent*: the racy pair is reported whenever it executes at all,
not only on the unlucky schedule — which is what makes the seeded
fixture corpus deterministic in CI.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

__all__ = ["RaceDetector", "RaceReport"]

#: Vector clocks are plain dicts ``logical-thread-id -> counter``.
_Clock = dict[int, int]

#: Logical thread ids: assigned once per thread, never reused.  Raw
#: ``threading.get_ident()`` values are recycled after a thread exits,
#: which would forge a program-order edge between two distinct threads
#: that happened to get the same ident — a false negative exactly when
#: short-lived threads run back to back.
_tid_local = threading.local()
_tid_counter = itertools.count(1)


def _logical_tid() -> int:
    tid: int | None = getattr(_tid_local, "tid", None)
    if tid is None:
        tid = _tid_local.tid = next(_tid_counter)
    return tid


@dataclass(frozen=True)
class RaceReport:
    """One unordered conflicting pair on an annotated cell."""

    cell: str
    first_kind: str  # "read" | "write"
    first_site: str
    second_kind: str
    second_site: str

    def describe(self) -> str:
        return (
            f"data race on {self.cell!r}: {self.second_kind} at "
            f"{self.second_site} is unordered with {self.first_kind} at "
            f"{self.first_site}"
        )


@dataclass
class _Epoch:
    """One recorded access: which thread, at what clock value, where."""

    tid: int
    clock: int
    site: str


@dataclass
class _Cell:
    """Per-cell history: the last write plus reads since that write."""

    last_write: _Epoch | None = None
    reads: dict[int, _Epoch] = field(default_factory=dict)


class RaceDetector:
    """Vector-clock happens-before checker for annotated accesses.

    Thread-safe behind one internal mutex — annotation sites are the
    engine's *book-keeping* paths (stats blocks, cache probes, state
    swaps), never per-element kernel work, so serializing them costs
    nothing measurable while the sanitizer is active and exactly one
    branch while it is not (see ``repro.sanitize.runtime``).
    """

    def __init__(self, max_reports: int = 64) -> None:
        self.max_reports = max_reports
        self.reports: list[RaceReport] = []
        # internal bookkeeping mutex: plain and unchecked — the
        # detector must not audit itself
        self._mutex = threading.Lock()
        self._threads: dict[int, _Clock] = {}
        self._locks: dict[object, _Clock] = {}
        self._channels: dict[object, _Clock] = {}
        self._cells: dict[str, _Cell] = {}
        self._seen_pairs: set[tuple[str, str, str]] = set()
        self.annotations = 0

    # ------------------------------------------------------------------
    # clock plumbing (caller holds the mutex)
    # ------------------------------------------------------------------

    def _clock_of(self, tid: int) -> _Clock:
        clock = self._threads.get(tid)
        if clock is None:
            clock = self._threads[tid] = {tid: 1}
        return clock

    @staticmethod
    def _join(into: _Clock, other: _Clock | None) -> None:
        if not other:
            return
        for tid, value in other.items():
            if into.get(tid, 0) < value:
                into[tid] = value

    def _release_into(self, table: dict[object, _Clock], key: object) -> None:
        """Release semantics: publish the current thread's clock at
        ``key`` (joining any previous publication) and advance the
        thread so later accesses are not confused with published ones."""
        tid = _logical_tid()
        clock = self._clock_of(tid)
        published = table.setdefault(key, {})
        self._join(published, clock)
        clock[tid] = clock.get(tid, 0) + 1

    def _acquire_from(self, table: dict[object, _Clock], key: object) -> None:
        tid = _logical_tid()
        self._join(self._clock_of(tid), table.get(key))

    # ------------------------------------------------------------------
    # happens-before edges
    # ------------------------------------------------------------------

    def on_acquire(self, lock_key: object) -> None:
        """The calling thread acquired the lock identified by ``lock_key``."""
        with self._mutex:
            self._acquire_from(self._locks, lock_key)

    def on_release(self, lock_key: object) -> None:
        """The calling thread is releasing ``lock_key`` (call *before*
        the real unlock, so no acquirer can slip in between)."""
        with self._mutex:
            self._release_into(self._locks, lock_key)

    def publish(self, channel: object) -> None:
        """Producer half of a handoff edge (queue submit, future set)."""
        with self._mutex:
            self._release_into(self._channels, channel)

    def join(self, channel: object) -> None:
        """Consumer half: order this thread after every publisher."""
        with self._mutex:
            self._acquire_from(self._channels, channel)

    def atomic_write(self, cell: str) -> None:
        """Release-store on an atomic reference cell (no race check)."""
        with self._mutex:
            self._release_into(self._channels, ("atomic", cell))

    def atomic_read(self, cell: str) -> None:
        """Acquire-load pairing with :meth:`atomic_write`."""
        with self._mutex:
            self._acquire_from(self._channels, ("atomic", cell))

    # ------------------------------------------------------------------
    # annotated accesses
    # ------------------------------------------------------------------

    def access(self, cell: str, kind: str, site: str) -> None:
        """Record one ``read``/``write`` of ``cell`` and race-check it."""
        if kind not in ("read", "write"):
            raise ValueError(f"kind must be 'read' or 'write', got {kind!r}")
        tid = _logical_tid()
        with self._mutex:
            self.annotations += 1
            clock = self._clock_of(tid)
            state = self._cells.setdefault(cell, _Cell())
            write = state.last_write
            if write is not None and not self._ordered(write, tid, clock):
                self._report(cell, write, "write", kind, site)
            if kind == "write":
                for read in state.reads.values():
                    if not self._ordered(read, tid, clock):
                        self._report(cell, read, "read", kind, site)
                state.last_write = _Epoch(tid, clock[tid], site)
                state.reads.clear()
            else:
                state.reads[tid] = _Epoch(tid, clock[tid], site)

    @staticmethod
    def _ordered(prior: _Epoch, tid: int, clock: _Clock) -> bool:
        """Does ``prior`` happen-before the current access?"""
        if prior.tid == tid:
            return True  # program order
        return clock.get(prior.tid, 0) >= prior.clock

    def _report(
        self, cell: str, prior: _Epoch, prior_kind: str, kind: str, site: str
    ) -> None:
        key = (cell, prior.site, site)
        if key in self._seen_pairs or len(self.reports) >= self.max_reports:
            return
        self._seen_pairs.add(key)
        self.reports.append(
            RaceReport(
                cell=cell,
                first_kind=prior_kind,
                first_site=prior.site,
                second_kind=kind,
                second_site=site,
            )
        )
