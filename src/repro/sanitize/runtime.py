"""Sanitizer activation and the annotation API threaded through the engine.

Everything here is built around one invariant: **when no sanitizer is
active, every hook is a single truthiness check on an empty list**.
The engine's locked sections call :class:`guarded` and
:func:`annotate_access` unconditionally; production pays one branch.

Activation is a context manager::

    with sanitizers() as state:
        ...  # run engine / serve / distribute work
    state.failures()   # races + hard resource leaks
    state.warnings()   # stalls, still-open pools/memmaps

While active:

* ``guarded(lock, cell, kind)`` — acquires the lock *and* tells the
  race detector about the happens-before edge, optionally recording an
  annotated access to ``cell`` under it;
* ``annotate_access(cell, kind)`` — records a bare access (use for
  reads/writes intentionally outside any lock, to prove they race — or
  with ``atomic_*`` kinds, that they don't);
* ``hb_publish``/``hb_join`` — handoff edges (queue submit→drain,
  future resolution);
* ``cv_wait(cv)`` — ``Condition.wait`` releases and reacquires its
  lock invisibly; this wrapper keeps the detector's lock model honest;
* ``multiprocessing.shared_memory.SharedMemory`` is patched with a
  tracked subclass feeding the :class:`~repro.sanitize.resources.
  ResourceLedger`, and ``repro.engine.workers`` / ``repro.distribute``
  note pools, memmaps, and lease bytes.

Nesting is supported (the pytest plugin wraps whole tests while unit
tests open their own scopes): hooks report to the innermost state.
"""

from __future__ import annotations

import os
import sys
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import shared_memory as _shm_module
from typing import Any

from .hb import RaceDetector, RaceReport
from .resources import Leak, ResourceLedger
from .watchdog import LoopWatchdog, StallReport

__all__ = [
    "Finding",
    "SanitizerState",
    "active_state",
    "annotate_access",
    "atomic_read",
    "atomic_write",
    "cv_wait",
    "guarded",
    "hb_join",
    "hb_publish",
    "lock_acquired",
    "lock_released",
    "note_engine_close",
    "note_lease_admitted",
    "note_lease_returned",
    "note_memmap",
    "note_memmap_flush",
    "note_pool",
    "note_pool_closed",
    "sanitizers",
    "start_loop_watchdog",
]

_PKG_DIR = os.path.dirname(os.path.abspath(__file__))


@dataclass(frozen=True)
class Finding:
    """One sanitizer verdict, normalized across detectors."""

    check: str  # "race" | "leak" | "stall"
    severity: str  # "error" | "warning"
    message: str
    site: str = ""


@dataclass
class SanitizerState:
    """Everything one ``sanitizers()`` scope observed."""

    label: str = "sanitize"
    races: RaceDetector | None = None
    ledger: ResourceLedger | None = None
    watchdog_interval: float = 0.02
    watchdog_threshold: float = 0.25
    stalls: list[StallReport] = field(default_factory=list)
    watchdog_beats: int = 0
    engine_close_leaks: list[Leak] = field(default_factory=list)

    # -- verdicts -------------------------------------------------------

    def race_reports(self) -> list[RaceReport]:
        return list(self.races.reports) if self.races is not None else []

    def leaks(self) -> list[Leak]:
        return self.ledger.leaks() if self.ledger is not None else []

    def findings(self) -> list[Finding]:
        out = [
            Finding("race", "error", r.describe(), r.second_site) for r in self.race_reports()
        ]
        hard = ("shm-segment", "shm-handle", "lease-bytes")
        for leak in self.leaks():
            severity = "error" if leak.kind in hard else "warning"
            out.append(Finding("leak", severity, leak.describe()))
        out.extend(Finding("stall", "error", s.describe()) for s in self.stalls)
        return out

    def failures(self) -> list[Finding]:
        """What must fail a test or a ``REPRO_SANITIZE=1`` command:
        races and hard resource leaks.  Stalls stay out — wall-clock
        scheduling jitter on shared CI runners is not a test verdict —
        but the ``sanitize`` CLI still counts them as errors."""
        return [f for f in self.findings() if f.severity == "error" and f.check != "stall"]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings() if f not in self.failures()]

    def summary(self) -> dict[str, Any]:
        out: dict[str, Any] = {"label": self.label, "watchdog_beats": self.watchdog_beats}
        if self.races is not None:
            out["hb_annotations"] = self.races.annotations
            out["races"] = len(self.races.reports)
        if self.ledger is not None:
            out.update(self.ledger.summary())
            out["leaks"] = len(self.ledger.leaks())
        out["stalls"] = len(self.stalls)
        return out


# The activation stack.  Appends/pops are guarded by _STACK_MUTEX; the
# hot-path read is a plain truthiness check, safe under the GIL.
_STACK: list[SanitizerState] = []
_STACK_MUTEX = threading.Lock()


def active_state() -> SanitizerState | None:
    """The innermost active sanitizer scope, if any."""
    if not _STACK:
        return None
    try:
        return _STACK[-1]
    except IndexError:  # raced with deactivation; treat as inactive
        return None


def _call_site() -> str:
    """``file:line`` of the nearest caller outside this package."""
    frame = sys._getframe(1)
    while frame is not None and os.path.dirname(os.path.abspath(frame.f_code.co_filename)) == (
        _PKG_DIR
    ):
        frame = frame.f_back
    if frame is None:
        return "?"
    parts = frame.f_code.co_filename.replace(os.sep, "/").split("/")
    return "/".join(parts[-3:]) + f":{frame.f_lineno}"


# ----------------------------------------------------------------------
# happens-before annotation API
# ----------------------------------------------------------------------


def annotate_access(cell: str, kind: str = "write") -> None:
    """Record a read/write of a named shared cell for race checking."""
    if not _STACK:
        return
    state = active_state()
    if state is not None and state.races is not None:
        state.races.access(cell, kind, _call_site())


def atomic_write(cell: str) -> None:
    """Declare a release-store reference swap (e.g. router state)."""
    if not _STACK:
        return
    state = active_state()
    if state is not None and state.races is not None:
        state.races.atomic_write(cell)


def atomic_read(cell: str) -> None:
    """Declare the acquire-load pairing with :func:`atomic_write`."""
    if not _STACK:
        return
    state = active_state()
    if state is not None and state.races is not None:
        state.races.atomic_read(cell)


def hb_publish(channel: object) -> None:
    """Producer half of a handoff edge (queue submit, future set)."""
    if not _STACK:
        return
    state = active_state()
    if state is not None and state.races is not None:
        state.races.publish(channel)


def hb_join(channel: object) -> None:
    """Consumer half of a handoff edge."""
    if not _STACK:
        return
    state = active_state()
    if state is not None and state.races is not None:
        state.races.join(channel)


def lock_acquired(lock: object) -> None:
    """HB hook for lock wrappers (``CheckedLock``) not using ``guarded``."""
    if not _STACK:
        return
    state = active_state()
    if state is not None and state.races is not None:
        state.races.on_acquire(id(lock))


def lock_released(lock: object) -> None:
    """Counterpart of :func:`lock_acquired`; call before the real unlock."""
    if not _STACK:
        return
    state = active_state()
    if state is not None and state.races is not None:
        state.races.on_release(id(lock))


class guarded:
    """``with guarded(lock, cell, kind):`` — acquire + HB edge + access.

    Drop-in for ``with lock:`` over ``Lock``/``RLock``/``Condition``/
    ``CheckedLock``.  ``cell`` (optional) additionally records one
    annotated access of ``kind`` under the lock.
    """

    __slots__ = ("_lock", "_cell", "_kind")

    def __init__(self, lock: Any, cell: str | None = None, kind: str = "write") -> None:
        self._lock = lock
        self._cell = cell
        self._kind = kind

    def __enter__(self) -> "guarded":
        self._lock.acquire()  # repolint: disable=lock-with-only
        if _STACK:
            state = active_state()
            if state is not None and state.races is not None:
                state.races.on_acquire(id(self._lock))
                if self._cell is not None:
                    state.races.access(self._cell, self._kind, _call_site())
        return self

    def __exit__(self, *exc: object) -> None:
        if _STACK:
            state = active_state()
            if state is not None and state.races is not None:
                # record the release while still holding the real lock,
                # so no acquirer can observe the cell before the edge
                state.races.on_release(id(self._lock))
        self._lock.release()  # repolint: disable=lock-with-only


def cv_wait(cv: Any, timeout: float | None = None) -> bool:
    """``Condition.wait`` with the hidden release/reacquire made visible
    to the race detector (otherwise a contended wait looks like an
    annotated access without its lock edge — a false positive)."""
    state = active_state() if _STACK else None
    races = state.races if state is not None else None
    if races is not None:
        races.on_release(id(cv))
    try:
        result: bool = cv.wait(timeout)
        return result
    finally:
        if races is not None:
            races.on_acquire(id(cv))


# ----------------------------------------------------------------------
# resource ledger hooks
# ----------------------------------------------------------------------


def _ledger() -> ResourceLedger | None:
    if not _STACK:
        return None
    state = active_state()
    return state.ledger if state is not None else None


def note_memmap(arr: Any, path: str, mode: str) -> None:
    ledger = _ledger()
    if ledger is not None:
        ledger.memmap_opened(arr, path, mode, _call_site())


def note_memmap_flush(arr: Any) -> None:
    ledger = _ledger()
    if ledger is not None:
        ledger.memmap_flushed(arr)


def note_pool(pool: Any, kind: str) -> None:
    ledger = _ledger()
    if ledger is not None:
        ledger.pool_opened(pool, kind, _call_site())


def note_pool_closed(pool: Any) -> None:
    ledger = _ledger()
    if ledger is not None:
        ledger.pool_closed(pool)


def note_lease_admitted(nbytes: int) -> None:
    ledger = _ledger()
    if ledger is not None:
        ledger.lease_admitted(nbytes)


def note_lease_returned(nbytes: int) -> None:
    ledger = _ledger()
    if ledger is not None:
        ledger.lease_returned(nbytes)


def note_engine_close() -> list[Leak]:
    """Leak report at ``Engine.close()``: segments, dangling attaches,
    and lease bytes that should all have been released by teardown."""
    if not _STACK:
        return []
    state = active_state()
    if state is None or state.ledger is None:
        return []
    leaks = state.ledger.segment_leaks()
    if leaks:
        state.engine_close_leaks = leaks
    return leaks


# ----------------------------------------------------------------------
# SharedMemory interception
# ----------------------------------------------------------------------

_REAL_SHARED_MEMORY: type | None = None
_PATCH_DEPTH = 0


def _make_tracked(base: type) -> type:
    class _TrackedSharedMemory(base):  # type: ignore[valid-type, misc]
        """Ledger-reporting stand-in installed while a sanitizer runs."""

        def __init__(self, name: str | None = None, create: bool = False, size: int = 0,
                     **kwargs: Any) -> None:
            super().__init__(name, create, size, **kwargs)
            ledger = _ledger()
            if ledger is not None:
                ledger.shm_opened(self.name, created=create, size=self.size, site=_call_site())

        def close(self) -> None:
            super().close()
            ledger = _ledger()
            if ledger is not None:
                ledger.shm_closed(self.name)

        def unlink(self) -> None:
            super().unlink()
            ledger = _ledger()
            if ledger is not None:
                ledger.shm_unlinked(self.name)

    return _TrackedSharedMemory


def _patch_shared_memory() -> None:
    global _REAL_SHARED_MEMORY, _PATCH_DEPTH
    if _PATCH_DEPTH == 0:
        _REAL_SHARED_MEMORY = _shm_module.SharedMemory
        _shm_module.SharedMemory = _make_tracked(_REAL_SHARED_MEMORY)  # type: ignore[misc]
    _PATCH_DEPTH += 1


def _unpatch_shared_memory() -> None:
    global _REAL_SHARED_MEMORY, _PATCH_DEPTH
    _PATCH_DEPTH -= 1
    if _PATCH_DEPTH == 0 and _REAL_SHARED_MEMORY is not None:
        _shm_module.SharedMemory = _REAL_SHARED_MEMORY  # type: ignore[misc]
        _REAL_SHARED_MEMORY = None


# ----------------------------------------------------------------------
# watchdog + activation
# ----------------------------------------------------------------------


def start_loop_watchdog() -> LoopWatchdog | None:
    """Start a stall watchdog on the running loop if a sanitizer is
    active (the serve layer calls this unconditionally from ``start()``)."""
    if not _STACK:
        return None
    state = active_state()
    if state is None:
        return None

    def _on_stall(report: StallReport) -> None:
        state.stalls.append(report)

    watchdog = LoopWatchdog(
        interval=state.watchdog_interval,
        threshold=state.watchdog_threshold,
        on_stall=_on_stall,
    )
    watchdog.start()

    beats_before = watchdog.beats

    def _fold_beats() -> None:
        state.watchdog_beats += watchdog.beats - beats_before

    watchdog_stop = watchdog.stop

    def _stop() -> None:
        _fold_beats()
        watchdog_stop()

    watchdog.stop = _stop  # type: ignore[method-assign]
    return watchdog


@contextmanager
def sanitizers(
    *,
    races: bool = True,
    resources: bool = True,
    label: str = "sanitize",
    watchdog_threshold: float = 0.25,
    max_reports: int = 64,
) -> Iterator[SanitizerState]:
    """Activate the sanitizer suite for the dynamic extent of the block."""
    state = SanitizerState(
        label=label,
        races=RaceDetector(max_reports=max_reports) if races else None,
        ledger=ResourceLedger() if resources else None,
        watchdog_threshold=watchdog_threshold,
    )
    with _STACK_MUTEX:
        if resources:
            _patch_shared_memory()
        _STACK.append(state)
    try:
        yield state
    finally:
        with _STACK_MUTEX:
            _STACK.remove(state)
            if resources:
                _unpatch_shared_memory()
        if state.ledger is not None:
            state.ledger.settle()
