"""Event-loop stall watchdog for the asyncio serving front-end.

The serve layer's contract is that nothing blocks the loop: engine
work crosses into the flush executor, connection I/O awaits.  A single
``time.sleep`` or in-line ``engine.run_batch`` freezes every client at
once — the static ``no-blocking-in-async`` rule catches the obvious
spellings, and this watchdog catches the rest at runtime.

A heartbeat coroutine sleeps for ``interval`` and measures how late it
wakes; lateness beyond ``threshold`` means something held the loop
that long, and a :class:`StallReport` is filed.  The clock is
injectable for deterministic tests.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Callable
from dataclasses import dataclass

__all__ = ["LoopWatchdog", "StallReport"]


@dataclass(frozen=True)
class StallReport:
    """The event loop failed to schedule a sleep(interval) on time."""

    stalled_for: float
    threshold: float

    def describe(self) -> str:
        return (
            f"event loop stalled for {self.stalled_for * 1000.0:.0f} ms "
            f"(threshold {self.threshold * 1000.0:.0f} ms): something "
            "blocking inside an async def"
        )


class LoopWatchdog:
    """Heartbeat task measuring event-loop scheduling latency."""

    def __init__(
        self,
        interval: float = 0.02,
        threshold: float = 0.25,
        clock: Callable[[], float] | None = None,
        on_stall: Callable[[StallReport], None] | None = None,
    ) -> None:
        self.interval = interval
        self.threshold = threshold
        self._clock = clock if clock is not None else time.perf_counter
        self._on_stall = on_stall
        self.stalls: list[StallReport] = []
        self.beats = 0
        self._task: asyncio.Task[None] | None = None

    def start(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        if self._task is not None:
            return
        if loop is None:
            loop = asyncio.get_running_loop()
        self._task = loop.create_task(self._run(), name="sanitize-watchdog")

    async def _run(self) -> None:
        while True:
            before = self._clock()
            await asyncio.sleep(self.interval)
            self.beats += 1
            late = self._clock() - before - self.interval
            if late > self.threshold:
                report = StallReport(stalled_for=late + self.interval, threshold=self.threshold)
                self.stalls.append(report)
                if self._on_stall is not None:
                    self._on_stall(report)

    def stop(self) -> None:
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
