"""Pytest plugin: run every test inside the sanitizer suite.

Enable with ``pytest -p repro.sanitize.pytest_plugin`` (the CI
``sanitize`` job does this for the concurrency, serve, and distribute
suites).  Each test gets a fresh :func:`~repro.sanitize.runtime.
sanitizers` scope; after the test body passes, the plugin fails it if
the race detector reported an unordered pair or the resource ledger
shows a hard leak (a shared-memory segment never unlinked, an attach
never closed, lease bytes never returned) — this is the machine-checked
replacement for CI's old ``/dev/shm`` greps.

Soft observations (still-open pools/memmaps at test end, event-loop
stalls) surface as pytest warnings: module-scoped fixtures legitimately
hold pools across tests, and stall timing on shared CI runners is not a
per-test verdict.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterator

import pytest

from .runtime import SanitizerState, sanitizers


class SanitizerViolation(AssertionError):
    """A test completed but left races or hard resource leaks behind."""


@pytest.fixture(autouse=True)
def _repro_sanitizers() -> Iterator[SanitizerState]:
    with sanitizers(label="pytest") as state:
        yield state
    failures = state.failures()
    if failures:
        details = "\n".join(f"  [{f.check}] {f.message}" for f in failures)
        raise SanitizerViolation(
            f"sanitizers reported {len(failures)} violation(s):\n{details}"
        )
    for finding in state.warnings():
        warnings.warn(f"[sanitize:{finding.check}] {finding.message}", stacklevel=1)
