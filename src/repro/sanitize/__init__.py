"""Concurrency and resource sanitizer suite.

Dynamic counterparts to ``repro.lint``'s static rules: a vector-clock
happens-before race detector over the engine's annotated shared state,
a resource ledger that accounts shared-memory segments, memmaps, worker
pools, and lease bytes, and an event-loop stall watchdog for the
serving front-end.  See ``docs/static-analysis.md`` for the catalog and
``repro-c90 sanitize`` for the CLI gate.
"""

from .hb import RaceDetector, RaceReport
from .resources import Leak, ResourceLedger
from .runtime import (
    Finding,
    SanitizerState,
    active_state,
    annotate_access,
    atomic_read,
    atomic_write,
    cv_wait,
    guarded,
    hb_join,
    hb_publish,
    lock_acquired,
    lock_released,
    note_engine_close,
    note_lease_admitted,
    note_lease_returned,
    note_memmap,
    note_memmap_flush,
    note_pool,
    note_pool_closed,
    sanitizers,
    start_loop_watchdog,
)
from .watchdog import LoopWatchdog, StallReport

__all__ = [
    "Finding",
    "Leak",
    "LoopWatchdog",
    "RaceDetector",
    "RaceReport",
    "ResourceLedger",
    "SanitizerState",
    "StallReport",
    "active_state",
    "annotate_access",
    "atomic_read",
    "atomic_write",
    "cv_wait",
    "guarded",
    "hb_join",
    "hb_publish",
    "lock_acquired",
    "lock_released",
    "note_engine_close",
    "note_lease_admitted",
    "note_lease_returned",
    "note_memmap",
    "note_memmap_flush",
    "note_pool",
    "note_pool_closed",
    "sanitizers",
    "start_loop_watchdog",
]
