"""Resource sanitizer: global accounting of shared-memory segments,
memmaps, worker pools, and lease bytes.

The engine moves fused batches through ``multiprocessing.shared_memory``
segments, streams out-of-core lists through ``np.memmap``, and leases
both against a byte budget (`LeaseGate`).  Every one of those resources
has a paired release (unlink, close, shutdown, budget return) that is
easy to drop on an error path — PR 9's bugfix sweep found exactly such
a leak-on-crash.  CI used to guard this with ad-hoc ``/dev/shm`` greps
after the fact; this module replaces them with live accounting:

* **segments** — while the sanitizer is active,
  ``shared_memory.SharedMemory`` is swapped for a tracked subclass
  (call sites resolve the attribute at call time, so no call-site
  changes are needed), recording create/attach/close/unlink per
  segment name;
* **memmaps** — ``repro.distribute.oocore`` notes each map it opens;
  a ``weakref.finalize`` on the array marks the close, since numpy
  memmaps release their mapping on garbage collection;
* **pools** — ``repro.engine.workers`` notes executor pools as they
  are created and shut down;
* **lease bytes** — ``LeaseGate`` notes admissions and returns.

:meth:`ResourceLedger.leaks` is the single verdict used by the pytest
plugin (`repro.sanitize.pytest_plugin`), the ``REPRO_SANITIZE=1`` CLI
wrapper, and the leak report `Engine.close()` files.
"""

from __future__ import annotations

import gc
import weakref
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Leak", "ResourceLedger"]


@dataclass(frozen=True)
class Leak:
    """One unreleased resource at settlement time."""

    kind: str  # "shm-segment" | "shm-handle" | "memmap" | "pool" | "lease-bytes"
    name: str
    detail: str

    def describe(self) -> str:
        return f"{self.kind} leak: {self.name} ({self.detail})"


@dataclass
class _Segment:
    created_here: bool = False
    size: int = 0
    opens: int = 0
    closes: int = 0
    unlinked: bool = False
    site: str = ""


@dataclass
class _Memmap:
    path: str
    mode: str
    site: str
    open: bool = True
    flushes: int = 0


@dataclass
class _Pool:
    kind: str
    site: str
    open: bool = True


@dataclass
class ResourceLedger:
    """Create/attach/close/unlink bookkeeping for engine resources.

    Mutation happens from whatever thread touches the resource; every
    entry point takes the internal mutex.  The ledger itself never
    frees anything — it only witnesses, so a buggy sanitizer cannot
    change program behaviour.
    """

    segments: dict[str, _Segment] = field(default_factory=dict)
    memmaps: dict[int, _Memmap] = field(default_factory=dict)
    pools: dict[int, _Pool] = field(default_factory=dict)
    lease_outstanding: int = 0
    lease_peak: int = 0
    events: int = 0

    def __post_init__(self) -> None:
        import threading

        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    # shared-memory segments
    # ------------------------------------------------------------------

    def shm_opened(self, name: str, *, created: bool, size: int, site: str) -> None:
        with self._mutex:
            self.events += 1
            seg = self.segments.setdefault(name, _Segment())
            seg.opens += 1
            seg.size = max(seg.size, size)
            if created:
                seg.created_here = True
                seg.site = site
            elif not seg.site:
                seg.site = site

    def shm_closed(self, name: str) -> None:
        with self._mutex:
            self.events += 1
            seg = self.segments.setdefault(name, _Segment())
            seg.closes += 1

    def shm_unlinked(self, name: str) -> None:
        with self._mutex:
            self.events += 1
            seg = self.segments.setdefault(name, _Segment())
            seg.unlinked = True

    # ------------------------------------------------------------------
    # memmaps
    # ------------------------------------------------------------------

    def memmap_opened(self, arr: Any, path: str, mode: str, site: str) -> None:
        key = id(arr)
        with self._mutex:
            self.events += 1
            self.memmaps[key] = _Memmap(path=path, mode=mode, site=site)
        # numpy memmaps release the mapping when collected; witness that
        # moment rather than requiring an explicit close() the API lacks
        weakref.finalize(arr, self._memmap_finalized, key)

    def _memmap_finalized(self, key: int) -> None:
        with self._mutex:
            entry = self.memmaps.get(key)
            if entry is not None:
                entry.open = False

    def memmap_flushed(self, arr: Any) -> None:
        with self._mutex:
            self.events += 1
            entry = self.memmaps.get(id(arr))
            if entry is not None:
                entry.flushes += 1

    # ------------------------------------------------------------------
    # pools and lease bytes
    # ------------------------------------------------------------------

    def pool_opened(self, pool: Any, kind: str, site: str) -> None:
        with self._mutex:
            self.events += 1
            self.pools[id(pool)] = _Pool(kind=kind, site=site)

    def pool_closed(self, pool: Any) -> None:
        with self._mutex:
            self.events += 1
            entry = self.pools.get(id(pool))
            if entry is not None:
                entry.open = False

    def lease_admitted(self, nbytes: int) -> None:
        with self._mutex:
            self.events += 1
            self.lease_outstanding += nbytes
            self.lease_peak = max(self.lease_peak, self.lease_outstanding)

    def lease_returned(self, nbytes: int) -> None:
        with self._mutex:
            self.events += 1
            self.lease_outstanding -= nbytes

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------

    def settle(self) -> None:
        """Give lazily-released resources their chance before judgment:
        memmaps close on collection, so run one gc pass if any look open."""
        with self._mutex:
            pending = any(m.open for m in self.memmaps.values())
        if pending:
            gc.collect()

    def leaks(self) -> list[Leak]:
        """Everything acquired but never released, worst first."""
        self.settle()
        out: list[Leak] = []
        with self._mutex:
            for name, seg in sorted(self.segments.items()):
                if seg.created_here and not seg.unlinked:
                    out.append(
                        Leak(
                            "shm-segment",
                            name,
                            f"created at {seg.site or '?'} ({seg.size} bytes), never unlinked",
                        )
                    )
                elif seg.opens > seg.closes:
                    out.append(
                        Leak(
                            "shm-handle",
                            name,
                            f"{seg.opens} opens vs {seg.closes} closes (attach without close)",
                        )
                    )
            for entry in self.memmaps.values():
                if entry.open:
                    out.append(
                        Leak(
                            "memmap",
                            entry.path,
                            f"mode {entry.mode!r} opened at {entry.site or '?'}, still mapped",
                        )
                    )
            for entry in self.pools.values():
                if entry.open:
                    out.append(
                        Leak("pool", entry.kind, f"created at {entry.site or '?'}, never shut down")
                    )
            if self.lease_outstanding != 0:
                out.append(
                    Leak(
                        "lease-bytes",
                        "LeaseGate",
                        f"{self.lease_outstanding} bytes admitted but never returned",
                    )
                )
        return out

    def segment_leaks(self) -> list[Leak]:
        """The hard-failure subset: leaked segments, dangling attaches,
        and unreturned lease bytes (the resources that outlive the
        process and the budget invariant)."""
        hard = ("shm-segment", "shm-handle", "lease-bytes")
        return [leak for leak in self.leaks() if leak.kind in hard]

    def summary(self) -> dict[str, int]:
        with self._mutex:
            return {
                "events": self.events,
                "segments_tracked": len(self.segments),
                "memmaps_tracked": len(self.memmaps),
                "pools_tracked": len(self.pools),
                "lease_peak_bytes": self.lease_peak,
            }
