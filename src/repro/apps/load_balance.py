"""Rank-based load balancing of list work across processors.

One of the paper's motivating uses of list ranking is "load balancing
[11]" (Section 1): when work items are linked rather than stored in an
array, assigning contiguous, equally weighted chunks to processors
requires knowing each item's position — i.e. a list ranking — and its
prefix weight — i.e. a list scan.

:func:`partition_list` computes, for every node, the processor that
should own it so that (a) each processor receives a contiguous run of
the list and (b) the total weight per processor is balanced to within
one item's weight.
"""

from __future__ import annotations


import numpy as np

from ..core.list_scan import list_scan
from ..core.operators import SUM
from ..lists.generate import LinkedList

__all__ = ["partition_list", "partition_summary"]


def partition_list(
    lst: LinkedList,
    n_processors: int,
    algorithm: str = "sublist",
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Assign each node to one of ``n_processors`` balanced chunks.

    ``lst.values`` are the per-item weights (must be non-negative).
    Node ``i`` goes to processor ``⌊prefix_weight(i) · p / total⌋`` —
    the classic scan-based partitioning, applied directly to the linked
    list.  Contiguity in list order is guaranteed because prefix
    weights are monotone along the list.
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    weights = np.asarray(lst.values)
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    prefix = list_scan(lst, SUM, inclusive=False, algorithm=algorithm, rng=rng)
    total = int(prefix[lst.tail] + weights[lst.tail])
    if total == 0:
        return np.zeros(lst.n, dtype=np.int64)
    owner = (prefix.astype(np.float64) * n_processors / total).astype(np.int64)
    return np.minimum(owner, n_processors - 1)


def partition_summary(
    lst: LinkedList, owner: np.ndarray, n_processors: int
) -> dict:
    """Per-processor totals and the balance ratio (max/mean weight)."""
    weights = np.asarray(lst.values)
    totals = np.bincount(owner, weights=weights, minlength=n_processors)
    counts = np.bincount(owner, minlength=n_processors)
    mean = totals.mean() if n_processors else 0.0
    return {
        "totals": totals,
        "counts": counts,
        "imbalance": float(totals.max() / mean) if mean > 0 else 1.0,
    }
