"""First-order linear recurrences over linked sequences.

A classic application of scan with a non-trivial operator (Blelloch;
paper reference [5] solves recurrences with loop raking): the
recurrence ``x_{k+1} = a_k · x_k + b_k`` is the composition of affine
maps, so when the coefficient sequence is stored as a *linked list*,
the whole trajectory is one ``AFFINE`` list scan — no pointer chasing
required.

``solve_linear_recurrence`` returns ``x_k`` for every node, where node
``v`` at list position ``k`` holds the coefficients ``(a_k, b_k)``.
"""

from __future__ import annotations


import numpy as np

from ..core.list_scan import list_scan
from ..core.operators import AFFINE
from ..lists.generate import INDEX_DTYPE, LinkedList

__all__ = ["solve_linear_recurrence", "recurrence_list"]


def recurrence_list(
    a: np.ndarray,
    b: np.ndarray,
    order: np.ndarray | None = None,
) -> LinkedList:
    """Package coefficient sequences into a linked list.

    ``a[k]``/``b[k]`` are the coefficients applied at list position
    ``k`` (node ``order[k]``; identity order by default).  ``order``
    must be a permutation of ``0..n-1`` — the coefficients are
    *scattered* through it, where a duplicate index would silently drop
    a coefficient (last write wins) and an out-of-range one would fail
    deep inside NumPy; both raise :class:`ValueError` here instead.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("a and b must have the same shape")
    n = a.shape[0]
    if order is None:
        order = np.arange(n, dtype=INDEX_DTYPE)
    else:
        order = np.asarray(order)
        if (
            order.ndim != 1
            or order.shape[0] != n
            or not np.issubdtype(order.dtype, np.integer)
        ):
            raise ValueError(
                f"order must be a 1-D integer permutation of 0..{n - 1}; "
                f"got shape {order.shape}, dtype {order.dtype}"
            )
        order = order.astype(INDEX_DTYPE)
        in_range = (order >= 0) & (order < n)
        if not np.all(in_range):
            bad = int(order[~in_range][0])
            raise ValueError(
                f"order must be a permutation of 0..{n - 1}; "
                f"index {bad} is out of range"
            )
        present = np.zeros(n, dtype=bool)
        present[order] = True
        if not present.all():
            missing = int(np.flatnonzero(~present)[0])
            raise ValueError(
                f"order must be a permutation of 0..{n - 1}; it never "
                f"uses index {missing}, so some index appears twice and "
                "its coefficient would be silently dropped"
            )
    values = np.empty((n, 2), dtype=np.float64)
    values[order, 0] = a
    values[order, 1] = b
    from ..lists.generate import from_order

    return from_order(order, values)


def solve_linear_recurrence(
    lst: LinkedList,
    x0: float = 0.0,
    algorithm: str = "sublist",
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Solve ``x_{k+1} = a_k·x_k + b_k`` along the list.

    ``lst.values`` must have shape ``(n, 2)`` holding ``(a, b)`` per
    node.  Returns, indexed by node, the state ``x`` *before* that
    node's map is applied (so the head gets ``x0``); apply the last
    node's map to get the final state.
    """
    values = np.asarray(lst.values)
    if values.ndim != 2 or values.shape[1] != 2:
        raise ValueError("recurrence list values must have shape (n, 2)")
    comp = list_scan(lst, AFFINE, inclusive=False, algorithm=algorithm, rng=rng)
    # exclusive composition ``(A, B)`` at node k maps x0 to x_k
    return comp[:, 0] * x0 + comp[:, 1]
