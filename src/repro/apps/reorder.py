"""List-to-array reordering — the paper's motivating composition.

"This position information can be used to reorder the nodes of the
list into an array in one parallel step.  Then, for example, scan can
be applied to the array." (Section 1.)  This module implements that
pipeline and its inverse, giving a second, independent route to list
scan that the tests cross-check against the direct algorithms.
"""

from __future__ import annotations


import numpy as np

from ..core.list_scan import list_rank
from ..core.operators import Operator, SUM, get_operator
from ..lists.convert import array_exclusive_scan, array_inclusive_scan, reorder_by_rank
from ..lists.generate import LinkedList

__all__ = ["list_to_array", "scan_via_reorder"]


def list_to_array(
    lst: LinkedList,
    algorithm: str = "sublist",
    rng: np.random.Generator | int | None = None,
) -> dict:
    """Reorder a linked list into a dense array.

    Returns ``{"values": array in list order, "rank": rank per node,
    "order": node index per position}``.
    """
    rank = list_rank(lst, algorithm=algorithm, rng=rng)
    values = reorder_by_rank(lst.values, rank)
    order = reorder_by_rank(np.arange(lst.n, dtype=np.int64), rank)
    return {"values": values, "rank": rank, "order": order}


def scan_via_reorder(
    lst: LinkedList,
    op: Operator | str = SUM,
    inclusive: bool = False,
    algorithm: str = "sublist",
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """List scan by rank → reorder → array scan → scatter back.

    Work: one list ranking plus two permutations plus an O(n) array
    scan — more memory traffic than the direct list scan, but the array
    scan runs at full stride-1 speed.  Mathematically identical to
    ``list_scan(lst, op, inclusive)``; the equivalence is asserted by
    the integration tests.
    """
    op = get_operator(op)
    rank = list_rank(lst, algorithm=algorithm, rng=rng)
    in_order = reorder_by_rank(lst.values, rank)
    if inclusive:
        scanned = array_inclusive_scan(in_order, op)
    else:
        scanned = array_exclusive_scan(in_order, op)
    # scatter back to node order: node i's result sits at position rank[i]
    return scanned[rank]
