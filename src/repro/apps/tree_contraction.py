"""Parallel tree contraction: expression-tree evaluation.

The paper motivates list ranking through "parallel tree contraction
[17]" and applications like expression evaluation (Section 1).  This
module implements the Miller/Reif rake-based contraction for binary
arithmetic expression trees:

* every leaf carries a number, every internal node an operator
  (``+`` or ``*``);
* every tree edge carries an *affine label* ``x ↦ a·x + b`` (initially
  the identity) — the classic closure property that makes ``+``/``*``
  trees contractible: partially applying either operator to a known
  child value yields an affine function of the remaining child;
* leaves are numbered left-to-right **by list-ranking the Euler tour**
  (the exact use of the primitive the paper describes), and each round
  rakes the odd-numbered leaves — left children first, then right
  children — so no two raked leaves share a parent;
* after Θ(log n) rounds a single leaf remains and the root's value is
  its labelled value.

The rake rounds are fully vectorized NumPy; only the round loop is
sequential, mirroring the paper's data-parallel style.
"""

from __future__ import annotations


import numpy as np

from ..lists.generate import INDEX_DTYPE
from .euler_tour import tree_measures

__all__ = ["ExpressionTree", "evaluate_expression_tree", "random_expression_tree"]

OP_ADD = 0
OP_MUL = 1


class ExpressionTree:
    """A binary arithmetic expression tree.

    Parameters
    ----------
    parent:
        Parent index per node; ``parent[root] == root``.
    ops:
        Operator code per node (``OP_ADD`` or ``OP_MUL``); only
        meaningful for internal nodes.
    leaf_values:
        Value per node; only meaningful for leaves.

    Every internal node must have exactly two children.
    """

    def __init__(
        self,
        parent: np.ndarray,
        ops: np.ndarray,
        leaf_values: np.ndarray,
        root: int = 0,
    ) -> None:
        self.parent = np.asarray(parent, dtype=INDEX_DTYPE)
        self.ops = np.asarray(ops, dtype=np.int8)
        self.leaf_values = np.asarray(leaf_values)
        self.root = int(root)
        n = self.parent.shape[0]
        if self.parent[self.root] != self.root:
            raise ValueError("parent[root] must equal root")
        counts = np.bincount(
            self.parent[np.arange(n, dtype=INDEX_DTYPE) != self.root],
            minlength=n,
        )
        internal = counts > 0
        if np.any(counts[internal] != 2):
            raise ValueError("every internal node needs exactly two children")
        self.is_leaf = ~internal
        if self.is_leaf[self.root] and n > 1:
            raise ValueError("root of a multi-node tree cannot be a leaf")

    @property
    def n(self) -> int:
        return int(self.parent.shape[0])

    def evaluate_serial(self) -> float:
        """Reference: post-order scalar evaluation."""
        n = self.n
        children: list = [[] for _ in range(n)]
        for v in range(n):
            if v != self.root:
                children[self.parent[v]].append(v)
        val = np.zeros(n, dtype=np.float64)
        stack = [(self.root, False)]
        while stack:
            v, done = stack.pop()
            if self.is_leaf[v]:
                val[v] = self.leaf_values[v]
                continue
            if done:
                a, b = (val[c] for c in children[v])
                val[v] = a + b if self.ops[v] == OP_ADD else a * b
            else:
                stack.append((v, True))
                for c in children[v]:
                    stack.append((c, False))
        return float(val[self.root])


def random_expression_tree(
    n_leaves: int,
    rng: np.random.Generator | int | None = None,
    value_low: float = -3.0,
    value_high: float = 3.0,
) -> ExpressionTree:
    """A random full binary expression tree with ``n_leaves`` leaves.

    Built by repeatedly splitting a random leaf into an internal node
    with two children; operator codes are coin flips.
    """
    if n_leaves < 1:
        raise ValueError("need at least one leaf")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    total = 2 * n_leaves - 1
    parent = np.zeros(total, dtype=INDEX_DTYPE)
    leaves = [0]
    nxt_id = 1
    while nxt_id + 1 < total + 1 and len(leaves) < n_leaves:
        v = leaves.pop(int(gen.integers(0, len(leaves))))
        a, b = nxt_id, nxt_id + 1
        nxt_id += 2
        parent[a] = v
        parent[b] = v
        leaves.extend([a, b])
    ops = gen.integers(0, 2, total).astype(np.int8)
    values = gen.uniform(value_low, value_high, total)
    return ExpressionTree(parent, ops, values)


def evaluate_expression_tree(
    tree: ExpressionTree,
    algorithm: str = "sublist",
    rng: np.random.Generator | int | None = None,
) -> float:
    """Evaluate the expression tree by parallel rake contraction.

    Uses list ranking over the Euler tour (via ``algorithm``) to number
    the leaves, then rakes odd leaves per round.  Returns the root
    value (float; the affine labels are kept in float64).
    """
    n = tree.n
    if n == 1:
        return float(tree.leaf_values[tree.root])

    measures = tree_measures(tree.parent, tree.root, algorithm=algorithm, rng=rng)
    preorder = measures["preorder"]

    parent = tree.parent.copy()
    is_leaf = tree.is_leaf.copy()
    # affine edge labels: value contributed upward = a·x + b
    lab_a = np.ones(n, dtype=np.float64)
    lab_b = np.zeros(n, dtype=np.float64)
    val = tree.leaf_values.astype(np.float64).copy()
    alive_leaf = is_leaf.copy()
    alive_leaf[tree.root] = False

    # sibling pointers: for each node, the other child of its parent
    sibling = _siblings(parent, tree.root, n)
    # left child = the child with the smaller preorder number
    is_left = np.zeros(n, dtype=bool)
    idx = np.arange(n, dtype=INDEX_DTYPE)
    non_root = idx != tree.root
    is_left[non_root] = preorder[idx[non_root]] < preorder[sibling[idx[non_root]]]

    # leaf numbering by Euler-tour order
    leaf_ids = np.flatnonzero(alive_leaf)
    order = np.argsort(preorder[leaf_ids])
    number = np.empty(n, dtype=np.int64)
    number[leaf_ids[order]] = np.arange(leaf_ids.size, dtype=np.int64)

    ops = tree.ops
    # replacement map: spliced-out parent → the child that took its place
    repl = np.full(n, -1, dtype=INDEX_DTYPE)
    guard = 4 * int(np.ceil(np.log2(max(n, 2)))) + 8
    for _ in range(guard):
        live = np.flatnonzero(alive_leaf)
        if live.size <= 1:
            break
        odd = live[number[live] % 2 == 1]
        for side in (True, False):  # left children first, then right
            rake = odd[is_left[odd] == side]
            rake = rake[rake != tree.root]
            # never rake a leaf whose sibling is also raking this side
            # (cannot happen: siblings share a parent, and within a side
            # their numbers differ — but a leaf whose sibling is ALSO an
            # odd leaf on the other side is fine).  A leaf whose parent
            # is the root and whose sibling is the last remaining leaf
            # still rakes normally.
            if rake.size == 0:
                continue
            p = parent[rake]
            s = sibling[rake]
            contrib = lab_a[rake] * val[rake] + lab_b[rake]
            # fold the raked value into the sibling's edge label through
            # the parent's partially applied operator and label
            add_mask = ops[p] == OP_ADD
            new_a = np.where(add_mask, lab_a[s], lab_a[s] * contrib)
            new_b = np.where(add_mask, lab_b[s] + contrib, lab_b[s] * contrib)
            lab_a[s] = lab_a[p] * new_a
            lab_b[s] = lab_a[p] * new_b + lab_b[p]
            # splice out the parent: sibling moves up
            gp = parent[p]
            parent[s] = gp
            root_replace = p == tree.root
            # if the parent was the root, the sibling becomes the root
            if np.any(root_replace):
                new_root_s = s[root_replace][0]
                parent[new_root_s] = new_root_s
            # rewire sibling pointers at the grandparent level
            repl[p] = s
            p_sib = sibling[p]
            sibling[s] = p_sib
            valid = p_sib >= 0
            sibling[p_sib[valid]] = s[valid]
            is_left[s] = is_left[p]
            alive_leaf[rake] = False
            # when two sibling parents spliced simultaneously, each
            # survivor's sibling pointer still names the other's dead
            # parent — chase the replacement chain (bounded length)
            for _fix in range(64):
                sib_now = sibling[s]
                ok = sib_now >= 0
                bad = np.zeros(s.shape[0], dtype=bool)
                bad[ok] = repl[sib_now[ok]] >= 0
                if not np.any(bad):
                    break
                sibling[s[bad]] = repl[sibling[s[bad]]]
        # renumber the remaining leaves
        live = np.flatnonzero(alive_leaf)
        order = np.argsort(number[live], kind="stable")
        number[live[order]] = np.arange(live.size, dtype=np.int64)

    live = np.flatnonzero(alive_leaf)
    if live.size != 1:
        raise RuntimeError("contraction did not converge")
    last = int(live[0])
    return float(lab_a[last] * val[last] + lab_b[last])


def _siblings(parent: np.ndarray, root: int, n: int) -> np.ndarray:
    """For each non-root node, the other child of its parent."""
    sibling = np.full(n, -1, dtype=INDEX_DTYPE)
    idx = np.arange(n, dtype=INDEX_DTYPE)
    non_root = idx != root
    kids = idx[non_root]
    # group the two children of each parent
    order = np.argsort(parent[kids], kind="stable")
    sorted_kids = kids[order]
    first = sorted_kids[0::2]
    second = sorted_kids[1::2]
    sibling[first] = second
    sibling[second] = first
    return sibling
