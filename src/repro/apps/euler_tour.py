"""Euler-tour technique on rooted trees, built on list ranking.

The paper motivates list ranking as the primitive behind "finding the
Euler tour of a tree" and parallel tree contraction (Section 1).  This
module is that application, end to end:

1. A rooted tree (parent array) is expanded into its *dart* set — each
   tree edge {u, v} contributes the darts u→v and v→u.
2. A rotation system (the circular order of darts around each vertex)
   defines the Euler-tour successor of each dart, giving a **linked
   list of 2(n−1) darts** in exactly the paper's representation.
3. **List ranking** of that linked list yields the tour positions, and
   **list scans** over ±1 dart values yield depths; first/last
   occurrences give preorder/postorder numbers and subtree sizes.

Every scan goes through the library's public algorithms, so this is
both a realistic workload generator (tour lists are highly irregular)
and an integration test of the whole stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.list_scan import list_rank, list_scan
from ..core.operators import SUM
from ..lists.generate import INDEX_DTYPE, LinkedList

__all__ = ["EulerTour", "build_euler_tour", "tree_measures", "random_parent_tree"]


@dataclass
class EulerTour:
    """The Euler tour of a rooted tree as a linked list of darts.

    Dart ``2k`` is parent→child for the k-th non-root vertex (in vertex
    order); dart ``2k+1`` is the matching child→parent dart.
    """

    tour: LinkedList  #: linked list over the 2(n−1) darts
    dart_from: np.ndarray  #: source vertex of each dart
    dart_to: np.ndarray  #: target vertex of each dart
    down_dart: np.ndarray  #: for each non-root vertex, its entering dart
    up_dart: np.ndarray  #: for each non-root vertex, its leaving dart
    root: int
    n_vertices: int


def random_parent_tree(
    n: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """A random recursive tree: vertex v > 0 attaches to a uniform
    earlier vertex.  ``parent[0] == 0`` marks the root."""
    if n < 1:
        raise ValueError("n must be >= 1")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    parent = np.zeros(n, dtype=INDEX_DTYPE)
    for v in range(1, n):
        parent[v] = gen.integers(0, v)
    return parent


def build_euler_tour(parent: np.ndarray, root: int = 0) -> EulerTour:
    """Construct the Euler-tour linked list of a rooted tree.

    ``parent[v]`` is v's parent; ``parent[root] == root``.  The tour
    starts at the root's first outgoing dart and ends (self-loop) at
    the dart returning to the root from its last child.
    """
    parent = np.asarray(parent, dtype=INDEX_DTYPE)
    n = parent.shape[0]
    if n < 2:
        raise ValueError("Euler tour needs at least 2 vertices")
    if parent[root] != root:
        raise ValueError("parent[root] must equal root")
    kids = np.flatnonzero(np.arange(n, dtype=INDEX_DTYPE) != parent)
    if kids.size != n - 1:
        raise ValueError("parent array must have exactly one root self-loop")

    n_darts = 2 * (n - 1)
    dart_from = np.empty(n_darts, dtype=INDEX_DTYPE)
    dart_to = np.empty(n_darts, dtype=INDEX_DTYPE)
    dart_from[0::2] = parent[kids]  # down darts: parent → child
    dart_to[0::2] = kids
    dart_from[1::2] = kids  # up darts: child → parent
    dart_to[1::2] = parent[kids]
    down_dart = np.full(n, -1, dtype=INDEX_DTYPE)
    up_dart = np.full(n, -1, dtype=INDEX_DTYPE)
    down_dart[kids] = 2 * np.arange(n - 1, dtype=INDEX_DTYPE)
    up_dart[kids] = 2 * np.arange(n - 1, dtype=INDEX_DTYPE) + 1

    # rotation system: darts grouped by source vertex, stable order.
    # succ(u→v) = the dart leaving v that follows (v→u) in v's circular
    # order of outgoing darts.
    order = np.argsort(dart_from, kind="stable").astype(INDEX_DTYPE)
    # position of each dart within its source vertex's group
    group_start = np.zeros(n + 1, dtype=INDEX_DTYPE)
    counts = np.bincount(dart_from, minlength=n)
    group_start[1:] = np.cumsum(counts)
    pos_in_group = np.empty(n_darts, dtype=INDEX_DTYPE)
    pos_in_group[order] = (
        np.arange(n_darts, dtype=INDEX_DTYPE) - group_start[dart_from[order]]
    )
    twin = np.arange(n_darts, dtype=INDEX_DTYPE) ^ 1  # 2k ↔ 2k+1
    # successor of dart d = next outgoing dart (cyclically) after twin(d)
    # within twin(d)'s source group, i.e. around vertex dart_to[d].
    t = twin
    tv = dart_from[t]  # == dart_to of d
    nxt_pos = pos_in_group[t] + 1
    wrap = nxt_pos >= counts[tv]
    nxt_pos[wrap] = 0
    succ = order[group_start[tv] + nxt_pos]

    # cut the Euler cycle into a list: it starts at the root's first
    # outgoing dart; the dart whose successor would be that start
    # becomes the tail (self-loop).
    start = int(order[group_start[root]])
    tail = int(np.flatnonzero(succ == start)[0])
    succ[tail] = tail
    tour = LinkedList(succ, start)
    return EulerTour(
        tour=tour,
        dart_from=dart_from,
        dart_to=dart_to,
        down_dart=down_dart,
        up_dart=up_dart,
        root=root,
        n_vertices=n,
    )


def tree_measures(
    parent: np.ndarray,
    root: int = 0,
    algorithm: str = "sublist",
    rng: np.random.Generator | int | None = None,
) -> dict:
    """Depth, preorder, postorder and subtree size for every vertex,
    computed with list ranking / list scan over the Euler tour.

    ``algorithm`` selects the scan implementation (``"sublist"``,
    ``"wyllie"``, ``"serial"``, …) via the public dispatch API.
    """
    parent = np.asarray(parent, dtype=INDEX_DTYPE)
    n = parent.shape[0]
    if n == 1:
        return {
            "depth": np.zeros(1, dtype=np.int64),
            "preorder": np.zeros(1, dtype=np.int64),
            "postorder": np.zeros(1, dtype=np.int64),
            "subtree_size": np.ones(1, dtype=np.int64),
        }
    et = build_euler_tour(parent, root)
    tour = et.tour
    n_darts = tour.n

    rank = list_rank(tour, algorithm=algorithm, rng=rng)

    # depth: +1 entering a vertex (down dart), −1 leaving (up dart);
    # inclusive scan at a vertex's down dart = its depth.
    delta = np.empty(n_darts, dtype=np.int64)
    delta[0::2] = 1
    delta[1::2] = -1
    depth_scan = list_scan(
        LinkedList(tour.next, tour.head, delta),
        SUM,
        inclusive=True,
        algorithm=algorithm,
        rng=rng,
    )
    kids = np.flatnonzero(np.arange(n, dtype=INDEX_DTYPE) != parent)
    depth = np.zeros(n, dtype=np.int64)
    depth[kids] = depth_scan[et.down_dart[kids]]

    # preorder: vertices ordered by the rank of their down dart; the
    # count of down darts at rank ≤ r is the preorder number.
    is_down = np.zeros(n_darts, dtype=np.int64)
    is_down[0::2] = 1
    downs_before = list_scan(
        LinkedList(tour.next, tour.head, is_down),
        SUM,
        inclusive=True,
        algorithm=algorithm,
        rng=rng,
    )
    preorder = np.zeros(n, dtype=np.int64)
    preorder[kids] = downs_before[et.down_dart[kids]]  # root = 0, children 1..

    postorder = np.zeros(n, dtype=np.int64)
    ups_before = list_scan(
        LinkedList(tour.next, tour.head, 1 - is_down),
        SUM,
        inclusive=True,
        algorithm=algorithm,
        rng=rng,
    )
    postorder[kids] = ups_before[et.up_dart[kids]] - 1  # 0-based among non-root
    postorder[root] = n - 1

    # subtree size: the tour enters v at rank(down) and leaves at
    # rank(up); the enclosed darts are exactly 2·size(v) − 2.
    size = np.empty(n, dtype=np.int64)
    size[kids] = (rank[et.up_dart[kids]] - rank[et.down_dart[kids]]) // 2 + 1
    size[root] = n
    return {
        "depth": depth,
        "preorder": preorder,
        "postorder": postorder,
        "subtree_size": size,
        "tour_rank": rank,
        "euler_tour": et,
    }
