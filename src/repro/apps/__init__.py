"""Applications built on list ranking / list scan."""

from .euler_tour import EulerTour, build_euler_tour, random_parent_tree, tree_measures
from .load_balance import partition_list, partition_summary
from .recurrence import recurrence_list, solve_linear_recurrence
from .reorder import list_to_array, scan_via_reorder
from .tree_contraction import (
    ExpressionTree,
    evaluate_expression_tree,
    random_expression_tree,
)
