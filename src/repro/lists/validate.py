"""Structural validation of linked lists.

Two levels of checking are provided:

* :func:`validate_list` — vectorized O(n) heuristics (index ranges,
  unique self-loop, in-degree structure).  These catch all *local*
  corruption and most global corruption but cannot, by themselves,
  distinguish a single chain from a chain plus a disjoint cycle.
* :func:`validate_list_strict` — full traversal from the head plus a
  pointer-doubling reachability certificate; O(n log n) work but fully
  sound.  Used by the test suite and by the public API when
  ``validate=True`` is requested.

Both raise :class:`ListStructureError` with a specific message on the
first violation found.
"""

from __future__ import annotations

import numpy as np

from .generate import INDEX_DTYPE, LinkedList

__all__ = [
    "ListStructureError",
    "validate_list",
    "validate_list_strict",
    "is_valid_list",
]


class ListStructureError(ValueError):
    """Raised when a successor array does not encode a single valid list."""


def validate_list(lst: LinkedList) -> None:
    """Vectorized structural checks (necessary conditions).

    Verifies:

    * all successor indices are in range,
    * there is exactly one self-loop (the tail),
    * the head has in-degree 0 from proper links (or is the tail of a
      singleton list),
    * every non-head node has in-degree exactly 1 from proper links.

    Together these conditions say the proper links form a *functional
    graph* in which every node except the head has a unique
    predecessor; a disjoint extra cycle would give some node in-degree
    1 while making the total reachable count wrong, which only the
    strict check detects.
    """
    nxt = lst.next
    n = lst.n
    if nxt.ndim != 1:
        raise ListStructureError("next must be one-dimensional")
    if nxt.dtype != INDEX_DTYPE:
        raise ListStructureError(f"next must have dtype {INDEX_DTYPE}, got {nxt.dtype}")
    if np.any((nxt < 0) | (nxt >= n)):
        bad = int(np.flatnonzero((nxt < 0) | (nxt >= n))[0])
        raise ListStructureError(
            f"next[{bad}] = {int(nxt[bad])} out of range [0, {n})"
        )
    idx = np.arange(n, dtype=INDEX_DTYPE)
    self_loops = np.flatnonzero(nxt == idx)
    if self_loops.size != 1:
        raise ListStructureError(
            f"expected exactly one self-loop (tail); found {self_loops.size}"
        )
    tail = int(self_loops[0])
    if n == 1:
        if lst.head != tail:
            raise ListStructureError("singleton list must have head == tail")
        return
    if lst.head == tail:
        raise ListStructureError("head is the tail of a multi-node list")
    # in-degree over proper (non-self) links
    proper = nxt[nxt != idx]
    indeg = np.bincount(proper, minlength=n)
    if indeg[lst.head] != 0:
        raise ListStructureError(
            f"head {lst.head} has in-degree {int(indeg[lst.head])}; expected 0"
        )
    others = indeg[idx != lst.head]
    if np.any(others != 1):
        which = idx[idx != lst.head][np.flatnonzero(others != 1)[0]]
        raise ListStructureError(
            f"node {int(which)} has in-degree {int(indeg[which])}; expected 1"
        )


def validate_list_strict(lst: LinkedList) -> None:
    """Sound validation: local checks + pointer-doubling reachability.

    After :func:`validate_list` passes, repeatedly squares the
    successor map (``next ← next∘next``, ⌈log₂ n⌉ rounds).  In a valid
    list every node's pointer converges to the tail; any disjoint cycle
    leaves its members pointing inside the cycle, never at the tail.
    """
    validate_list(lst)
    n = lst.n
    tail = lst.tail
    ptr = lst.next.copy()
    rounds = max(1, int(np.ceil(np.log2(max(n, 2)))))
    for _ in range(rounds):
        ptr = ptr[ptr]
    if not np.all(ptr == tail):
        stranded = int(np.flatnonzero(ptr != tail)[0])
        raise ListStructureError(
            f"node {stranded} cannot reach the tail; the structure contains "
            "a cycle disjoint from the head chain"
        )


def is_valid_list(lst: LinkedList, strict: bool = True) -> bool:
    """Boolean convenience wrapper around the validators."""
    try:
        if strict:
            validate_list_strict(lst)
        else:
            validate_list(lst)
    except ListStructureError:
        return False
    return True
