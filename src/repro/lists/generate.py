"""Workload generators for linked lists.

A linked list over ``n`` nodes is represented exactly as in the paper
(Section 2): a *successor* array ``next`` of length ``n`` where
``next[i]`` is the index of the node that follows node ``i``, the tail
is a self-loop (``next[tail] == tail``), and a scalar ``head`` gives the
index of the first node.  Node values live in a separate array of the
same length.

The generators in this module produce the workloads used throughout the
paper's evaluation:

* :func:`random_list` — a list whose nodes are laid out in memory in a
  uniformly random order.  This is the paper's standard workload; the
  equally-spaced splitter strategy (Section 3, ``GEN_TAILS``) relies on
  this layout so that sublist lengths follow the exponential order
  statistics of Section 4.1.
* :func:`ordered_list` / :func:`reversed_list` — fully sequential
  layouts (stride +1 / −1).  These are the friendliest cases for a
  serial traversal and exhibit *no* gather irregularity.
* :func:`blocked_list` — a ``k``-local layout where each link jumps at
  most ``k`` slots; models partially sorted data and produces
  systematic memory-bank collision patterns on the simulated machine.
* :func:`pathological_bank_list` — every link strides by a fixed
  multiple of the memory-bank count; the worst case for a banked
  memory system.

All generators return indices with dtype :data:`INDEX_DTYPE`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "INDEX_DTYPE",
    "LinkedList",
    "random_list",
    "ordered_list",
    "reversed_list",
    "blocked_list",
    "pathological_bank_list",
    "from_order",
    "list_order",
    "random_values",
    "unit_values",
]

#: dtype used for all successor/index arrays in the library.
INDEX_DTYPE = np.int64


@dataclass
class LinkedList:
    """A linked list in the paper's array representation.

    Attributes
    ----------
    next:
        Successor index of each node; the tail is a self-loop.
    head:
        Index of the first node of the list.
    values:
        Per-node values to be scanned.  Defaults to all ones, which
        makes ``list_scan`` compute list ranking (Section 2: "list
        ranking is the list scan where plus is the operator and the
        values to be summed are all equal to one").
    """

    next: np.ndarray
    head: int
    values: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.next = np.ascontiguousarray(self.next, dtype=INDEX_DTYPE)
        if self.values is None:
            self.values = np.ones(self.next.shape[0], dtype=np.int64)
        else:
            self.values = np.ascontiguousarray(self.values)
        if self.values.shape[:1] != self.next.shape:
            raise ValueError(
                f"values leading dimension {self.values.shape} does not match "
                f"list length {self.next.shape[0]}"
            )
        self.head = int(self.head)
        n = self.next.shape[0]
        if n == 0:
            raise ValueError("linked list must have at least one node")
        if not (0 <= self.head < n):
            raise ValueError(f"head {self.head} out of range for n={n}")

    @property
    def n(self) -> int:
        """Number of nodes in the list."""
        return int(self.next.shape[0])

    @property
    def tail(self) -> int:
        """Index of the tail node (the unique self-loop).

        Computed by traversal-free inspection: the tail is the only
        index with ``next[i] == i``.
        """
        loops = np.flatnonzero(self.next == np.arange(self.n, dtype=INDEX_DTYPE))
        if loops.size != 1:
            raise ValueError(
                f"list has {loops.size} self-loops; a valid list has exactly 1"
            )
        return int(loops[0])

    def copy(self) -> "LinkedList":
        """Deep copy (used by tests asserting restoration invariants)."""
        return LinkedList(self.next.copy(), self.head, self.values.copy())


def _resolve_rng(
    rng: np.random.Generator | int | None,
) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def from_order(order: np.ndarray, values: np.ndarray | None = None) -> LinkedList:
    """Build a list that visits node ``order[0]``, ``order[1]``, … in turn.

    ``order`` must be a permutation of ``0 … n−1``.  The tail
    (``order[-1]``) is given a self-loop.
    """
    order = np.asarray(order, dtype=INDEX_DTYPE)
    n = order.shape[0]
    nxt = np.empty(n, dtype=INDEX_DTYPE)
    nxt[order[:-1]] = order[1:]
    nxt[order[-1]] = order[-1]
    return LinkedList(nxt, int(order[0]), values)


def list_order(lst: LinkedList) -> np.ndarray:
    """Return the node indices of ``lst`` in list order (head first).

    This is the inverse of :func:`from_order`; it walks the list with a
    scalar loop and is intended for validation and small inputs.
    """
    n = lst.n
    order = np.empty(n, dtype=INDEX_DTYPE)
    cur = lst.head
    nxt = lst.next
    for k in range(n):
        order[k] = cur
        succ = int(nxt[cur])
        if succ == cur:
            if k != n - 1:
                raise ValueError(
                    f"reached tail after {k + 1} nodes; list claims n={n}"
                )
            break
        cur = succ
    else:  # pragma: no cover - loop always breaks or fills
        pass
    return order


def random_list(
    n: int,
    rng: np.random.Generator | int | None = None,
    values: np.ndarray | None = None,
) -> LinkedList:
    """A list whose memory layout is a uniformly random permutation.

    This is the paper's canonical workload: "we chose to use equally
    spaced positions and assumed that the linked lists are randomly
    ordered" (Section 3, ``Initialize``).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    gen = _resolve_rng(rng)
    order = gen.permutation(n).astype(INDEX_DTYPE)
    return from_order(order, values)


def ordered_list(n: int, values: np.ndarray | None = None) -> LinkedList:
    """A list laid out sequentially in memory: node ``i`` links to ``i+1``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    nxt = np.arange(1, n + 1, dtype=INDEX_DTYPE)
    nxt[-1] = n - 1
    return LinkedList(nxt, 0, values)


def reversed_list(n: int, values: np.ndarray | None = None) -> LinkedList:
    """A list laid out in reverse memory order: node ``i`` links to ``i−1``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    nxt = np.arange(-1, n - 1, dtype=INDEX_DTYPE)
    nxt[0] = 0
    return LinkedList(nxt, n - 1, values)


def blocked_list(
    n: int,
    block: int,
    rng: np.random.Generator | int | None = None,
    values: np.ndarray | None = None,
) -> LinkedList:
    """A ``block``-local list: list order is random *within* consecutive
    memory blocks, while blocks themselves are visited in order.

    Models partially sorted data.  Each link jumps at most
    ``2·block − 1`` memory slots, so gathers are cache/bank friendly
    compared to :func:`random_list`.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if block < 1:
        raise ValueError("block must be >= 1")
    gen = _resolve_rng(rng)
    order = np.empty(n, dtype=INDEX_DTYPE)
    pos = 0
    for start in range(0, n, block):
        stop = min(start + block, n)
        width = stop - start
        order[pos : pos + width] = start + gen.permutation(width)
        pos += width
    return from_order(order, values)


def pathological_bank_list(
    n: int,
    stride: int,
    values: np.ndarray | None = None,
) -> LinkedList:
    """A list whose traversal gathers with a fixed memory stride.

    The list order visits indices ``0, stride, 2·stride, … (mod n)``
    (with the residue classes concatenated), so a vector gather along
    the list hits memory banks in a fixed pattern.  When ``stride`` is
    a multiple of the simulated machine's bank count every access in a
    vector strip lands on the same bank — the worst case discussed in
    Section 3 ("Bad choices for k can result in the same memory bank
    being accessed at a rate higher than the cycle time").
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if stride < 1:
        raise ValueError("stride must be >= 1")
    cols = np.arange(stride, dtype=INDEX_DTYPE)
    order = np.concatenate(
        [np.arange(c, n, stride, dtype=INDEX_DTYPE) for c in cols]
    )
    return from_order(order, values)


def random_values(
    n: int,
    rng: np.random.Generator | int | None = None,
    low: int = -1000,
    high: int = 1000,
    dtype: np.dtype = np.int64,
) -> np.ndarray:
    """Uniform random integer node values in ``[low, high)``."""
    gen = _resolve_rng(rng)
    return gen.integers(low, high, size=n, dtype=np.int64).astype(dtype)


def unit_values(n: int, dtype: np.dtype = np.int64) -> np.ndarray:
    """All-ones values: scanning these with ``+`` yields list ranks."""
    return np.ones(n, dtype=dtype)
