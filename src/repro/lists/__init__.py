"""Linked-list substrate: generators, validators, conversions."""

from .convert import (
    array_exclusive_scan,
    array_inclusive_scan,
    list_from_array,
    rank_to_order,
    reorder_by_rank,
)
from .generate import (
    INDEX_DTYPE,
    LinkedList,
    blocked_list,
    from_order,
    list_order,
    ordered_list,
    pathological_bank_list,
    random_list,
    random_values,
    reversed_list,
    unit_values,
)
from .validate import ListStructureError, is_valid_list, validate_list, validate_list_strict
from .mutate import concatenate, extract, reverse, splice_out, split_after
