"""Structural operations on linked lists.

The algorithms in this library temporarily cut and restore lists; the
utilities here expose those manipulations as safe public operations.
Because a :class:`LinkedList` always covers its whole node array with a
single self-loop-terminated chain, operations that produce *several*
lists return each piece as a compact standalone list together with the
array of original node indices it was extracted from.  Inputs are never
mutated.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..baselines.serial import serial_list_rank
from ..baselines.wyllie import build_predecessors
from .generate import INDEX_DTYPE, LinkedList, from_order, list_order

__all__ = ["concatenate", "split_after", "reverse", "splice_out", "extract"]


def concatenate(lists: Sequence[LinkedList]) -> tuple[LinkedList, np.ndarray]:
    """Concatenate independent lists into one.

    Each input owns its own node space; the output's node space is
    their disjoint union in input order.  Returns ``(combined,
    offsets)`` where node ``k`` of input ``j`` became node
    ``k + offsets[j]``.
    """
    if not lists:
        raise ValueError("need at least one list")
    offsets = np.zeros(len(lists), dtype=INDEX_DTYPE)
    total = 0
    for j, lst in enumerate(lists):
        offsets[j] = total
        total += lst.n
    order_parts = []
    value_parts = []
    for j, lst in enumerate(lists):
        order = list_order(lst) + offsets[j]
        order_parts.append(order)
        value_parts.append(lst.values[list_order(lst)])
    full_order = np.concatenate(order_parts)
    values_in_order = np.concatenate(value_parts)
    values = np.empty_like(values_in_order)
    values[full_order] = values_in_order
    return from_order(full_order, values), offsets


def extract(lst: LinkedList, start: int, length: int) -> tuple[LinkedList, np.ndarray]:
    """The compact sublist of ``length`` nodes beginning at ``start``.

    Returns ``(piece, node_ids)`` with ``node_ids[k]`` the original
    index of the piece's node ``k``.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    ids = np.empty(length, dtype=INDEX_DTYPE)
    cur = int(start)
    nxt = lst.next
    for k in range(length):
        ids[k] = cur
        succ = int(nxt[cur])
        if succ == cur and k < length - 1:
            raise ValueError("segment runs past the tail")
        cur = succ
    piece = from_order(
        np.arange(length, dtype=INDEX_DTYPE), lst.values[ids].copy()
    )
    return piece, ids


def split_after(
    lst: LinkedList, nodes: Sequence[int]
) -> list[tuple[LinkedList, np.ndarray]]:
    """Split the list after each node in ``nodes``.

    Returns the pieces in list order as ``(piece, node_ids)`` pairs —
    the non-destructive form of the paper's INITIALIZE cut.  Splitting
    after the tail is a no-op.
    """
    cut = np.unique(np.asarray(nodes, dtype=INDEX_DTYPE))
    if cut.size and (cut.min() < 0 or cut.max() >= lst.n):
        raise ValueError("split node out of range")
    rank = serial_list_rank(lst)
    order = np.empty(lst.n, dtype=INDEX_DTYPE)
    order[rank] = np.arange(lst.n, dtype=INDEX_DTYPE)
    # boundaries: positions after which we cut
    cut_pos = np.sort(rank[cut])
    cut_pos = cut_pos[cut_pos < lst.n - 1]
    bounds = np.concatenate(([0], cut_pos + 1, [lst.n]))
    pieces = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        ids = order[a:b]
        piece = from_order(
            np.arange(b - a, dtype=INDEX_DTYPE), lst.values[ids].copy()
        )
        pieces.append((piece, ids))
    return pieces


def reverse(lst: LinkedList) -> LinkedList:
    """The same nodes visited in reverse order (same node space)."""
    pred = build_predecessors(lst)
    return LinkedList(pred.copy(), lst.tail, lst.values.copy())


def splice_out(
    lst: LinkedList, start: int, stop: int
) -> tuple[tuple[LinkedList, np.ndarray], tuple[LinkedList, np.ndarray]]:
    """Remove the segment from ``start`` through ``stop`` (inclusive).

    ``start`` must not come after ``stop`` in list order, and at least
    one node must remain.  Returns ``((remainder, remainder_ids),
    (segment, segment_ids))``, both compact.
    """
    rank = serial_list_rank(lst)
    if rank[start] > rank[stop]:
        raise ValueError("start must not come after stop in list order")
    n = lst.n
    a, b = int(rank[start]), int(rank[stop])
    if b - a + 1 >= n:
        raise ValueError("cannot remove every node")
    order = np.empty(n, dtype=INDEX_DTYPE)
    order[rank] = np.arange(n, dtype=INDEX_DTYPE)
    seg_ids = order[a : b + 1]
    rem_ids = np.concatenate((order[:a], order[b + 1 :]))
    segment = from_order(
        np.arange(seg_ids.size, dtype=INDEX_DTYPE), lst.values[seg_ids].copy()
    )
    remainder = from_order(
        np.arange(rem_ids.size, dtype=INDEX_DTYPE), lst.values[rem_ids].copy()
    )
    return (remainder, rem_ids), (segment, seg_ids)
