"""Conversions between linked lists, ranks, permutations and arrays.

The paper motivates list ranking as the primitive that lets a linked
list be reordered into an array "in one parallel step" (Section 1), so
that ordinary array scans can then be applied.  This module implements
that composition:

* :func:`rank_to_order` — turn the rank array produced by list ranking
  into the permutation that lists nodes in list order.
* :func:`reorder_by_rank` — the single scatter step that moves node
  payloads into array order.
* :func:`array_exclusive_scan` / :func:`array_inclusive_scan` — plain
  array prescans used after reordering (and by the test oracle).
* :func:`list_from_array` — inverse construction for round-trip tests.
"""

from __future__ import annotations


import numpy as np

from ..core.operators import Operator, SUM
from .generate import INDEX_DTYPE, LinkedList, from_order

__all__ = [
    "rank_to_order",
    "reorder_by_rank",
    "array_exclusive_scan",
    "array_inclusive_scan",
    "list_from_array",
]


def rank_to_order(rank: np.ndarray) -> np.ndarray:
    """Invert a rank array into the list-order permutation.

    ``rank[i]`` is the position of node ``i`` in list order; the result
    ``order`` satisfies ``order[rank[i]] == i``, i.e. ``order[k]`` is
    the node at position ``k``.  Raises if ``rank`` is not a
    permutation of ``0 … n−1``.
    """
    rank = np.asarray(rank)
    n = rank.shape[0]
    order = np.full(n, -1, dtype=INDEX_DTYPE)
    order[rank] = np.arange(n, dtype=INDEX_DTYPE)
    if np.any(order < 0):
        raise ValueError("rank array is not a permutation of 0..n-1")
    return order


def reorder_by_rank(payload: np.ndarray, rank: np.ndarray) -> np.ndarray:
    """Scatter node payloads into list order — the paper's "one parallel step".

    ``result[rank[i]] = payload[i]``.
    """
    payload = np.asarray(payload)
    rank = np.asarray(rank)
    if payload.shape[0] != rank.shape[0]:
        raise ValueError("payload and rank must have the same length")
    out = np.empty_like(payload)
    out[rank] = payload
    return out


def array_exclusive_scan(
    values: np.ndarray, op: Operator = SUM, out: np.ndarray | None = None
) -> np.ndarray:
    """Exclusive prescan of a plain array under ``op``.

    ``out[k] = values[0] ⊕ … ⊕ values[k−1]`` with ``out[0]`` the
    operator identity.  This is the array primitive the paper's scan
    work builds on (Chatterjee/Blelloch/Zagha, reference [6]).
    """
    values = np.asarray(values)
    n = values.shape[0]
    if out is None:
        out = np.empty_like(values)
    if n == 0:
        return out
    inclusive = op.accumulate(values)
    out[0] = op.identity_for(values.dtype)
    out[1:] = inclusive[:-1]
    return out


def array_inclusive_scan(
    values: np.ndarray, op: Operator = SUM, out: np.ndarray | None = None
) -> np.ndarray:
    """Inclusive scan of a plain array under ``op``."""
    values = np.asarray(values)
    if out is None:
        return op.accumulate(values)
    out[...] = op.accumulate(values)
    return out


def list_from_array(
    values: np.ndarray,
    order: np.ndarray | None = None,
) -> LinkedList:
    """Build a linked list whose list order is ``order`` (default: 0…n−1)
    carrying ``values`` as node payloads (``values`` indexed by node)."""
    values = np.asarray(values)
    n = values.shape[0]
    if order is None:
        order = np.arange(n, dtype=INDEX_DTYPE)
    return from_order(np.asarray(order, dtype=INDEX_DTYPE), values)
