"""The paper's measured kernel timing equations (Section 3) and the
closed-form cost model built from them (Section 4.2–4.3).

Every subroutine of the vectorized implementation was timed on the
Cray C-90 and fit to a line ``T(x) = a·x + b`` in clock cycles (4.2 ns
each), where ``x`` is the vector length the subroutine operates on:

=========================  ==========================  ============
subroutine                 equation (clocks)            operates on
=========================  ==========================  ============
``INITIALIZE``             ``13·m + 8700``              m sublists
``INITIAL_RANK`` step      ``3.4·x + 80``               x live lists
``INITIAL_PACK``           ``7·x + 540``                x live lists
``FIND_SUBLIST_LIST``      ``9·m + 770``                m sublists
``SERIAL_LIST_SCAN``       ``34·m + 255``               m nodes
``FINAL_RANK`` step        ``5·x + 100``                x live lists
``FINAL_PACK``             ``6·x + 400``                x live lists
``RESTORE_LIST``           ``4·m + 250``                m sublists
=========================  ==========================  ============

(The serial per-element coefficient is the paper's measured 34
clocks/element serial traversal — Section 2.1/Figure 1; the constant
255 is from the ``T_serial_list_scan`` equation.)

Because the pack schedule is shared between Phase 1 and Phase 3, the
paper folds the pairs together (Section 4.2):

* combined rank step   ``T_rank(x)  = 8.4·x + 180``  (= a·x + b)
* combined pack step   ``T_pack(x)  = 13·x  + 940``  (= c·x + d)
* combined bookkeeping ``T_other(m) = 26·m  + 9720`` (= e·m + f)

and the closed-form total for Phases 1+3 (paper Eq. 7) is::

    T(n, m, S1, l) = a·n + b·(n/m)·ln m + (a·S1 + c + e)·m + d·l + f

:class:`KernelCosts` carries all of these constants; the default
instance is the paper's C-90 calibration, and the machine simulator can
produce alternative instances via ``repro.machine.calibration``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from collections.abc import Sequence

import numpy as np

__all__ = [
    "KernelCosts",
    "PAPER_C90_COSTS",
    "phase13_time_from_schedule",
    "phase13_time_closed_form",
    "phase2_time",
    "total_time",
    "CLOCK_NS_C90",
]

#: Cray C-90 clock period used throughout the paper, in nanoseconds.
CLOCK_NS_C90 = 4.2


@dataclass(frozen=True)
class KernelCosts:
    """Linear kernel cost table, all in machine clock cycles.

    Attribute pairs ``*_per_elem`` / ``*_const`` give the slope ``a``
    and intercept ``b`` of ``T(x) = a·x + b`` for each kernel.
    """

    initialize_per_elem: float = 13.0
    initialize_const: float = 8700.0
    initial_rank_per_elem: float = 3.4
    initial_rank_const: float = 80.0
    initial_pack_per_elem: float = 7.0
    initial_pack_const: float = 540.0
    find_sublist_per_elem: float = 9.0
    find_sublist_const: float = 770.0
    serial_per_elem: float = 34.0
    serial_const: float = 255.0
    final_rank_per_elem: float = 5.0
    final_rank_const: float = 100.0
    final_pack_per_elem: float = 6.0
    final_pack_const: float = 400.0
    restore_per_elem: float = 4.0
    restore_const: float = 250.0
    #: Wyllie inner loop per round (both gathers + add + link update);
    #: not reported as an equation in the paper — calibrated so the
    #: single-processor Wyllie asymptote matches Figure 3 (≈9 clocks
    #: per element per round plus strip startup).
    wyllie_round_per_elem: float = 9.0
    wyllie_round_const: float = 180.0
    #: Scalar machine clock period in nanoseconds.
    clock_ns: float = CLOCK_NS_C90
    #: Per-synchronisation-point cost in clocks (multiprocessor runs).
    sync_const: float = 2000.0

    # ----- the paper's combined Phase-1+3 coefficients (Section 4.2) -----

    @property
    def a(self) -> float:
        """Combined rank-step slope (paper: 8.4)."""
        return self.initial_rank_per_elem + self.final_rank_per_elem

    @property
    def b(self) -> float:
        """Combined rank-step constant (paper: 180)."""
        return self.initial_rank_const + self.final_rank_const

    @property
    def c(self) -> float:
        """Combined pack slope (paper: 13)."""
        return self.initial_pack_per_elem + self.final_pack_per_elem

    @property
    def d(self) -> float:
        """Combined pack constant (paper: 940)."""
        return self.initial_pack_const + self.final_pack_const

    @property
    def e(self) -> float:
        """Combined bookkeeping slope (paper: 26)."""
        return (
            self.initialize_per_elem
            + self.find_sublist_per_elem
            + self.restore_per_elem
        )

    @property
    def f(self) -> float:
        """Combined bookkeeping constant (paper: 9720)."""
        return self.initialize_const + self.find_sublist_const + self.restore_const

    # ----- individual kernel evaluations -----

    def t_initialize(self, m: float) -> float:
        return self.initialize_per_elem * m + self.initialize_const

    def t_initial_rank_step(self, x: float) -> float:
        return self.initial_rank_per_elem * x + self.initial_rank_const

    def t_initial_pack(self, x: float) -> float:
        return self.initial_pack_per_elem * x + self.initial_pack_const

    def t_find_sublist_list(self, m: float) -> float:
        return self.find_sublist_per_elem * m + self.find_sublist_const

    def t_serial(self, m: float) -> float:
        return self.serial_per_elem * m + self.serial_const

    def t_final_rank_step(self, x: float) -> float:
        return self.final_rank_per_elem * x + self.final_rank_const

    def t_final_pack(self, x: float) -> float:
        return self.final_pack_per_elem * x + self.final_pack_const

    def t_restore(self, m: float) -> float:
        return self.restore_per_elem * m + self.restore_const

    def t_wyllie(self, m: float) -> float:
        """Full Wyllie run on an ``m``-node list: ⌈log₂ m⌉ rounds."""
        if m <= 1:
            return 0.0
        rounds = math.ceil(math.log2(m))
        return rounds * (self.wyllie_round_per_elem * m + self.wyllie_round_const)

    def scale(self, factor: float) -> "KernelCosts":
        """Uniformly scale all costs (used for what-if machine studies)."""
        fields = {
            name: getattr(self, name) * factor
            for name in (
                "initialize_per_elem",
                "initialize_const",
                "initial_rank_per_elem",
                "initial_rank_const",
                "initial_pack_per_elem",
                "initial_pack_const",
                "find_sublist_per_elem",
                "find_sublist_const",
                "serial_per_elem",
                "serial_const",
                "final_rank_per_elem",
                "final_rank_const",
                "final_pack_per_elem",
                "final_pack_const",
                "restore_per_elem",
                "restore_const",
                "wyllie_round_per_elem",
                "wyllie_round_const",
            )
        }
        return replace(self, **fields)


#: The paper's published Cray C-90 calibration.
PAPER_C90_COSTS = KernelCosts()


def phase13_time_from_schedule(
    n: int,
    m: int,
    schedule: Sequence[float],
    costs: KernelCosts = PAPER_C90_COSTS,
    n_processors: int = 1,
) -> float:
    """Expected Phase 1+3 time by summing the schedule (paper Eq. 3/4).

    ``schedule`` is the cumulative pack-point sequence
    ``S_1 < S_2 < … < S_l`` (``S_0 = 0`` is implicit).  Segment ``i``
    performs ``S_{i+1} − S_i`` rank steps over an expected vector
    length ``g(S_i)/p``, then packs.  Bookkeeping ``T_other`` is added;
    Phase 2 is **not** included (see :func:`phase2_time`).
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    p = n_processors
    s_points = np.concatenate(([0.0], np.asarray(schedule, dtype=np.float64)))
    if np.any(np.diff(s_points) <= 0):
        raise ValueError("schedule must be strictly increasing")
    g_vals = m * np.exp(-m * s_points[:-1] / n)
    gaps = np.diff(s_points)
    rank_time = float(np.sum(gaps * (costs.a * g_vals / p + costs.b)))
    pack_time = float(np.sum(costs.c * g_vals / p + costs.d))
    other = costs.e * m / p + costs.f
    return rank_time + pack_time + other


def phase13_time_closed_form(
    n: int,
    m: int,
    s1: float,
    n_packs: int,
    costs: KernelCosts = PAPER_C90_COSTS,
    n_processors: int = 1,
) -> float:
    """The paper's closed form (Eq. 7)::

        T = a·n/p + b·(n/m)·ln m + (a·S1 + c + e)·m/p + d·l + f

    Exact only for the *optimal* schedule; the schedule-sum form above
    is exact for any schedule.
    """
    p = n_processors
    if m <= 1:
        return costs.a * n / p + costs.f
    return (
        costs.a * n / p
        + costs.b * (n / m) * math.log(m)
        + (costs.a * s1 + costs.c + costs.e) * m / p
        + costs.d * n_packs
        + costs.f
    )


def phase2_time(
    m: int,
    costs: KernelCosts = PAPER_C90_COSTS,
    serial_cutoff: int = 256,
    recursive_cutoff: int = 65536,
) -> float:
    """Expected Phase 2 cost for a reduced list of ``m`` nodes.

    Mirrors the implementation's dispatch: serial below
    ``serial_cutoff``, Wyllie up to ``recursive_cutoff``, and a crude
    recursive estimate above (rarely reached for realistic ``n``).
    """
    if m <= serial_cutoff:
        return costs.t_serial(m)
    if m <= recursive_cutoff:
        return costs.t_wyllie(m)
    # recursive: model one more level with m' = m / log2(m)
    m2 = max(2, int(m / math.log2(m)))
    inner = phase2_time(m2, costs, serial_cutoff, recursive_cutoff)
    return costs.a * m + costs.b * (m / m2) * math.log(m2) + inner


def total_time(
    n: int,
    m: int,
    schedule: Sequence[float],
    costs: KernelCosts = PAPER_C90_COSTS,
    n_processors: int = 1,
    serial_cutoff: int = 256,
    recursive_cutoff: int = 65536,
) -> float:
    """Full expected algorithm time (clocks): Phases 1+3 + Phase 2."""
    return phase13_time_from_schedule(
        n, m, schedule, costs, n_processors
    ) + phase2_time(m, costs, serial_cutoff, recursive_cutoff)
