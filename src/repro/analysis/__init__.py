"""Section 4 analysis: distributions, cost model, performance prediction."""

from .cost_model import (
    CLOCK_NS_C90,
    KernelCosts,
    PAPER_C90_COSTS,
    phase13_time_closed_form,
    phase13_time_from_schedule,
    phase2_time,
    total_time,
)
from .distribution import (
    empirical_order_stats,
    expected_live_sublists,
    expected_longest,
    expected_order_stat,
    expected_shortest,
    gamma_tail,
    live_sublists_derivative,
    prob_length_exceeds,
    sample_sublist_lengths,
)
from .predict import Prediction, asymptotic_clocks_per_element, predict_curve, predict_run
from .extensions import (
    early_reconnect_advantage,
    half_performance_length,
    reconnect_cost,
    tail_cost,
    with_half_length,
)
