"""Sublist-length distribution analysis (paper Section 4.1).

When a list of length *n* is split at *m* random positions, the sublist
lengths behave — as *n, m → ∞* with *n ≫ m* — like mutually independent
exponential variables with mean *n/m* (Feller, via the uniform spacings
argument reproduced in the paper's Proposition 2).  Everything the
pack-schedule optimizer needs follows from this:

* ``g(s) = m·exp(−m·s/n)`` — the expected number of sublists longer
  than *s* traversal steps (paper Eq. 1/2); this is the expected vector
  length after *s* unpacked traversal steps.
* order statistics — the expected length of the *i*-th shortest of
  *m + 1* sublists (used to draw Figure 11 and to bound schedules).
* the gamma tail of partial sums of spacings (paper Lemma 5).

The empirical counterparts (:func:`sample_sublist_lengths`,
:func:`empirical_order_stats`) regenerate the observed data of
Figure 11.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "expected_live_sublists",
    "live_sublists_derivative",
    "expected_order_stat",
    "expected_longest",
    "expected_shortest",
    "prob_length_exceeds",
    "gamma_tail",
    "sample_sublist_lengths",
    "empirical_order_stats",
]


def expected_live_sublists(
    s: float | np.ndarray, n: int, m: int
) -> float | np.ndarray:
    """``g(s) = m·e^(−m·s/n)`` — expected sublists still active after ``s``
    traversal steps (paper Eq. 2, the dotted curve of Figure 12)."""
    s = np.asarray(s, dtype=np.float64)
    out = m * np.exp(-m * s / n)
    return float(out) if out.ndim == 0 else out


def live_sublists_derivative(
    s: float | np.ndarray, n: int, m: int
) -> float | np.ndarray:
    """``g'(s) = −(m²/n)·e^(−m·s/n)`` — the slope used by Eq. 5/6."""
    s = np.asarray(s, dtype=np.float64)
    out = -(m * m / n) * np.exp(-m * s / n)
    return float(out) if out.ndim == 0 else out


def prob_length_exceeds(
    x: float | np.ndarray, n: int, m: int
) -> float | np.ndarray:
    """``P{L > x} ≈ e^(−m·x/n)`` for a single sublist length ``L``."""
    x = np.asarray(x, dtype=np.float64)
    out = np.exp(-m * x / n)
    return float(out) if out.ndim == 0 else out


def expected_order_stat(
    i: int | np.ndarray, n: int, m: int
) -> float | np.ndarray:
    """Expected length of the ``i``-th shortest of ``m + 1`` sublists.

    Sets the exponential tail probability to ``(m − i + 1.5)/(m + 1)``
    and solves ``e^(−m·x/n) = a`` (the paper's general estimate; for
    ``i = 1`` it reduces to the paper's improved shortest-sublist
    estimate ``(n/m)·ln((m+1)/(m+.5))`` and for ``i = m+1`` to the
    longest-sublist estimate ``(n/m)·ln(2(m+1))``).
    """
    i = np.asarray(i, dtype=np.float64)
    if np.any(i < 1) or np.any(i > m + 1):
        raise ValueError(f"order index must lie in [1, m+1]={m + 1}")
    a = (m - i + 1.5) / (m + 1)
    out = (n / m) * np.log(1.0 / a)
    return float(out) if out.ndim == 0 else out


def expected_shortest(n: int, m: int) -> float:
    """``E[L₍₁₎] ≈ (n/m)·ln((m+1)/(m+.5))`` (paper Section 4.1)."""
    return (n / m) * math.log((m + 1) / (m + 0.5))


def expected_longest(n: int, m: int) -> float:
    """``E[L₍ₘ₊₁₎] ≈ (n/m)·ln(2(m+1))`` — bounds the parallel depth of
    Phases 1 and 3 and terminates the pack schedule."""
    return (n / m) * math.log(2.0 * (m + 1))


def gamma_tail(k: int, t: float | np.ndarray) -> float | np.ndarray:
    """``P{X₍ₖ₎ > t/m·(n)} → e^(−t) Σ_{j<k} t^j/j!`` (paper Lemma 5).

    The tail of the gamma(k) distribution: the probability that the sum
    of the first ``k`` spacings exceeds ``t`` mean lengths.  Evaluated
    stably via iterative accumulation of the Poisson pmf.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    t = np.asarray(t, dtype=np.float64)
    term = np.exp(-t)  # j = 0
    total = term.copy()
    for j in range(1, k):
        term = term * t / j
        total += term
    out = np.clip(total, 0.0, 1.0)
    return float(out) if out.ndim == 0 else out


def sample_sublist_lengths(
    n: int,
    m: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Draw one sample of the ``m + 1`` sublist lengths.

    Chooses ``m`` distinct random split positions in ``1 … n−1`` (a
    split at ``p`` means the node at list position ``p−1`` becomes a
    sublist tail) and returns the gap lengths, exactly the experiment
    behind Figure 11's observed data.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if m > n - 1:
        raise ValueError(f"cannot place m={m} splits in a list of length {n}")
    # imported lazily: ``core.schedule`` imports this module at package
    # init, and ``lists`` pulls in ``core`` — a top-level import cycles
    from ..lists.generate import INDEX_DTYPE

    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    splits = np.sort(
        gen.choice(np.arange(1, n, dtype=INDEX_DTYPE), size=m, replace=False)
    )
    edges = np.concatenate(([0], splits, [n]))
    return np.diff(edges)


def empirical_order_stats(
    n: int,
    m: int,
    samples: int = 20,
    rng: np.random.Generator | int | None = None,
) -> dict:
    """Observed order statistics of sublist lengths (Figure 11's data).

    Returns a dict with keys ``mean``, ``min``, ``max`` — arrays of
    length ``m + 1`` giving, for each order index ``i`` (the *i*-th
    shortest sublist), the average/minimum/maximum over ``samples``
    independent splits.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    sorted_lengths = np.empty((samples, m + 1), dtype=np.int64)
    for s in range(samples):
        sorted_lengths[s] = np.sort(sample_sublist_lengths(n, m, gen))
    return {
        "mean": sorted_lengths.mean(axis=0),
        "min": sorted_lengths.min(axis=0),
        "max": sorted_lengths.max(axis=0),
    }
