"""Analytical models for the paper's Section 6 extensions.

The paper closes with a machine-dependent recommendation: on vector
machines with long *half-performance lengths* (large per-operation
startup relative to throughput), the tail of Phase 1/3 — many short-
vector steps chasing the longest sublists — should be cut off by
reconnecting and compacting the stragglers ("the trade off may be worth
it if the vector machine has long vector half lengths").  This module
quantifies that trade-off under the Section 4 cost model:

* :func:`tail_cost` — expected cost of finishing Phases 1/3 from the
  moment only ``x`` sublists remain, using the ordinary short-vector
  steps;
* :func:`reconnect_cost` — expected cost of the early-reconnect
  alternative: the bookkeeping scatter during the main loop, the
  compaction, and a full-width rescan of the remaining elements;
* :func:`early_reconnect_advantage` — the ratio of the two as a
  function of the per-step constant ``b`` (the machine's startup), the
  paper's decision variable.

The half-performance length ``n_half = b / a`` converts between the two
framings: ``b`` is large exactly when vectors shorter than ``n_half``
waste most of their time filling pipes.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from .cost_model import KernelCosts, PAPER_C90_COSTS
from .distribution import expected_live_sublists, expected_longest

__all__ = [
    "tail_cost",
    "reconnect_cost",
    "early_reconnect_advantage",
    "half_performance_length",
    "with_half_length",
]


def half_performance_length(costs: KernelCosts = PAPER_C90_COSTS) -> float:
    """The vector length at which startup equals streaming time,
    ``n_half = b / a`` for the combined rank step."""
    return costs.b / costs.a


def with_half_length(
    n_half: float, base: KernelCosts = PAPER_C90_COSTS
) -> KernelCosts:
    """A cost table with the rank/pack step constants scaled so the
    combined half-performance length equals ``n_half`` (throughputs
    unchanged) — models a machine with longer pipes."""
    scale = n_half * base.a / base.b
    return replace(
        base,
        initial_rank_const=base.initial_rank_const * scale,
        final_rank_const=base.final_rank_const * scale,
        initial_pack_const=base.initial_pack_const * scale,
        final_pack_const=base.final_pack_const * scale,
    )


def tail_cost(
    n: int,
    m: int,
    switch_live: int,
    costs: KernelCosts = PAPER_C90_COSTS,
) -> float:
    """Expected Phase 1+3 cost of finishing the last ``switch_live``
    sublists with ordinary short-vector steps.

    From the live-count model: the switch happens at depth
    ``s₀ = (n/m)·ln(m/x)`` where ``x = switch_live``; the remaining
    steps run to the longest sublist at ``s_max = (n/m)·ln 2(m+1)``,
    with expected vector length g(s).  Packing is charged once per
    e-folding of the live count.
    """
    x = max(1, switch_live)
    if x >= m:
        return 0.0
    s0 = (n / m) * math.log(m / x)
    s_max = expected_longest(n, m)
    if s_max <= s0:
        return 0.0
    steps = np.arange(math.floor(s0), math.ceil(s_max), dtype=np.float64)
    g = expected_live_sublists(steps, n, m)
    rank = float(np.sum(costs.a * g + costs.b))
    n_packs = max(1.0, math.log(max(x, math.e)))
    pack = n_packs * (costs.c * x / 2 + costs.d)
    return rank + pack


def reconnect_cost(
    n: int,
    m: int,
    switch_live: int,
    costs: KernelCosts = PAPER_C90_COSTS,
    bookkeeping_per_element: float = 1.25,
) -> float:
    """Expected cost of the early-reconnect alternative.

    * bookkeeping: one extra scatter per element consumed before the
    switch (the paper's "extra book keeping that would slow down the
    main ranking portion");
    * compaction: gather + scatter of the remaining elements;
    * rescan: the remaining ``n_rem = x·(n/m)·(1 + ln?)…`` elements —
      the expected mass above the switch depth is ``x·n/m`` (each of
      the ``x`` stragglers has mean residual ``n/m`` by
      memorylessness) — processed at full vector width, i.e. at the
      asymptotic ``a`` clocks/element plus one extra pack generation.
    """
    x = max(1, switch_live)
    if x >= m:
        x = m
    n_consumed = n * (1 - x / m)  # expected mass below the switch depth
    n_rem = n - n_consumed
    bookkeeping = bookkeeping_per_element * n_consumed
    compaction = 2.0 * 1.25 * n_rem + 2 * costs.d
    rescan = costs.a * n_rem + costs.b * math.log(max(x, 2)) * 4 + costs.f / 4
    return bookkeeping + compaction + rescan


def early_reconnect_advantage(
    n: int,
    m: int,
    switch_live: int | None = None,
    costs: KernelCosts = PAPER_C90_COSTS,
) -> float:
    """``tail_cost / reconnect_cost`` — > 1 when switching pays off.

    On the C-90's short pipes this is < 1 for reasonable parameters
    (the paper's implicit judgement: they did not implement it); as the
    step constants grow (long half-performance lengths) the ratio
    crosses 1 — the paper's stated trade-off.
    """
    if switch_live is None:
        switch_live = max(1, m // 8)
    t = tail_cost(n, m, switch_live, costs)
    r = reconnect_cost(n, m, switch_live, costs)
    return t / r if r > 0 else math.inf
