"""Predicted performance curves (paper Section 4.4, Figure 14; Section 5).

"Figure 14 compares the predicted time with the observed running time.
The predicted time was computed by estimating the parameter values for
each value of n using the fitted cubic equations and then applying the
[cost] equation for those parameter values.  As the figure indicates
the equation is an accurate predictor of the running time.  Notice that
the running time decreases until it reaches an asymptote of about 8.6
clocks per element."

:func:`predict_run` evaluates the full model — tuned (m, S₁), the Eq. 6
schedule, the Eq. 3 schedule-sum for Phases 1+3, and the Phase-2
dispatch cost — for one (n, p); :func:`predict_curve` sweeps n.  The
``bench_fig14`` benchmark overlays these predictions on the simulator's
measurements, reproducing the paper's predicted-vs-measured figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..core.schedule import optimal_schedule
from ..core.tuning import SERIAL_CUTOFF, WYLLIE_CUTOFF, tuned_parameters
from .cost_model import (
    KernelCosts,
    PAPER_C90_COSTS,
    phase2_time,
    phase13_time_from_schedule,
)

__all__ = ["Prediction", "predict_run", "predict_curve", "asymptotic_clocks_per_element"]


@dataclass(frozen=True)
class Prediction:
    """Model-predicted run characteristics for one problem size."""

    n: int
    m: int
    s1: float
    n_packs: int
    n_processors: int
    cycles: float
    clock_ns: float

    @property
    def clocks_per_element(self) -> float:
        return self.cycles / max(self.n, 1)

    @property
    def ns_per_element(self) -> float:
        return self.clocks_per_element * self.clock_ns


def predict_run(
    n: int,
    costs: KernelCosts = PAPER_C90_COSTS,
    n_processors: int = 1,
    m: int | None = None,
    s1: float | None = None,
) -> Prediction:
    """Expected run time of the sublist algorithm for one (n, p)."""
    if m is None or s1 is None:
        m_t, s1_t = tuned_parameters(n, costs, n_processors)
        m = m if m is not None else m_t
        s1 = s1 if s1 is not None else s1_t
    m = int(min(max(m, 2), max(2, n // 2)))
    schedule = optimal_schedule(n, m, s1, costs)
    cycles = phase13_time_from_schedule(n, m, schedule, costs, n_processors)
    cycles += phase2_time(m, costs, SERIAL_CUTOFF, WYLLIE_CUTOFF)
    if n_processors > 1:
        # tasked-loop start for the four parallel regions + syncs
        cycles += 4 * costs.sync_const
    return Prediction(
        n=n,
        m=m,
        s1=float(s1),
        n_packs=len(schedule),
        n_processors=n_processors,
        cycles=cycles,
        clock_ns=costs.clock_ns,
    )


def predict_curve(
    ns: Sequence[int],
    costs: KernelCosts = PAPER_C90_COSTS,
    n_processors: int = 1,
) -> list:
    """Predictions for a sweep of list lengths (Figure 14's model line)."""
    return [predict_run(int(n), costs, n_processors) for n in ns]


def asymptotic_clocks_per_element(costs: KernelCosts = PAPER_C90_COSTS) -> float:
    """The n → ∞ limit of clocks per element on one processor.

    With the tuned m growing polylogarithmically, every per-m and
    constant term vanishes per element and only the combined rank slope
    survives, plus the residual step-constant term b·ln(m)/(m) · … —
    evaluated numerically at a huge n (the paper reports ≈ 8.6).
    """
    pred = predict_run(1 << 28, costs)
    return pred.clocks_per_element
