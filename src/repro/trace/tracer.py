"""Low-overhead span/event tracing for the scan kernels and the engine.

The paper's evaluation method is phase-resolved: every claim in
Section 4 is about *when* something happens inside a run — how many
sublists are still live after ``s`` traversal steps, where the pack
points fall, how the phases share the total time.  Aggregate counters
(``core.stats.ScanStats``) cannot answer those questions after the
fact, so this module records the trajectory itself:

* a :class:`Span` is one timed region (a phase, a shard execution, a
  whole batch) with attributes, child spans and typed :class:`Event`
  points (a pack, a cache probe, a routing decision);
* a :class:`Tracer` owns the span forest.  It is **off by default**
  everywhere: kernels take ``trace=None`` and guard every hook with a
  plain ``is not None`` check, so the untraced hot path pays a handful
  of branches per *pack* (never per element).

Design constraints, in order:

1. **Determinism** — the clock is injectable.  Tests drive a counting
   clock so span durations are exact integers and the structural
   invariants (children nest inside parents, durations sum) are
   checkable without tolerances.
2. **Overhead** — hooks fire per phase and per pack, which is
   O(packs) ≈ O(log-ish) work against the O(n) scan.  A *disabled*
   tracer (``NULL_TRACER``, or ``trace="off"``) still accepts every
   hook call and no-ops, which is what the overhead benchmark
   measures; ``trace=None`` skips the calls entirely.
3. **Thread safety** — span stacks are thread-local (the engine's
   thread-pool driver executes shards concurrently); structural
   mutations (attaching roots/children) take a lock.  A span started
   in a worker thread attaches to an explicit ``parent=`` span so the
   batch tree stays connected across threads.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from typing import Any

__all__ = [
    "Event",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "resolve_trace",
    "null_span",
    "counting_clock",
]


class Event:
    """One typed point-in-time record inside a span.

    ``name`` identifies the event type (``"pack"``, ``"cache_hit"``,
    ``"route"``, …); ``attrs`` carries the payload (live counts, the
    predicted winner, …); ``t`` is the tracer clock reading.
    """

    __slots__ = ("name", "t", "attrs")

    def __init__(self, name: str, t: float, attrs: dict[str, Any]):
        self.name = name
        self.t = t
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.name!r}, t={self.t!r}, {self.attrs!r})"


class Span:
    """One timed region of a traced run.

    ``t1`` is ``None`` while the span is open; :attr:`duration` of an
    unfinished span is 0.  Children appear in start order; events in
    emission order.
    """

    __slots__ = ("name", "t0", "t1", "attrs", "children", "events")

    def __init__(self, name: str, t0: float, attrs: dict[str, Any] | None = None):
        self.name = name
        self.t0 = t0
        self.t1: float | None = None
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.children: list["Span"] = []
        self.events: list[Event] = []

    @property
    def duration(self) -> float:
        """Elapsed clock units; 0 while the span is still open."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Span | None:
        """First span named ``name`` in this subtree (DFS), or ``None``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree, in DFS order."""
        return [span for span in self.walk() if span.name == name]

    def events_named(self, name: str) -> list[Event]:
        """This span's own events of one type, in emission order."""
        return [event for event in self.events if event.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, t0={self.t0!r}, t1={self.t1!r}, "
            f"{len(self.children)} children, {len(self.events)} events)"
        )


class _NoopHandle:
    """Shared do-nothing context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_HANDLE = _NoopHandle()


def null_span(name: str, parent: Span | None = None, **attrs: Any) -> _NoopHandle:
    """Stand-in for ``tracer.span`` when no tracer is attached.

    Kernels bind ``span = tracer.span if tracer is not None else
    null_span`` once per invocation, so the traced and untraced paths
    share one code shape.
    """
    return _NOOP_HANDLE


class _SpanHandle:
    """Context manager that opens/closes one :class:`Span`."""

    __slots__ = ("_tracer", "_name", "_parent", "_attrs", "span")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: Span | None,
        attrs: dict[str, Any],
    ):
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self.span: Span | None = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = Span(self._name, tracer.clock(), self._attrs)
        stack = tracer._stack()
        parent = self._parent
        if parent is None and stack:
            parent = stack[-1]
        with tracer._lock:
            if parent is None:
                tracer.roots.append(span)
            else:
                parent.children.append(span)
        stack.append(span)
        self.span = span
        return span

    def __exit__(self, *exc: object) -> bool:
        span = self.span
        if span is not None:
            span.t1 = self._tracer.clock()
            stack = self._tracer._stack()
            if stack and stack[-1] is span:
                stack.pop()
            elif span in stack:  # pragma: no cover - unbalanced exit guard
                stack.remove(span)
        return False


class Tracer:
    """Collects a forest of spans and events from one or more runs.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time; defaults to
        :func:`time.perf_counter`.  Inject :func:`counting_clock` (or
        any monotonic callable) for deterministic tests.
    enabled:
        A disabled tracer accepts every hook and records nothing —
        the shared :data:`NULL_TRACER` is how ``trace="off"`` keeps
        the instrumented call sites while shedding all bookkeeping.
    """

    __slots__ = ("clock", "enabled", "roots", "_local", "_lock")

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        enabled: bool = True,
    ):
        self.clock = clock if clock is not None else time.perf_counter
        self.enabled = bool(enabled)
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(
        self, name: str, parent: Span | None = None, **attrs: Any
    ) -> _SpanHandle | _NoopHandle:
        """Open a span as a context manager.

        ``parent`` pins the span under an explicit parent (needed when
        the opening thread differs from the parent's); otherwise the
        current thread's innermost open span is the parent and a span
        opened with an empty stack becomes a root.
        """
        if not self.enabled:
            return _NOOP_HANDLE
        return _SpanHandle(self, name, parent, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a typed event on the current thread's open span.

        Events emitted with no open span are dropped (the disabled
        path and a mis-nested caller behave identically: no record).
        """
        if not self.enabled:
            return
        stack = self._stack()
        if stack:
            stack[-1].events.append(Event(name, self.clock(), attrs))

    def annotate(self, **attrs: Any) -> None:
        """Merge attributes into the current thread's open span."""
        if not self.enabled:
            return
        stack = self._stack()
        if stack:
            stack[-1].attrs.update(attrs)

    def adopt(
        self, spans: list[Span], parent: Span | None = None
    ) -> None:
        """Attach already-built spans under ``parent`` (or as roots).

        The engine's process-pool driver records kernel spans inside a
        worker process with that worker's own tracer; the serialized
        records come back with the result and are grafted into the
        batch tree here, so a traced batch stays one connected tree no
        matter where its shards executed.  Adopted spans keep their own
        clock readings (the worker's), which on a fork-based pool share
        the parent's monotonic epoch.
        """
        if not self.enabled:
            return
        spans = list(spans)
        with self._lock:
            if parent is None:
                self.roots.extend(spans)
            else:
                parent.children.extend(spans)

    def current(self) -> Span | None:
        """The current thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def reset(self) -> None:
        """Drop every recorded span (open handles keep working)."""
        with self._lock:
            self.roots = []
        self._local = threading.local()

    def last_root(self) -> Span | None:
        """The most recently started root span, if any."""
        with self._lock:
            return self.roots[-1] if self.roots else None


#: Shared disabled tracer: every hook is a cheap no-op.  ``trace="off"``
#: resolves here, so call sites stay instrumented while recording
#: nothing — the configuration the overhead benchmark measures.
NULL_TRACER = Tracer(enabled=False)


def resolve_trace(trace: None | str | Tracer) -> Tracer | None:
    """Normalize a ``trace=`` argument.

    ``None`` → ``None`` (hooks skipped entirely); ``"off"`` → the
    shared disabled tracer (hooks called, nothing recorded); a
    :class:`Tracer` instance passes through.
    """
    if trace is None:
        return None
    if isinstance(trace, Tracer):
        return trace
    if trace == "off":
        return NULL_TRACER
    raise TypeError(
        f"trace must be None, 'off' or a Tracer, got {trace!r}"
    )


def counting_clock(start: int = 0) -> Callable[[], int]:
    """A deterministic clock: each call returns ``start, start+1, …``.

    With this clock every span/event timestamp is a distinct integer
    in call order, so tests can assert exact nesting and duration
    arithmetic with no floating-point or wall-clock tolerance.
    """
    counter = iter(range(start, 1 << 62))
    return lambda: next(counter)
