"""Trace serialization: JSON span trees, JSONL streams, human tree view.

Three consumers, three shapes:

* :func:`trace_to_dict` / :func:`to_json` — the nested span tree as
  plain JSON, the shape the CI bench-smoke artifact and
  ``repro-c90 trace --json`` emit;
* :func:`write_jsonl` — one JSON object per span (with ``id`` /
  ``parent_id`` links), the append-friendly shape log pipelines want;
* :func:`format_tree` — the human view ``repro-c90 trace`` prints.

Attribute values pass through :func:`jsonable`, which flattens NumPy
scalars and arrays so traces recorded from kernel internals serialize
without a custom encoder.
"""

from __future__ import annotations

import json
from contextlib import suppress
from collections.abc import Iterable
from typing import Any, IO

from .tracer import Event, Span, Tracer

__all__ = [
    "jsonable",
    "span_to_dict",
    "span_from_dict",
    "trace_to_dict",
    "to_json",
    "write_jsonl",
    "format_tree",
]


def jsonable(value: Any) -> Any:
    """Coerce a value into something ``json.dumps`` accepts.

    NumPy scalars become Python numbers, arrays become lists, dict and
    sequence containers recurse, and anything else unrecognized falls
    back to ``repr`` (a trace must never fail to serialize because a
    caller attached an exotic attribute).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item):  # NumPy scalar (0-d)
        with suppress(TypeError, ValueError):
            return jsonable(item())
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # NumPy array
        with suppress(TypeError, ValueError):
            return jsonable(tolist())
    return repr(value)


def _event_to_dict(event: Event) -> dict[str, Any]:
    return {
        "name": event.name,
        "t": jsonable(event.t),
        "attrs": jsonable(event.attrs),
    }


def span_to_dict(span: Span) -> dict[str, Any]:
    """Nested dict form of one span subtree."""
    return {
        "name": span.name,
        "t0": jsonable(span.t0),
        "t1": jsonable(span.t1),
        "duration": jsonable(span.duration),
        "attrs": jsonable(span.attrs),
        "events": [_event_to_dict(e) for e in span.events],
        "children": [span_to_dict(c) for c in span.children],
    }


def span_from_dict(data: dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` subtree from its :func:`span_to_dict` form.

    This is the return leg of the engine's process-pool driver: a
    worker process records kernel spans with its own tracer, ships them
    back as plain dicts (the only shape that crosses the pickle
    boundary without dragging tracer state along), and the parent
    adopts the rebuilt spans under the batch tree
    (:meth:`~repro.trace.tracer.Tracer.adopt`).  Attribute payloads
    survive only in their :func:`jsonable` form.
    """
    span = Span(data["name"], data.get("t0", 0.0), dict(data.get("attrs") or {}))
    span.t1 = data.get("t1")
    for ev in data.get("events") or ():
        span.events.append(
            Event(ev["name"], ev.get("t", 0.0), dict(ev.get("attrs") or {}))
        )
    for child in data.get("children") or ():
        span.children.append(span_from_dict(child))
    return span


def trace_to_dict(trace: Tracer | Span | Iterable[Span]) -> dict[str, Any]:
    """The whole trace (a tracer, one span, or an iterable of spans)
    as ``{"roots": [...]}``."""
    if isinstance(trace, Tracer):
        roots: Iterable[Span] = list(trace.roots)
    elif isinstance(trace, Span):
        roots = [trace]
    else:
        roots = list(trace)
    return {"roots": [span_to_dict(root) for root in roots]}


def to_json(trace: Tracer | Span | Iterable[Span], indent: int | None = 2) -> str:
    """JSON text of :func:`trace_to_dict`."""
    return json.dumps(trace_to_dict(trace), indent=indent)


def write_jsonl(
    trace: Tracer | Span | Iterable[Span],
    fp: IO[str],
) -> int:
    """Write one JSON object per span (events inline), DFS order.

    Each line carries ``id`` and ``parent_id`` so the tree is
    reconstructable from a flat stream; returns the number of lines.
    """
    if isinstance(trace, Tracer):
        roots: list[Span] = list(trace.roots)
    elif isinstance(trace, Span):
        roots = [trace]
    else:
        roots = list(trace)
    count = 0
    next_id = iter(range(1, 1 << 62))

    def emit(span: Span, parent_id: int | None) -> None:
        nonlocal count
        span_id = next(next_id)
        row = {
            "id": span_id,
            "parent_id": parent_id,
            "name": span.name,
            "t0": jsonable(span.t0),
            "t1": jsonable(span.t1),
            "duration": jsonable(span.duration),
            "attrs": jsonable(span.attrs),
            "events": [_event_to_dict(e) for e in span.events],
        }
        fp.write(json.dumps(row) + "\n")
        count += 1
        for child in span.children:
            emit(child, span_id)

    for root in roots:
        emit(root, None)
    return count


def _format_duration(duration: float) -> str:
    """Human duration: seconds-scale clocks get units, integers (from
    deterministic test clocks) print raw."""
    if isinstance(duration, int) or duration == int(duration):
        if duration >= 1e4 or duration != duration:
            return f"{duration:g}"
        return f"{int(duration)}"
    if duration >= 1.0:
        return f"{duration:.3f}s"
    if duration >= 1e-3:
        return f"{duration * 1e3:.2f}ms"
    return f"{duration * 1e6:.1f}us"


def _format_attrs(attrs: dict[str, Any]) -> str:
    if not attrs:
        return ""
    parts = []
    for key, value in attrs.items():
        value = jsonable(value)
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        elif isinstance(value, (dict, list)):
            parts.append(f"{key}={json.dumps(value)}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def format_tree(
    trace: Tracer | Span | Iterable[Span],
    events: bool = True,
    max_events: int = 40,
) -> str:
    """Render a span forest as an indented tree.

    ``events=False`` hides event lines; otherwise up to ``max_events``
    events print per span (the rest are summarized), so a trace of a
    long Phase 1 stays readable.
    """
    if isinstance(trace, Tracer):
        roots: list[Span] = list(trace.roots)
    elif isinstance(trace, Span):
        roots = [trace]
    else:
        roots = list(trace)
    lines: list[str] = []

    def emit(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("`- " if is_last else "|- ")
        attrs = _format_attrs(span.attrs)
        head = f"{prefix}{connector}{span.name} [{_format_duration(span.duration)}]"
        if attrs:
            head += f"  {attrs}"
        lines.append(head)
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "|  ")
        if events and span.events:
            shown = span.events[:max_events]
            for event in shown:
                lines.append(
                    f"{child_prefix}. {event.name}  {_format_attrs(event.attrs)}"
                )
            if len(span.events) > max_events:
                lines.append(
                    f"{child_prefix}. … {len(span.events) - max_events} more "
                    f"event(s)"
                )
        for i, child in enumerate(span.children):
            emit(child, child_prefix, i == len(span.children) - 1, False)

    for root in roots:
        emit(root, "", True, True)
    return "\n".join(lines)
