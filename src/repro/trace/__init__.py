"""Phase-level tracing and model-vs-observed telemetry.

The paper's Section 4 analysis predicts a *trajectory* — the live
sublist count ``g(s) = m·e^(−m·s/n)`` and the Eq. 6 pack schedule —
but aggregate counters can never confirm one.  This subsystem records
the trajectory itself and checks it against the model:

``tracer``
    :class:`Tracer` / :class:`Span` / :class:`Event` — the span-tree
    recorder.  Off by default everywhere; injectable clock for
    deterministic tests; thread-local span stacks so the engine's
    parallel shard driver traces cleanly.
``compare``
    :func:`compare_trace` — overlay a traced run on the Section 4
    predictions (Eq. 2 trajectory, Eq. 6/7 schedule) and return
    structured deviation metrics.
``export``
    JSON span trees, JSONL streams, and the human tree view behind
    ``repro-c90 trace``.

Hooks: ``list_scan(trace=…)`` / ``sublist_list_scan(trace=…)`` /
``forest_list_scan(trace=…)`` and ``Engine(trace=…)``.

The cheap core (``tracer``) loads eagerly so kernels can import it
without dragging in the analysis stack; ``compare``/``export`` load
lazily (PEP 562) because ``compare`` imports the schedule/prediction
machinery, which must stay import-cycle-free from ``core``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .tracer import (
    NULL_TRACER,
    Event,
    Span,
    Tracer,
    counting_clock,
    null_span,
    resolve_trace,
)

__all__ = [
    "Event",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "resolve_trace",
    "null_span",
    "counting_clock",
    "TrajectoryPoint",
    "DeviationReport",
    "compare_trace",
    "find_scan_span",
    "deviation_ok",
    "jsonable",
    "span_to_dict",
    "span_from_dict",
    "trace_to_dict",
    "to_json",
    "write_jsonl",
    "format_tree",
]

_LAZY = {
    "TrajectoryPoint": ("repro.trace.compare", "TrajectoryPoint"),
    "DeviationReport": ("repro.trace.compare", "DeviationReport"),
    "compare_trace": ("repro.trace.compare", "compare_trace"),
    "find_scan_span": ("repro.trace.compare", "find_scan_span"),
    "deviation_ok": ("repro.trace.compare", "deviation_ok"),
    "jsonable": ("repro.trace.export", "jsonable"),
    "span_to_dict": ("repro.trace.export", "span_to_dict"),
    "span_from_dict": ("repro.trace.export", "span_from_dict"),
    "trace_to_dict": ("repro.trace.export", "trace_to_dict"),
    "to_json": ("repro.trace.export", "to_json"),
    "write_jsonl": ("repro.trace.export", "write_jsonl"),
    "format_tree": ("repro.trace.export", "format_tree"),
}

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .compare import (
        DeviationReport,
        TrajectoryPoint,
        compare_trace,
        deviation_ok,
        find_scan_span,
    )
    from .export import (
        format_tree,
        jsonable,
        span_from_dict,
        span_to_dict,
        to_json,
        trace_to_dict,
        write_jsonl,
    )


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
