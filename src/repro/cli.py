"""Command-line interface: ``python -m repro`` or the ``repro-c90`` script.

Subcommands
-----------

``rank``      rank a generated list with a chosen algorithm, report timing
``scan``      scan a generated list under an operator
``batch``     run many lists through the batched execution engine and
              report per-size-class throughput vs. sequential calls
``simulate``  run an algorithm on the simulated Cray C-90 / Y-MP and
              print the cycle breakdown
``tune``      show the model-tuned parameters and pack schedule for a size
``figures``   dump the CSV series of the paper's figures
``trace``     run one traced scan, print the span tree and the
              model-vs-observed deviation report (``--json`` for the
              machine-readable artifact, ``--engine`` to serve the scan
              through a traced engine)
``lint``      run the project-invariant static analyzer (``repro.lint``)
              over source paths; exits non-zero on findings
``sanitize``  run the concurrency & resource sanitizer suite
              (``repro.sanitize``): the sanitizer-specific static rules
              plus dynamic execution of any ``exercise()`` corpus files
              under the happens-before race detector, resource ledger
              and event-loop watchdog; exit 1 on violations, 2 on
              usage/internal errors
``serve``     start the asyncio serving front-end (``repro.serve``):
              admits scan/rank requests over TCP into the engine's
              submission queue under an SLO-aware adaptive batch window
``bench-client``  drive a running server with concurrent clients and
              report the latency histogram (the CI smoke artifact)
``calibrate`` fit/show/check host calibration profiles: refit the
              paper's cost-model coefficients from bench artifacts,
              trace payloads, or live measurement (``repro.calibrate``;
              the profile hot-swaps into engines via ``--calibration``)
``perf-gate`` compare a bench JSON artifact's speedup records against
              the committed baseline with a warn/fail tolerance band
              (the CI perf-regression gate)
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from collections.abc import Sequence

import numpy as np

from .analysis.predict import predict_run
from .bench.figures import ALL_FIGURES
from .core.list_scan import ALGORITHMS, list_rank, list_scan
from .core.schedule import optimal_schedule
from .core.tuning import tuned_parameters
from .lists.generate import blocked_list, ordered_list, random_list
from .machine.config import CRAY_C90, CRAY_YMP
from .simulate.serial_sim import serial_scan_sim
from .simulate.sublist_sim import sublist_scan_sim
from .simulate.wyllie_sim import wyllie_scan_sim

__all__ = ["main", "build_parser"]

_LAYOUTS = {
    "random": lambda n, rng: random_list(n, rng),
    "ordered": lambda n, rng: ordered_list(n),
    "blocked": lambda n, rng: blocked_list(n, 64, rng),
}

_MACHINES = {"c90": CRAY_C90, "ymp": CRAY_YMP}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-c90",
        description="List ranking and list scan on the (simulated) Cray C-90",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("-n", type=int, default=1 << 20, help="list length")
        p.add_argument(
            "--layout", choices=sorted(_LAYOUTS), default="random",
            help="memory layout of the generated list",
        )
        p.add_argument("--seed", type=int, default=0)

    p_rank = sub.add_parser("rank", help="rank a generated list")
    common(p_rank)
    p_rank.add_argument(
        "--algorithm", choices=ALGORITHMS, default="sublist"
    )

    p_scan = sub.add_parser("scan", help="scan a generated list")
    common(p_scan)
    p_scan.add_argument(
        "--algorithm", choices=ALGORITHMS, default="sublist"
    )
    p_scan.add_argument(
        "--op", default="sum", help="operator name (sum, max, min, …)"
    )
    p_scan.add_argument("--inclusive", action="store_true")

    p_batch = sub.add_parser(
        "batch", help="run many lists through the batched engine"
    )
    common(p_batch)
    p_batch.add_argument(
        "--count", type=int, default=64, help="number of lists in the batch"
    )
    p_batch.add_argument(
        "--min-n", type=int, default=64,
        help="smallest list length (sizes are log-uniform in [min-n, n])",
    )
    p_batch.add_argument(
        "--op", default="sum", help="operator name (sum, max, min, …)"
    )
    p_batch.add_argument("--inclusive", action="store_true")
    p_batch.add_argument(
        "--executor", choices=("sync", "threads", "processes"), default="threads",
        help="execution backend: sync (no pool), threads (persistent "
             "thread pool), or processes (persistent process pool with "
             "shared-memory array transport)",
    )
    p_batch.add_argument(
        "--workers", type=int, default=1,
        help="worker-pool width for the threads/processes executors "
             "(>1 executes shards concurrently)",
    )
    p_batch.add_argument(
        "--kernel-backend", default=None,
        choices=("numpy", "python", "numba"),
        help="hot-loop kernel backend (default: REPRO_KERNEL_BACKEND "
             "env var, else numba when importable, else numpy; "
             "see docs/kernels.md)",
    )
    p_batch.add_argument(
        "--repeat", type=int, default=1,
        help="resubmit the whole batch this many times (exercises the cache)",
    )
    p_batch.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p_batch.add_argument(
        "--stats", action="store_true",
        help="print the engine health counters (errors, retries, "
             "quarantined, coalesced, cache, routing) after the run",
    )
    p_batch.add_argument(
        "--poison", type=int, default=0, metavar="K",
        help="corrupt K of the generated lists (out-of-range successor) "
             "to exercise the per-request error channel",
    )
    p_batch.add_argument(
        "--calibration", metavar="PROFILE", default=None,
        help="route on a fitted calibration profile (JSON from "
             "`repro-c90 calibrate fit`) instead of the paper's C-90 "
             "table; also arms the drift detector",
    )
    p_batch.add_argument(
        "--distributed", action="store_true",
        help="route oversized auto shards through the three-phase "
             "sharded scan across the worker pool (repro.distribute; "
             "see docs/distributed.md)",
    )
    p_batch.add_argument(
        "--chunk-nodes", type=int, default=None, metavar="N",
        help="with --distributed/--memmap: pin the chunk size to N "
             "nodes instead of deriving it from the memory budget",
    )
    p_batch.add_argument(
        "--memory-budget-mb", type=int, default=64, metavar="M",
        help="with --distributed/--memmap: bound (MiB) on the sharded "
             "scan's resident working set — chunk buffers and "
             "shared-memory leases in flight (default 64)",
    )
    p_batch.add_argument(
        "--memmap", action="store_true",
        help="out-of-core demo: rank an n-node list streamed from "
             "memmapped files in a temporary directory, holding only "
             "the memory budget resident; verifies sampled ranks and "
             "reports peak RSS (ignores the batch-shape flags)",
    )

    p_sim = sub.add_parser("simulate", help="run on the simulated machine")
    common(p_sim)
    p_sim.add_argument(
        "--algorithm", choices=("sublist", "wyllie", "serial"), default="sublist"
    )
    p_sim.add_argument("--machine", choices=sorted(_MACHINES), default="c90")
    p_sim.add_argument("-p", "--processors", type=int, default=1)

    p_tune = sub.add_parser("tune", help="model-tuned parameters for a size")
    p_tune.add_argument("-n", type=int, default=1 << 20)

    p_trace = sub.add_parser(
        "trace",
        help="trace one scan and compare the observed trajectory "
             "against the Section 4 model",
    )
    common(p_trace)
    p_trace.add_argument(
        "--algorithm", choices=ALGORITHMS, default="sublist"
    )
    p_trace.add_argument(
        "--op", default="sum", help="operator name (sum, max, min, …)"
    )
    p_trace.add_argument("--inclusive", action="store_true")
    p_trace.add_argument(
        "--engine", action="store_true",
        help="serve the scan through a traced Engine (records the "
             "run_batch/shard/route spans around the kernel)",
    )
    p_trace.add_argument(
        "--json", action="store_true",
        help="emit {'trace': …, 'compare': …} as JSON instead of the "
             "human tree",
    )
    p_trace.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="additionally write the span stream (one JSON object per "
             "span) to PATH",
    )
    p_trace.add_argument(
        "--max-events", type=int, default=40,
        help="events shown per span in the human tree",
    )

    p_lint = sub.add_parser(
        "lint",
        help="run the project-invariant static analyzer over source paths",
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report (the CI artifact) "
             "instead of the human listing",
    )
    p_lint.add_argument(
        "--rules", default=None, metavar="R1,R2",
        help="comma-separated subset of rules to run (default: all); "
             "suppressions of unselected rules are never reported stale",
    )
    p_lint.add_argument(
        "--no-unused-suppressions", action="store_true",
        help="skip the stale `# repolint: disable` check",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog (name, scope, rationale) and exit",
    )

    p_sanitize = sub.add_parser(
        "sanitize",
        help="run the concurrency & resource sanitizer suite over paths",
    )
    p_sanitize.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to sanitize (default: src)",
    )
    p_sanitize.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report (the CI artifact) "
             "instead of the human listing",
    )
    p_sanitize.add_argument(
        "--static-only", action="store_true",
        help="skip the dynamic pass (don't import or run exercise() "
             "corpus files found under the paths)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="serve scan/rank requests over TCP through the batched engine",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8090,
        help="TCP port (0 picks a free port; it is printed at startup)",
    )
    p_serve.add_argument(
        "--flush-size", type=int, default=64,
        help="flush the batch window as soon as this many requests are "
             "pending (1 disables batching)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=1024,
        help="hard cap on requests drained into one run_batch call",
    )
    p_serve.add_argument(
        "--slo-ms", type=float, default=50.0,
        help="target p95 admission-to-response latency the adaptive "
             "window steers toward, in milliseconds",
    )
    p_serve.add_argument(
        "--max-window-ms", type=float, default=25.0,
        help="largest batch window the controller may grow to, ms",
    )
    p_serve.add_argument(
        "--rate", type=float, default=None,
        help="per-client sustained requests/second (token bucket; "
             "default: no rate limit)",
    )
    p_serve.add_argument(
        "--burst", type=float, default=32.0,
        help="per-client burst allowance for the token bucket",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=256,
        help="per-client cap on admitted-but-unanswered requests",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=1024,
        help="submission-queue depth; beyond it requests are shed with "
             "a structured 'overloaded' error",
    )
    p_serve.add_argument(
        "--executor", choices=("sync", "threads", "processes"),
        default="threads", help="engine execution backend",
    )
    p_serve.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool width for the threads/processes executors",
    )
    p_serve.add_argument(
        "--kernel-backend", default=None,
        choices=("numpy", "python", "numba"),
        help="hot-loop kernel backend (default: REPRO_KERNEL_BACKEND "
             "env var, else numba when importable, else numpy; "
             "see docs/kernels.md)",
    )
    p_serve.add_argument(
        "--allow-shutdown", action="store_true",
        help="honor the {'type': 'shutdown'} admin message (used by the "
             "CI smoke job); off by default",
    )
    p_serve.add_argument(
        "--stats-interval", type=float, default=0.0,
        help="seconds between stats-snapshot lines on stderr (0 = off)",
    )
    p_serve.add_argument(
        "--calibration", metavar="PROFILE", default=None,
        help="route on a fitted calibration profile (JSON from "
             "`repro-c90 calibrate fit`); drift counters appear in "
             "the /stats snapshot",
    )

    p_bc = sub.add_parser(
        "bench-client",
        help="drive a running server with concurrent clients and report "
             "the latency histogram",
    )
    p_bc.add_argument("--host", default="127.0.0.1")
    p_bc.add_argument("--port", type=int, default=8090)
    p_bc.add_argument(
        "--clients", type=int, default=4, help="concurrent connections"
    )
    p_bc.add_argument(
        "--requests", type=int, default=100, help="requests per client"
    )
    p_bc.add_argument(
        "--sizes", default="16,64,256",
        help="comma-separated list lengths cycled through per client",
    )
    p_bc.add_argument(
        "--poison", type=int, default=0, metavar="K",
        help="make every K-th request per client structurally broken "
             "(must come back as a structured error; 0 = none)",
    )
    p_bc.add_argument("--op", default="sum")
    p_bc.add_argument("--algorithm", default="auto")
    p_bc.add_argument(
        "--outstanding", type=int, default=32,
        help="max in-flight requests per connection",
    )
    p_bc.add_argument(
        "--no-verify", action="store_true",
        help="skip bit-identical verification against list_scan",
    )
    p_bc.add_argument("--seed", type=int, default=0)
    p_bc.add_argument(
        "--stats", action="store_true",
        help="fetch the server stats snapshot into the report",
    )
    p_bc.add_argument(
        "--shutdown", action="store_true",
        help="send the admin shutdown message after the run (server "
             "must have --allow-shutdown)",
    )
    p_bc.add_argument(
        "--json", metavar="PATH", default=None, dest="json_out",
        help="write the full JSON report (latency histogram included) "
             "to PATH — the CI smoke job's artifact",
    )

    p_cal = sub.add_parser(
        "calibrate",
        help="fit/show/check host calibration profiles for cost-model "
             "routing",
    )
    cal_sub = p_cal.add_subparsers(dest="calibrate_cmd", required=True)

    p_cal_fit = cal_sub.add_parser(
        "fit", help="fit a profile from bench/trace artifacts or live timing"
    )
    p_cal_fit.add_argument(
        "--from-bench", action="append", default=[], metavar="PATH",
        help="bench JSON artifact (write_records_json output; repeatable)",
    )
    p_cal_fit.add_argument(
        "--from-trace", action="append", default=[], metavar="PATH",
        help="`repro-c90 trace --json` payload (repeatable)",
    )
    p_cal_fit.add_argument(
        "--live", action="store_true",
        help="measure fit samples directly on this machine (a few seconds)",
    )
    p_cal_fit.add_argument(
        "--out", "-o", default="calibration.json", metavar="PATH",
        help="where to write the fitted profile",
    )
    p_cal_fit.add_argument(
        "--no-tune", action="store_true",
        help="skip the m(n)/S1(n) tuning-polynomial refit (faster)",
    )
    p_cal_fit.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions per live-measurement cell (min is kept)",
    )
    p_cal_fit.add_argument("--seed", type=int, default=0)

    p_cal_show = cal_sub.add_parser(
        "show", help="print a profile's coefficients and fit metadata"
    )
    p_cal_show.add_argument("profile", help="profile JSON path")
    p_cal_show.add_argument(
        "--json", action="store_true", help="emit the raw profile JSON"
    )

    p_cal_check = cal_sub.add_parser(
        "check",
        help="validate a profile (schema, finite/positive coefficients); "
             "exit 1 on an absurd or malformed profile",
    )
    p_cal_check.add_argument("profile", help="profile JSON path")

    p_gate = sub.add_parser(
        "perf-gate",
        help="compare bench speedup records against the committed "
             "baseline (warn/fail tolerance band)",
    )
    p_gate.add_argument(
        "--baseline", default="benchmarks/baselines/speedups-smoke.json",
        metavar="PATH", help="committed baseline JSON",
    )
    p_gate.add_argument(
        "--report", required=True, metavar="PATH",
        help="bench JSON artifact from this run (write_records_json output)",
    )
    p_gate.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the comparison report (the CI artifact) to PATH",
    )
    p_gate.add_argument(
        "--warn-ratio", type=float, default=None,
        help="warn when a ratio regresses beyond this factor (default 1.5)",
    )
    p_gate.add_argument(
        "--fail-ratio", type=float, default=None,
        help="fail when a ratio regresses beyond this factor (default 2.0)",
    )
    p_gate.add_argument(
        "--warn-only", action="store_true",
        help="advisory mode: report regressions but always exit 0 "
             "(used when sweep sizes differ from the baseline's)",
    )
    p_gate.add_argument(
        "--update-baseline", action="store_true",
        help="instead of gating, rewrite --baseline from --report's "
             "records (run locally to refresh the committed file)",
    )

    p_fig = sub.add_parser("figures", help="dump figure CSV series")
    p_fig.add_argument(
        "--out", default="figures", help="output directory for CSV files"
    )
    p_fig.add_argument(
        "--only",
        choices=sorted(ALL_FIGURES),
        default=None,
        help="dump a single figure",
    )
    return parser


def _make_list(args: argparse.Namespace):
    rng = np.random.default_rng(args.seed)
    lst = _LAYOUTS[args.layout](args.n, rng)
    return lst, rng


def _cmd_rank(args: argparse.Namespace) -> int:
    lst, rng = _make_list(args)
    t0 = time.perf_counter()
    ranks = list_rank(lst, algorithm=args.algorithm, rng=rng)
    dt = time.perf_counter() - t0
    print(f"ranked {args.n:,} nodes with {args.algorithm} in {dt:.3f}s "
          f"({1e9 * dt / args.n:.1f} ns/element host time)")
    print(f"head rank {ranks[lst.head]}, tail rank {ranks[lst.tail]}")
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    lst, rng = _make_list(args)
    t0 = time.perf_counter()
    out = list_scan(
        lst, args.op, inclusive=args.inclusive,
        algorithm=args.algorithm, rng=rng,
    )
    dt = time.perf_counter() - t0
    kind = "inclusive" if args.inclusive else "exclusive"
    print(f"{kind} {args.op}-scan of {args.n:,} nodes with "
          f"{args.algorithm} in {dt:.3f}s")
    print(f"scan at tail = {out[lst.tail]}")
    return 0


def _cmd_batch_memmap(args: argparse.Namespace) -> int:
    """Out-of-core demo: rank a memmapped list inside the budget."""
    import resource
    import tempfile

    from .bench.harness import format_table
    from .distribute import (
        DistributedConfig,
        create_output_memmap,
        open_memmap_list,
        sharded_forest_scan,
        write_memmap_list,
    )
    from .engine.workers import create_backend
    from .lists.generate import INDEX_DTYPE

    layout = args.layout if args.layout in ("ordered", "blocked") else "blocked"
    cfg = DistributedConfig(
        memory_budget_bytes=args.memory_budget_mb << 20,
        chunk_nodes=args.chunk_nodes,
    )
    backend = create_backend(args.executor, args.workers)
    report: dict[str, object] = {}
    try:
        with tempfile.TemporaryDirectory(prefix="repro-memmap-") as tmp:
            write_memmap_list(tmp, args.n, layout=layout, seed=args.seed)
            mlist = open_memmap_list(tmp)
            out = create_output_memmap(tmp, args.n, INDEX_DTYPE)
            file_bytes = 3 * args.n * np.dtype(INDEX_DTYPE).itemsize
            t0 = time.perf_counter()
            sharded_forest_scan(
                mlist.next,
                mlist.values,
                np.array([mlist.head], dtype=INDEX_DTYPE),
                "sum",
                inclusive=False,
                config=cfg,
                backend=backend,
                out=out,
                report=report,
            )
            elapsed = time.perf_counter() - t0
            # spot-check: chase the list from the head; rank must count up
            node, steps = int(mlist.head), min(args.n, 10_000)
            for step in range(steps):
                if int(out[node]) != step:
                    print(
                        f"ERROR: rank[{node}] = {int(out[node])}, "
                        f"expected {step}", file=sys.stderr,
                    )
                    return 1
                node = int(mlist.next[node])
    finally:
        backend.close()

    peak_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss << 10
    print(format_table(
        ["metric", "value"],
        [
            ["nodes", args.n],
            ["layout", layout],
            ["memmap file bytes", file_bytes],
            ["memory budget bytes", cfg.memory_budget_bytes],
            ["chunks", report.get("num_chunks")],
            ["reduced list nodes", report.get("n_reduced")],
            ["reduced algorithm", report.get("reduced_algorithm")],
            ["lease peak bytes", report.get("gate_peak_bytes")],
            ["peak RSS bytes", peak_rss],
            ["seconds", round(elapsed, 3)],
            ["Mnodes/s", round(args.n / elapsed / 1e6, 2)],
            ["sampled ranks verified", steps],
        ],
        title=f"out-of-core rank ({args.executor}, {args.workers} worker(s))",
    ))
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from .bench.harness import format_table
    from .engine import Engine, ScanRequest, size_class
    from .lists.generate import random_values

    if args.memmap:
        return _cmd_batch_memmap(args)
    if args.min_n < 1 or args.min_n > args.n:
        print("batch: --min-n must satisfy 1 <= min-n <= n", file=sys.stderr)
        return 2
    if args.poison < 0 or args.poison > args.count:
        print("batch: --poison must satisfy 0 <= K <= count", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    sizes = np.exp(
        rng.uniform(np.log(args.min_n), np.log(args.n + 1), args.count)
    ).astype(np.int64)
    sizes = np.clip(sizes, args.min_n, args.n)
    lists = [
        _LAYOUTS[args.layout](int(sz), rng)
        for sz in sizes
    ]
    for lst in lists:
        lst.values = random_values(lst.n, rng)

    poisoned = set()
    if args.poison:
        poisoned = {int(i) for i in rng.choice(args.count, args.poison, replace=False)}
        for i in poisoned:
            lists[i].next[lists[i].n // 2] = -1  # out-of-range successor

    # sequential baseline: one dispatch-API call per healthy list
    healthy = [i for i in range(args.count) if i not in poisoned]
    t0 = time.perf_counter()
    seq = {
        i: list_scan(
            lists[i], args.op, inclusive=args.inclusive, algorithm="auto", rng=rng
        )
        for i in healthy
    }
    t_seq = time.perf_counter() - t0

    try:
        calibration = _load_calibration(args.calibration)
    except ValueError as exc:
        print(f"batch: --calibration: {exc}", file=sys.stderr)
        return 2
    distributed = None
    if args.distributed:
        from .distribute import DistributedConfig

        distributed = DistributedConfig(
            memory_budget_bytes=args.memory_budget_mb << 20,
            chunk_nodes=args.chunk_nodes,
        )
    engine = Engine(
        cache_capacity=0 if args.no_cache else max(256, 2 * args.count),
        executor=args.executor,
        max_workers=args.workers,
        kernel_backend=args.kernel_backend,
        calibration=calibration,
        distributed=distributed,
    )
    with engine:
        t0 = time.perf_counter()
        for _ in range(args.repeat):
            responses = engine.run_batch(
                [
                    ScanRequest(
                        lst=lst, op=args.op, inclusive=args.inclusive, tag=i
                    )
                    for i, lst in enumerate(lists)
                ],
                parallel=args.workers > 1,
            )
        t_eng = (time.perf_counter() - t0) / args.repeat

    failures = [resp for resp in responses if not resp.ok]
    mismatches = sum(
        not (responses[i].ok and np.array_equal(responses[i].result, seq[i]))
        for i in healthy
    )
    total_nodes = int(sizes.sum())

    by_class = {}
    for lst in lists:
        cls = size_class(lst.n)
        cnt, nodes = by_class.get(cls, (0, 0))
        by_class[cls] = (cnt + 1, nodes + lst.n)
    rows = [
        [f"<= 2^{cls}", cnt, nodes, 100.0 * nodes / total_nodes]
        for cls, (cnt, nodes) in sorted(by_class.items())
    ]
    print(format_table(
        ["size class", "lists", "nodes", "% of nodes"],
        rows,
        title=f"batch of {args.count} lists, {total_nodes:,} nodes total",
    ))
    speedup = t_seq / t_eng if t_eng > 0 else float("inf")
    print()
    print(format_table(
        ["driver", "seconds", "Mnodes/s"],
        [
            ["sequential list_scan", t_seq, total_nodes / t_seq / 1e6],
            [f"engine ({args.executor}, {args.workers} worker(s), "
             f"{engine.kernel_backend} kernels)", t_eng,
             total_nodes / t_eng / 1e6],
        ],
        title=f"throughput (speedup {speedup:.2f}x)",
    ))
    if failures:
        print()
        print(f"{len(failures)} request(s) failed (healthy requests "
              "still returned results):")
        for resp in failures:
            err = resp.error
            print(f"  list {resp.tag} ({resp.n:,} nodes): "
                  f"{err.phase} [{err.code}] {err.message}")
    print()
    print(format_table(["counter", "value"], engine.stats.as_rows(),
                       title="engine stats"))
    if args.stats:
        import json

        st = engine.stats
        print()
        print(format_table(
            ["counter", "value"],
            [["errors", st.errors], ["retries", st.retries],
             ["quarantined", st.quarantined], ["coalesced", st.coalesced]],
            title="engine health counters",
        ))
        # the same serializer the serving front-end's /stats endpoint
        # returns (EngineStats.snapshot)
        print()
        snap = engine.stats.snapshot()
        if args.calibration:
            snap["calibration"] = engine.calibration_snapshot()
        print(json.dumps(snap, indent=2))
    if mismatches:
        print(f"ERROR: {mismatches} result(s) differ from sequential list_scan",
              file=sys.stderr)
        return 1
    if len(failures) != args.poison:
        # every poisoned request must fail, every healthy one succeed
        print(f"ERROR: expected {args.poison} failed request(s) per run, "
              f"saw {len(failures)}", file=sys.stderr)
        return 1
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    lst, rng = _make_list(args)
    config = _MACHINES[args.machine]
    if args.algorithm == "sublist":
        res = sublist_scan_sim(lst, config=config,
                               n_processors=args.processors, rng=rng)
    elif args.algorithm == "wyllie":
        res = wyllie_scan_sim(lst, config=config, n_processors=args.processors)
    else:
        res = serial_scan_sim(lst, config=config)
    print(f"{args.algorithm} on {res.config.name}, "
          f"{res.n_processors} CPU(s), n = {args.n:,}")
    print(f"  {res.cycles:,.0f} clocks = {res.time_ns / 1e6:.3f} ms simulated")
    print(f"  {res.cycles_per_element:.2f} clocks/element "
          f"({res.ns_per_element:.1f} ns/element)")
    if res.breakdown:
        print("  breakdown:")
        for name, cyc in sorted(res.breakdown.items(), key=lambda kv: -kv[1]):
            print(f"    {name:<20} {cyc:>14,.0f}  ({100 * cyc / res.cycles:4.1f}%)")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    n = args.n
    m, s1 = tuned_parameters(n)
    sch = optimal_schedule(n, m, s1)
    pred = predict_run(n)
    print(f"n = {n:,}")
    print(f"tuned m  = {m} sublists (mean length {n / m:.1f})")
    print(f"tuned S1 = {s1:.2f} traversal steps before the first pack")
    print(f"schedule = {len(sch)} packs, last at step {sch[-1]:.0f}")
    print(f"predicted: {pred.clocks_per_element:.2f} clocks/element "
          f"({pred.ns_per_element:.1f} ns/element on the C-90)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .bench.harness import format_table
    from .trace import Tracer, compare_trace, format_tree, trace_to_dict

    lst, rng = _make_list(args)
    tracer = Tracer()
    t0 = time.perf_counter()
    if args.engine:
        from .engine import Engine

        engine = Engine(trace=tracer)
        out = engine.scan(
            lst, args.op, inclusive=args.inclusive, algorithm=args.algorithm
        )
    else:
        out = list_scan(
            lst, args.op, inclusive=args.inclusive,
            algorithm=args.algorithm, rng=rng, trace=tracer,
        )
    dt = time.perf_counter() - t0

    report = None
    report_error = None
    try:
        report = compare_trace(tracer)
    except ValueError as exc:
        # e.g. a serial/wyllie run records no sublist trajectory
        report_error = str(exc)

    if args.jsonl:
        from .trace import write_jsonl

        with open(args.jsonl, "w") as fp:
            lines = write_jsonl(tracer, fp)
        if not args.json:
            print(f"wrote {lines} span(s) to {args.jsonl}")

    if args.json:
        payload = {
            "n": args.n,
            "layout": args.layout,
            "algorithm": args.algorithm,
            "engine": args.engine,
            "seconds": dt,
            "trace": trace_to_dict(tracer),
            "compare": report.as_dict() if report is not None else None,
            "compare_error": report_error,
        }
        print(json.dumps(payload, indent=2))
        return 0

    print(format_tree(tracer, max_events=args.max_events))
    print()
    if report is not None:
        print(format_table(
            ["metric", "value"],
            report.summary_rows(),
            title="observed trajectory vs Section 4 model",
        ))
    else:
        print(f"no model comparison: {report_error}")
    print()
    print(f"scan of {args.n:,} nodes ({args.algorithm}) in {dt:.3f}s; "
          f"scan at tail = {out[lst.tail]}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import all_rules, get_rule, lint_paths, render_human, render_json

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.paths) if rule.paths else "all files"
            print(f"{rule.name}  [{scope}]")
            print(f"    {rule.rationale}")
            if rule.hint:
                print(f"    fix: {rule.hint}")
        return 0
    rules = None
    if args.rules:
        try:
            rules = [
                get_rule(name.strip())
                for name in args.rules.split(",")
                if name.strip()
            ]
        except KeyError as exc:
            print(f"lint: {exc.args[0]}", file=sys.stderr)
            return 2
    try:
        result = lint_paths(
            args.paths,
            rules=rules,
            check_unused=not args.no_unused_suppressions,
        )
    except FileNotFoundError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    print(render_json(result) if args.json else render_human(result))
    return result.exit_code()


#: the lint rules that belong to the sanitizer suite (the ``sanitize``
#: subcommand's static pass); ``lint`` runs them too as part of its
#: full catalog
SANITIZER_RULES = (
    "no-blocking-in-async",
    "shm-unlink-all-paths",
    "lock-guard-inference",
)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    import json as json_mod

    from .lint import get_rule, lint_paths
    from .lint.runner import collect_files
    from .sanitize.exercise import has_exercise, run_exercise

    rules = [get_rule(name) for name in SANITIZER_RULES]
    try:
        static = lint_paths(args.paths, rules=rules, check_unused=False)
        files = collect_files(args.paths)
    except FileNotFoundError as exc:
        print(f"sanitize: {exc}", file=sys.stderr)
        return 2

    dynamic = []
    if not args.static_only:
        for path in files:
            if has_exercise(path):
                dynamic.append(run_exercise(path))

    errors = len(static.diagnostics)
    warnings = 0
    internal = 0
    for result in dynamic:
        if result.error:
            internal += 1
        for finding in result.findings:
            if finding.severity == "error":
                errors += 1
            else:
                warnings += 1

    if args.json:
        report = {
            "paths": list(args.paths),
            "rules": list(SANITIZER_RULES),
            "static": [d.as_dict() for d in static.diagnostics],
            "dynamic": [
                {
                    "path": str(r.path),
                    "error": r.error,
                    "findings": [
                        {
                            "check": f.check,
                            "severity": f.severity,
                            "message": f.message,
                            "site": f.site,
                        }
                        for f in r.findings
                    ],
                }
                for r in dynamic
            ],
            "errors": errors,
            "warnings": warnings,
            "internal_errors": internal,
        }
        print(json_mod.dumps(report, indent=2))
    else:
        for diag in sorted(static.diagnostics):
            print(diag.format())
        for result in dynamic:
            for finding in result.findings:
                print(
                    f"{result.path}: [{finding.severity}] "
                    f"{finding.check}: {finding.message}"
                )
            if result.error:
                print(f"{result.path}: exercise failed: {result.error}")
        exercised = sum(1 for r in dynamic if not r.error)
        verdict = "clean" if not (errors or warnings) else "violations"
        print(
            f"sanitize: {verdict}: {len(files)} file(s), "
            f"{len(rules)} static rule(s), {exercised} exercised, "
            f"{errors} error(s), {warnings} warning(s)"
        )
    if internal:
        return 2
    return 1 if errors else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import signal

    from .engine import Engine
    from .serve import ScanServer, ServeConfig

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            flush_size=args.flush_size,
            max_batch=args.max_batch,
            slo_p95=args.slo_ms / 1000.0,
            max_window=args.max_window_ms / 1000.0,
            min_window=min(0.0005, args.max_window_ms / 1000.0),
            rate=args.rate,
            burst=args.burst,
            max_inflight=args.max_inflight,
            allow_shutdown=args.allow_shutdown,
            stats_interval=args.stats_interval,
        )
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    try:
        calibration = _load_calibration(args.calibration)
    except ValueError as exc:
        print(f"serve: --calibration: {exc}", file=sys.stderr)
        return 2
    engine = Engine(
        max_pending=args.max_pending,
        executor=args.executor,
        max_workers=args.workers,
        kernel_backend=args.kernel_backend,
        calibration=calibration,
    )

    async def _main() -> None:
        server = ScanServer(engine, config)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(server.shutdown())
                )
        print(
            f"serving on {config.host}:{server.port} "
            f"(executor={args.executor}, kernels={engine.kernel_backend}, "
            f"flush_size={config.flush_size}, "
            f"slo_p95={1000 * config.slo_p95:.1f}ms"
            f"{', allow_shutdown' if config.allow_shutdown else ''})",
            flush=True,
        )
        await server.wait_closed()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    print("server stopped", flush=True)
    return 0


def _cmd_bench_client(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .serve.client import run_bench

    try:
        sizes = tuple(
            int(tok) for tok in args.sizes.split(",") if tok.strip()
        )
    except ValueError:
        print("bench-client: --sizes must be comma-separated integers",
              file=sys.stderr)
        return 2
    if not sizes or any(sz < 1 for sz in sizes):
        print("bench-client: sizes must be positive", file=sys.stderr)
        return 2

    try:
        report = asyncio.run(run_bench(
            args.host,
            args.port,
            clients=args.clients,
            requests=args.requests,
            sizes=sizes,
            poison_every=args.poison,
            op=args.op,
            algorithm=args.algorithm,
            max_outstanding=args.outstanding,
            verify=not args.no_verify,
            seed=args.seed,
            fetch_stats=args.stats,
            shutdown=args.shutdown,
        ))
    except (ConnectionError, OSError) as exc:
        print(f"bench-client: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2

    if args.json_out:
        with open(args.json_out, "w") as fp:
            json.dump(report, fp, indent=2)

    counters = report["counters"]
    lat = report["latency"]
    print(f"{args.clients} client(s) x {args.requests} request(s) "
          f"in {report['elapsed']:.3f}s "
          f"({report['throughput_rps']:.0f} responses/s)")
    print(f"  ok {counters['ok']}  errors {counters['errors']}  "
          f"shed(retried) {counters['shed']}  gave-up {counters['gave_up']}")
    if not args.no_verify:
        print(f"  verified {counters['verified']}  "
              f"mismatched {counters['mismatched']}")
    if args.poison:
        print(f"  poison rejected {counters['poison_rejected']}  "
              f"accepted {counters['poison_accepted']}")
    if lat["count"]:
        print(f"  latency p50 {1000 * lat['p50']:.2f}ms  "
              f"p95 {1000 * lat['p95']:.2f}ms  p99 {1000 * lat['p99']:.2f}ms")
    if args.shutdown:
        print(f"  shutdown acknowledged: {report.get('shutdown')}")

    bad = (
        counters["mismatched"]
        or counters["poison_accepted"]
        or (args.shutdown and not report.get("shutdown"))
        or counters["ok"] == 0
    )
    return 1 if bad else 0


def _load_calibration(path: str | None):
    """Load a profile for ``--calibration``; raises ``ValueError`` on a
    bad file (``None`` passes through)."""
    if path is None:
        return None
    from .calibrate import load_profile

    return load_profile(path)


def _cmd_calibrate(args: argparse.Namespace) -> int:
    import json

    from .bench.harness import format_table
    from .calibrate import (
        FitError,
        ProfileError,
        fit_profile,
        load_profile,
        load_samples,
        measure_samples,
    )

    if args.calibrate_cmd == "fit":
        if not (args.from_bench or args.from_trace or args.live):
            print(
                "calibrate fit: need at least one sample source "
                "(--from-bench, --from-trace, or --live)",
                file=sys.stderr,
            )
            return 2
        samples = []
        sources = []
        try:
            for path in [*args.from_bench, *args.from_trace]:
                found = load_samples(path)
                if not found:
                    print(f"calibrate fit: {path}: no fit samples found",
                          file=sys.stderr)
                    return 2
                samples.extend(found)
                sources.append(path)
        except ProfileError as exc:
            print(f"calibrate fit: {exc}", file=sys.stderr)
            return 2
        if args.live:
            print("measuring live fit samples …", file=sys.stderr)
            samples.extend(measure_samples(repeats=args.repeats, seed=args.seed))
            sources.append("live")
        try:
            profile = fit_profile(
                samples,
                source=",".join(sources),
                created_at=time.time(),
                tune=not args.no_tune,
            )
        except FitError as exc:
            print(f"calibrate fit: {exc}", file=sys.stderr)
            return 1
        profile.save(args.out)
        print(format_table(["field", "value"], profile.summary_rows(),
                           title="fitted calibration profile"))
        print(f"\nwrote {args.out} ({len(samples)} sample(s))")
        return 0

    if args.calibrate_cmd == "show":
        try:
            profile = load_profile(args.profile)
        except ProfileError as exc:
            print(f"calibrate show: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(json.loads(profile.to_json()), indent=2))
        else:
            print(format_table(["field", "value"], profile.summary_rows(),
                               title=args.profile))
        return 0

    # check: schema + coefficient sanity; the CI calibration-smoke gate
    try:
        profile = load_profile(args.profile)
    except ProfileError as exc:
        print(f"calibrate check: FAIL: {exc}", file=sys.stderr)
        return 1
    from .engine.router import Router

    fitted = Router(costs=profile.costs)
    print(f"calibrate check: OK: {args.profile}")
    print(f"  schema v{profile.schema_version}, source={profile.source}, "
          f"kinds={','.join(profile.fitted_kinds)}")
    print(f"  serial crossover {fitted.crossover():,} nodes "
          f"(static C-90 table: {Router().crossover():,})")
    return 0


def _cmd_perf_gate(args: argparse.Namespace) -> int:
    import json

    from .bench.harness import format_table
    from .bench.regression import (
        FAIL_RATIO,
        GateError,
        WARN_RATIO,
        baseline_from_records,
        compare_records,
        gate_rows,
        load_baseline,
        load_bench_records,
        results_as_dict,
    )

    warn_ratio = args.warn_ratio if args.warn_ratio is not None else WARN_RATIO
    fail_ratio = args.fail_ratio if args.fail_ratio is not None else FAIL_RATIO
    try:
        records = load_bench_records(args.report)
        if args.update_baseline:
            doc = baseline_from_records(
                records, created_at=time.time(),
                note=f"refreshed from {args.report}",
            )
            with open(args.baseline, "w") as fp:
                json.dump(doc, fp, indent=2)
                fp.write("\n")
            print(f"perf-gate: wrote {len(doc['records'])} baseline "
                  f"ratio(s) to {args.baseline}")
            return 0
        baseline = load_baseline(args.baseline)
        results = compare_records(
            records, baseline, warn_ratio=warn_ratio, fail_ratio=fail_ratio
        )
    except (GateError, ValueError) as exc:
        print(f"perf-gate: {exc}", file=sys.stderr)
        return 2

    print(format_table(
        ["benchmark", "baseline", "measured", "regression", "status"],
        gate_rows(results),
        title=f"perf gate: warn >{warn_ratio}x, fail >{fail_ratio}x "
              f"(ratios are speedups; regression = baseline/measured)",
    ))
    report = results_as_dict(results, warn_ratio, fail_ratio)
    if args.json_out:
        with open(args.json_out, "w") as fp:
            json.dump(report, fp, indent=2)
        print(f"\nwrote comparison report to {args.json_out}")
    counts = report["counts"]
    gating = counts["fail"] + counts["missing"]
    if gating and not args.warn_only:
        print(f"perf-gate: FAIL: {counts['fail']} regression(s) beyond "
              f"{fail_ratio}x, {counts['missing']} missing benchmark(s)",
              file=sys.stderr)
        return 1
    if counts["warn"] or (gating and args.warn_only):
        print(f"perf-gate: WARN: {counts['warn']} regression(s) beyond "
              f"{warn_ratio}x"
              + (f", {gating} beyond the hard gate (advisory mode)"
                 if gating else ""))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    names = [args.only] if args.only else sorted(ALL_FIGURES)
    for name in names:
        print(f"generating {name} …", flush=True)
        ALL_FIGURES[name](out_dir=args.out)
    print(f"CSV series written to {args.out}/")
    return 0


_COMMANDS = {
    "rank": _cmd_rank,
    "scan": _cmd_scan,
    "batch": _cmd_batch,
    "simulate": _cmd_simulate,
    "tune": _cmd_tune,
    "trace": _cmd_trace,
    "lint": _cmd_lint,
    "sanitize": _cmd_sanitize,
    "serve": _cmd_serve,
    "bench-client": _cmd_bench_client,
    "calibrate": _cmd_calibrate,
    "perf-gate": _cmd_perf_gate,
    "figures": _cmd_figures,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if os.environ.get("REPRO_SANITIZE") == "1" and args.command != "sanitize":
        # CI smoke jobs set REPRO_SANITIZE=1 to run any subcommand under
        # the resource sanitizer: a leaked /dev/shm segment (or handle,
        # or lease reservation) turns a passing run into exit 1.  This
        # replaces the old post-hoc `ls /dev/shm` greps, which could
        # only see segments that outlived the process.
        from .sanitize import sanitizers

        with sanitizers(races=False, label=f"cli:{args.command}") as state:
            code = _COMMANDS[args.command](args)
        failures = state.failures()
        if failures:
            for finding in failures:
                print(f"sanitize: {finding.check}: {finding.message}",
                      file=sys.stderr)
            print(
                f"sanitize: {args.command!r} leaked resources "
                f"({len(failures)} finding(s))",
                file=sys.stderr,
            )
            return code or 1
        print(
            f"sanitize: resource sanitizer clean for {args.command!r} "
            f"({state.summary()})",
            file=sys.stderr,
        )
        return code
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
