"""The simulated vector processor: executes NumPy array operations while
charging clock cycles to a ledger.

A :class:`VectorVM` stands in for one Cray CPU.  Every method both
*performs* the requested array operation (so algorithm results are
real) and *charges* its cost under the machine model:

``cost(op over x elements) = rate·x + ⌈x / VL⌉·strip_startup + call_const``

plus, for gathers and scatters, the bank-conflict stalls computed from
the actual address stream (``machine.memory``).  Chained operations —
the C-90 feeds one functional unit's output straight into another —
are expressed by passing ``chained=True``, which waives the call
constant and strip startup for the chained op.

The ledger records per-category cycle totals so benchmarks can print
per-kernel breakdowns (the Section 3 timing equations come from fitting
these ledgers; see ``machine.calibration``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import CRAY_C90, MachineConfig
from .memory import estimate_conflict_cycles

__all__ = ["VectorVM", "CycleLedger"]


@dataclass
class CycleLedger:
    """Cycle totals by category plus operation counts."""

    total: float = 0.0
    by_category: dict[str, float] = field(default_factory=dict)
    op_counts: dict[str, int] = field(default_factory=dict)

    def charge(self, category: str, cycles: float) -> None:
        self.total += cycles
        self.by_category[category] = self.by_category.get(category, 0.0) + cycles
        self.op_counts[category] = self.op_counts.get(category, 0) + 1

    def merge_max(self, others: "list[CycleLedger]") -> None:  # pragma: no cover
        raise NotImplementedError("use machine.multiproc.combine_parallel")


class VectorVM:
    """One simulated vector CPU with a cycle ledger.

    Parameters
    ----------
    config:
        Machine model (rates, startups, bank geometry).
    bank_conflicts:
        Charge bank-conflict stalls from the real address streams of
        gathers/scatters.  On by default; the stalls are ≈0 for the
        random streams the algorithms generate, and large for
        pathological fixed-stride lists.
    """

    def __init__(
        self,
        config: MachineConfig = CRAY_C90,
        bank_conflicts: bool = True,
        conflict_sample_every: int = 1,
    ) -> None:
        if conflict_sample_every < 1:
            raise ValueError("conflict_sample_every must be >= 1")
        self.config = config
        self.bank_conflicts = bank_conflicts
        self.conflict_sample_every = conflict_sample_every
        self._conflict_counter = 0
        self.ledger = CycleLedger()
        self._category = "uncategorized"

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    @property
    def cycles(self) -> float:
        """Total cycles charged so far."""
        return self.ledger.total

    @property
    def time_ns(self) -> float:
        """Total simulated time in nanoseconds."""
        return self.config.time_ns(self.ledger.total)

    def reset(self) -> None:
        """Clear the ledger."""
        self.ledger = CycleLedger()

    def region(self, category: str) -> "_Region":
        """Context manager attributing contained charges to ``category``
        (used for the per-kernel breakdowns of Section 3)."""
        return _Region(self, category)

    def _charge(self, n: int, rate: float, chained: bool) -> None:
        cfg = self.config
        cost = rate * n
        if not chained:
            strips = (n + cfg.vector_length - 1) // cfg.vector_length
            cost += strips * cfg.strip_startup + cfg.call_const
        self.ledger.charge(self._category, cost)

    def charge_cycles(self, cycles: float, category: str | None = None) -> None:
        """Charge raw cycles (used for modelled costs like RNG setup)."""
        self.ledger.charge(category or self._category, float(cycles))

    def _conflicts(self, idx: np.ndarray, issue_rate: float) -> None:
        """Charge bank-conflict stalls for one indexed access stream.

        With ``conflict_sample_every = k > 1`` only every k-th stream is
        costed, scaled by k — the hot traversal loops issue thousands of
        statistically identical streams, so sampling is unbiased and
        keeps the simulator fast.
        """
        if not (self.bank_conflicts and idx.size):
            return
        self._conflict_counter += 1
        k = self.conflict_sample_every
        if self._conflict_counter % k:
            return
        stalls = estimate_conflict_cycles(idx, self.config, issue_rate)
        if stalls:
            self.ledger.charge(self._category, stalls * k)

    # ------------------------------------------------------------------
    # memory operations
    # ------------------------------------------------------------------

    def gather(
        self, arr: np.ndarray, idx: np.ndarray, chained: bool = False
    ) -> np.ndarray:
        """Indexed vector load: ``arr[idx]``."""
        self._charge(idx.shape[0], self.config.gather_rate, chained)
        self._conflicts(idx, self.config.gather_rate)
        return arr[idx]

    def scatter(
        self, arr: np.ndarray, idx: np.ndarray, vals, chained: bool = False
    ) -> None:
        """Indexed vector store: ``arr[idx] = vals``."""
        self._charge(idx.shape[0], self.config.scatter_rate, chained)
        self._conflicts(idx, self.config.scatter_rate)
        arr[idx] = vals

    def load(self, arr: np.ndarray, chained: bool = False) -> np.ndarray:
        """Stride-1 vector load (returns the array unchanged)."""
        self._charge(arr.shape[0], self.config.load_rate, chained)
        return arr

    def store(
        self, dst: np.ndarray, src, chained: bool = False, n: int | None = None
    ) -> np.ndarray:
        """Stride-1 vector store ``dst[...] = src``."""
        count = n if n is not None else dst.shape[0]
        self._charge(count, self.config.store_rate, chained)
        dst[...] = src
        return dst

    # ------------------------------------------------------------------
    # compute operations
    # ------------------------------------------------------------------

    def ew(self, fn, *arrays, chained: bool = False, n: int | None = None):
        """Elementwise vector operation ``fn(*arrays)`` (add, compare, …)."""
        count = n if n is not None else int(np.asarray(arrays[0]).shape[0])
        self._charge(count, self.config.ew_rate, chained)
        return fn(*arrays)

    def compress(self, mask: np.ndarray, *arrays, chained: bool = False):
        """Pack the elements of each array where ``mask`` is True.

        Models the Cray compress-index + gather idiom used by the pack
        kernels ("computing the indices of the active sublists and …
        gathering the vector using the active indices and then storing
        contiguously").
        """
        n = mask.shape[0]
        self._charge(n, self.config.compress_rate, chained)
        packed = tuple(a[mask] for a in arrays)
        kept = int(packed[0].shape[0]) if packed else int(np.count_nonzero(mask))
        for _ in arrays:
            self._charge(kept, self.config.gather_rate, chained=True)
            self._charge(kept, self.config.store_rate, chained=True)
        return packed if len(packed) != 1 else packed[0]

    def iota(self, n: int, dtype=np.int64, chained: bool = False) -> np.ndarray:
        """Vector index generation (the Cray VI register / iota)."""
        self._charge(n, self.config.ew_rate, chained)
        return np.arange(n, dtype=dtype)

    # ------------------------------------------------------------------
    # scalar unit
    # ------------------------------------------------------------------

    def scalar_traverse(self, n: int) -> None:
        """Charge a dependent scalar pointer-chase over ``n`` elements —
        the serial list scan's cost model (34 clocks/element on the
        C-90; Section 2.1)."""
        self.ledger.charge(
            self._category,
            self.config.scalar_chase * n + self.config.scalar_call_const,
        )

    # ------------------------------------------------------------------
    # multiprocessing hooks
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Charge one synchronisation barrier."""
        self.ledger.charge("sync", self.config.sync_cycles)

    def task_start(self) -> None:
        """Charge the start of a tasked (multiprocessor) loop."""
        self.ledger.charge("tasking", self.config.task_start_cycles)


class _Region:
    def __init__(self, vm: VectorVM, category: str) -> None:
        self._vm = vm
        self._category = category
        self._prev: str | None = None

    def __enter__(self) -> VectorVM:
        self._prev = self._vm._category
        self._vm._category = self._category
        return self._vm

    def __exit__(self, *exc) -> None:
        self._vm._category = self._prev or "uncategorized"
