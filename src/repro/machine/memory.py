"""Banked-memory conflict models.

"Memory is composed of multiple memory banks that can access different
addresses in parallel … Once a memory bank has been accessed it cannot
be accessed again until there is a delay, called the cycle time.  …
Bad choices for k can result in the same memory bank being accessed at
a rate higher than the cycle time and a memory-bank conflict occurs,
causing memory stalls."  (Paper, Section 3.)

Two models of the stall cycles incurred by an indexed (gather/scatter)
address stream:

* :func:`exact_conflict_cycles` — an event-driven simulation: one
  address issues per ``issue_rate`` cycles unless its bank is still
  busy, in which case issue stalls until the bank frees.  O(len)
  Python; used for small streams and as the reference for tests.
* :func:`estimate_conflict_cycles` — a vectorized per-strip estimator:
  within each strip of ``vector_length`` addresses the pipeline can
  overlap accesses freely, so the strip's cost is the larger of the
  issue-limited time and the busiest bank's service demand.  O(n) NumPy
  work; used for large streams.

For uniformly random addresses over ``n ≫ banks·busy`` words both
models predict negligible stalls (the C-90's bank count comfortably
exceeds ``busy × issue width``), matching the paper's observation that
"since we are choosing random positions …, systematic memory bank
conflicts are unlikely."  Fixed-stride streams whose stride shares a
large factor with the bank count produce the classic worst case.
"""

from __future__ import annotations

import numpy as np

from .config import MachineConfig

__all__ = [
    "exact_conflict_cycles",
    "estimate_conflict_cycles",
    "conflict_cycles",
]

#: Streams at most this long use the exact event model by default.
_EXACT_LIMIT = 4096


def exact_conflict_cycles(
    addresses: np.ndarray,
    config: MachineConfig,
    issue_rate: float = 1.0,
) -> float:
    """Event-driven stall count for an address stream.

    Returns only the *stall* cycles beyond the conflict-free issue time
    ``len(addresses) · issue_rate``.
    """
    addresses = np.asarray(addresses)
    banks = np.mod(addresses, config.n_banks)
    busy_until = np.zeros(config.n_banks, dtype=np.float64)
    t = 0.0
    stalls = 0.0
    busy = float(config.bank_busy)
    for b in banks:
        ready = busy_until[b]
        if ready > t:
            stalls += ready - t
            t = ready
        busy_until[b] = t + busy
        t += issue_rate
    return float(stalls)


def estimate_conflict_cycles(
    addresses: np.ndarray,
    config: MachineConfig,
    issue_rate: float = 1.0,
    max_sample_strips: int = 512,
) -> float:
    """Vectorized per-strip stall estimate.

    Each strip of ``vector_length`` addresses needs at least
    ``count_b · bank_busy`` cycles for its busiest bank *b*; any excess
    over the issue-limited strip time is counted as stall.  Bank
    carry-over between strips is ignored (pipelines drain at strip
    boundaries), which keeps the estimate within a small factor of the
    exact model — the agreement is asserted by the test suite.

    Streams longer than ``max_sample_strips`` strips are costed from an
    evenly spaced sample of strips, scaled to the full length; address
    streams in this library are statistically homogeneous (random or
    fixed-stride), so sampling is unbiased for them.
    """
    addresses = np.asarray(addresses)
    n = addresses.shape[0]
    if n == 0:
        return 0.0
    vl = max(config.vector_length, 1)
    n_strips = (n + vl - 1) // vl
    banks = np.mod(addresses, config.n_banks).astype(np.int64)

    scale = 1.0
    if n_strips > max_sample_strips:
        chosen = np.linspace(0, n_strips - 1, max_sample_strips).astype(np.int64)
        chosen = np.unique(chosen)
        scale = n_strips / chosen.size
        pieces = [banks[s * vl : min((s + 1) * vl, n)] for s in chosen]
        sizes = np.asarray([p.shape[0] for p in pieces], dtype=np.int64)
        banks = np.concatenate(pieces)
        n_strips = chosen.size
    else:
        sizes = np.full(n_strips, vl, dtype=np.int64)
        sizes[-1] = n - (n_strips - 1) * vl

    strip_ids = np.repeat(np.arange(n_strips, dtype=np.int64), sizes)
    keys = strip_ids * config.n_banks + banks
    counts = np.bincount(keys, minlength=n_strips * config.n_banks)
    counts = counts.reshape(n_strips, config.n_banks)
    busiest = counts.max(axis=1).astype(np.float64)
    issue_time = sizes.astype(np.float64) * issue_rate
    service_time = busiest * config.bank_busy
    stalls = np.maximum(service_time - issue_time, 0.0)
    return float(stalls.sum() * scale)


def conflict_cycles(
    addresses: np.ndarray,
    config: MachineConfig,
    issue_rate: float = 1.0,
) -> float:
    """Dispatch: exact model for short streams, estimator for long ones."""
    addresses = np.asarray(addresses)
    if addresses.shape[0] <= _EXACT_LIMIT:
        return exact_conflict_cycles(addresses, config, issue_rate)
    return estimate_conflict_cycles(addresses, config, issue_rate)
