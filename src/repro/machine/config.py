"""Machine models for the simulated vector multiprocessors.

The paper's platform is the Cray C-90: up to 16 vector CPUs, each with
128-element vector registers, dual vector pipes, pipelined functional
units, and a multistage network to a heavily banked shared memory
(Section 1.1 and Section 3).  The essential performance facts the
algorithms interact with are captured here as a small set of rates (in
clock cycles per element) and constants (cycles per instruction/strip/
call):

* stride-1 vector loads/stores stream at better than one word per
  clock (dual pipes, multiple memory ports);
* gathers/scatters are indexed and run slower (the paper quotes "about
  2 clock cycles/element for random access patterns on the CRAY Y-MP";
  the C-90's dual pipes roughly halve that), plus bank-conflict stalls
  for unlucky address streams;
* every vector instruction pays an issue constant and a pipe-fill
  startup per strip of ``vector_length`` elements;
* a scalar pointer-chase costs a full memory round trip per element
  (the serial algorithm's 34 clocks/element).

The ``CRAY_C90`` preset is chosen so that the instruction inventories
of the sublist kernels (``machine.calibration``) reproduce the paper's
published timing equations: e.g. the Phase-1 traversal step (2 gathers
+ 1 load + 2 stores + 1 add, 6 instructions) costs
``2·1.0 + 0.25 + 2·0.25 + 0.2 + 6·8/128 ≈ 3.3`` cycles/element against
the paper's measured ``3.4``, and the Phase-3 step (adds a scatter and
a load) ≈ 5.0 against the paper's ``5``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "MachineConfig",
    "CRAY_C90",
    "CRAY_YMP",
    "DECSTATION_5000",
]


@dataclass(frozen=True)
class MachineConfig:
    """Cost model of a vector multiprocessor.

    All ``*_rate`` values are clock cycles per element; constants are
    cycles.
    """

    name: str
    clock_ns: float
    vector_length: int
    max_processors: int
    # --- memory system ---
    n_banks: int
    bank_busy: int  #: cycles a bank blocks after an access
    gather_rate: float  #: conflict-free gather, cycles/element
    scatter_rate: float  #: conflict-free scatter, cycles/element
    load_rate: float  #: stride-1 load, cycles/element
    store_rate: float  #: stride-1 store, cycles/element
    # --- functional units ---
    ew_rate: float  #: elementwise arithmetic/compare, cycles/element
    compress_rate: float  #: pack-under-mask index generation, cycles/element
    rng_rate: float  #: pseudo-random position generation, cycles/element
    strip_startup: float  #: pipe-fill cycles per strip per instruction
    issue_const: float  #: per-vector-instruction issue overhead, cycles
    call_const: float  #: per-kernel invocation overhead, cycles
    #: multiplier on the paper-measured scalar overhead constants of the
    #: kernels (the parts of the b-terms no throughput model explains)
    overhead_scale: float
    # --- scalar unit ---
    scalar_chase: float  #: dependent scalar load chain, cycles/element
    scalar_call_const: float  #: scalar loop setup cycles
    # --- multiprocessing ---
    sync_cycles: float  #: cost of one barrier across CPUs
    task_start_cycles: float  #: cost of starting a tasked (parallel) loop

    def time_ns(self, cycles: float) -> float:
        """Convert a cycle count to nanoseconds on this machine."""
        return cycles * self.clock_ns

    def with_processors(self, p: int) -> "MachineConfig":
        """A copy advertising ``p`` processors (clamped to the preset max)."""
        if p < 1:
            raise ValueError("processor count must be >= 1")
        return replace(self, max_processors=min(p, self.max_processors))


#: The paper's machine: 4.2 ns clock, 128-long vector registers, 16 CPUs.
CRAY_C90 = MachineConfig(
    name="CRAY C-90",
    clock_ns=4.2,
    vector_length=128,
    max_processors=16,
    n_banks=1024,
    bank_busy=6,
    gather_rate=1.0,
    scatter_rate=1.25,
    load_rate=0.25,
    store_rate=0.25,
    ew_rate=0.20,
    compress_rate=0.80,
    rng_rate=6.0,
    strip_startup=8.0,
    issue_const=13.0,
    call_const=40.0,
    overhead_scale=1.0,
    scalar_chase=34.0,
    scalar_call_const=255.0,
    sync_cycles=2000.0,
    task_start_cycles=16000.0,
)

#: The previous-generation Cray Y-MP: 6 ns clock, 64-long registers,
#: 8 CPUs, a single vector pipe per CPU — roughly double the C-90
#: per-element rates, matching the paper's "about 2 clock
#: cycles/element" gather figure for the Y-MP.
CRAY_YMP = MachineConfig(
    name="CRAY Y-MP",
    clock_ns=6.0,
    vector_length=64,
    max_processors=8,
    n_banks=256,
    bank_busy=5,
    gather_rate=2.0,
    scatter_rate=2.4,
    load_rate=0.5,
    store_rate=0.5,
    ew_rate=0.4,
    compress_rate=1.6,
    rng_rate=8.0,
    strip_startup=8.0,
    issue_const=13.0,
    call_const=40.0,
    overhead_scale=1.0,
    scalar_chase=40.0,
    scalar_call_const=255.0,
    sync_cycles=1500.0,
    task_start_cycles=3000.0,
)

#: A fast 1993 workstation (the paper's scalar comparison point).  A
#: linked-list traversal misses the cache on essentially every node, so
#: each element costs a DRAM round trip: ≈26 clocks at 40 MHz ≈ 650 ns
#: per element — the basis of the paper's "over two orders of magnitude
#: speedup over a DECstation 5000" claim.
DECSTATION_5000 = MachineConfig(
    name="DECstation 5000/240",
    clock_ns=25.0,
    vector_length=1,
    max_processors=1,
    n_banks=1,
    bank_busy=1,
    gather_rate=26.0,
    scatter_rate=26.0,
    load_rate=26.0,
    store_rate=26.0,
    ew_rate=1.0,
    compress_rate=26.0,
    rng_rate=26.0,
    strip_startup=0.0,
    issue_const=2.0,
    call_const=5.0,
    overhead_scale=0.2,
    scalar_chase=26.0,
    scalar_call_const=50.0,
    sync_cycles=0.0,
    task_start_cycles=0.0,
)
