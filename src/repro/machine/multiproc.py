"""Multiprocessor composition of simulated CPUs (paper Section 5).

"The overall approach is to divide the virtual processors equally among
the physical vector processors and let vectorization proceed on the
virtual processor data assigned to the physical processors."  The
simulated algorithms do exactly that: they shard their virtual-
processor vectors across ``p`` :class:`~repro.machine.vm.VectorVM`
instances, run each shard's (identical) control flow, and combine the
per-CPU ledgers with :func:`combine_parallel` — the parallel region
costs the *maximum* shard time plus the tasking/synchronisation
overhead the paper minimizes ("for efficiency, the number of
synchronization points should be minimized").
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .config import CRAY_C90, MachineConfig
from .vm import VectorVM

__all__ = ["shard_slices", "combine_parallel", "make_vms"]


def shard_slices(n_items: int, n_shards: int) -> list[slice]:
    """Split ``range(n_items)`` into ``n_shards`` contiguous chunks whose
    sizes differ by at most one ("direct the compiler to divide the
    loops into equal size chunks, one chunk per processor")."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    base = n_items // n_shards
    extra = n_items % n_shards
    out: list[slice] = []
    start = 0
    for j in range(n_shards):
        size = base + (1 if j < extra else 0)
        out.append(slice(start, start + size))
        start += size
    return out


def make_vms(
    config: MachineConfig = CRAY_C90,
    n_processors: int = 1,
    bank_conflicts: bool = True,
) -> list[VectorVM]:
    """One :class:`VectorVM` per simulated CPU."""
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    if n_processors > config.max_processors:
        raise ValueError(
            f"{config.name} has at most {config.max_processors} processors"
        )
    return [VectorVM(config, bank_conflicts) for _ in range(n_processors)]


def combine_parallel(
    cycles_per_cpu: Sequence[float],
    config: MachineConfig,
    n_syncs: int = 1,
) -> float:
    """Wall-clock cycles of a parallel region.

    The region completes when the slowest CPU finishes; starting the
    tasked loop and every synchronisation point add their constants.
    A single-CPU region carries no tasking overhead — the paper's
    one-processor code "has no overhead due to multitasking and, hence,
    performs better on small lists than the multiprocessor version".
    """
    cycles = float(np.max(cycles_per_cpu)) if len(cycles_per_cpu) else 0.0
    if len(cycles_per_cpu) > 1:
        cycles += config.task_start_cycles + n_syncs * config.sync_cycles
    return cycles
