"""Kernel cost derivation and calibration against the paper's equations.

The paper reports, for every subroutine of the vectorized list scan, a
measured linear cost ``T(x) = a·x + b`` in C-90 clocks (Section 3).
This module connects those measurements to the machine model:

* :func:`derive_rates` — computes each kernel's per-element slope from
  its *instruction inventory* (the counts of gathers, scatters, loads,
  stores and arithmetic ops listed in the paper's per-subroutine
  prose), the machine's per-op rates, and the per-strip pipe-fill
  amortized over the vector length.  The intercepts combine the
  instruction-issue constants with the paper's measured scalar
  overheads (scaled by ``config.overhead_scale`` for non-C-90
  machines) — those overheads come from compiler-generated scalar glue
  no throughput model can derive.
* :func:`to_kernel_costs` — packages the derived table as an
  :class:`~repro.analysis.cost_model.KernelCosts`, so the pack-schedule
  optimizer and tuner can target any simulated machine.
* :func:`paper_equations` / :func:`compare_with_paper` — the published
  table and the relative error of the derived model against it (the
  ``bench_kernels`` benchmark prints this comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.cost_model import KernelCosts, PAPER_C90_COSTS
from .config import CRAY_C90, MachineConfig

__all__ = [
    "KernelModel",
    "derive_rates",
    "to_kernel_costs",
    "paper_equations",
    "compare_with_paper",
]

#: Instruction inventories per kernel, straight from the paper's
#: Section 3 prose: (gathers, scatters, loads, stores, elementwise,
#: compress, rng) *per element of the operated-on vector*.
_INVENTORIES: dict[str, tuple[float, float, float, float, float, float, float]] = {
    # "requires a load and a gather, and to save sl.head requires a
    # store … gathers ll.value … two scatter operations … initializes
    # the virtual processor vectors" + GEN_TAILS random positions
    "initialize": (2, 2, 1, 4, 1, 0, 1),
    # "it uses two gather operations.  To increment the sum requires
    # loading, adding to, and storing vp.sum.  Finally it needs to
    # store the current link vp.next."
    "initial_rank": (2, 0, 1, 2, 1, 0, 0),
    # completion test (load + gather + compare), compress-index, pack 3
    # vectors (gather+store each), save 2 results (scatter)
    "initial_pack": (1 + 3, 2 * 0.3, 1, 3, 2, 1, 0),
    # three separate loops (the write/read ordering barrier): scatter
    # indices, gather probes + negate/compare/store, scatter self-loops,
    # gather tail values, load/increment/store sums, reload heads
    "find_sublist": (2, 2, 6, 3, 4, 0, 0),
    # initial_rank + "loads and scatters the resulting scan vp.sum"
    "final_rank": (2, 1, 2, 2, 1, 0, 0),
    # "simply load all of vp.sum and scatter to ll.sum" + pack 2 vectors
    "final_pack": (1 + 2, 1 * 0.3, 2, 2, 1, 1, 0),
    # "loading sl.random, sl.head, and sl.value and scattering to
    # ll.next and ll.value"
    "restore": (0, 2, 3, 0, 1, 0, 0),
}

#: Number of vector instructions per kernel (for the issue constants).
_N_INSTR: dict[str, int] = {
    "initialize": 11,
    "initial_rank": 6,
    "initial_pack": 11,
    "find_sublist": 10,
    "final_rank": 8,
    "final_pack": 9,
    "restore": 5,
}

#: The paper's measured scalar-overhead intercepts (C-90 clocks).
_PAPER_CONSTS: dict[str, float] = {
    "initialize": 8700.0,
    "initial_rank": 80.0,
    "initial_pack": 540.0,
    "find_sublist": 770.0,
    "final_rank": 100.0,
    "final_pack": 400.0,
    "restore": 250.0,
}


@dataclass(frozen=True)
class KernelModel:
    """Derived ``a·x + b`` model for one kernel."""

    name: str
    per_elem: float
    const: float

    def __call__(self, x: float) -> float:
        return self.per_elem * x + self.const


def derive_rates(config: MachineConfig = CRAY_C90) -> dict[str, KernelModel]:
    """Derive every kernel's linear cost from its instruction inventory."""
    out: dict[str, KernelModel] = {}
    for name, (g, sc, ld, st, ew, cp, rg) in _INVENTORIES.items():
        n_instr = _N_INSTR[name]
        per_elem = (
            g * config.gather_rate
            + sc * config.scatter_rate
            + ld * config.load_rate
            + st * config.store_rate
            + ew * config.ew_rate
            + cp * config.compress_rate
            + rg * config.rng_rate
            + n_instr * config.strip_startup / config.vector_length
        )
        const = config.overhead_scale * _PAPER_CONSTS[name] * (
            config.issue_const / CRAY_C90.issue_const
        )
        out[name] = KernelModel(name=name, per_elem=per_elem, const=const)
    # scalar kernel: the serial scan used by Phase 2
    out["serial"] = KernelModel(
        name="serial",
        per_elem=config.scalar_chase,
        const=config.scalar_call_const,
    )
    return out


def to_kernel_costs(config: MachineConfig = CRAY_C90) -> KernelCosts:
    """Package the derived kernel table for the schedule optimizer."""
    k = derive_rates(config)
    return KernelCosts(
        initialize_per_elem=k["initialize"].per_elem,
        initialize_const=k["initialize"].const,
        initial_rank_per_elem=k["initial_rank"].per_elem,
        initial_rank_const=k["initial_rank"].const,
        initial_pack_per_elem=k["initial_pack"].per_elem,
        initial_pack_const=k["initial_pack"].const,
        find_sublist_per_elem=k["find_sublist"].per_elem,
        find_sublist_const=k["find_sublist"].const,
        serial_per_elem=k["serial"].per_elem,
        serial_const=k["serial"].const,
        final_rank_per_elem=k["final_rank"].per_elem,
        final_rank_const=k["final_rank"].const,
        final_pack_per_elem=k["final_pack"].per_elem,
        final_pack_const=k["final_pack"].const,
        restore_per_elem=k["restore"].per_elem,
        restore_const=k["restore"].const,
        clock_ns=config.clock_ns,
        sync_const=config.sync_cycles,
    )


def paper_equations() -> dict[str, tuple[float, float]]:
    """The published (a, b) pairs from Section 3."""
    c = PAPER_C90_COSTS
    return {
        "initialize": (c.initialize_per_elem, c.initialize_const),
        "initial_rank": (c.initial_rank_per_elem, c.initial_rank_const),
        "initial_pack": (c.initial_pack_per_elem, c.initial_pack_const),
        "find_sublist": (c.find_sublist_per_elem, c.find_sublist_const),
        "final_rank": (c.final_rank_per_elem, c.final_rank_const),
        "final_pack": (c.final_pack_per_elem, c.final_pack_const),
        "restore": (c.restore_per_elem, c.restore_const),
        "serial": (c.serial_per_elem, c.serial_const),
    }


def compare_with_paper(
    config: MachineConfig = CRAY_C90,
) -> dict[str, dict[str, float]]:
    """Derived-vs-paper comparison table: slope, intercept, relative error.

    Used by ``benchmarks/bench_kernels.py`` to regenerate the Section 3
    equations and by the tests asserting the C-90 preset stays
    calibrated (slopes within 15% of the paper's measurements).
    """
    derived = derive_rates(config)
    paper = paper_equations()
    table: dict[str, dict[str, float]] = {}
    for name, (a_paper, b_paper) in paper.items():
        model = derived[name]
        table[name] = {
            "paper_a": a_paper,
            "paper_b": b_paper,
            "model_a": model.per_elem,
            "model_b": model.const,
            "rel_err_a": abs(model.per_elem - a_paper) / a_paper,
            "rel_err_b": abs(model.const - b_paper) / max(b_paper, 1.0),
        }
    return table
