"""Simulated Cray vector-multiprocessor substrate."""

from .calibration import (
    KernelModel,
    compare_with_paper,
    derive_rates,
    paper_equations,
    to_kernel_costs,
)
from .config import CRAY_C90, CRAY_YMP, DECSTATION_5000, MachineConfig
from .memory import (
    conflict_cycles,
    estimate_conflict_cycles,
    exact_conflict_cycles,
)
from .multiproc import combine_parallel, make_vms, shard_slices
from .vm import CycleLedger, VectorVM
