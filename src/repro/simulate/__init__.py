"""Simulated (cycle-accounted) runs of every algorithm on the Cray models."""

from .contraction_sim import (
    anderson_miller_scan_sim,
    random_mate_scan_sim,
    stats_to_cycles,
)
from .result import SimResult
from .serial_sim import serial_rank_sim, serial_scan_sim
from .sublist_sim import SimSublistConfig, sublist_rank_sim, sublist_scan_sim
from .wyllie_sim import wyllie_rank_sim, wyllie_scan_sim
