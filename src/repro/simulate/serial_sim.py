"""Simulated serial list scan (paper Section 2.1).

The serial algorithm is a dependent scalar pointer chase: every element
costs a full memory round trip (34 clocks on the C-90 — the flat
≈143 ns/element line of Figure 1).  The scan itself is executed by the
host reference implementation; the cycle cost is the scalar-chase
model.
"""

from __future__ import annotations


import numpy as np

from ..baselines.serial import serial_list_scan
from ..core.operators import Operator, SUM, get_operator
from ..lists.generate import LinkedList
from ..machine.config import CRAY_C90, MachineConfig
from ..machine.vm import VectorVM
from .result import SimResult

__all__ = ["serial_scan_sim", "serial_rank_sim"]


def serial_scan_sim(
    lst: LinkedList,
    op: Operator | str = SUM,
    config: MachineConfig = CRAY_C90,
    inclusive: bool = False,
) -> SimResult:
    """Run the serial scan and charge the scalar traversal model."""
    op = get_operator(op)
    out = serial_list_scan(lst, op, inclusive=inclusive)
    vm = VectorVM(config)
    with vm.region("serial"):
        vm.scalar_traverse(lst.n)
    result = SimResult(out=out, cycles=0.0, config=config, n=lst.n, n_processors=1)
    result.add_region("serial", vm.cycles)
    result.per_cpu_cycles = [vm.cycles]
    return result


def serial_rank_sim(
    lst: LinkedList, config: MachineConfig = CRAY_C90
) -> SimResult:
    """Simulated serial list ranking."""
    ones = LinkedList(lst.next, lst.head, np.ones(lst.n, dtype=np.int64))
    return serial_scan_sim(ones, SUM, config)
