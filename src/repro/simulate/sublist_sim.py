"""Simulated sublist list scan on the vector multiprocessor
(paper Sections 3 and 5; Figures 4, 14, 15).

The algorithm is *executed* (results are exact) while every kernel
charges the cycle costs derived from its instruction inventory
(``machine.calibration``) plus bank-conflict stalls sampled from the
real gather/scatter address streams.

Multiprocessing follows the paper's Section 5 exactly:

* the ``m`` virtual processors are divided once into ``p`` contiguous
  shards, one per CPU;
* Phases 1 and 3 run *independently* per CPU with **local-only
  packing** — "we need to do no synchronization within Phase 1 or
  Phase 3 and there is no load balancing across processors";
* a parallel region's wall time is the maximum shard time plus the
  tasked-loop start; single-CPU runs carry no multitasking overhead
  ("The implementation on one processor has no overhead due to
  multitasking");
* the bookkeeping kernels (initialize / find-sublist-list / restore)
  are tasked loops over ``m`` items with one synchronization each;
* Phase 2 runs serially, with the simulated Wyllie, or recursively
  depending on the reduced size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.operators import Operator, SUM, get_operator
from ..core.schedule import ScheduleIterator, optimal_schedule
from ..core.sublist import choose_splitters
from ..core.tuning import SERIAL_CUTOFF, WYLLIE_CUTOFF, tuned_parameters
from ..lists.generate import INDEX_DTYPE, LinkedList
from ..machine.calibration import derive_rates, to_kernel_costs
from ..machine.config import CRAY_C90, MachineConfig
from ..machine.memory import estimate_conflict_cycles
from ..machine.multiproc import shard_slices
from .result import SimResult
from .serial_sim import serial_scan_sim
from .wyllie_sim import wyllie_scan_sim

__all__ = ["SimSublistConfig", "sublist_scan_sim", "sublist_rank_sim"]


@dataclass(frozen=True)
class SimSublistConfig:
    """Parameters of a simulated sublist-scan run."""

    m: int | None = None
    s1: float | None = None
    splitters: str = "spaced"
    serial_cutoff: int = SERIAL_CUTOFF
    wyllie_cutoff: int = WYLLIE_CUTOFF
    tail_growth: float = 1.5
    bank_conflicts: bool = True
    conflict_sample_every: int = 8
    max_depth: int = 4


def sublist_scan_sim(
    lst: LinkedList,
    op: Operator | str = SUM,
    config: MachineConfig = CRAY_C90,
    n_processors: int = 1,
    sim_config: SimSublistConfig | None = None,
    rng: np.random.Generator | int | None = None,
    inclusive: bool = False,
    _depth: int = 0,
) -> SimResult:
    """Simulate the sublist list scan; returns values and cycle accounting."""
    op = get_operator(op)
    cfg = sim_config or SimSublistConfig()
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    p = n_processors
    if p < 1 or p > config.max_processors:
        raise ValueError(
            f"n_processors must be in [1, {config.max_processors}] for {config.name}"
        )
    n = lst.n

    if n <= cfg.serial_cutoff or n < 4 or _depth >= cfg.max_depth:
        res = serial_scan_sim(lst, op, config, inclusive=inclusive)
        return res

    costs = to_kernel_costs(config)
    kernels = derive_rates(config)
    if cfg.m is not None and cfg.s1 is not None:
        m_req, s1 = cfg.m, cfg.s1
    else:
        m_t, s1_t = tuned_parameters(n, costs, p)
        m_req = cfg.m if cfg.m is not None else m_t
        s1 = cfg.s1 if cfg.s1 is not None else s1_t
    m_req = int(min(max(m_req, 2), max(2, n // 2)))

    nxt = lst.next
    values = lst.values
    head = lst.head
    ident = op.identity_for(values.dtype)
    out = np.empty_like(values)
    result = SimResult(out=out, cycles=0.0, config=config, n=n, n_processors=p)

    idx_self = np.arange(n, dtype=INDEX_DTYPE)
    loops = np.flatnonzero(nxt == idx_self)
    if loops.size == 0:
        from ..lists.validate import ListStructureError

        raise ListStructureError(
            "the successor array has no self-loop tail; not a valid list"
        )
    tail = int(loops[0])
    positions = choose_splitters(n, m_req, tail, cfg.splitters, gen)
    m = int(positions.size) + 1

    mc = (m + p - 1) // p  # per-CPU chunk of the bookkeeping loops

    def region(name: str, per_elem_cycles: float, const: float, syncs: int = 1) -> None:
        wall = per_elem_cycles * mc + const
        if p > 1:
            wall += config.task_start_cycles + syncs * config.sync_cycles
        result.add_region(name, wall)

    # ------------------------------------------------------------------
    # INITIALIZE
    # ------------------------------------------------------------------
    sl_random = np.empty(m, dtype=INDEX_DTYPE)
    sl_random[0] = -1
    sl_random[1:] = positions
    sl_head = np.empty(m, dtype=INDEX_DTYPE)
    sl_head[0] = head
    sl_head[1:] = nxt[positions]
    sl_value = op.identity_array(m, values.dtype)
    sl_value[1:] = values[positions]
    saved_tail_value = None
    values[positions] = ident
    nxt[positions] = positions
    init = kernels["initialize"]
    init_conflicts = 0.0
    if cfg.bank_conflicts and positions.size:
        init_conflicts = 4.0 * estimate_conflict_cycles(
            positions, config, config.gather_rate
        ) / p
    region("initialize", init.per_elem, init.const + init_conflicts)

    sl_sum = op.identity_array(m, values.dtype)
    sl_tail = np.full(m, -1, dtype=INDEX_DTYPE)

    try:
        # --------------------------------------------------------------
        # PHASE 1 — per-CPU independent loops with local packing.
        # --------------------------------------------------------------
        schedule = optimal_schedule(n, m, s1, costs)
        shards = shard_slices(m, p)
        rank1 = kernels["initial_rank"]
        pack1 = kernels["initial_pack"]
        phase1_cpu = _run_phase(
            op,
            nxt,
            values,
            sl_head,
            None,
            sl_sum,
            sl_tail,
            out=None,
            shards=shards,
            schedule=schedule,
            cfg=cfg,
            config=config,
            rank=rank1,
            pack=pack1,
            phase=1,
        )
        wall1 = max(phase1_cpu) + (config.task_start_cycles if p > 1 else 0.0)
        result.add_region("phase1", wall1)

        # --------------------------------------------------------------
        # FIND_SUBLIST_LIST
        # --------------------------------------------------------------
        nxt[sl_random[1:]] = -np.arange(1, m, dtype=INDEX_DTYPE)
        probe = nxt[sl_tail]
        sl_next = np.where(
            probe < 0, -probe, np.arange(m, dtype=INDEX_DTYPE)
        ).astype(INDEX_DTYPE)
        ends = np.flatnonzero(probe >= 0)
        if ends.size != 1:
            from ..lists.validate import ListStructureError

            raise ListStructureError(
                "reduced list has no unique tail sublist; the successor "
                "array appears to contain a cycle"
            )
        tail_subl = int(ends[0])
        whole_tail = int(sl_tail[tail_subl])
        sl_random[0] = whole_tail
        saved_tail_value = values[whole_tail].copy()
        sl_value[0] = saved_tail_value
        values[whole_tail] = ident
        nxt[sl_tail] = sl_tail
        addback = sl_value[sl_next]
        addback[tail_subl] = sl_value[0]
        sl_sum = op.combine(sl_sum, addback)
        fsl = kernels["find_sublist"]
        region("find_sublist", fsl.per_elem, fsl.const, syncs=2)

        # --------------------------------------------------------------
        # PHASE 2 — serial / Wyllie / recursive on the reduced list.
        # --------------------------------------------------------------
        carries = np.empty_like(sl_sum)
        reduced = LinkedList(sl_next, 0, sl_sum)
        if m > cfg.wyllie_cutoff and _depth + 1 < cfg.max_depth:
            sub = sublist_scan_sim(
                reduced, op, config, p, cfg, gen, _depth=_depth + 1
            )
            carries[...] = sub.out
            result.add_region("phase2_recursive", sub.cycles)
        elif m > cfg.serial_cutoff and op.invertible:
            sub = wyllie_scan_sim(
                reduced, op, config, p, bank_conflicts=cfg.bank_conflicts
            )
            carries[...] = sub.out
            result.add_region("phase2_wyllie", sub.cycles)
        else:
            sub = serial_scan_sim(reduced, op, config)
            carries[...] = sub.out
            result.add_region("phase2_serial", sub.cycles)

        # --------------------------------------------------------------
        # PHASE 3 — expansion with the same shard assignment.
        # --------------------------------------------------------------
        rank3 = kernels["final_rank"]
        pack3 = kernels["final_pack"]
        phase3_cpu = _run_phase(
            op,
            nxt,
            values,
            sl_head,
            carries,
            None,
            None,
            out=out,
            shards=shards,
            schedule=schedule,
            cfg=cfg,
            config=config,
            rank=rank3,
            pack=pack3,
            phase=3,
        )
        wall3 = max(phase3_cpu) + (config.task_start_cycles if p > 1 else 0.0)
        result.add_region("phase3", wall3)
        result.per_cpu_cycles = [a + b for a, b in zip(phase1_cpu, phase3_cpu)]
    finally:
        # --------------------------------------------------------------
        # RESTORE_LIST
        # --------------------------------------------------------------
        if saved_tail_value is not None:
            values[sl_random[0]] = saved_tail_value
        nxt[sl_random[1:]] = sl_head[1:]
        values[sl_random[1:]] = sl_value[1:]
    rst = kernels["restore"]
    region("restore", rst.per_elem, rst.const)

    if inclusive:
        result.out = op.combine(out, values)
    return result


def _run_phase(
    op: Operator,
    nxt: np.ndarray,
    values: np.ndarray,
    sl_head: np.ndarray,
    carries: np.ndarray | None,
    sl_sum: np.ndarray | None,
    sl_tail: np.ndarray | None,
    out: np.ndarray | None,
    shards,
    schedule,
    cfg: SimSublistConfig,
    config: MachineConfig,
    rank,
    pack,
    phase: int,
) -> list:
    """Run Phase 1 (reduce) or Phase 3 (expand) shard by shard.

    Each simulated CPU executes its shard's full traversal loop with
    local packing; returns the busy cycles per CPU.
    """
    per_cpu = []
    sample = max(1, cfg.conflict_sample_every)
    for sl in shards:
        cycles = 0.0
        vp_next = sl_head[sl].copy()
        if phase == 1:
            vp_sum = op.identity_array(vp_next.shape[0], values.dtype)
            vp_proc = np.arange(sl.start, sl.stop, dtype=INDEX_DTYPE)
        else:
            vp_sum = carries[sl].copy()
            vp_proc = None
        gaps = ScheduleIterator(schedule, cfg.tail_growth)
        step_count = 0
        while vp_next.size:
            gap = next(gaps)
            x = vp_next.size
            for _ in range(gap):
                if phase == 3:
                    out[vp_next] = vp_sum
                vp_sum = op.combine(vp_sum, values[vp_next])
                vp_next = nxt[vp_next]
                cycles += rank.per_elem * x + rank.const
                step_count += 1
                if cfg.bank_conflicts and step_count % sample == 0:
                    streams = 3.0 if phase == 3 else 2.0
                    cycles += streams * sample * estimate_conflict_cycles(
                        vp_next, config, config.gather_rate
                    )
            done = vp_next == nxt[vp_next]
            if phase == 1:
                finished = vp_proc[done]
                sl_sum[finished] = vp_sum[done]
                sl_tail[finished] = vp_next[done]
            else:
                out[vp_next] = vp_sum
            keep = ~done
            vp_next = vp_next[keep]
            vp_sum = vp_sum[keep]
            if vp_proc is not None:
                vp_proc = vp_proc[keep]
            cycles += pack.per_elem * x + pack.const
        per_cpu.append(cycles)
    return per_cpu


def sublist_rank_sim(
    lst: LinkedList,
    config: MachineConfig = CRAY_C90,
    n_processors: int = 1,
    sim_config: SimSublistConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> SimResult:
    """Simulated list ranking via the sublist algorithm."""
    ones = LinkedList(lst.next, lst.head, np.ones(lst.n, dtype=np.int64))
    return sublist_scan_sim(ones, SUM, config, n_processors, sim_config, rng)
