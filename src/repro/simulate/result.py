"""Result type shared by all simulated algorithm runs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine.config import MachineConfig

__all__ = ["SimResult"]


@dataclass
class SimResult:
    """Outcome of one simulated run.

    Attributes
    ----------
    out:
        The computed scan/rank values (real results — the simulator
        executes the algorithm, it does not merely cost it).
    cycles:
        Simulated wall-clock in machine cycles (max over CPUs within
        each parallel region, summed over regions).
    config:
        The machine model that was simulated.
    n:
        Problem size the run was performed on.
    n_processors:
        CPUs used.
    per_cpu_cycles:
        Busy cycles per CPU for the phase regions (exposes the load
        imbalance the paper's local-only packing accepts).
    breakdown:
        Cycles by kernel/region name (the Section 3 decomposition).
    """

    out: np.ndarray
    cycles: float
    config: MachineConfig
    n: int
    n_processors: int = 1
    per_cpu_cycles: list[float] = field(default_factory=list)
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def time_ns(self) -> float:
        """Simulated wall-clock in nanoseconds."""
        return self.config.time_ns(self.cycles)

    @property
    def ns_per_element(self) -> float:
        """The paper's standard y-axis: nanoseconds per list element."""
        return self.time_ns / max(self.n, 1)

    @property
    def cycles_per_element(self) -> float:
        """Cycles per list element (the paper's ≈8.6 clk/elem asymptote)."""
        return self.cycles / max(self.n, 1)

    def add_region(self, name: str, cycles: float) -> None:
        """Accumulate a timed region into the total and the breakdown."""
        self.cycles += cycles
        self.breakdown[name] = self.breakdown.get(name, 0.0) + cycles
