"""Simulated Wyllie pointer jumping on the vector multiprocessor
(paper Section 2.2, Figures 1 and 3).

Executes the suffix-form pointer-jumping rounds on the host while
charging, per round and per CPU, the operation inventory of the paper's
``Wyllie_Loop`` with double buffering: two stride-1 loads (own value
and own link), two gathers (successor's value and link), one combine,
and two stride-1 stores into the write buffers.  Bank-conflict stalls
are computed from the actual gather address streams — in the final
rounds a growing fraction of all pointers dereference the tail
simultaneously, which the banked-memory model serializes, reproducing
the concurrent-read hot spot the paper notes for Cray memory systems.

The round count ⌈log₂(n−1)⌉ produces the sawtooth of Figures 1/3: the
per-element time jumps whenever the list length crosses a power of two
and drifts down between teeth as the per-round constants amortize.
"""

from __future__ import annotations


import numpy as np

from ..baselines.wyllie import wyllie_rounds
from ..core.operators import Operator, SUM, get_operator
from ..lists.generate import LinkedList
from ..machine.config import CRAY_C90, MachineConfig
from ..machine.memory import estimate_conflict_cycles
from ..machine.multiproc import shard_slices
from .result import SimResult

__all__ = ["wyllie_scan_sim", "wyllie_rank_sim"]


def wyllie_scan_sim(
    lst: LinkedList,
    op: Operator | str = SUM,
    config: MachineConfig = CRAY_C90,
    n_processors: int = 1,
    inclusive: bool = False,
    bank_conflicts: bool = True,
) -> SimResult:
    """Simulate the multiprocessor Wyllie list scan.

    Requires an invertible operator (the paper's suffix dataflow).
    """
    op = get_operator(op)
    if not op.invertible:
        raise ValueError("the simulated Wyllie uses the suffix form; "
                         f"operator {op.name} is not invertible")
    if n_processors < 1 or n_processors > config.max_processors:
        raise ValueError(
            f"n_processors must be in [1, {config.max_processors}] for {config.name}"
        )
    n = lst.n
    p = n_processors
    values = lst.values
    ident = op.identity_for(values.dtype)
    tail = lst.tail

    work = values.copy()
    work[tail] = ident
    ptr = lst.next.copy()

    result = SimResult(
        out=np.empty_like(values), cycles=0.0, config=config, n=n, n_processors=p
    )
    per_cpu_total = [0.0] * p
    shards = shard_slices(n, p)
    chunk = max(len(range(*s.indices(n))) for s in shards)

    rounds = wyllie_rounds(n)
    cfg = config
    vl = cfg.vector_length
    # per-element inventory of one Wyllie round (see module docstring)
    base_rate = (
        2 * cfg.load_rate + 2 * cfg.gather_rate + cfg.ew_rate + 2 * cfg.store_rate
    )
    strips = (chunk + vl - 1) // vl
    # 7 vector instructions per strip-mined pass over the chunk, each
    # paying its call constant and a pipe fill per strip
    per_round_const = 7 * cfg.call_const + 7 * strips * cfg.strip_startup

    round_cycles_total = 0.0
    for _ in range(rounds):
        stalls = 0.0
        if bank_conflicts:
            stalls = 2.0 * estimate_conflict_cycles(ptr, cfg, cfg.gather_rate)
        work = op.combine(work, work[ptr])
        ptr = ptr[ptr]
        cpu_cycles = base_rate * chunk + per_round_const + stalls / p
        for j in range(p):
            per_cpu_total[j] += cpu_cycles
        wall = cpu_cycles + (cfg.sync_cycles if p > 1 else 0.0)
        round_cycles_total += wall

    if p > 1:
        round_cycles_total += cfg.task_start_cycles
    result.add_region("wyllie_rounds", round_cycles_total)

    # suffix → exclusive prefix conversion: one load, one ew, one store
    total = work[lst.head]
    out = op.remove(total, work)
    if inclusive:
        out = op.combine(out, values)
    result.out = out
    convert = (
        (cfg.load_rate + cfg.ew_rate + cfg.store_rate) * chunk
        + 3 * cfg.call_const
        + 3 * ((chunk + vl - 1) // vl) * cfg.strip_startup
    )
    result.add_region("convert", convert + (cfg.sync_cycles if p > 1 else 0.0))
    result.per_cpu_cycles = [c + convert for c in per_cpu_total]
    return result


def wyllie_rank_sim(
    lst: LinkedList,
    config: MachineConfig = CRAY_C90,
    n_processors: int = 1,
    bank_conflicts: bool = True,
) -> SimResult:
    """Simulated Wyllie list ranking."""
    ones = LinkedList(lst.next, lst.head, np.ones(lst.n, dtype=np.int64))
    return wyllie_scan_sim(
        ones, SUM, config, n_processors, bank_conflicts=bank_conflicts
    )
