"""Simulated costs for the random-mate baselines (paper Figure 1).

The Miller/Reif and Anderson/Miller algorithms appear in the paper's
evaluation only as single curves on Figure 1 ("Both implementations of
the random mate approach are an order of magnitude slower than our
algorithm on one processor … They are also slower than the serial
implementation").  Rather than a kernel-exact simulation, the host
implementations are executed with :class:`~repro.core.stats.ScanStats`
instrumentation, and the recorded vector-operation counts (element
operations, gathers, scatters, rounds, packs) are priced under the
machine model.  This preserves exactly what Figure 1 shows — the
ordering and the rough factors between the algorithms — while reusing
the verified host kernels.

Per live element and round, a contraction step pays coin generation,
the successor/coin gathers, the mask arithmetic, and its share of the
pack; splices additionally pay the pointer/value updates and the
reconstruction-stack traffic; the reconstruction replay pays one
gather, one combine, one scatter per node.
"""

from __future__ import annotations


import numpy as np

from ..baselines.anderson_miller import anderson_miller_list_scan
from ..baselines.random_mate import random_mate_list_scan
from ..core.operators import Operator, SUM, get_operator
from ..core.stats import ScanStats
from ..lists.generate import LinkedList
from ..machine.config import CRAY_C90, MachineConfig
from .result import SimResult

__all__ = ["random_mate_scan_sim", "anderson_miller_scan_sim", "stats_to_cycles"]


def stats_to_cycles(stats: ScanStats, config: MachineConfig) -> dict:
    """Price a recorded operation mix under the machine model.

    Returns a breakdown dict; ``total`` is the summed cycles.  Mask
    arithmetic is charged at three elementwise ops per recorded element
    operation (coin test, two-sided mask, splice select), matching the
    conditional-heavy structure the paper blames for the large
    constants of these algorithms.
    """
    contract_work = stats.phases.get("contract", 0)
    reconstruct_work = stats.phases.get("reconstruct", 0)
    base_work = stats.phases.get("base", 0)
    #: the paper singles out the random-number draws as expensive —
    #: "the first approach uses mod arithmetic, which is relatively
    #: slow on the CRAY" — so each per-round coin pays the generator
    #: plus the mod reduction.
    rng_cost = config.rng_rate + 4.0
    breakdown = {
        "rng": rng_cost * contract_work,
        "gathers": config.gather_rate * stats.gathers,
        "scatters": config.scatter_rate * stats.scatters,
        "mask_arith": 3.0 * config.ew_rate * stats.element_ops,
        # conditional splices update the live next/value arrays through
        # vector-merge read-modify-write passes
        "masked_updates": 2.0 * contract_work,
        "compress": config.compress_rate * contract_work,
        "reconstruct_arith": config.ew_rate * reconstruct_work,
        "serial_base": config.scalar_chase * base_work,
        "round_overhead": stats.rounds
        * (8 * config.issue_const + config.call_const),
        "pack_overhead": stats.packs * 4 * config.issue_const,
    }
    breakdown["total"] = float(sum(breakdown.values()))
    return breakdown


def random_mate_scan_sim(
    lst: LinkedList,
    op: Operator | str = SUM,
    config: MachineConfig = CRAY_C90,
    rng: np.random.Generator | int | None = None,
) -> SimResult:
    """Simulated Miller/Reif random-mate scan (single processor)."""
    op = get_operator(op)
    stats = ScanStats()
    out = random_mate_list_scan(lst, op, rng=rng, stats=stats)
    breakdown = stats_to_cycles(stats, config)
    total = breakdown.pop("total")
    result = SimResult(out=out, cycles=0.0, config=config, n=lst.n, n_processors=1)
    for name, cyc in breakdown.items():
        if cyc:
            result.add_region(name, cyc)
    result.cycles = total
    result.per_cpu_cycles = [total]
    return result


def anderson_miller_scan_sim(
    lst: LinkedList,
    op: Operator | str = SUM,
    config: MachineConfig = CRAY_C90,
    rng: np.random.Generator | int | None = None,
) -> SimResult:
    """Simulated Anderson/Miller queued-splice scan (single processor)."""
    op = get_operator(op)
    stats = ScanStats()
    out = anderson_miller_list_scan(lst, op, rng=rng, stats=stats)
    breakdown = stats_to_cycles(stats, config)
    total = breakdown.pop("total")
    result = SimResult(out=out, cycles=0.0, config=config, n=lst.n, n_processors=1)
    for name, cyc in breakdown.items():
        if cyc:
            result.add_region(name, cyc)
    result.cycles = total
    result.per_cpu_cycles = [total]
    return result
