"""Log-bucketed latency histograms for the serving path.

The serving front-end (``repro.serve``) tunes its batch window against
a tail-latency SLO, which means the engine must account latency as a
*distribution*, not an average: a p95 target is invisible in a mean.
This module provides the one histogram type used everywhere a latency
is recorded — the engine's ``queue_wait``/``execute`` sub-phases and
the server's admission→response totals — so every surface that reports
percentiles (``EngineStats.snapshot()``, the ``/stats`` endpoint, the
bench client's artifact) computes them the same way.

Design:

* **Geometric buckets.**  Latencies span six orders of magnitude
  (microsecond cache hits to multi-second fused batches), so buckets
  grow by a fixed factor (default 2×) from ``least`` upward.  Relative
  quantile error is bounded by the factor, which is what an SLO
  controller needs; absolute error would require unbounded buckets.
* **O(1) observe.**  ``observe`` is a ``bisect`` into the precomputed
  bucket bounds plus a few scalar updates — cheap enough to run per
  request under the engine lock.
* **JSON-safe snapshots.**  ``snapshot()`` returns plain ints/floats
  (counts, sum, min/max, p50/p95/p99 and the non-empty buckets), the
  exact payload ``EngineStats.snapshot()`` embeds and the ``/stats``
  endpoint serves.

Quantiles interpolate linearly inside the winning bucket, clamped to
the observed min/max so a single-sample histogram reports that sample
exactly.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = ["LatencyHistogram", "DEFAULT_QUANTILES"]

#: The quantiles every snapshot reports (the serving SLO is on p95).
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


class LatencyHistogram:
    """Fixed-layout geometric histogram of non-negative durations.

    Parameters
    ----------
    least:
        Upper bound of the first bucket, in seconds.  Observations at
        or below it land there.
    factor:
        Geometric growth between consecutive bucket bounds.
    buckets:
        Number of bounded buckets; one unbounded overflow bucket is
        always appended.  The defaults cover 1 µs … ~67 s.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(
        self,
        least: float = 1e-6,
        factor: float = 2.0,
        buckets: int = 26,
    ) -> None:
        if least <= 0.0:
            raise ValueError("least must be positive")
        if factor <= 1.0:
            raise ValueError("factor must be > 1")
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        self.bounds: list[float] = [least * factor**i for i in range(buckets)]
        self.counts: list[int] = [0] * (buckets + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration (negative values clamp to zero)."""
        seconds = max(0.0, float(seconds))
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram with the same layout into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bucket layouts")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 < q <= 1) of the observed durations.

        Linear interpolation inside the winning bucket, clamped to the
        observed ``[min, max]``; 0.0 on an empty histogram.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                frac = (rank - seen) / c
                value = lo + (hi - lo) * frac
                return min(max(value, self.min), self.max)
            seen += c
        return self.max  # pragma: no cover - unreachable (rank <= count)

    def snapshot(self) -> dict[str, object]:
        """JSON-safe summary: counters, quantiles, non-empty buckets.

        Bucket rows are ``[upper_bound_seconds, count]`` with ``None``
        as the overflow bound — the shared shape consumed by
        ``EngineStats.snapshot()``, the ``/stats`` endpoint and the
        bench client's latency artifact.
        """
        quantiles = {
            f"p{int(q * 100)}": self.quantile(q) for q in DEFAULT_QUANTILES
        }
        buckets: list[list[object]] = [
            [self.bounds[i] if i < len(self.bounds) else None, c]
            for i, c in enumerate(self.counts)
            if c
        ]
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            **quantiles,
            "buckets": buckets,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self.count}, mean={self.mean:.6f}, "
            f"p95={self.quantile(0.95):.6f})"
        )
