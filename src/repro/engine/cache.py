"""Structural result cache.

Every scan is a pure function of ``(successor array, head, values,
operator, inclusive flag)``, so results can be memoized across
requests: serving layers frequently re-rank the same list (the same
graph arriving from many users, retries, or idempotent replays), and a
cache hit replaces an O(n) traversal with an O(n) hash — and with an
O(1) lookup when the caller reuses a fingerprint.

The key is a 128-bit BLAKE2b digest over the list's structure and the
scan semantics.  Operators are identified *by name* — the built-in
operator table is canonical; a custom operator must use a unique name
to be cached correctly (two different combine functions registered
under one name would collide).

Entries are value copies in both directions: ``put`` stores a copy and
``get`` returns a fresh copy, so callers can mutate results without
poisoning the cache.  Eviction is LRU by entry count and (optionally)
by total stored bytes.  All operations are thread-safe.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..core.operators import Operator, get_operator
from ..lists.generate import LinkedList
from ..sanitize.runtime import guarded

__all__ = ["fingerprint", "ResultCache"]


def fingerprint(
    lst: LinkedList,
    op: Operator | str,
    inclusive: bool = False,
) -> bytes:
    """128-bit structural digest of one scan problem.

    Two problems share a fingerprint iff they have identical successor
    arrays, heads, value arrays (bytes, dtype and shape), operator
    *name* and inclusive flag.

    Object-dtype arrays are rejected: their ``tobytes()`` serializes
    pointers, so two structurally equal problems would fingerprint
    differently (and a mutated value would *keep* its stale digest) —
    a silent cache-corruption hazard rather than a usable key.
    """
    op = get_operator(op)
    if lst.next.dtype.hasobject or np.asarray(lst.values).dtype.hasobject:
        raise TypeError(
            "cannot fingerprint object-dtype arrays: their byte "
            "serialization is identity-based, not structural"
        )
    h = hashlib.blake2b(digest_size=16)
    h.update(b"repro-scan-v1|")
    h.update(op.name.encode())
    h.update(b"|i" if inclusive else b"|x")
    h.update(f"|{lst.head}|{lst.values.dtype.str}|{lst.values.shape}|".encode())
    h.update(np.ascontiguousarray(lst.next).tobytes())
    h.update(np.ascontiguousarray(lst.values).tobytes())
    return h.digest()


class ResultCache:
    """Thread-safe LRU cache of scan results.

    Parameters
    ----------
    capacity:
        Maximum number of entries; 0 disables the cache entirely
        (every ``get`` misses, every ``put`` is dropped).
    max_bytes:
        Optional bound on the summed ``nbytes`` of stored results.
        A single result larger than the bound is simply not stored.
    """

    def __init__(self, capacity: int = 256, max_bytes: int | None = None) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0 (or None)")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._entries: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with guarded(self._lock, "engine.cache", "read"):
            return len(self._entries)

    @property
    def stored_bytes(self) -> int:
        with guarded(self._lock, "engine.cache", "read"):
            return self._bytes

    def get(self, key: bytes) -> np.ndarray | None:
        """Look up a result; returns a fresh copy, or ``None`` on miss."""
        with guarded(self._lock, "engine.cache"):
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.copy()

    def put(self, key: bytes, result: np.ndarray) -> None:
        """Store a result copy under ``key``, evicting LRU entries as
        needed to respect the capacity and byte bounds."""
        if self.capacity == 0:
            return
        stored = np.ascontiguousarray(result).copy()
        if self.max_bytes is not None and stored.nbytes > self.max_bytes:
            return
        with guarded(self._lock, "engine.cache"):
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = stored
            self._bytes += stored.nbytes
            while len(self._entries) > self.capacity or (
                self.max_bytes is not None and self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry *and* reset the hit/miss/eviction counters.

        A cleared cache starts a fresh measurement epoch: post-clear
        hit-rate reporting must not blend probes against the old
        contents with probes against the new, so the counters reset
        together with the entries (callers wanting cumulative numbers
        should snapshot :meth:`stats` before clearing).
        """
        with guarded(self._lock, "engine.cache"):
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict[str, int]:
        """Counters snapshot (hits/misses/evictions/entries/bytes)."""
        with guarded(self._lock, "engine.cache", "read"):
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "bytes": self._bytes,
            }
