"""The :class:`Engine` facade: batched list-scan execution.

Pipeline for one batch (``run_batch``)::

    requests ──► cache probe ──► size-class shards ──► fuse ──► route ──► execute
                    │ hits                                        (cost model)
                    ▼                                                │
                 responses ◄───────────── unfuse ◄───────────────────┘

* Cache probes use the structural fingerprint (``engine.cache``); a
  hit answers the request without executing anything.
* Misses shard by (size class, operator, inclusive, dtype, forced
  algorithm) — ``engine.batch`` — and each shard fuses into one forest.
* The cost-model router (``engine.router``) picks serial / Wyllie /
  sublist per fused batch; the forest kernels of ``core.forest``
  execute all the shard's lists in one vectorized pass.
* Results are unfused, cached, and returned in request order.

Drivers: the sync driver executes shards one after another; the
thread-pool driver (``parallel=True``) executes shards concurrently —
shards share no arrays (fusion copies), so they are embarrassingly
parallel and NumPy releases the GIL in the bulk operations.

Requests with a forced algorithm outside the routable set (e.g.
``random_mate``) cannot fuse — those run per list through the ordinary
dispatch API, so the engine accepts *every* algorithm the library has.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.forest import forest_list_scan, serial_forest_scan, wyllie_forest_scan
from ..core.list_scan import ALGORITHMS, list_scan
from ..core.operators import Operator, SUM
from ..lists.generate import LinkedList
from .batch import DEFAULT_SIZE_CLASS_BASE, FusedBatch, shard_requests
from .cache import ResultCache, fingerprint
from .queue import ScanRequest, ScanResponse, SubmissionQueue
from .router import CANDIDATES, Router

__all__ = ["Engine", "EngineStats"]


@dataclass
class EngineStats:
    """Per-engine counters (cumulative across batches)."""

    requests: int = 0
    batches: int = 0
    shards: int = 0
    fused_lists: int = 0  # lists that executed inside a fused forest
    fused_nodes: int = 0
    solo_runs: int = 0  # lists executed alone (unfusable or singleton)
    cache_hits: int = 0
    cache_misses: int = 0
    seconds_executing: float = 0.0
    algorithms: Dict[str, int] = field(default_factory=dict)

    def count_algorithm(self, name: str, lists: int = 1) -> None:
        self.algorithms[name] = self.algorithms.get(name, 0) + lists

    def as_rows(self) -> List[List[object]]:
        """Counter rows for ``bench.harness.format_table``."""
        rows: List[List[object]] = [
            ["requests", self.requests],
            ["batches", self.batches],
            ["shards", self.shards],
            ["fused lists", self.fused_lists],
            ["fused nodes", self.fused_nodes],
            ["solo runs", self.solo_runs],
            ["cache hits", self.cache_hits],
            ["cache misses", self.cache_misses],
            ["seconds executing", round(self.seconds_executing, 6)],
        ]
        for name in sorted(self.algorithms):
            rows.append([f"algorithm[{name}]", self.algorithms[name]])
        return rows


class Engine:
    """Batched list-ranking/scan execution engine.

    Parameters
    ----------
    router:
        Cost-model router; defaults to a calibrated
        :class:`~repro.engine.router.Router` (paper C-90 table).
    cache:
        A :class:`~repro.engine.cache.ResultCache`, or ``None`` to
        build one from ``cache_capacity``/``cache_max_bytes``
        (``cache_capacity=0`` disables caching).
    max_pending / max_pending_nodes:
        Submission-queue backpressure bounds (see ``engine.queue``).
    max_workers:
        Thread-pool width for ``parallel=True`` drivers.
    size_class_base:
        Geometric growth factor between size classes.
    seed:
        Seed for the engine's random stream (splitter choices in the
        forest kernels; results are identical for every seed).
    """

    def __init__(
        self,
        router: Optional[Router] = None,
        cache: Optional[ResultCache] = None,
        cache_capacity: int = 256,
        cache_max_bytes: Optional[int] = None,
        max_pending: Optional[int] = 1024,
        max_pending_nodes: Optional[int] = None,
        max_workers: Optional[int] = None,
        size_class_base: float = DEFAULT_SIZE_CLASS_BASE,
        seed: Optional[int] = 0,
    ) -> None:
        self.router = router if router is not None else Router()
        self.cache = (
            cache
            if cache is not None
            else ResultCache(cache_capacity, cache_max_bytes)
        )
        self.queue = SubmissionQueue(max_pending, max_pending_nodes)
        self.max_workers = max_workers
        self.size_class_base = size_class_base
        self.stats = EngineStats()
        self._seeds = np.random.SeedSequence(seed)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------

    def submit(
        self,
        lst: LinkedList,
        op: Union[Operator, str] = SUM,
        inclusive: bool = False,
        algorithm: str = "auto",
        tag: Optional[object] = None,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> int:
        """Enqueue one scan request; returns its request id.

        Blocks (or raises :class:`~repro.engine.queue.BackpressureError`)
        when the submission queue is full.
        """
        if algorithm != "auto" and algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected 'auto' or one of "
                f"{ALGORITHMS}"
            )
        request = ScanRequest(
            lst=lst, op=op, inclusive=inclusive, algorithm=algorithm, tag=tag
        )
        return self.queue.submit(request, block=block, timeout=timeout)

    def flush(self, parallel: bool = False) -> List[ScanResponse]:
        """Drain the submission queue and execute everything as one batch."""
        return self.run_batch(self.queue.drain(), parallel=parallel)

    # ------------------------------------------------------------------
    # drivers
    # ------------------------------------------------------------------

    def run_batch(
        self,
        requests: Sequence[ScanRequest],
        parallel: bool = False,
    ) -> List[ScanResponse]:
        """Execute a batch of requests; responses come back in request
        order.  ``parallel=True`` runs independent shards on a thread
        pool (the sync driver otherwise)."""
        requests = list(requests)
        responses: Dict[int, ScanResponse] = {}
        t0 = time.perf_counter()

        misses: List[ScanRequest] = []
        keys: Dict[int, bytes] = {}
        for req in requests:
            key = fingerprint(req.lst, req.op, req.inclusive)
            keys[req.request_id] = key
            hit = self.cache.get(key)
            if hit is not None:
                responses[req.request_id] = ScanResponse(
                    request_id=req.request_id,
                    result=hit,
                    algorithm="cached",
                    cached=True,
                    n=req.n,
                    tag=req.tag,
                )
            else:
                misses.append(req)

        shards = list(shard_requests(misses, self.size_class_base).values())
        if parallel and len(shards) > 1:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                shard_results = list(pool.map(self._execute_shard, shards))
        else:
            shard_results = [self._execute_shard(shard) for shard in shards]

        for shard, (algorithm, results) in zip(shards, shard_results):
            for req, result in zip(shard, results):
                self.cache.put(keys[req.request_id], result)
                responses[req.request_id] = ScanResponse(
                    request_id=req.request_id,
                    result=result,
                    algorithm=algorithm,
                    cached=False,
                    batch_lists=len(shard),
                    n=req.n,
                    tag=req.tag,
                )

        elapsed = time.perf_counter() - t0
        with self._lock:
            self.stats.requests += len(requests)
            self.stats.batches += 1
            self.stats.shards += len(shards)
            self.stats.cache_hits += len(requests) - len(misses)
            self.stats.cache_misses += len(misses)
            self.stats.seconds_executing += elapsed
        return [responses[req.request_id] for req in requests]

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    def scan(
        self,
        lst: LinkedList,
        op: Union[Operator, str] = SUM,
        inclusive: bool = False,
        algorithm: str = "auto",
    ) -> np.ndarray:
        """Single-request convenience: cache + routing, no queueing."""
        [resp] = self.run_batch(
            [ScanRequest(lst=lst, op=op, inclusive=inclusive, algorithm=algorithm)]
        )
        return resp.result

    def rank(self, lst: LinkedList, algorithm: str = "auto") -> np.ndarray:
        """Rank through the engine (all-ones values under ``+``)."""
        ones = LinkedList(lst.next, lst.head, np.ones(lst.n, dtype=np.int64))
        return self.scan(ones, SUM, inclusive=False, algorithm=algorithm)

    def map_scan(
        self,
        lists: Sequence[LinkedList],
        op: Union[Operator, str] = SUM,
        inclusive: bool = False,
        algorithm: str = "auto",
        parallel: bool = False,
    ) -> List[np.ndarray]:
        """Scan many lists; returns results in input order."""
        reqs = [
            ScanRequest(lst=lst, op=op, inclusive=inclusive, algorithm=algorithm)
            for lst in lists
        ]
        return [resp.result for resp in self.run_batch(reqs, parallel=parallel)]

    # ------------------------------------------------------------------
    # shard execution
    # ------------------------------------------------------------------

    def _child_rng(self) -> np.random.Generator:
        with self._lock:
            (child,) = self._seeds.spawn(1)
        return np.random.default_rng(child)

    def _execute_shard(self, shard: List[ScanRequest]):
        """Run one fusable shard; returns ``(algorithm, per-request results)``."""
        forced = shard[0].algorithm  # uniform within a shard (shard key)
        rng = self._child_rng()

        # unroutable forced algorithms have no forest kernel: run per list
        if forced != "auto" and forced not in CANDIDATES:
            results = [
                list_scan(
                    req.lst.copy(),
                    req.op,
                    inclusive=req.inclusive,
                    algorithm=forced,
                    rng=rng,
                )
                for req in shard
            ]
            with self._lock:
                self.stats.solo_runs += len(shard)
                self.stats.count_algorithm(forced, len(shard))
            return forced, results

        if len(shard) == 1:
            req = shard[0]
            algorithm = (
                forced if forced != "auto" else self.router.choose(req.n, 1)
            )
            result = list_scan(
                req.lst.copy(),
                req.op,
                inclusive=req.inclusive,
                algorithm=algorithm,
                rng=rng,
            )
            with self._lock:
                self.stats.solo_runs += 1
                self.stats.count_algorithm(algorithm)
            return algorithm, [result]

        batch = FusedBatch.fuse(shard)
        algorithm = (
            forced
            if forced != "auto"
            else self.router.choose(batch.n_nodes, batch.n_lists)
        )
        out = np.empty_like(batch.values)
        if algorithm == "serial":
            serial_forest_scan(
                batch.nxt, batch.values, batch.heads, batch.op, None, out
            )
            if batch.inclusive:
                out = batch.op.combine(out, batch.values)
        elif algorithm == "wyllie":
            wyllie_forest_scan(
                batch.nxt, batch.values, batch.heads, batch.op, None, out
            )
            if batch.inclusive:
                out = batch.op.combine(out, batch.values)
        else:  # "sublist" and any future routable default
            out = forest_list_scan(
                batch.nxt,
                batch.values,
                batch.heads,
                batch.op,
                inclusive=batch.inclusive,
                rng=rng,
                out=out,
            )
        results = batch.unfuse(out)
        with self._lock:
            self.stats.fused_lists += batch.n_lists
            self.stats.fused_nodes += batch.n_nodes
            self.stats.count_algorithm(algorithm, batch.n_lists)
        return algorithm, results
