"""The :class:`Engine` facade: batched list-scan execution.

Pipeline for one batch (``run_batch``)::

    requests ──► fingerprint ──► cache probe ──► validate ──► coalesce
                                    │ hits          │ bad        │ dups
                                    ▼               ▼            ▼
                                 responses      ok=False     fan-out of
                                                responses    the primary
                                                   │
                 size-class shards ◄───────────────┘ (unique misses)
                        │  fuse ──► route ──► execute (contained)
                        ▼                        (cost model)
                 responses ◄── unfuse / quarantine retry

* Cache probes use the structural fingerprint (``engine.cache``); a
  hit answers the request without executing anything.
* Misses are validated (``engine.errors``): malformed successor
  arrays, shape/dtype mismatches and NaN-hostile inputs become
  ``ok=False`` responses instead of exceptions out of the batch.
* Identical fingerprints in one batch *coalesce*: the first request
  executes, the duplicates receive copies of its result (or its
  structured error).
* Remaining unique misses shard by (size class, operator, inclusive,
  dtype, forced algorithm) — ``engine.batch`` — and each shard fuses
  into one forest.
* The cost-model router (``engine.router``) picks serial / Wyllie /
  sublist per fused batch; the forest kernels of ``core.forest``
  execute all the shard's lists in one vectorized pass.
* Shards execute under *containment*: a raising shard is retried once
  with every member quarantined to solo execution, so one poisoned
  request cannot shadow its shard-mates.  Requests that still fail
  return structured errors; everything else gets its result.
* Results are unfused, cached, and returned in request order.

Drivers: shard execution goes through a persistent backend
(``engine.workers``) chosen at construction — ``executor="sync"``
(reference loop), ``"threads"`` (one long-lived thread pool reused
across batches; shards share no arrays since fusion copies, and NumPy
releases the GIL in the bulk operations) or ``"processes"`` (fused
kernels execute in a long-lived process pool, arrays crossing through
shared memory).  ``run_batch(parallel=None)`` resolves to whatever the
backend supports; ``parallel=False`` forces the inline loop on any
backend.  Every driver honors the containment contract, and a traced
batch stays one connected span tree — worker processes ship their
kernel spans back as serialized records that are adopted under the
batch root.  ``Engine.close()`` (or using the engine as a context
manager) tears the backend's pools down exactly once.

Requests with a forced algorithm outside the routable set (e.g.
``random_mate``) cannot fuse — those run per list through the ordinary
dispatch API, so the engine accepts *every* algorithm the library has.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:
    from ..calibrate import CalibrationProfile, DriftConfig, DriftDetector
    from ..distribute import DistributedConfig

import numpy as np

from ..core.list_scan import ALGORITHMS, list_scan
from ..core.operators import Operator, SUM
from ..core.stats import ScanStats
from ..lists.generate import LinkedList
from ..trace.export import span_from_dict
from ..trace.tracer import Span, Tracer, null_span, resolve_trace
from .batch import DEFAULT_SIZE_CLASS_BASE, FusedBatch, shard_requests
from .cache import ResultCache, fingerprint
from .errors import (
    EngineRequestError,
    RequestError,
    VALIDATION_MODES,
    validate_request,
)
from .histogram import LatencyHistogram
from .queue import ScanRequest, ScanResponse, SubmissionQueue
from ..kernels.backend import resolve_backend
from ..sanitize.runtime import (
    atomic_read,
    atomic_write,
    guarded,
    hb_join,
    hb_publish,
    note_engine_close,
)
from .router import CANDIDATES, Router
from .workers import EXECUTORS, create_backend, run_fused_kernel, shippable_operator

__all__ = ["Engine", "EngineStats"]

_log = logging.getLogger(__name__)

#: A contained per-request outcome: ``(algorithm, batch_lists, result)``
#: on success, a :class:`RequestError` on failure.
_Outcome = tuple[str, int, np.ndarray] | RequestError


@dataclass
class EngineStats:
    """Per-engine counters (cumulative across batches).

    Health counters
    ---------------

    ``errors``
        responses returned with ``ok=False`` (validation failures,
        execution failures, and error fan-out to coalesced
        duplicates).
    ``retries``
        fused shards whose execution raised and was retried once in
        quarantine mode (every member solo).
    ``quarantined``
        requests whose execution failed even in isolation and were
        answered with a structured error instead of a result.
    ``coalesced``
        duplicate requests in a batch served by another identical
        request's execution (the work ran exactly once).
    ``drift_alerts``
        executed runs whose observed duration (or traced decay ratio)
        fell outside the active calibration profile's tolerance band
        (see ``repro.calibrate.drift``; zero while routing on the
        static paper table, which drift checking does not apply to).
    ``recalibrations``
        calibration profiles hot-swapped into the router after
        construction (``Engine.recalibrate`` — manual or drift-driven
        auto-refit).

    Kernel counters
    ---------------

    ``element_ops`` / ``kernel_rounds`` / ``kernel_packs`` aggregate
    the :class:`~repro.core.stats.ScanStats` of *successful* kernel
    executions only.  Every execution attempt — the fused try and each
    quarantine solo re-run — collects into a fresh ``ScanStats`` and
    merges here only if it succeeds, so a fused attempt that dies
    half-way through Phase 1 cannot double-count the work its members
    then redo solo.

    Latency histograms
    ------------------

    ``latency`` holds one :class:`LatencyHistogram` per phase:

    ``"queue_wait"``
        submission→batch-start per request (observed for every request
        that carries a ``submitted_at`` stamp, i.e. went through the
        :class:`~repro.engine.queue.SubmissionQueue`).
    ``"execute"``
        ``run_batch`` wall time per batch.
    ``"total"``
        admission→response per request; fed by the serving layer
        (:meth:`Engine.observe_response`) since only it sees the
        response actually leave.

    The SLO-adaptive batch window in ``repro.serve`` steers on these —
    a p95 target is invisible in ``seconds_executing`` alone.
    """

    requests: int = 0
    batches: int = 0
    shards: int = 0
    fused_lists: int = 0  # lists that executed inside a fused forest
    fused_nodes: int = 0
    solo_runs: int = 0  # lists executed alone (unfusable or singleton)
    distributed_runs: int = 0  # shards routed to the sharded scan
    distributed_chunks: int = 0  # chunk contractions across those runs
    cache_hits: int = 0
    cache_misses: int = 0
    errors: int = 0
    retries: int = 0
    quarantined: int = 0
    coalesced: int = 0
    drift_alerts: int = 0
    recalibrations: int = 0
    element_ops: int = 0
    kernel_rounds: int = 0
    kernel_packs: int = 0
    seconds_executing: float = 0.0
    algorithms: dict[str, int] = field(default_factory=dict)
    latency: dict[str, LatencyHistogram] = field(
        default_factory=lambda: {
            "total": LatencyHistogram(),
            "queue_wait": LatencyHistogram(),
            "execute": LatencyHistogram(),
        }
    )

    #: scalar counters in reporting order (one source for every view)
    _COUNTERS = (
        "requests",
        "batches",
        "shards",
        "fused_lists",
        "fused_nodes",
        "solo_runs",
        "distributed_runs",
        "distributed_chunks",
        "cache_hits",
        "cache_misses",
        "errors",
        "shed",
        "retries",
        "quarantined",
        "coalesced",
        "drift_alerts",
        "recalibrations",
        "element_ops",
        "kernel_rounds",
        "kernel_packs",
        "seconds_executing",
    )

    #: requests rejected before queueing (overload / rate limits); the
    #: serving layer counts them here so ``/stats`` sees shed load.
    shed: int = 0

    def merge_kernel_stats(self, kstats: "ScanStats") -> None:
        """Fold one successful attempt's kernel counters in (caller
        holds the engine lock)."""
        self.element_ops += kstats.element_ops
        self.kernel_rounds += kstats.rounds
        self.kernel_packs += kstats.packs

    def count_algorithm(self, name: str, lists: int = 1) -> None:
        self.algorithms[name] = self.algorithms.get(name, 0) + lists

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe view of every counter and histogram.

        This is the *one* stats serializer: ``repro-c90 batch --stats``
        prints it, the serving layer's ``/stats`` endpoint returns it,
        and :meth:`as_rows` renders its counters — so the three
        surfaces can never drift apart.
        """
        snap: dict[str, Any] = {
            name: round(value, 6) if isinstance(value, float) else value
            for name in self._COUNTERS
            for value in (getattr(self, name),)
        }
        snap["algorithms"] = {
            name: self.algorithms[name] for name in sorted(self.algorithms)
        }
        snap["latency"] = {
            name: hist.snapshot() for name, hist in self.latency.items()
        }
        return snap

    def as_rows(self) -> list[list[object]]:
        """Counter rows for ``bench.harness.format_table`` (derived
        from :meth:`snapshot`, not formatted ad hoc)."""
        snap = self.snapshot()
        rows: list[list[object]] = [
            [name.replace("_", " "), snap[name]] for name in self._COUNTERS
        ]
        for name, lists in snap["algorithms"].items():
            rows.append([f"algorithm[{name}]", lists])
        for name, hist in snap["latency"].items():
            if hist["count"]:
                rows.append(
                    [f"latency[{name}] p50/p95/p99 ms",
                     f"{1e3 * hist['p50']:.3f}/{1e3 * hist['p95']:.3f}"
                     f"/{1e3 * hist['p99']:.3f}"]
                )
        return rows


class Engine:
    """Batched list-ranking/scan execution engine.

    Parameters
    ----------
    router:
        Cost-model router; defaults to a calibrated
        :class:`~repro.engine.router.Router` (paper C-90 table).
    cache:
        A :class:`~repro.engine.cache.ResultCache`, or ``None`` to
        build one from ``cache_capacity``/``cache_max_bytes``
        (``cache_capacity=0`` disables caching).
    max_pending / max_pending_nodes:
        Submission-queue backpressure bounds (see ``engine.queue``).
    executor:
        Execution backend (see ``engine.workers``): ``"threads"``
        (default — one persistent thread pool reused across batches),
        ``"sync"`` (no pool; the reference driver), or ``"processes"``
        (fused kernels run in a persistent process pool, with
        shared-memory array transport).  All three return bit-identical
        results; call :meth:`close` (or use the engine as a context
        manager) to tear pooled backends down.
    max_workers:
        Worker-pool width for the pooled backends (``None`` → the
        executor's own default, ``os.cpu_count()``-based).
    kernel_backend:
        Hot-loop kernel backend for the scan kernels (``"numpy"`` /
        ``"python"`` / ``"numba"`` / ``None`` for
        ``REPRO_KERNEL_BACKEND``-then-auto selection; see
        ``docs/kernels.md``).  Worker processes select the same backend
        by name (degrading to ``"numpy"`` if their environment lacks
        it), and the default router is calibrated for it.  Results are
        bit-identical across backends for integer operators and
        element-wise equal within documented tolerance for floats.
    size_class_base:
        Geometric growth factor between size classes.
    validate:
        Probe-time validation mode: ``"fast"`` (default, vectorized
        O(n) structure/shape/dtype checks), ``"strict"`` (adds the
        pointer-doubling reachability certificate), or ``"off"``.
        Validation failures become ``ok=False`` responses, never
        exceptions out of ``run_batch``.
    seed:
        Seed for the engine's random stream (splitter choices in the
        forest kernels; results are identical for every seed).
    clock:
        Zero-argument callable behind ``seconds_executing`` and the
        ``queue_wait`` telemetry (shared with the submission queue so
        both read one epoch); defaults to :func:`time.perf_counter`.
        Injectable so tests can drive a deterministic counting clock —
        the ``injectable-clock`` lint rule forbids direct wall-clock
        calls in the engine.
    trace:
        ``None`` (default — no tracing hooks run), ``"off"`` (hooks run
        against a disabled tracer) or a :class:`repro.trace.Tracer`.  A
        traced engine records a ``run_batch`` span per batch with
        admission events (``queue_wait``, ``cache_hit``/``cache_miss``,
        ``validation_error``, ``coalesced``), per-shard spans with the
        routing decision (including the cost model's predicted clocks
        per candidate), the fused kernel's own phase spans, and
        ``quarantine_retry``/``solo`` spans.  See ``docs/tracing.md``.
    calibration:
        Optional fitted :class:`repro.calibrate.CalibrationProfile` to
        install at construction (equivalent to calling
        :meth:`recalibrate` immediately, but not counted in the
        ``recalibrations`` stat).  ``None`` routes on the router's own
        table (the paper's C-90 calibration by default).
    drift:
        Optional :class:`repro.calibrate.DriftConfig` for the drift
        detector that activates whenever a calibration profile is
        installed; ``None`` uses the default tolerances.  See
        ``docs/calibration.md``.
    distributed:
        Optional :class:`repro.distribute.DistributedConfig`.  When
        set, auto-routed shards whose fused working set exceeds the
        configured memory budget (``DistributedConfig.should_shard``)
        execute through the three-phase sharded scan
        (``repro.distribute``) instead of one fused kernel: chunks
        contract in parallel across this engine's worker pool, the
        reduced boundary list is solved by the same cost-model router,
        and chunks expand in parallel.  Results stay bit-identical for
        integer operators.  ``None`` (default) disables sharded
        routing.  See ``docs/distributed.md``.
    """

    def __init__(
        self,
        router: Router | None = None,
        cache: ResultCache | None = None,
        cache_capacity: int = 256,
        cache_max_bytes: int | None = None,
        max_pending: int | None = 1024,
        max_pending_nodes: int | None = None,
        executor: str = "threads",
        max_workers: int | None = None,
        kernel_backend: str | None = None,
        size_class_base: float = DEFAULT_SIZE_CLASS_BASE,
        validate: str = "fast",
        seed: int | None = 0,
        trace: str | Tracer | None = None,
        clock: Callable[[], float] | None = None,
        calibration: "CalibrationProfile | None" = None,
        drift: "DriftConfig | None" = None,
        distributed: "DistributedConfig | None" = None,
    ) -> None:
        if validate not in VALIDATION_MODES:
            raise ValueError(
                f"unknown validation mode {validate!r}; expected one of "
                f"{VALIDATION_MODES}"
            )
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self._kernel_backend = resolve_backend(kernel_backend)
        self.kernel_backend = self._kernel_backend.name
        self.router = (
            router
            if router is not None
            else Router(kernel_backend=self._kernel_backend)
        )
        self.cache = (
            cache
            if cache is not None
            else ResultCache(cache_capacity, cache_max_bytes)
        )
        self.clock = clock if clock is not None else time.perf_counter
        self.queue = SubmissionQueue(
            max_pending, max_pending_nodes, clock=self.clock
        )
        self.executor = executor
        self.max_workers = max_workers
        self._backend = create_backend(executor, max_workers)
        self.size_class_base = size_class_base
        self.validate = validate
        self.trace = resolve_trace(trace)
        self.distributed = distributed
        self.stats = EngineStats()
        self._seeds = np.random.SeedSequence(seed)
        self._lock = threading.Lock()
        self._drift_config = drift
        self._calibration: "CalibrationProfile | None" = None
        self._drift: "DriftDetector | None" = None
        if calibration is not None:
            self.recalibrate(calibration, _count=False)

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------

    def submit(
        self,
        lst: LinkedList,
        op: Operator | str = SUM,
        inclusive: bool = False,
        algorithm: str = "auto",
        tag: object | None = None,
        block: bool = True,
        timeout: float | None = None,
    ) -> int:
        """Enqueue one scan request; returns its request id.

        Blocks (or raises :class:`~repro.engine.queue.BackpressureError`)
        when the submission queue is full.  Structural problems with the
        list are reported per request at batch time (``ok=False``
        responses), not here — submission stays O(1).
        """
        if algorithm != "auto" and algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected 'auto' or one of "
                f"{ALGORITHMS}"
            )
        request = ScanRequest(
            lst=lst, op=op, inclusive=inclusive, algorithm=algorithm, tag=tag
        )
        return self.queue.submit(request, block=block, timeout=timeout)

    def flush(self, parallel: bool | None = None) -> list[ScanResponse]:
        """Drain the submission queue and execute everything as one batch.

        ``parallel`` defaults to whatever the configured executor
        supports (see :meth:`run_batch`).
        """
        return self.run_batch(self.queue.drain(), parallel=parallel)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> list[ScanResponse]:
        """Tear down the engine: fail pending requests, stop the pools.

        Closing the submission queue wakes every submitter blocked on
        backpressure (they raise
        :class:`~repro.engine.queue.QueueClosedError`) and hands back
        the requests still waiting for a flush; each is answered here
        with a structured ``shutdown``
        :class:`~repro.engine.errors.RequestError` response so no
        request is left hanging — the returned list carries those
        ``ok=False`` responses for the serving layer to deliver.

        Idempotent — calling it again (or exiting the context manager
        after an explicit close) is a no-op returning ``[]``.  A closed
        engine rejects further submissions and pooled dispatch;
        single-shard batches still execute inline.
        """
        pending = self.queue.close()
        error = RequestError(
            code="shutdown",
            message="engine closed before the request executed",
            phase="shutdown",
        )
        responses = [self._failure(req, error) for req in pending]
        if responses:
            with guarded(self._lock, "engine.stats"):
                self.stats.errors += len(responses)
        self._backend.close()
        # leak report: with a sanitizer active, teardown is the moment
        # every segment/lease must have been returned
        for leak in note_engine_close():
            _log.warning("sanitizer leak at Engine.close(): %s", leak.describe())
        return responses

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # calibration
    # ------------------------------------------------------------------

    @property
    def calibration(self) -> "CalibrationProfile | None":
        """The active fitted profile (``None`` → static router table)."""
        return self._calibration

    def recalibrate(
        self, profile: "CalibrationProfile", _count: bool = True
    ) -> None:
        """Hot-swap a fitted calibration profile into the router.

        Validates the profile, installs its cost table via the router's
        atomic :meth:`~repro.engine.router.Router.set_costs` (new table
        + fresh decision cache in one reference swap — in-flight
        ``choose`` calls finish against the old pair), arms the drift
        detector, and bumps the ``recalibrations`` counter.  Safe to
        call from any thread, including mid-batch: requests already
        routed execute under their old decision; later requests route
        under the new table.
        """
        from ..calibrate import DriftDetector

        profile.validate()
        detector = DriftDetector(self._drift_config)
        # order matters for readers: the detector judging against the
        # new table must be visible before predictions switch to it
        self._calibration = profile
        self._drift = detector
        atomic_write("engine.calibration")
        self.router.set_costs(profile.costs)
        if _count:
            with guarded(self._lock, "engine.stats"):
                self.stats.recalibrations += 1

    def calibration_snapshot(self) -> dict[str, Any]:
        """JSON-safe calibration/drift health view (for ``/stats``)."""
        atomic_read("engine.calibration")
        profile = self._calibration
        detector = self._drift
        snap: dict[str, Any] = {"active": profile is not None}
        if profile is not None:
            snap["source"] = profile.source
            snap["created_at"] = profile.created_at
            snap["schema_version"] = profile.schema_version
            snap["fitted_kinds"] = list(profile.fitted_kinds)
        if detector is not None:
            snap["drift"] = detector.snapshot()
        return snap

    def observe_deviation(self, observed: float, expected: float) -> None:
        """Feed one traced decay-ratio observation to the drift detector.

        ``observed`` is the measured end-of-Phase-1 ``live/m`` fraction
        (``trace.compare``'s ``decay_ratio``); ``expected`` the model's
        ``e^(−m·s₁/n)``.  No-op while no fitted profile is active.
        """
        atomic_read("engine.calibration")
        detector = self._drift
        if detector is None:
            return
        verdict = detector.observe_decay(observed, expected)
        self._act_on_verdict(verdict, detector)

    def _observe_execution(
        self,
        algorithm: str,
        n: int,
        n_lists: int,
        seconds: float,
        epoch: "DriftDetector | None" = None,
    ) -> None:
        """Judge one executed run against the active calibration.

        Called after shard/solo execution with the engine lock *not*
        held.  Inactive (zero overhead beyond the clock reads) until a
        fitted profile is installed — comparing host wall time against
        the paper's C-90 clock predictions would only measure how much
        slower this machine is than a 1994 supercomputer.

        ``epoch`` is the drift detector that was active when the run
        *started* (callers capture ``self._drift`` before timing).  A
        concurrent :meth:`recalibrate` installs a fresh detector, so
        ``epoch is not self._drift`` means this run was measured under
        the previous cost table — its sample is discarded rather than
        judged against predictions it never ran under, which would
        seed the new window with stale timings and could trigger a
        spurious alert/auto-refit right after a profile install.
        """
        atomic_read("engine.calibration")
        detector = self._drift
        profile = self._calibration
        if detector is None or profile is None:
            return
        if detector is not epoch:
            return
        predicted_ns: float | None = None
        router = self.router
        if router.calibrated and algorithm in router.candidates:
            predicted_ns = (
                router.predicted_clocks(n, algorithm, n_lists)
                * router.costs.clock_ns  # type: ignore[union-attr]
            )
        verdict = detector.observe_run(
            algorithm, n, seconds, predicted_ns, n_lists=n_lists
        )
        self._act_on_verdict(verdict, detector)

    def _act_on_verdict(
        self, verdict: Any, detector: "DriftDetector | None" = None
    ) -> None:
        if verdict.alert:
            with guarded(self._lock, "engine.stats"):
                self.stats.drift_alerts += 1
        if not verdict.refit:
            return
        from ..calibrate import FitError, fit_profile

        atomic_read("engine.calibration")
        if detector is None:
            detector = self._drift
        profile = self._calibration
        if detector is None or profile is None:
            return
        if detector is not self._drift:
            # a recalibration raced this verdict; the window that
            # demanded the refit belongs to a retired profile
            return
        samples = detector.samples()
        try:
            fresh = fit_profile(
                samples,
                base=profile.costs,
                source="auto-refit",
                created_at=self.clock(),
                tune=False,
            )
        except (FitError, ValueError):
            # not enough usable telemetry in the window — keep serving
            # on the current profile and let the next alert retry
            return
        self.recalibrate(fresh)

    # ------------------------------------------------------------------
    # drivers
    # ------------------------------------------------------------------

    def run_batch(
        self,
        requests: Sequence[ScanRequest],
        parallel: bool | None = None,
    ) -> list[ScanResponse]:
        """Execute a batch of requests; responses come back in request
        order.

        ``parallel`` controls the shard driver: ``True`` runs
        independent shards concurrently on the configured backend's
        persistent pool, ``False`` runs them in an inline loop, and
        ``None`` (default) resolves to whatever the backend supports —
        concurrent for ``threads``/``processes``, inline for ``sync``.
        Results and stats are identical either way.

        Never raises for a single bad request: validation and execution
        failures come back as ``ok=False`` responses with a structured
        :class:`~repro.engine.errors.RequestError` while every healthy
        request still gets its result.
        """
        if parallel is None:
            parallel = self._backend.concurrent
        parallel = bool(parallel)
        requests = list(requests)
        responses: dict[int, ScanResponse] = {}
        t0 = self.clock()
        n_errors = n_coalesced = n_hits = n_misses = 0
        queue_waits: list[float] = []

        tracer = self.trace
        span = tracer.span if tracer is not None else null_span
        with span(
            "run_batch", requests=len(requests), parallel=parallel
        ) as batch_span:
            misses: list[ScanRequest] = []
            keys: dict[int, bytes] = {}
            primaries: dict[bytes, int] = {}  # fingerprint -> primary id
            followers: dict[int, list[ScanRequest]] = {}  # primary -> dups
            with span("admit"):
                for req in requests:
                    # order this thread after the submitter (queue
                    # handoff edge for the race detector)
                    hb_join(("request", req.request_id))
                    if req.submitted_at is not None:
                        wait = max(0.0, t0 - req.submitted_at)
                        queue_waits.append(wait)
                        if tracer is not None:
                            tracer.event(
                                "queue_wait",
                                request_id=req.request_id,
                                seconds=wait,
                            )
                    error: RequestError | None = None
                    key: bytes | None = None
                    try:
                        key = fingerprint(req.lst, req.op, req.inclusive)
                    except Exception as exc:
                        error = RequestError.from_exception(
                            exc, code="fingerprint", phase="validate"
                        )
                    if error is None:
                        hit = self.cache.get(key)
                        if hit is not None:
                            # A hit implies a structurally identical
                            # problem was validated and executed before;
                            # skip re-validation.
                            n_hits += 1
                            if tracer is not None:
                                tracer.event(
                                    "cache_hit", request_id=req.request_id
                                )
                            responses[req.request_id] = ScanResponse(
                                request_id=req.request_id,
                                result=hit,
                                algorithm="cached",
                                cached=True,
                                n=req.n,
                                tag=req.tag,
                            )
                            continue
                        # counted at the probe site: only requests that
                        # actually reached the cache can miss it —
                        # fingerprint failures above never probe.
                        n_misses += 1
                        if tracer is not None:
                            tracer.event(
                                "cache_miss", request_id=req.request_id
                            )
                        error = validate_request(req, self.validate)
                    if error is not None:
                        n_errors += 1
                        if tracer is not None:
                            tracer.event(
                                "validation_error",
                                request_id=req.request_id,
                                code=error.code,
                            )
                        responses[req.request_id] = self._failure(req, error)
                        continue
                    primary = primaries.get(key)
                    if primary is None:
                        primaries[key] = req.request_id
                        keys[req.request_id] = key
                        misses.append(req)
                    else:
                        followers.setdefault(primary, []).append(req)
                        n_coalesced += 1
                        if tracer is not None:
                            tracer.event(
                                "coalesced",
                                request_id=req.request_id,
                                primary=primary,
                            )

            shards = list(shard_requests(misses, self.size_class_base).values())

            def _run_shard(shard: list[ScanRequest]) -> list[_Outcome]:
                outcomes = self._execute_shard_contained(shard, parent=batch_span)
                # future-resolution edge: the driver thread's work
                # happens-before the respond loop that consumes it
                hb_publish(("shard", id(shard)))
                return outcomes

            if parallel:
                # the backend's persistent pool (lazily created on the
                # first multi-shard batch, reused for every one after)
                shard_results = self._backend.map_shards(_run_shard, shards)
            else:
                shard_results = [_run_shard(shard) for shard in shards]

            with span("respond"):
                for shard, outcomes in zip(shards, shard_results):
                    hb_join(("shard", id(shard)))
                    for req, outcome in zip(shard, outcomes):
                        if isinstance(outcome, RequestError):
                            n_errors += 1
                            resp = self._failure(req, outcome)
                        else:
                            algorithm, width, result = outcome
                            self.cache.put(keys[req.request_id], result)
                            resp = ScanResponse(
                                request_id=req.request_id,
                                result=result,
                                algorithm=algorithm,
                                cached=False,
                                batch_lists=width,
                                n=req.n,
                                tag=req.tag,
                            )
                        responses[req.request_id] = resp
                        for dup in followers.get(req.request_id, ()):
                            if resp.ok:
                                dup_resp = ScanResponse(
                                    request_id=dup.request_id,
                                    result=resp.result.copy(),
                                    algorithm=resp.algorithm,
                                    coalesced=True,
                                    batch_lists=resp.batch_lists,
                                    n=dup.n,
                                    tag=dup.tag,
                                )
                            else:
                                n_errors += 1
                                dup_resp = ScanResponse(
                                    request_id=dup.request_id,
                                    coalesced=True,
                                    n=dup.n,
                                    tag=dup.tag,
                                    ok=False,
                                    error=resp.error,
                                )
                            responses[dup.request_id] = dup_resp

        elapsed = self.clock() - t0
        with guarded(self._lock, "engine.stats"):
            self.stats.requests += len(requests)
            self.stats.batches += 1
            self.stats.shards += len(shards)
            self.stats.cache_hits += n_hits
            self.stats.cache_misses += n_misses
            self.stats.errors += n_errors
            self.stats.coalesced += n_coalesced
            self.stats.seconds_executing += elapsed
            for wait in queue_waits:
                self.stats.latency["queue_wait"].observe(wait)
            if requests:
                self.stats.latency["execute"].observe(elapsed)
        return [responses[req.request_id] for req in requests]

    # ------------------------------------------------------------------
    # serving-layer telemetry
    # ------------------------------------------------------------------

    def observe_response(self, seconds: float) -> None:
        """Record one admission→response latency (``total`` histogram).

        Only the serving layer sees the response actually leave, so it
        calls this when the reply is written; the engine itself only
        observes the ``queue_wait`` and ``execute`` sub-phases.
        """
        with guarded(self._lock, "engine.stats"):
            self.stats.latency["total"].observe(seconds)

    def observe_shed(self, count: int = 1) -> None:
        """Count requests rejected before queueing (overload/rate limits)."""
        with guarded(self._lock, "engine.stats"):
            self.stats.shed += count

    def stats_snapshot(self) -> dict[str, Any]:
        """Thread-safe counter snapshot.

        The serving layer's flush worker mutates the counters while the
        event loop renders ``/stats``; reading through the engine lock
        is the supported cross-thread view (reading ``engine.stats``
        directly from another thread is a race, and the sanitizer's
        race detector reports it as one).
        """
        with guarded(self._lock, "engine.stats", "read"):
            return self.stats.snapshot()

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    def scan(
        self,
        lst: LinkedList,
        op: Operator | str = SUM,
        inclusive: bool = False,
        algorithm: str = "auto",
    ) -> np.ndarray:
        """Single-request convenience: cache + routing, no queueing.

        Raises :class:`~repro.engine.errors.EngineRequestError` when
        the request fails (there is no response to carry the error).
        """
        [resp] = self.run_batch(
            [ScanRequest(lst=lst, op=op, inclusive=inclusive, algorithm=algorithm)]
        )
        if not resp.ok:
            raise EngineRequestError(resp.error, resp.request_id)
        return resp.result

    def rank(self, lst: LinkedList, algorithm: str = "auto") -> np.ndarray:
        """Rank through the engine (all-ones values under ``+``)."""
        ones = LinkedList(lst.next, lst.head, np.ones(lst.n, dtype=np.int64))
        return self.scan(ones, SUM, inclusive=False, algorithm=algorithm)

    def map_scan(
        self,
        lists: Sequence[LinkedList],
        op: Operator | str = SUM,
        inclusive: bool = False,
        algorithm: str = "auto",
        parallel: bool | None = None,
    ) -> list[np.ndarray]:
        """Scan many lists; returns results in input order.

        Raises :class:`~repro.engine.errors.EngineRequestError` for the
        first failed request; use :meth:`run_batch` to receive partial
        results with per-request errors instead.
        """
        reqs = [
            ScanRequest(lst=lst, op=op, inclusive=inclusive, algorithm=algorithm)
            for lst in lists
        ]
        responses = self.run_batch(reqs, parallel=parallel)
        for resp in responses:
            if not resp.ok:
                raise EngineRequestError(resp.error, resp.request_id)
        return [resp.result for resp in responses]

    # ------------------------------------------------------------------
    # shard execution
    # ------------------------------------------------------------------

    def _failure(self, req: ScanRequest, error: RequestError) -> ScanResponse:
        return ScanResponse(
            request_id=req.request_id,
            n=req.n,
            tag=req.tag,
            ok=False,
            error=error,
        )

    def _child_rng(self) -> np.random.Generator:
        with guarded(self._lock, "engine.seeds"):
            (child,) = self._seeds.spawn(1)
        return np.random.default_rng(child)

    def _solo_scan(self, req: ScanRequest) -> tuple[str, np.ndarray]:
        """Run one request alone through the dispatch API.

        Each solo run collects its *own* fresh kernel
        :class:`ScanStats`, merged into the engine counters only on
        success — a quarantine re-run never inherits (or re-adds) the
        work of the fused attempt that failed before it.
        """
        tracer = self.trace
        span = tracer.span if tracer is not None else null_span
        algorithm = (
            req.algorithm
            if req.algorithm != "auto"
            else self.router.choose(req.n, 1)
        )
        kstats = ScanStats()
        epoch = self._drift  # calibration epoch this run is measured under
        t0 = self.clock()
        with span(
            "solo", request_id=req.request_id, n=req.n, algorithm=algorithm
        ):
            result = list_scan(
                req.lst.copy(),
                req.op,
                inclusive=req.inclusive,
                algorithm=algorithm,
                rng=self._child_rng(),
                stats=kstats,
                trace=tracer,
                kernel_backend=self.kernel_backend,
            )
        elapsed = self.clock() - t0
        with guarded(self._lock, "engine.stats"):
            self.stats.solo_runs += 1
            self.stats.count_algorithm(algorithm)
            self.stats.merge_kernel_stats(kstats)
        self._observe_execution(algorithm, req.n, 1, elapsed, epoch=epoch)
        return algorithm, result

    def _execute_shard_contained(
        self, shard: list[ScanRequest], parent: Span | None = None
    ) -> list[_Outcome]:
        """Run one shard without ever raising.

        Returns one outcome per request, aligned with the shard: a
        ``(algorithm, batch_lists, result)`` tuple on success, a
        :class:`RequestError` on failure.  A fused execution that
        raises is retried once in quarantine mode — every member runs
        solo — so a single poisoned request cannot take down its
        shard-mates.

        ``parent`` pins the shard's trace span under the batch span —
        required under the thread-pool driver, where this method runs
        on a worker thread whose span stack is empty.
        """
        tracer = self.trace
        span = tracer.span if tracer is not None else null_span
        with span(
            "shard",
            parent=parent,
            lists=len(shard),
            nodes=sum(req.n for req in shard),
        ):
            try:
                algorithm, results = self._execute_shard(shard)
                return [(algorithm, len(shard), result) for result in results]
            except Exception as exc:
                if len(shard) == 1:
                    # the fused attempt *was* the solo run; quarantine now
                    with guarded(self._lock, "engine.stats"):
                        self.stats.quarantined += 1
                    return [
                        RequestError.from_exception(
                            exc, code="execution", phase="execute"
                        )
                    ]
                with guarded(self._lock, "engine.stats"):
                    self.stats.retries += 1
                outcomes: list[_Outcome] = []
                with span("quarantine_retry", lists=len(shard)):
                    for req in shard:
                        try:
                            algorithm, result = self._solo_scan(req)
                            outcomes.append((algorithm, 1, result))
                        except Exception as solo_exc:
                            with guarded(self._lock, "engine.stats"):
                                self.stats.quarantined += 1
                            outcomes.append(
                                RequestError.from_exception(
                                    solo_exc, code="execution", phase="execute"
                                )
                            )
                return outcomes

    def _execute_shard(
        self, shard: list[ScanRequest]
    ) -> tuple[str, list[np.ndarray]]:
        """Run one fusable shard; returns ``(algorithm, per-request results)``.

        The fused execution collects a fresh kernel
        :class:`ScanStats` for *this attempt only*; the counters merge
        into the engine stats after the kernel returns.  If the kernel
        raises, the attempt's partial counters are discarded with it —
        the quarantine solo re-runs start from zero (see
        :meth:`_solo_scan`), so failed attempts never double-count.
        """
        forced = shard[0].algorithm  # uniform within a shard (shard key)
        tracer = self.trace
        span = tracer.span if tracer is not None else null_span

        # unroutable forced algorithms have no forest kernel: run per list
        if forced != "auto" and forced not in CANDIDATES:
            results = [self._solo_scan(req)[1] for req in shard]
            return forced, results

        # capacity routing: shards whose fused working set would blow
        # the distributed memory budget run through the sharded
        # three-phase scan instead (checked before the singleton
        # shortcut — one oversized request is the common case).
        if forced == "auto" and self.distributed is not None:
            total_nodes = sum(req.n for req in shard)
            value_dtype = np.result_type(
                *(req.lst.values.dtype for req in shard)
            )
            if self.distributed.should_shard(total_nodes, value_dtype):
                return self._execute_distributed(shard)

        if len(shard) == 1:
            algorithm, result = self._solo_scan(shard[0])
            return algorithm, [result]

        rng = self._child_rng()
        batch = FusedBatch.fuse(shard)
        algorithm = (
            forced
            if forced != "auto"
            else self.router.choose(batch.n_nodes, batch.n_lists)
        )
        if tracer is not None:
            predicted: dict[str, float] = {}
            if self.router.calibrated:
                for candidate in self.router.candidates:
                    predicted[candidate] = float(
                        self.router.predicted_clocks(
                            batch.n_nodes, candidate, batch.n_lists
                        )
                    )
            tracer.event(
                "route",
                algorithm=algorithm,
                forced=forced != "auto",
                n_nodes=batch.n_nodes,
                n_lists=batch.n_lists,
                predicted_clocks=predicted,
            )
        kstats = ScanStats()
        backend = self._backend
        # a kernel leaves this process only when the worker can
        # rehydrate the operator faithfully — by builtin name, or as a
        # pair-formulated opcode tuple (kernels.pairs); other custom
        # operators (and the sync/threads backends) execute inline.
        ship = (
            shippable_operator(batch.op) if backend.offloads_kernels else None
        )
        offload = ship is not None
        traced = tracer is not None and tracer.enabled
        epoch = self._drift  # calibration epoch this run is measured under
        t0 = self.clock()
        with span(
            "execute",
            algorithm=algorithm,
            lists=batch.n_lists,
            nodes=batch.n_nodes,
        ) as exec_span:
            if offload:
                # randomness crosses as a seed drawn from this shard's
                # generator; trace spans come back as serialized
                # records and are adopted under the execute span, so
                # the batch tree stays connected across processes.
                op_name, pair, identity = ship
                seed = int(rng.integers(0, 2**63))
                out, kstats, worker_spans = backend.run_fused(
                    batch.nxt,
                    batch.values,
                    batch.heads,
                    op_name,
                    batch.inclusive,
                    algorithm,
                    seed,
                    traced,
                    kernel_backend=self.kernel_backend,
                    pair=pair,
                    identity=identity,
                )
                if traced and worker_spans:
                    tracer.adopt(
                        [span_from_dict(rec) for rec in worker_spans],
                        parent=exec_span,
                    )
            else:
                out = np.empty_like(batch.values)
                run_fused_kernel(
                    batch.nxt,
                    batch.values,
                    batch.heads,
                    batch.op,
                    batch.inclusive,
                    algorithm,
                    rng,
                    kstats,
                    out,
                    tracer,
                    kernel_backend=self._kernel_backend,
                )
        elapsed = self.clock() - t0
        results = batch.unfuse(out)
        with guarded(self._lock, "engine.stats"):
            self.stats.fused_lists += batch.n_lists
            self.stats.fused_nodes += batch.n_nodes
            self.stats.count_algorithm(algorithm, batch.n_lists)
            self.stats.merge_kernel_stats(kstats)
        self._observe_execution(
            algorithm, batch.n_nodes, batch.n_lists, elapsed, epoch=epoch
        )
        return algorithm, results

    def _execute_distributed(
        self, shard: list[ScanRequest]
    ) -> tuple[str, list[np.ndarray]]:
        """Run one oversized shard through the three-phase sharded scan.

        The fused forest is partitioned into chunks that contract in
        parallel on this engine's backend; the reduced boundary list is
        solved by the same router-selected kernels; expansion restores
        per-node results.  The drift detector is not fed — the cost
        model has no ``distributed`` candidate to predict against.
        Failures propagate to :meth:`_execute_shard_contained`, whose
        quarantine retry re-runs every member solo through the ordinary
        kernels.
        """
        from ..distribute import sharded_forest_scan

        tracer = self.trace
        span = tracer.span if tracer is not None else null_span
        rng = self._child_rng()
        batch = FusedBatch.fuse(shard)
        kstats = ScanStats()
        report: dict[str, Any] = {}
        with span(
            "execute",
            algorithm="distributed",
            lists=batch.n_lists,
            nodes=batch.n_nodes,
        ):
            out = sharded_forest_scan(
                batch.nxt,
                batch.values,
                batch.heads,
                batch.op,
                inclusive=batch.inclusive,
                config=self.distributed,
                backend=self._backend,
                router=self.router,
                rng=rng,
                stats=kstats,
                trace=tracer,
                kernel_backend=self._kernel_backend,
                report=report,
            )
        results = batch.unfuse(out)
        with guarded(self._lock, "engine.stats"):
            self.stats.fused_lists += batch.n_lists
            self.stats.fused_nodes += batch.n_nodes
            self.stats.distributed_runs += 1
            self.stats.distributed_chunks += int(report.get("num_chunks", 0))
            self.stats.count_algorithm("distributed", batch.n_lists)
            self.stats.merge_kernel_stats(kstats)
        return "distributed", results
