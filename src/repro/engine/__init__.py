"""Batched list-ranking execution engine.

The paper's central lesson is that list ranking pays off only when many
independent traversals are kept at full vector width: the sublist
algorithm wins precisely because it batches *m* sublist walks into one
lock-step loop.  This subsystem applies the same discipline one level
up — across *requests*.  Many independent ``rank``/``scan`` calls are
coalesced into fused multi-list executions (a forest scan per size
class), routed to an algorithm by the Section 4 cost model instead of a
fixed crossover, and memoized in a structural result cache.

Modules
-------

``queue``    request/response types and the bounded submission queue
             (backpressure by request count and queued nodes)
``errors``   the per-request error channel: structured failures,
             probe-time validation, ``EngineRequestError``
``batch``    size-class sharding and batch fusion into one forest
``router``   cost-model algorithm routing (replaces the fixed
             ``_AUTO_SERIAL_BELOW`` crossover)
``cache``    LRU result cache keyed by a structural fingerprint
``workers``  persistent execution backends: ``sync`` / ``threads`` /
             ``processes`` (shared-memory array transport)
``engine``   the :class:`Engine` facade: backend-driven shard
             execution, per-batch stats

The public surface re-exported here is loaded lazily (PEP 562) so that
``core.list_scan`` can import ``engine.router`` for ``auto`` routing
without creating an import cycle through :class:`Engine`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

__all__ = [
    "Engine",
    "EngineStats",
    "ScanRequest",
    "ScanResponse",
    "SubmissionQueue",
    "BackpressureError",
    "QueueClosedError",
    "LatencyHistogram",
    "RequestError",
    "EngineRequestError",
    "validate_request",
    "Router",
    "route_algorithm",
    "ResultCache",
    "fingerprint",
    "FusedBatch",
    "shard_requests",
    "size_class",
    "EXECUTORS",
    "ExecutionBackend",
    "SyncBackend",
    "ThreadBackend",
    "ProcessBackend",
    "create_backend",
    "run_fused_kernel",
]

_EXPORTS = {
    "Engine": ("repro.engine.engine", "Engine"),
    "EngineStats": ("repro.engine.engine", "EngineStats"),
    "ScanRequest": ("repro.engine.queue", "ScanRequest"),
    "ScanResponse": ("repro.engine.queue", "ScanResponse"),
    "SubmissionQueue": ("repro.engine.queue", "SubmissionQueue"),
    "BackpressureError": ("repro.engine.queue", "BackpressureError"),
    "QueueClosedError": ("repro.engine.queue", "QueueClosedError"),
    "LatencyHistogram": ("repro.engine.histogram", "LatencyHistogram"),
    "RequestError": ("repro.engine.errors", "RequestError"),
    "EngineRequestError": ("repro.engine.errors", "EngineRequestError"),
    "validate_request": ("repro.engine.errors", "validate_request"),
    "Router": ("repro.engine.router", "Router"),
    "route_algorithm": ("repro.engine.router", "route_algorithm"),
    "ResultCache": ("repro.engine.cache", "ResultCache"),
    "fingerprint": ("repro.engine.cache", "fingerprint"),
    "FusedBatch": ("repro.engine.batch", "FusedBatch"),
    "shard_requests": ("repro.engine.batch", "shard_requests"),
    "size_class": ("repro.engine.batch", "size_class"),
    "EXECUTORS": ("repro.engine.workers", "EXECUTORS"),
    "ExecutionBackend": ("repro.engine.workers", "ExecutionBackend"),
    "SyncBackend": ("repro.engine.workers", "SyncBackend"),
    "ThreadBackend": ("repro.engine.workers", "ThreadBackend"),
    "ProcessBackend": ("repro.engine.workers", "ProcessBackend"),
    "create_backend": ("repro.engine.workers", "create_backend"),
    "run_fused_kernel": ("repro.engine.workers", "run_fused_kernel"),
}

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .batch import FusedBatch, shard_requests, size_class
    from .cache import ResultCache, fingerprint
    from .engine import Engine, EngineStats
    from .errors import EngineRequestError, RequestError, validate_request
    from .histogram import LatencyHistogram
    from .queue import (
        BackpressureError,
        QueueClosedError,
        ScanRequest,
        ScanResponse,
        SubmissionQueue,
    )
    from .router import Router, route_algorithm
    from .workers import (
        EXECUTORS,
        ExecutionBackend,
        ProcessBackend,
        SyncBackend,
        ThreadBackend,
        create_backend,
        run_fused_kernel,
    )


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
