"""Persistent execution backends: ``sync``, ``threads``, ``processes``.

The paper scales the sublist algorithm across 1–8 C-90 CPUs by
dividing the virtual processors among physical ones (Section 5); the
serving engine mirrors that by dividing *shards* among workers.  PR 1
did this with a throwaway ``ThreadPoolExecutor`` built inside every
``run_batch`` call — pool construction churn on the hot path, and no
way past the GIL for kernels that stay in Python.  This module gives
the engine a real backend, chosen by ``Engine(executor=...)``:

``sync``
    No pool.  Shards execute one after another on the calling thread —
    the reference driver everything else must match bit for bit.
``threads``
    One long-lived, lazily-created ``ThreadPoolExecutor`` reused across
    batches.  Shards run concurrently on it; NumPy releases the GIL in
    the bulk operations, so large fused kernels overlap.
``processes``
    A long-lived ``ProcessPoolExecutor`` plus a same-width driver
    thread pool.  The driver threads run the engine's containment
    wrappers (retry/quarantine bookkeeping stays in the parent, under
    the parent's locks); the fused *kernels* execute in worker
    processes.  The concatenated successor/value arrays cross the
    process boundary through ``multiprocessing.shared_memory`` — the
    parent copies each fused array into a segment, the worker maps it
    by name, and the result comes back through a third segment — so no
    O(n) payload is ever pickled.  Tiny shards (below
    :data:`SHM_MIN_BYTES`) skip the segment setup and ship inline.
    Workers start via ``forkserver``/``spawn``, never ``fork`` — the
    pool is driven from threads, and fork-under-threads deadlocks
    (see :func:`_pool_mp_context`).

Fault containment is unchanged: a worker that raises surfaces the
exception through its future, the engine's quarantine retry runs the
shard's members solo in the parent, and a crashed worker (a
``BrokenProcessPool``) additionally drops the pool so the next batch
gets a fresh one.  Tracing is unchanged too: workers record kernel
spans with their own tracer and return them as serialized records; the
engine adopts them under the batch root (``Tracer.adopt``), so a
traced batch is one connected tree no matter where it ran.

All backends are lazy (no pool exists until the first dispatch that
needs one) and idempotently closable (``Engine.close()`` / the engine
context manager tear workers down exactly once).
"""

from __future__ import annotations

import threading
from contextlib import suppress
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from ..core.forest import forest_list_scan, serial_forest_scan, wyllie_forest_scan
from ..core.operators import BUILTIN_OPERATORS, Operator, get_operator
from ..core.stats import ScanStats
from ..kernels.backend import KernelBackend, resolve_backend
from ..kernels.pairs import PairSpec, operator_from_pair, pair_for
from ..sanitize import runtime as sanitize
from ..trace.tracer import Tracer

__all__ = [
    "EXECUTORS",
    "SHM_MIN_BYTES",
    "ExecutionBackend",
    "SyncBackend",
    "ThreadBackend",
    "ProcessBackend",
    "create_backend",
    "run_fused_kernel",
    "offloadable_operator",
    "shippable_operator",
]

#: Accepted values for ``Engine(executor=...)``.
EXECUTORS = ("sync", "threads", "processes")

#: Fused arrays at least this large travel to worker processes through
#: ``multiprocessing.shared_memory``; smaller ones ship inline (pickled
#: with the task), where segment setup would cost more than the copy.
SHM_MIN_BYTES = 1 << 15


def run_fused_kernel(
    nxt: np.ndarray,
    values: np.ndarray,
    heads: np.ndarray,
    op: Operator,
    inclusive: bool,
    algorithm: str,
    rng: np.random.Generator,
    kstats: ScanStats,
    out: np.ndarray,
    tracer: Tracer | None = None,
    kernel_backend: str | KernelBackend | None = None,
) -> np.ndarray:
    """Execute one fused forest problem with the routed algorithm.

    This is the single kernel dispatch shared by every driver: the
    engine calls it inline (``sync``/``threads``, and any shard the
    process driver cannot ship), and :func:`_run_fused_task` calls it
    inside a worker process.  ``out`` is filled in place; the return
    value is always ``out``.  ``kernel_backend`` selects the hot-loop
    backend for the sublist kernel (``docs/kernels.md``); serial and
    Wyllie have no pluggable loops.
    """
    if algorithm == "serial":
        serial_forest_scan(nxt, values, heads, op, None, out)
        kstats.add_work(nxt.shape[0], phase="forest_serial")
        if inclusive:
            out[...] = op.combine(out, values)
    elif algorithm == "wyllie":
        wyllie_forest_scan(nxt, values, heads, op, None, out, stats=kstats)
        if inclusive:
            out[...] = op.combine(out, values)
    else:  # "sublist" and any future routable default
        res = forest_list_scan(
            nxt,
            values,
            heads,
            op,
            inclusive=inclusive,
            rng=rng,
            stats=kstats,
            out=out,
            trace=tracer,
            kernel_backend=kernel_backend,
        )
        if res is not out:
            # inclusive scans come back as a fresh array (the kernel
            # combines out-of-place); fold it into the caller's buffer
            # so shared-memory output slots see the final result
            out[...] = res
    return out


# ----------------------------------------------------------------------
# shared-memory transport
# ----------------------------------------------------------------------


@dataclass
class _ArrayRef:
    """One array crossing the process boundary.

    ``shm_name`` set → the bytes live in a named shared-memory segment
    (created and later unlinked by the parent; the worker only maps
    and closes it).  ``shm_name`` ``None`` → ``inline`` carries the
    array by value (or, for the output slot, nothing: the worker
    returns the result in its payload).
    """

    shape: tuple[int, ...]
    dtype: str
    shm_name: str | None = None
    inline: np.ndarray | None = None

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _export_array(arr: np.ndarray, leases: list[Any], min_bytes: int) -> _ArrayRef:
    """Ship ``arr`` to a worker: shared memory above ``min_bytes``,
    inline below.  Created segments are appended to ``leases`` — the
    parent owns them and must close+unlink after the task completes
    (crash or not)."""
    from multiprocessing import shared_memory

    arr = np.ascontiguousarray(arr)
    if arr.nbytes < min_bytes:
        return _ArrayRef(shape=arr.shape, dtype=arr.dtype.str, inline=arr)
    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    leases.append(shm)
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    del view
    return _ArrayRef(shape=arr.shape, dtype=arr.dtype.str, shm_name=shm.name)


def _alloc_out(
    shape: tuple[int, ...], dtype: np.dtype, leases: list[Any], min_bytes: int
) -> _ArrayRef:
    """Allocate the result slot: a shared segment the worker writes
    into, or (small results) nothing — the worker returns the array."""
    from multiprocessing import shared_memory

    ref = _ArrayRef(shape=tuple(shape), dtype=np.dtype(dtype).str)
    if ref.nbytes >= min_bytes:
        shm = shared_memory.SharedMemory(create=True, size=max(1, ref.nbytes))
        leases.append(shm)
        ref.shm_name = shm.name
    return ref


def _attach_untracked(name: str) -> Any:
    """Attach to a parent-owned segment without tracker side effects.

    ``SharedMemory(name=...)`` registers the segment with the resource
    tracker (CPython gh-82300) even though an attacher does not own it
    — and pool workers *share* the parent's tracker process (its fd is
    inherited through spawn/forkserver), so that registration aliases
    the parent's own.  The previous scheme deregistered at task
    teardown, which was doubly broken: a worker SIGKILLed between
    attach and deregister left the alias dangling (the tracker's sweep
    could then unlink a name the parent had already freed and the OS
    reused — another task's live segment), while on the healthy path
    the worker's deregistration *erased the parent's registration*, so
    the parent's later ``unlink`` raced an empty cache (the tracker
    ``KeyError`` noise) and a parent crash after that point leaked the
    segment with no tracker backstop.  Suppressing registration at
    attach time removes the whole window: only the creating parent
    ever holds a registration, on every path.  (Python 3.13+ exposes
    this as ``SharedMemory(track=False)``; this supports 3.10+.)
    """
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register

    def _register_except_shm(rname: str, rtype: str) -> None:
        if rtype != "shared_memory":  # pragma: no cover - defensive
            original_register(rname, rtype)

    resource_tracker.register = _register_except_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _attach_array(ref: _ArrayRef, holds: list[Any]) -> np.ndarray:
    """Worker side of :class:`_ArrayRef`: map the segment (tracking the
    mapping in ``holds`` for cleanup) or take the inline array."""
    if ref.shm_name is None:
        if ref.inline is None:
            return np.empty(ref.shape, dtype=np.dtype(ref.dtype))
        return ref.inline
    shm = _attach_untracked(ref.shm_name)
    holds.append(shm)
    return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)


def _release(segments: list[Any], unlink: bool) -> None:
    """Tear down segment handles on every path, crash or not.

    Parent side (``unlink=True``): close the mapping and free the
    segment; ``FileNotFoundError`` is tolerated so a double release
    (e.g. containment retry after a worker crash) stays idempotent.
    Worker side (``unlink=False``): close only — attaching never
    registered with the tracker (see :func:`_attach_untracked`), so
    there is no teardown-ordering window on the worker at all.
    """
    for shm in segments:
        # exported views may still be alive (close) / already gone (unlink)
        with suppress(BufferError):
            shm.close()
        if unlink:
            with suppress(FileNotFoundError):
                shm.unlink()


def _pool_mp_context() -> Any:
    """Start method for the worker pool — anything but ``fork``.

    Pool workers are created lazily from the engine's *driver threads*,
    and ``fork`` from a multi-threaded process can copy another
    thread's held lock (allocator, queue feeder) into the child, which
    then deadlocks before it ever runs a task — observed as a hard
    engine hang under ``--executor processes --workers 4``.
    ``forkserver`` forks from a clean single-threaded server process
    instead (preloaded with this module so per-worker startup stays
    cheap); ``spawn`` is the portable fallback.
    """
    import multiprocessing as mp

    if "forkserver" in mp.get_all_start_methods():
        ctx = mp.get_context("forkserver")
        ctx.set_forkserver_preload(["repro.engine.workers"])
        return ctx
    return mp.get_context("spawn")  # pragma: no cover - non-POSIX hosts


@dataclass
class _FusedTask:
    """Everything a worker process needs to run one fused shard.

    Only plain data crosses: the operator travels *by name* plus, for
    non-builtin pair-formulated operators, its ``PairSpec`` opcode
    tuple and identity (rehydrated via
    ``kernels.pairs.operator_from_pair``; ``pair`` is ``None`` for a
    builtin, which resolves against the builtin table).  The kernel
    backend travels by name, randomness as an integer seed, tracing as
    a bool.
    """

    nxt: _ArrayRef
    values: _ArrayRef
    out: _ArrayRef
    heads: np.ndarray
    op_name: str
    inclusive: bool
    algorithm: str
    seed: int
    traced: bool
    kernel_backend: str = "numpy"
    pair: tuple[int, int, int, int] | None = None
    identity: Any = None


def _run_fused_task(
    task: _FusedTask,
) -> tuple[ScanStats, list[dict[str, Any]], np.ndarray | None]:
    """Worker-process entry point: map, execute, write back.

    Returns ``(kernel stats, serialized kernel spans, payload)`` where
    ``payload`` is the result array when the output slot was inline and
    ``None`` when it was written into the shared segment.  Exceptions
    propagate through the future — containment lives in the parent.
    """
    from ..trace.export import span_to_dict

    holds: list[Any] = []
    nxt = values = out = None
    try:
        nxt = _attach_array(task.nxt, holds)
        values = _attach_array(task.values, holds)
        out = _attach_array(task.out, holds)
        if task.pair is not None:
            op = operator_from_pair(
                task.op_name, PairSpec.from_tuple(task.pair), task.identity
            )
        else:
            op = get_operator(task.op_name)
        try:
            kernel_backend = resolve_backend(task.kernel_backend)
        except ValueError:
            # e.g. the parent auto-detected numba but this worker's
            # environment lacks it — degrade to the reference backend
            # rather than failing the shard
            kernel_backend = resolve_backend("numpy")
        tracer = Tracer() if task.traced else None
        kstats = ScanStats()
        rng = np.random.default_rng(task.seed)
        run_fused_kernel(
            nxt,
            values,
            task.heads,
            op,
            task.inclusive,
            task.algorithm,
            rng,
            kstats,
            out,
            tracer,
            kernel_backend=kernel_backend,
        )
        spans = [span_to_dict(root) for root in tracer.roots] if tracer else []
        payload = out if task.out.shm_name is None else None
        if payload is not None and payload.base is not None:
            payload = payload.copy()
        return kstats, spans, payload
    finally:
        # numpy views into the mappings must die before close()
        del nxt, values, out
        _release(holds, unlink=False)


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------


class ExecutionBackend:
    """Driver interface the engine talks to.

    ``map_shards`` runs the engine's containment wrapper over every
    shard (concurrently on pooled backends); ``run_fused`` — only on
    backends with ``offloads_kernels`` — executes one fused kernel off
    the engine process.  Pools are created lazily and torn down exactly
    once by :meth:`close` (idempotent; ``pools_created`` /
    ``closes_effective`` expose the lifecycle for tests).
    """

    name = "sync"
    #: shards may execute concurrently when the caller asks for it
    concurrent = False
    #: fused kernels execute outside the engine process
    offloads_kernels = False

    def __init__(self) -> None:
        self.pools_created = 0
        self.closes_effective = 0
        self._closed = False
        self._lock = threading.Lock()

    def map_shards(self, fn: Callable[[Any], Any], shards: Sequence[Any]) -> list[Any]:
        return [fn(shard) for shard in shards]

    def run_fused(
        self,
        nxt: np.ndarray,
        values: np.ndarray,
        heads: np.ndarray,
        op_name: str,
        inclusive: bool,
        algorithm: str,
        seed: int,
        traced: bool,
        kernel_backend: str = "numpy",
        pair: tuple[int, int, int, int] | None = None,
        identity: Any = None,
    ) -> tuple[np.ndarray, ScanStats, list[dict[str, Any]]]:
        raise NotImplementedError(f"{self.name!r} backend executes kernels inline")

    def run_task(self, fn: Callable[..., Any], /, *args: Any) -> Any:
        raise NotImplementedError(f"{self.name!r} backend executes tasks inline")

    def close(self) -> None:
        """Tear down worker pools; safe to call any number of times."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self.closes_effective += 1
        self._shutdown()

    def _shutdown(self) -> None:  # pragma: no cover - overridden where pools exist
        pass

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"{self.name!r} execution backend is closed "
                "(Engine.close() already tore its workers down)"
            )


class SyncBackend(ExecutionBackend):
    """No pool: the reference driver.  ``map_shards`` is a plain loop
    even when the caller requested concurrency."""

    name = "sync"


class ThreadBackend(ExecutionBackend):
    """One persistent, lazily-created thread pool shared by every batch."""

    name = "threads"
    concurrent = True

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            self._check_open()
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-engine",
                )
                self.pools_created += 1
                sanitize.note_pool(self._pool, "threads")
            return self._pool

    def map_shards(self, fn: Callable[[Any], Any], shards: Sequence[Any]) -> list[Any]:
        if len(shards) <= 1:
            return [fn(shard) for shard in shards]
        return list(self._ensure_pool().map(fn, shards))

    def _shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
            sanitize.note_pool_closed(pool)


class ProcessBackend(ExecutionBackend):
    """Persistent process pool with shared-memory array transport.

    Two pools, one width: the driver *thread* pool runs the engine's
    per-shard containment wrappers (so retry/quarantine and stats
    mutation stay in the parent process), and each wrapper ships its
    fused kernel to the *process* pool through :class:`_FusedTask`.
    A ``BrokenProcessPool`` (worker killed mid-task) drops the process
    pool — the failing shard quarantines like any other execution
    failure and the next dispatch gets a fresh pool.
    """

    name = "processes"
    concurrent = True
    offloads_kernels = True

    def __init__(
        self,
        max_workers: int | None = None,
        shm_min_bytes: int = SHM_MIN_BYTES,
    ) -> None:
        super().__init__()
        import os

        self.max_workers = max_workers if max_workers is not None else os.cpu_count() or 1
        self.shm_min_bytes = int(shm_min_bytes)
        self.tasks_offloaded = 0
        self._pool: ProcessPoolExecutor | None = None
        self._driver: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            self._check_open()
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers, mp_context=_pool_mp_context()
                )
                self.pools_created += 1
                sanitize.note_pool(self._pool, "processes")
            return self._pool

    def _ensure_driver(self) -> ThreadPoolExecutor:
        with self._lock:
            self._check_open()
            if self._driver is None:
                self._driver = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-engine-driver",
                )
                sanitize.note_pool(self._driver, "driver-threads")
            return self._driver

    def map_shards(self, fn: Callable[[Any], Any], shards: Sequence[Any]) -> list[Any]:
        if len(shards) <= 1:
            return [fn(shard) for shard in shards]
        return list(self._ensure_driver().map(fn, shards))

    def run_task(self, fn: Callable[..., Any], /, *args: Any) -> Any:
        """Run one picklable task on the process pool and wait for it.

        The shared seam for every off-process dispatch (fused shards,
        distributed chunk contractions/expansions): a worker crash
        (``BrokenProcessPool``) drops the pool so the next dispatch
        builds a fresh one, then re-raises for the caller's containment.
        """
        pool = self._ensure_pool()
        try:
            return pool.submit(fn, *args).result()
        except BrokenProcessPool:
            with self._lock:
                broken, self._pool = self._pool, None
            if broken is not None:
                broken.shutdown(wait=False, cancel_futures=True)
                sanitize.note_pool_closed(broken)
            raise

    def run_fused(
        self,
        nxt: np.ndarray,
        values: np.ndarray,
        heads: np.ndarray,
        op_name: str,
        inclusive: bool,
        algorithm: str,
        seed: int,
        traced: bool,
        kernel_backend: str = "numpy",
        pair: tuple[int, int, int, int] | None = None,
        identity: Any = None,
    ) -> tuple[np.ndarray, ScanStats, list[dict[str, Any]]]:
        """Execute one fused kernel in a worker process.

        The parent owns every shared segment: they are created here,
        and closed+unlinked here on every path (including worker
        crashes), so a poisoned shard cannot leak ``/dev/shm`` space.
        """
        leases: list[Any] = []
        try:
            task = _FusedTask(
                nxt=_export_array(nxt, leases, self.shm_min_bytes),
                values=_export_array(values, leases, self.shm_min_bytes),
                out=_alloc_out(values.shape, values.dtype, leases, self.shm_min_bytes),
                heads=np.ascontiguousarray(heads),
                op_name=op_name,
                inclusive=bool(inclusive),
                algorithm=algorithm,
                seed=int(seed),
                traced=bool(traced),
                kernel_backend=kernel_backend,
                pair=pair,
                identity=identity,
            )
            with self._lock:
                self.tasks_offloaded += 1
            kstats, spans, payload = self.run_task(_run_fused_task, task)
            if payload is not None:
                out = np.asarray(payload)
            else:
                out_shm = leases[-1]  # the _alloc_out segment
                view = np.ndarray(
                    task.out.shape, dtype=np.dtype(task.out.dtype), buffer=out_shm.buf
                )
                out = view.copy()
                del view
            return out, kstats, spans
        finally:
            _release(leases, unlink=True)

    def _shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            driver, self._driver = self._driver, None
        if driver is not None:
            driver.shutdown(wait=True)
            sanitize.note_pool_closed(driver)
        if pool is not None:
            pool.shutdown(wait=True)
            sanitize.note_pool_closed(pool)


def shippable_operator(
    op: Operator,
) -> tuple[str, tuple[int, int, int, int] | None, Any] | None:
    """How (and whether) ``op`` can cross a process boundary.

    Returns ``(name, pair, identity)`` when a worker can rehydrate the
    operator faithfully, else ``None``:

    * a builtin (the name round-trips to the *identical* object) ships
      by name alone — ``pair`` is ``None``;
    * a registered pair-formulated operator (``kernels.pairs``) ships
      as its opcode tuple plus a plain-data identity, rehydrated via
      ``operator_from_pair`` — the :func:`~repro.kernels.register_pair`
      contract guarantees equivalence.

    Anything else (a custom combine with no pair form, a look-alike
    shadowing a registered name, a non-plain identity) executes inline.
    """
    if BUILTIN_OPERATORS.get(op.name) is op:
        return op.name, None, None
    spec = pair_for(op)
    if spec is None:
        return None
    identity = op.identity
    if identity is not None and not isinstance(identity, (int, float, tuple)):
        return None
    return op.name, spec.as_tuple(), identity


def offloadable_operator(op: Operator) -> bool:
    """True when ``op`` can execute in a worker process — see
    :func:`shippable_operator`."""
    return shippable_operator(op) is not None


def create_backend(executor: str, max_workers: int | None = None) -> ExecutionBackend:
    """Build the backend for ``Engine(executor=...)``."""
    if executor == "sync":
        return SyncBackend()
    if executor == "threads":
        return ThreadBackend(max_workers)
    if executor == "processes":
        return ProcessBackend(max_workers)
    raise ValueError(
        f"unknown executor {executor!r}; expected one of {EXECUTORS}"
    )
