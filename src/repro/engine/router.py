"""Cost-model algorithm routing.

The dispatch API's historic ``"auto"`` mode used a fixed crossover
(``_AUTO_SERIAL_BELOW = 4096`` nodes: serial below, sublist above).
The paper, however, gives us something much better — the Section 3/4
kernel equations predict the running time of *every* algorithm as a
function of the problem size, and Section 4.4 shows the predictions
track measurements closely.  The :class:`Router` evaluates those
predictions and picks the cheapest algorithm:

* ``serial``  — ``T = 34·n + 255`` clocks (the measured traversal);
* ``wyllie``  — ``⌈log₂(n/k)⌉`` rounds of ``9·n + 180`` clocks for a
  forest of ``k`` chains (one chain for a single list);
* ``sublist`` — the full Eq. 3 schedule-sum plus Phase-2 dispatch cost
  at the model-tuned ``(m, S₁)`` (``analysis.predict.predict_run``).

Predictions use a calibration (:class:`KernelCosts`) — the paper's
published C-90 table by default, or any table derived by
``machine.calibration`` for another machine.  A router constructed
*without* a calibration (``costs=None``) falls back to the historic
fixed crossover, so routing degrades gracefully rather than failing.

Decisions are cached per √2-rounded size bucket (the same bucketing as
``core.tuning``), so repeated routing is O(1) after the first call for
each size region.

The calibration is swappable at runtime: :meth:`Router.set_costs`
installs a new table and a fresh (empty) decision cache in one atomic
reference assignment.  Readers snapshot the ``(costs, cache)`` pair
once per call, so a concurrent swap can never pair old-table decisions
with the new cache or vice versa — this is what lets
``Engine.recalibrate`` hot-swap a fitted profile under live traffic.
"""

from __future__ import annotations

import math

from ..analysis.cost_model import KernelCosts, PAPER_C90_COSTS
from ..analysis.predict import predict_run
from ..kernels.backend import KernelBackend, resolve_backend
from ..sanitize.runtime import atomic_read, atomic_write

__all__ = ["Router", "route_algorithm", "DEFAULT_SERIAL_BELOW", "default_router"]

#: The historic fixed crossover, kept as the no-calibration fallback.
DEFAULT_SERIAL_BELOW = 4096

#: Algorithms the router chooses between.  All three have forest
#: (multi-list) kernels, so a routed batch can always be executed fused.
CANDIDATES = ("serial", "wyllie", "sublist")


class _RouterState:
    """One immutable calibration epoch: a cost table plus the decision
    cache built *from that table*.

    Bundling the two means a single reference assignment swaps both —
    a reader that snapshots the state sees a cache containing only
    decisions computed under the same table it is about to use.
    (The ``choices`` dict itself mutates as decisions are memoized;
    that is safe because every value it will ever hold is derived from
    the same immutable ``costs``, and CPython dict get/set are atomic.)
    """

    __slots__ = ("costs", "choices")

    def __init__(self, costs: KernelCosts | None) -> None:
        self.costs = costs
        self.choices: dict[tuple[int, int], str] = {}


def _bucket(n: int) -> int:
    """Round to the nearest power of √2 (mirrors ``core.tuning``)."""
    if n < 4:
        return n
    return int(round(2 ** (round(2 * math.log2(n)) / 2)))


class Router:
    """Pick the cheapest algorithm for an ``n``-node problem.

    Parameters
    ----------
    costs:
        Kernel calibration driving the predictions.  ``None`` disables
        model routing and falls back to the fixed crossover.
    serial_below:
        The fallback crossover used when ``costs`` is ``None``.
    candidates:
        Algorithm names to consider (subset of :data:`CANDIDATES`).
    kernel_backend:
        The kernel backend the predictions describe (name, instance, or
        ``None`` for env-var-then-auto selection — see
        ``docs/kernels.md``).  The backend's calibration factors are
        applied to the per-element rank-step and pack coefficients of
        ``costs`` (Section 3/4's ``a`` and ``c``), so a compiled
        backend shifts the serial/wyllie/sublist crossovers the way a
        faster traversal would on real hardware.  The reference
        backends scale by 1.0, leaving decisions identical.
    """

    def __init__(
        self,
        costs: KernelCosts | None = PAPER_C90_COSTS,
        serial_below: int = DEFAULT_SERIAL_BELOW,
        candidates: tuple[str, ...] = CANDIDATES,
        kernel_backend: str | KernelBackend | None = None,
    ) -> None:
        unknown = set(candidates) - set(CANDIDATES)
        if unknown:
            raise ValueError(f"unroutable algorithms: {sorted(unknown)}")
        if not candidates:
            raise ValueError("router needs at least one candidate")
        backend = resolve_backend(kernel_backend)
        self.kernel_backend = backend.name
        self.serial_below = serial_below
        self.candidates = tuple(candidates)
        self._state = _RouterState(
            backend.scaled_costs(costs) if costs is not None else None
        )

    @property
    def costs(self) -> KernelCosts | None:
        """The active cost table (after backend scaling, if any)."""
        return self._state.costs

    @property
    def calibrated(self) -> bool:
        """Whether model routing (vs. the fixed fallback) is active."""
        return self._state.costs is not None

    def set_costs(
        self, costs: KernelCosts | None, scale_backend: bool = False
    ) -> None:
        """Install a new calibration and invalidate the decision cache.

        The swap is atomic: the new table and a fresh empty cache are
        bundled into one state object and installed with a single
        reference assignment, so concurrent :meth:`choose` calls see
        either the old ``(costs, cache)`` pair or the new one — never
        a stale decision served against the new table.

        ``scale_backend`` applies this router's kernel-backend factors
        to the table first, as the constructor does for the paper
        table.  It defaults to off because fitted calibration profiles
        are measured *through* the active backend — their coefficients
        already include its speedup, and scaling again would double
        count it.
        """
        if costs is not None and scale_backend:
            costs = resolve_backend(self.kernel_backend).scaled_costs(costs)
        self._state = _RouterState(costs)
        atomic_write("router.state")

    def _predicted(
        self, costs: KernelCosts, n: int, algorithm: str, n_lists: int
    ) -> float:
        n = max(int(n), 1)
        n_lists = max(int(n_lists), 1)
        if algorithm == "serial":
            # one traversal in total; per-chain startup once per list
            return costs.serial_per_elem * n + costs.serial_const * n_lists
        if algorithm == "wyllie":
            # pointer jumping converges in log2 of the longest chain;
            # with balanced sharding that is ≈ n / n_lists
            longest = max(2.0, n / n_lists)
            rounds = math.ceil(math.log2(longest))
            return rounds * (costs.wyllie_round_per_elem * n + costs.wyllie_round_const)
        if algorithm == "sublist":
            return predict_run(n, costs).cycles
        raise ValueError(
            f"unknown routable algorithm {algorithm!r}; expected one of {CANDIDATES}"
        )

    def predicted_clocks(self, n: int, algorithm: str, n_lists: int = 1) -> float:
        """Model-predicted clocks for one algorithm on ``n`` total nodes
        spread over ``n_lists`` independent lists."""
        costs = self._state.costs
        if costs is None:
            raise ValueError("router has no calibration; predictions unavailable")
        return self._predicted(costs, n, algorithm, n_lists)

    def choose(self, n: int, n_lists: int = 1) -> str:
        """The cheapest candidate for ``n`` nodes over ``n_lists`` lists."""
        n = int(n)
        n_lists = max(int(n_lists), 1)
        atomic_read("router.state")
        state = self._state  # one snapshot: costs + cache stay paired
        if state.costs is None:
            return "serial" if n < self.serial_below else "sublist"
        if n <= 8:
            return "serial" if "serial" in self.candidates else self.candidates[0]
        key = (_bucket(n), _bucket(n_lists))
        cached = state.choices.get(key)
        if cached is not None:
            return cached
        best = min(
            self.candidates,
            key=lambda alg: self._predicted(state.costs, key[0], alg, key[1]),
        )
        state.choices[key] = best
        return best

    def crossover(self, lo: int = 2, hi: int = 1 << 22) -> int:
        """Smallest ``n`` (within [lo, hi], up to bucket resolution) at
        which the router stops choosing ``serial`` — the model-derived
        analogue of the old fixed constant."""
        if self.choose(lo) != "serial":
            return lo
        if self.choose(hi) == "serial":
            return hi
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.choose(mid) == "serial":
                lo = mid
            else:
                hi = mid
        return hi


_DEFAULT_ROUTER: Router | None = None


def default_router() -> Router:
    """The process-wide router (paper C-90 calibration), built lazily."""
    global _DEFAULT_ROUTER
    if _DEFAULT_ROUTER is None:
        _DEFAULT_ROUTER = Router()
    return _DEFAULT_ROUTER


def route_algorithm(n: int, n_lists: int = 1, router: Router | None = None) -> str:
    """Route an ``n``-node problem through ``router`` (default: the
    process-wide calibrated router)."""
    return (router or default_router()).choose(n, n_lists)
