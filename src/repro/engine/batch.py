"""Size-class sharding and batch fusion.

Fusing concatenates the node arrays of many independent lists into one
shared array — exactly the *forest* representation of
``core.forest`` — so a single vectorized pass scans them all.  This is
the paper's multi-list trick applied across requests: the virtual
processors never cared that the sublists came from one list, and they
do not care that these come from different callers.

Why size classes?  A fused batch traverses lists in lock step, so the
vector stays full only while every list still has nodes left.  One
million-node list fused with sixty tiny ones would leave the vector
almost empty for most of the walk — the exact pathology the paper's
pack schedule exists to fight.  Sharding requests into geometric size
classes (powers of ``base``, default 2) keeps the per-batch length
skew bounded by ``base``, so fused executions stay near full width.

Requests can only fuse when they agree on the operator, the
inclusive/exclusive flag, the value dtype/width and the (possibly
forced) algorithm; :func:`shard_requests` groups by exactly that key
plus the size class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..core.operators import Operator
from ..lists.generate import INDEX_DTYPE
from .queue import ScanRequest

__all__ = ["size_class", "shard_key", "shard_requests", "FusedBatch"]

#: Geometric growth factor between size classes.
DEFAULT_SIZE_CLASS_BASE = 2.0

ShardKey = tuple[int, str, tuple[int, ...], bool, str, str]


def size_class(n: int, base: float = DEFAULT_SIZE_CLASS_BASE) -> int:
    """Geometric size-class index of an ``n``-node list.

    Class ``k`` holds lengths in ``(base**(k-1), base**k]``; lengths 0
    and 1 map to class 0.  Within one class the longest/shortest ratio
    is at most ``base``, which bounds vector-width loss in a fused
    lock-step traversal.
    """
    if base <= 1.0:
        raise ValueError("size-class base must be > 1")
    if n <= 1:
        return 0
    return int(math.ceil(math.log(n, base) - 1e-9))


def shard_key(
    request: ScanRequest, base: float = DEFAULT_SIZE_CLASS_BASE
) -> ShardKey:
    """Grouping key under which requests may fuse into one batch.

    The key uses the values' actual trailing shape rather than the
    operator's advertised ``value_width``: if a custom operator's
    metadata disagrees with the arrays it is handed, the requests must
    not be concatenated into one forest (the fused assignment would
    broadcast or raise mid-shard).
    """
    op: Operator = request.op  # normalized by ScanRequest.__post_init__
    return (
        size_class(request.n, base),
        op.name,
        tuple(request.lst.values.shape[1:]),
        bool(request.inclusive),
        request.lst.values.dtype.str,
        request.algorithm,
    )


def shard_requests(
    requests: Sequence[ScanRequest],
    base: float = DEFAULT_SIZE_CLASS_BASE,
) -> dict[ShardKey, list[ScanRequest]]:
    """Group requests into fusable shards (insertion order preserved)."""
    shards: dict[ShardKey, list[ScanRequest]] = {}
    for req in requests:
        shards.setdefault(shard_key(req, base), []).append(req)
    return shards


@dataclass
class FusedBatch:
    """Many independent lists concatenated into one forest problem.

    ``nxt``/``values`` are fresh arrays (the requests' own arrays are
    never aliased, so the forest kernels may mutate-and-restore them
    freely, even concurrently across shards).  List *k* occupies the
    index range ``[offsets[k], offsets[k+1])`` and keeps its self-loop
    tail; ``heads[k]`` is its head in fused coordinates.
    """

    requests: list[ScanRequest]
    nxt: np.ndarray
    values: np.ndarray
    heads: np.ndarray
    offsets: np.ndarray  # length n_lists + 1
    op: Operator
    inclusive: bool

    @classmethod
    def fuse(cls, requests: Sequence[ScanRequest]) -> "FusedBatch":
        """Concatenate the requests' lists into one forest.

        All requests must share the operator (by name), the inclusive
        flag and the value dtype — i.e. come from one shard.
        """
        if not requests:
            raise ValueError("cannot fuse an empty batch")
        first = requests[0]
        op: Operator = first.op
        for req in requests[1:]:
            if (
                req.op.name != op.name
                or bool(req.inclusive) != bool(first.inclusive)
                or req.lst.values.dtype != first.lst.values.dtype
            ):
                raise ValueError(
                    "fused requests must share operator, inclusive flag "
                    "and value dtype; shard before fusing"
                )
        sizes = np.asarray([req.n for req in requests], dtype=INDEX_DTYPE)
        offsets = np.zeros(len(requests) + 1, dtype=INDEX_DTYPE)
        np.cumsum(sizes, out=offsets[1:])
        nxt = np.empty(int(offsets[-1]), dtype=INDEX_DTYPE)
        values = np.empty(
            (int(offsets[-1]),) + first.lst.values.shape[1:],
            dtype=first.lst.values.dtype,
        )
        heads = np.empty(len(requests), dtype=INDEX_DTYPE)
        for k, req in enumerate(requests):
            lo, hi = int(offsets[k]), int(offsets[k + 1])
            nxt[lo:hi] = req.lst.next + lo
            values[lo:hi] = req.lst.values
            heads[k] = req.lst.head + lo
        return cls(
            requests=list(requests),
            nxt=nxt,
            values=values,
            heads=heads,
            offsets=offsets,
            op=op,
            inclusive=bool(first.inclusive),
        )

    @property
    def n_nodes(self) -> int:
        return int(self.offsets[-1])

    @property
    def n_lists(self) -> int:
        return len(self.requests)

    def unfuse(self, out: np.ndarray) -> list[np.ndarray]:
        """Slice a fused result array back into per-request results.

        Returns copies, so the (large) fused array does not stay alive
        through views held by callers or the result cache.
        """
        return [
            out[int(self.offsets[k]) : int(self.offsets[k + 1])].copy()
            for k in range(self.n_lists)
        ]
