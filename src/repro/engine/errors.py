"""Per-request error channel: structured failures for the serving path.

PR 1's engine *failed open*: a single poisoned request raised out of
``Engine.run_batch`` and took every other request in the batch down
with it — exactly the failure mode distributed list-ranking systems
engineer around.  The paper's load-balancing insight applies to
requests too: one bad list must not empty the vector for everyone
else.

This module is the contract for the hardened path:

* :class:`RequestError` — the structured description of why one
  request failed (a stable machine-readable ``code``, a human-readable
  ``message``, the ``phase`` the failure was caught in, and the name
  of the underlying exception when one was trapped).  It travels on
  :attr:`ScanResponse.error <repro.engine.queue.ScanResponse>` with
  ``ok=False`` while every healthy request in the batch still gets its
  result.
* :class:`EngineRequestError` — the exception the *result-returning*
  conveniences (``Engine.scan``, ``Engine.map_scan``,
  ``list_scan(engine=...)``) raise when the underlying request failed;
  it carries the structured error so callers never lose the code.
* :func:`validate_request` — the probe-time validator: malformed
  successor arrays, value arrays whose shape disagrees with the
  operator, dtypes the operator cannot combine, and NaN values under
  NaN-hostile operators (``min``/``max``) are all rejected *before*
  they can poison a fused shard.

Error codes
-----------

==================  ==================================================
``bad-structure``   the successor array does not encode a valid list
``bad-shape``       value array shape disagrees with the list length
                    or the operator's ``value_width``
``bad-dtype``       value dtype is not numeric/boolean (e.g. object
                    arrays, whose fingerprints would not even be
                    deterministic)
``nan-values``      NaN values under a NaN-hostile operator
``op-mismatch``     the operator's ``combine`` cannot process the
                    values (probed on a one-element slice)
``fingerprint``     the request could not be fingerprinted
``execution``       the scan kernel raised while executing the request
``shutdown``        the engine closed before the request executed
                    (``Engine.close()`` answers still-queued requests
                    with this instead of dropping them)
==================  ==================================================

The serving front-end (``repro.serve``) reuses this type for failures
that happen before a request ever reaches the engine, with its own
codes: ``bad-message`` (unparseable frame), ``bad-field`` (parseable
but invalid request payload), ``rate-limited`` (per-client token
bucket or in-flight cap exceeded) and ``overloaded`` (submission queue
saturated; the response carries a ``retry_after`` hint).  One error
shape end to end means a client handles a validation failure, a
quarantined kernel crash and a load-shed rejection identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.operators import Operator
from ..lists.validate import ListStructureError, validate_list, validate_list_strict
from .queue import ScanRequest

__all__ = [
    "RequestError",
    "EngineRequestError",
    "validate_request",
    "VALIDATION_MODES",
]

#: Accepted values for ``Engine(validate=...)``: ``"off"`` skips
#: probe-time validation entirely, ``"fast"`` (default) runs the
#: vectorized O(n) checks, ``"strict"`` adds the pointer-doubling
#: reachability certificate (O(n log n), catches disjoint cycles).
VALIDATION_MODES = ("off", "fast", "strict")


@dataclass(frozen=True)
class RequestError:
    """Why one request failed, in structured form.

    Attributes
    ----------
    code:
        Stable machine-readable identifier (see the module table).
    message:
        Human-readable detail for logs and CLIs.
    phase:
        ``"validate"`` (caught before execution) or ``"execute"``
        (the kernel raised and the request was quarantined).
    exception:
        Class name of the trapped exception, when there was one.
    """

    code: str
    message: str
    phase: str
    exception: str | None = None

    @classmethod
    def from_exception(
        cls, exc: BaseException, code: str, phase: str
    ) -> "RequestError":
        """Wrap a trapped exception into a structured error."""
        return cls(
            code=code,
            message=str(exc) or exc.__class__.__name__,
            phase=phase,
            exception=exc.__class__.__name__,
        )


class EngineRequestError(RuntimeError):
    """A request served through a result-returning convenience failed.

    ``Engine.run_batch`` never raises for a single bad request — it
    returns ``ok=False`` responses.  The conveniences that return bare
    arrays (``Engine.scan``, ``Engine.map_scan``,
    ``list_scan(engine=...)``) have no response to attach the error to,
    so they raise this exception instead, carrying the structured
    :class:`RequestError` as :attr:`error`.
    """

    def __init__(self, error: RequestError, request_id: int = 0) -> None:
        self.error = error
        self.request_id = request_id
        super().__init__(
            f"request {request_id} failed during {error.phase} "
            f"[{error.code}]: {error.message}"
        )


def _validate_structure(request: ScanRequest, strict: bool) -> RequestError | None:
    try:
        if strict:
            validate_list_strict(request.lst)
        else:
            validate_list(request.lst)
    except ListStructureError as exc:
        return RequestError.from_exception(exc, code="bad-structure", phase="validate")
    except Exception as exc:  # corrupt enough to crash the validator itself
        return RequestError.from_exception(exc, code="bad-structure", phase="validate")
    return None


def validate_request(
    request: ScanRequest, mode: str = "fast"
) -> RequestError | None:
    """Probe one request before execution; ``None`` means clean.

    Checks, in order:

    1. list structure (``lists.validate``; ``mode="strict"`` adds the
       reachability certificate),
    2. value-array shape against the list length and the operator's
       ``value_width``,
    3. value dtype (object/string arrays are rejected outright),
    4. NaN values under a NaN-hostile operator,
    5. a one-element ``op.combine`` probe, which catches
       operator/dtype mismatches (e.g. ``xor`` over floats) without
       running the full scan.

    Returns the first :class:`RequestError` found, so a caller can
    surface it on the response instead of letting the kernel raise
    mid-shard.
    """
    if mode == "off":
        return None
    if mode not in VALIDATION_MODES:
        raise ValueError(
            f"unknown validation mode {mode!r}; expected one of {VALIDATION_MODES}"
        )
    err = _validate_structure(request, strict=(mode == "strict"))
    if err is not None:
        return err

    op: Operator = request.op
    values = np.asarray(request.lst.values)
    width = op.value_width
    if width:
        if values.ndim != 2 or values.shape != (request.n, width):
            return RequestError(
                code="bad-shape",
                message=(
                    f"operator {op.name!r} needs values of shape "
                    f"({request.n}, {width}); got {values.shape}"
                ),
                phase="validate",
            )
    elif values.ndim != 1 or values.shape[0] != request.n:
        return RequestError(
            code="bad-shape",
            message=(
                f"values must have shape ({request.n},) for a "
                f"{request.n}-node list; got {values.shape}"
            ),
            phase="validate",
        )

    if not (np.issubdtype(values.dtype, np.number) or values.dtype == np.bool_):
        return RequestError(
            code="bad-dtype",
            message=f"values dtype {values.dtype} is not numeric or boolean",
            phase="validate",
        )

    if (
        op.nan_hostile
        and np.issubdtype(values.dtype, np.floating)
        and bool(np.isnan(values).any())
    ):
        return RequestError(
            code="nan-values",
            message=(
                f"values contain NaN, which poisons the NaN-hostile "
                f"operator {op.name!r}"
            ),
            phase="validate",
        )

    try:
        probe = values[:1]
        op.combine(probe, probe)
    except Exception as exc:
        return RequestError.from_exception(exc, code="op-mismatch", phase="validate")
    return None
