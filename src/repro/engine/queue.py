"""Request/response types and the bounded submission queue.

A :class:`ScanRequest` is one list-scan problem — a linked list, an
operator, the inclusive/exclusive flag and an algorithm preference
(``"auto"`` by default, which lets the cost-model router decide per
fused batch).  Callers enqueue requests into a :class:`SubmissionQueue`
and the engine drains them in FIFO order into fused executions.

Backpressure
------------

The queue bounds both the number of pending requests and the total
number of queued *nodes* (the quantity that actually costs memory and
time).  ``submit`` blocks while the queue is full; with ``block=False``
or an expired ``timeout`` it raises :class:`BackpressureError` so a
serving layer can shed load instead of buffering without bound.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from ..core.operators import Operator, SUM, get_operator
from ..sanitize.runtime import hb_publish
from ..lists.generate import LinkedList

if TYPE_CHECKING:  # pragma: no cover - annotation only (avoids a cycle)
    from .errors import RequestError

__all__ = [
    "ScanRequest",
    "ScanResponse",
    "SubmissionQueue",
    "BackpressureError",
    "QueueClosedError",
]

_REQUEST_IDS = itertools.count(1)


class BackpressureError(RuntimeError):
    """The submission queue is full and the caller chose not to wait."""


class QueueClosedError(RuntimeError):
    """The submission queue was closed while (or before) submitting.

    Raised by :meth:`SubmissionQueue.submit` once :meth:`SubmissionQueue.close`
    has run — including for submitters that were *blocked on
    backpressure* when the close happened: they are woken and get this
    exception instead of hanging on a queue no drain will ever empty.
    ``Engine.close()`` turns the same condition into structured
    ``shutdown`` :class:`~repro.engine.errors.RequestError` responses
    for requests already queued.
    """


@dataclass
class ScanRequest:
    """One list-scan problem submitted to the engine.

    Parameters
    ----------
    lst:
        The linked list to scan.  The engine never mutates it (fused
        executions work on concatenated copies).
    op:
        Operator instance or name; normalized to an :class:`Operator`.
    inclusive:
        Include each node's own value (default: exclusive prescan).
    algorithm:
        ``"auto"`` (default) defers the choice to the cost-model
        router; any other :data:`~repro.core.list_scan.ALGORITHMS`
        member forces that algorithm for this request.
    tag:
        Opaque caller correlation data, echoed on the response.

    ``submitted_at`` is stamped (``time.perf_counter``) by
    :meth:`SubmissionQueue.submit`; a traced engine turns it into the
    per-request ``queue_wait`` event.  Requests handed straight to
    ``run_batch`` without queueing keep ``None`` and record no wait.
    """

    lst: LinkedList
    op: Operator | str = SUM
    inclusive: bool = False
    algorithm: str = "auto"
    tag: object | None = None
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))
    submitted_at: float | None = None

    def __post_init__(self) -> None:
        self.op = get_operator(self.op)

    @property
    def n(self) -> int:
        """Number of nodes in the request's list."""
        return self.lst.n


@dataclass
class ScanResponse:
    """The engine's answer to one :class:`ScanRequest`.

    ``algorithm`` is the algorithm that actually produced the result
    (after routing); ``batch_lists`` is how many requests were fused
    into the execution that served this one (1 for solo or cached).

    Error channel: ``ok`` is True iff the request produced a result.
    On failure ``result`` is ``None`` and ``error`` carries a
    structured :class:`~repro.engine.errors.RequestError` — the batch
    as a whole never raises for one bad request.  ``coalesced`` marks
    a response served by another identical request's execution in the
    same batch (intra-batch deduplication).
    """

    request_id: int
    result: np.ndarray | None = None
    algorithm: str = ""
    cached: bool = False
    coalesced: bool = False
    batch_lists: int = 1
    n: int = 0
    tag: object | None = None
    ok: bool = True
    error: RequestError | None = None


class SubmissionQueue:
    """Bounded FIFO of pending :class:`ScanRequest` objects.

    Parameters
    ----------
    max_requests:
        Maximum number of queued requests (``None`` = unbounded).
    max_nodes:
        Maximum total ``lst.n`` across queued requests (``None`` =
        unbounded).  A request with ``n > max_nodes`` can never satisfy
        the bound, so it is exempted rather than wedged: it is admitted
        when the queue is empty, or — for a blocking submit — as soon
        as it reaches the front of the waiter line, so a steady stream
        of small submitters cannot starve it forever.
    clock:
        Zero-argument callable stamping ``submitted_at`` on admission
        (the source of the traced ``queue_wait`` telemetry); defaults
        to :func:`time.perf_counter`.  Injectable so tests can drive a
        deterministic counting clock — the ``injectable-clock`` lint
        rule forbids direct wall-clock calls in this module.
    """

    def __init__(
        self,
        max_requests: int | None = 1024,
        max_nodes: int | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if max_requests is not None and max_requests < 1:
            raise ValueError("max_requests must be >= 1 (or None)")
        if max_nodes is not None and max_nodes < 1:
            raise ValueError("max_nodes must be >= 1 (or None)")
        self.max_requests = max_requests
        self.max_nodes = max_nodes
        self.clock = clock if clock is not None else time.perf_counter
        self._items: list[ScanRequest] = []
        self._nodes = 0
        self._cond = threading.Condition()
        self._waiters: list[int] = []  # tickets of blocked submitters, FIFO
        self._tickets = itertools.count()
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def pending_nodes(self) -> int:
        """Total nodes across queued requests."""
        with self._cond:
            return self._nodes

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def oldest_submitted_at(self) -> float | None:
        """Admission stamp of the front (oldest) request, or ``None``.

        This is the serving layer's batch-window deadline hook: the
        adaptive window flushes when ``clock() - oldest_submitted_at()``
        reaches the current window, so the *oldest* queued request —
        not the newest — bounds the added latency.
        """
        with self._cond:
            return self._items[0].submitted_at if self._items else None

    def _has_room(self, request: ScanRequest, at_front: bool = False) -> bool:
        if not self._items:
            return True  # never wedge on a single over-sized request
        if self.max_requests is not None and len(self._items) >= self.max_requests:
            return False
        if self.max_nodes is not None and self._nodes + request.n > self.max_nodes:
            # An over-sized request (n > max_nodes) can never satisfy
            # the node bound.  Waiting for an empty queue would starve
            # it behind a steady stream of small submitters, so a
            # blocking submitter is admitted as soon as it is the
            # frontmost waiter instead.
            if request.n > self.max_nodes:
                return at_front
            return False
        return True

    def submit(
        self,
        request: ScanRequest,
        block: bool = True,
        timeout: float | None = None,
    ) -> int:
        """Enqueue a request; returns its ``request_id``.

        Raises :class:`BackpressureError` when the queue is full and
        ``block`` is False (immediately) or ``timeout`` seconds elapse
        without room appearing, and :class:`QueueClosedError` when the
        queue has been closed — including when the close happens while
        this submitter is blocked waiting for room.
        """
        with self._cond:
            if self._closed:
                raise QueueClosedError("submission queue is closed")
            if not self._has_room(request):
                if not block:
                    raise BackpressureError(
                        f"queue full ({len(self._items)} requests, "
                        f"{self._nodes} nodes pending)"
                    )
                ticket = next(self._tickets)
                self._waiters.append(ticket)
                try:
                    admitted = self._cond.wait_for(
                        lambda: self._closed
                        or self._has_room(
                            request, at_front=self._waiters[0] == ticket
                        ),
                        timeout=timeout,
                    )
                finally:
                    self._waiters.remove(ticket)
                    self._cond.notify_all()  # let the next waiter re-check
                if self._closed:
                    raise QueueClosedError(
                        "submission queue closed while waiting for room"
                    )
                if not admitted:
                    raise BackpressureError(
                        f"queue still full after {timeout}s "
                        f"({len(self._items)} requests pending)"
                    )
            request.submitted_at = self.clock()
            self._items.append(request)
            self._nodes += request.n
            # handoff edge: everything the submitter did to the request
            # happens-before the engine thread that drains it
            hb_publish(("request", request.request_id))
            self._cond.notify_all()
            return request.request_id

    def drain(self, max_requests: int | None = None) -> list[ScanRequest]:
        """Pop up to ``max_requests`` requests in FIFO order (all by
        default) and wake any submitter blocked on backpressure."""
        with self._cond:
            k = len(self._items) if max_requests is None else min(
                max_requests, len(self._items)
            )
            batch = self._items[:k]
            del self._items[:k]
            self._nodes -= sum(r.n for r in batch)
            self._cond.notify_all()
            return batch

    def close(self) -> list[ScanRequest]:
        """Close the queue; returns the requests still pending.

        Idempotent (a second close returns ``[]``).  Every submitter
        blocked on backpressure is woken and raises
        :class:`QueueClosedError`; later ``submit`` calls raise
        immediately.  The caller owns the returned requests —
        ``Engine.close()`` answers each with a structured ``shutdown``
        error so no request vanishes silently.
        """
        with self._cond:
            if self._closed:
                return []
            self._closed = True
            pending = self._items
            self._items = []
            self._nodes = 0
            self._cond.notify_all()
            return pending
