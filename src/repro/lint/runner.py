"""File collection and rule execution.

:func:`lint_paths` walks the given files/directories, parses each
``.py`` file once, runs every selected rule that applies to it, applies
the suppression comments, and returns a :class:`LintResult` the
reporters and the CLI share.  Unparsable files become ``parse-error``
diagnostics rather than exceptions, so one broken file cannot hide the
findings in the rest of the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Sequence

from .diagnostics import Diagnostic
from .framework import LintContext, Rule, all_rules
from .suppress import apply_suppressions, find_suppressions

__all__ = ["LintResult", "collect_files", "lint_file", "lint_paths"]

#: pseudo-rule name for files the parser rejects
PARSE_ERROR = "parse-error"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files: list[str] = field(default_factory=list)
    rules: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def exit_code(self) -> int:
        return 0 if self.clean else 1


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            out.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"lint path does not exist: {path}")
    return sorted(out)


def lint_file(
    path: str | Path,
    rules: Iterable[Rule] | None = None,
    check_unused: bool = True,
) -> list[Diagnostic]:
    """Lint one file; returns its post-suppression diagnostics."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source, str(path), rules=rules, check_unused=check_unused
    )


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[Rule] | None = None,
    check_unused: bool = True,
) -> list[Diagnostic]:
    """Lint source text (the unit the rule tests drive directly)."""
    selected = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR,
                message=f"cannot parse: {exc.msg}",
                hint="fix the syntax error; no rules ran on this file",
            )
        ]
    context = LintContext(path=path, source=source, tree=tree)
    diagnostics: list[Diagnostic] = []
    for rule in selected:
        if not rule.applies_to(context.norm_path):
            continue
        diagnostics.extend(rule.check(context))
    suppressions = find_suppressions(path, source)
    diagnostics = apply_suppressions(
        diagnostics,
        suppressions,
        selected_rules={rule.name for rule in selected},
        check_unused=check_unused,
    )
    return sorted(diagnostics)


def lint_paths(
    paths: Sequence[str | Path],
    rules: Iterable[Rule] | None = None,
    check_unused: bool = True,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` with the selected rules."""
    selected = list(rules) if rules is not None else all_rules()
    result = LintResult(rules=[rule.name for rule in selected])
    for path in collect_files(paths):
        result.files.append(str(path))
        result.diagnostics.extend(
            lint_file(path, rules=selected, check_unused=check_unused)
        )
    result.diagnostics.sort()
    return result
