"""The :class:`Diagnostic` record every rule emits.

A diagnostic pins one finding to a file/line/column, names the rule
that produced it, and carries a human message plus an optional
``hint`` — the rule's fix-it suggestion, rendered by both reporters so
a finding always says what to do about itself, not just what is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: ``path:line:col: RULE message``.

    ``line`` is 1-based (AST convention), ``col`` is 0-based.  The
    dataclass orders by position so reporters can sort findings into
    reading order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    data: dict[str, Any] = field(default_factory=dict, compare=False)

    def format(self) -> str:
        """Render for the human reporter (without the hint line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def as_dict(self) -> dict[str, Any]:
        """Render for the JSON reporter."""
        out: dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        if self.data:
            out["data"] = self.data
        return out
