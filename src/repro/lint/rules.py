"""The project-invariant rules (see ``docs/static-analysis.md``).

Each rule encodes one invariant that PRs 2-4 established in prose and
that a regression would break silently:

``no-fork``
    forking from the threaded engine driver deadlocked the process
    pool (a forked child can inherit another thread's held lock).
``shm-lifecycle``
    an unowned ``SharedMemory(create=True)`` segment leaks
    ``/dev/shm`` space on every crash path.
``lock-with-only``
    a bare ``acquire`` without a ``finally`` leaves the lock held on
    any exception between it and the ``release``.
``injectable-clock``
    direct wall-clock reads make span trees and queue-wait telemetry
    untestable (and non-deterministic under the counting clock).
``explicit-dtype``
    the paper's Section 3 kernels are 64-bit index arithmetic; a
    platform-dependent default integer (int32 on Windows) silently
    corrupts successor indices above 2**31.
``fingerprint-keyed-cache``
    a result cached under anything but the blessed structural
    fingerprint is a cache-poisoning hazard.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from .diagnostics import Diagnostic
from .framework import LintContext, Rule, register

__all__ = [
    "ExplicitDtypeRule",
    "FingerprintKeyedCacheRule",
    "InjectableClockRule",
    "LockWithOnlyRule",
    "NoForkRule",
    "ShmLifecycleRule",
]


def _call_name(node: ast.Call) -> str:
    """Trailing identifier of the called expression (``a.b.c()`` → ``c``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _receiver(node: ast.Call) -> ast.expr | None:
    """The object a method call is made on (``a.b()`` → ``a``)."""
    if isinstance(node.func, ast.Attribute):
        return node.func.value
    return None


def _const_str(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _keyword(node: ast.Call, name: str) -> ast.expr | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register
class NoForkRule(Rule):
    """No ``fork`` start method anywhere under ``engine/``."""

    name = "no-fork"
    rationale = (
        "fork from the multi-threaded engine driver can copy another "
        "thread's held lock into the child, which then deadlocks "
        "before running its first task"
    )
    hint = 'use get_context("forkserver") or get_context("spawn") instead'
    paths = ("*/engine/*.py",)

    _SETTERS = frozenset({"get_context", "set_start_method"})

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        for call in _calls(context.tree):
            name = _call_name(call)
            requested: str | None = None
            if name in self._SETTERS:
                arg = call.args[0] if call.args else _keyword(call, "method")
                requested = _const_str(arg)
            elif _const_str(_keyword(call, "mp_context")) is not None:
                requested = _const_str(_keyword(call, "mp_context"))
            if requested == "fork":
                yield self.diagnostic(
                    context,
                    call,
                    f"{name or 'call'} requests the 'fork' start method "
                    "under engine/",
                )


@register
class ShmLifecycleRule(Rule):
    """Every created shared-memory segment must reach ``unlink``."""

    name = "shm-lifecycle"
    rationale = (
        "a SharedMemory(create=True) segment outlives the process "
        "unless some owner unlinks it; an unowned segment leaks "
        "/dev/shm space on every crash path"
    )
    hint = (
        "bind the segment in a try/finally that unlinks it, or append "
        "it to a lease list an enclosing try/finally releases"
    )

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        for call in _calls(context.tree):
            if _call_name(call) != "SharedMemory":
                continue
            create = _keyword(call, "create")
            if not (isinstance(create, ast.Constant) and create.value is True):
                continue
            if self._owned(context, call):
                continue
            yield self.diagnostic(
                context,
                call,
                "SharedMemory(create=True) is not bound to an owner that "
                "reaches unlink()",
            )

    def _owned(self, context: LintContext, call: ast.Call) -> bool:
        parent = context.parent(call)
        # `with SharedMemory(create=True) as shm:` — the with suite is
        # the owner (still needs an unlink inside, but lifetime is
        # explicit; the finally check below would not see __exit__)
        if isinstance(parent, ast.withitem):
            return True
        if not (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            return False
        bound = parent.targets[0].id
        scope: ast.AST = context.enclosing_function(call) or context.tree
        for other in _calls(scope):
            name = _call_name(other)
            recv = _receiver(other)
            # ownership transfer: `leases.append(shm)` hands the
            # segment to a tracked lease list released in a finally
            if (
                name == "append"
                and len(other.args) == 1
                and isinstance(other.args[0], ast.Name)
                and other.args[0].id == bound
            ):
                return True
            # direct release: `shm.unlink()` inside a finally suite
            if (
                name == "unlink"
                and isinstance(recv, ast.Name)
                and recv.id == bound
                and context.in_finally(other)
            ):
                return True
        return False


@register
class LockWithOnlyRule(Rule):
    """No bare ``.acquire()``/``.release()`` on threading primitives."""

    name = "lock-with-only"
    rationale = (
        "a bare acquire without a finally leaves the lock held forever "
        "on any exception raised before the matching release"
    )
    hint = "replace the acquire/release pair with a `with lock:` block"

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        for call in _calls(context.tree):
            name = _call_name(call)
            if name not in ("acquire", "release"):
                continue
            yield self.diagnostic(
                context,
                call,
                f"bare .{name}() call outside a `with` block",
            )


@register
class InjectableClockRule(Rule):
    """Kernel/engine/trace modules read time only through an
    injectable clock parameter."""

    name = "injectable-clock"
    rationale = (
        "direct wall-clock reads make span trees and queue-wait "
        "telemetry non-deterministic; every timed component takes an "
        "injectable clock so tests drive a counting clock instead"
    )
    hint = (
        "take a `clock: Callable[[], float]` parameter defaulting to "
        "time.perf_counter (referencing the function is fine; calling "
        "it inline is not)"
    )
    paths = (
        "*/core/*.py",
        "*/engine/*.py",
        "*/trace/*.py",
        "*/serve/*.py",
        "*/calibrate/*.py",
    )

    _CLOCKS = frozenset(
        {"time", "perf_counter", "monotonic", "perf_counter_ns", "monotonic_ns"}
    )

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        imported = self._imported_clocks(context.tree)
        for call in _calls(context.tree):
            func = call.func
            flagged: str | None = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in self._CLOCKS
            ):
                flagged = f"time.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in imported:
                flagged = f"time.{imported[func.id]}"
            if flagged is not None:
                yield self.diagnostic(
                    context,
                    call,
                    f"direct {flagged}() call; clocks must be injected",
                )

    def _imported_clocks(self, tree: ast.Module) -> dict[str, str]:
        out: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._CLOCKS:
                        out[alias.asname or alias.name] = alias.name
        return out


@register
class ExplicitDtypeRule(Rule):
    """Array constructors in the kernels must pass ``dtype=``."""

    name = "explicit-dtype"
    rationale = (
        "the Section 3 kernels are 64-bit index arithmetic; numpy's "
        "platform-default integer (int32 on Windows) silently corrupts "
        "successor indices above 2**31"
    )
    hint = "pass dtype= explicitly (INDEX_DTYPE for successor arrays)"
    paths = (
        "*/core/*.py",
        "*/engine/workers.py",
        "*/apps/*.py",
        "*/analysis/*.py",
        "*/kernels/*.py",
        "*/bench/*.py",
    )

    #: constructor name -> number of positional args after which the
    #: dtype has been given positionally
    _CONSTRUCTORS = {"empty": 2, "zeros": 2, "ones": 2, "full": 3, "arange": 4}

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        for call in _calls(context.tree):
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
                and func.attr in self._CONSTRUCTORS
            ):
                continue
            if _keyword(call, "dtype") is not None:
                continue
            if len(call.args) >= self._CONSTRUCTORS[func.attr]:
                continue  # dtype given positionally
            yield self.diagnostic(
                context,
                call,
                f"np.{func.attr}(...) without an explicit dtype=",
            )


@register
class FingerprintKeyedCacheRule(Rule):
    """Cache keys may only come from the blessed fingerprint helper."""

    name = "fingerprint-keyed-cache"
    rationale = (
        "engine/cache.py's fingerprint() is the one digest that keys "
        "results; an ad-hoc key collides across structurally different "
        "problems and poisons every later hit"
    )
    hint = "derive the key with repro.engine.cache.fingerprint(...)"
    paths = ("*/engine/*.py",)

    _EXEMPT = ("*/engine/cache.py",)

    def applies_to(self, norm_path: str) -> bool:
        from fnmatch import fnmatch

        if any(fnmatch(norm_path, pat) for pat in self._EXEMPT):
            return False
        return super().applies_to(norm_path)

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        for call in _calls(context.tree):
            if _call_name(call) not in ("get", "put") or not call.args:
                continue
            recv = _receiver(call)
            if not self._is_cache(recv):
                continue
            scope: ast.AST = context.enclosing_function(call) or context.tree
            blessed_names, blessed_containers = self._blessings(scope)
            if self._blessed_key(call.args[0], blessed_names, blessed_containers):
                continue
            yield self.diagnostic(
                context,
                call,
                "cache key does not come from the blessed fingerprint() "
                "helper",
            )

    @staticmethod
    def _is_cache(recv: ast.expr | None) -> bool:
        if isinstance(recv, ast.Name):
            return "cache" in recv.id.lower()
        if isinstance(recv, ast.Attribute):
            return "cache" in recv.attr.lower()
        return False

    @staticmethod
    def _is_fingerprint_call(node: ast.expr) -> bool:
        return isinstance(node, ast.Call) and _call_name(node) == "fingerprint"

    def _blessings(self, scope: ast.AST) -> tuple[set[str], set[str]]:
        """Names assigned from ``fingerprint(...)`` and containers whose
        items are such names (one level of taint, same scope)."""
        names: set[str] = set()
        containers: set[str] = set()
        for node in ast.walk(scope):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if value is not None and self._is_fingerprint_call(value):
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        containers.add(target.value.id)
        # second pass: container[...] = blessed_name
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Name)
                and node.value.id in names
            ):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        containers.add(target.value.id)
        return names, containers

    def _blessed_key(
        self,
        key: ast.expr,
        blessed_names: set[str],
        blessed_containers: set[str],
    ) -> bool:
        if self._is_fingerprint_call(key):
            return True
        if isinstance(key, ast.Name) and key.id in blessed_names:
            return True
        if (
            isinstance(key, ast.Subscript)
            and isinstance(key.value, ast.Name)
            and key.value.id in blessed_containers
        ):
            return True
        return False
