"""The project-invariant rules (see ``docs/static-analysis.md``).

Each rule encodes one invariant that PRs 2-4 established in prose and
that a regression would break silently:

``no-fork``
    forking from the threaded engine driver deadlocked the process
    pool (a forked child can inherit another thread's held lock).
``shm-lifecycle``
    an unowned ``SharedMemory(create=True)`` segment leaks
    ``/dev/shm`` space on every crash path.
``lock-with-only``
    a bare ``acquire`` without a ``finally`` leaves the lock held on
    any exception between it and the ``release``.
``injectable-clock``
    direct wall-clock reads make span trees and queue-wait telemetry
    untestable (and non-deterministic under the counting clock).
``explicit-dtype``
    the paper's Section 3 kernels are 64-bit index arithmetic; a
    platform-dependent default integer (int32 on Windows) silently
    corrupts successor indices above 2**31.
``fingerprint-keyed-cache``
    a result cached under anything but the blessed structural
    fingerprint is a cache-poisoning hazard.

The sanitizer suite (PR 10) added three cross-function rules — static
counterparts to the dynamic detectors in ``repro.sanitize``:

``no-blocking-in-async``
    a blocking call inside an ``async def`` freezes every connection
    the serve loop multiplexes, not just the caller.
``shm-unlink-all-paths``
    a statement that can raise between ``SharedMemory(create=True)``
    and the try/finally (or lease-list transfer) that owns the segment
    leaks it on exactly the paths the finally was written for.
``lock-guard-inference``
    an attribute mutated both under and outside a ``with lock:`` block
    means one of the two sites is wrong about the locking discipline.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from .diagnostics import Diagnostic
from .framework import LintContext, Rule, register

__all__ = [
    "ExplicitDtypeRule",
    "FingerprintKeyedCacheRule",
    "InjectableClockRule",
    "LockGuardInferenceRule",
    "LockWithOnlyRule",
    "NoBlockingInAsyncRule",
    "NoForkRule",
    "ShmLifecycleRule",
    "ShmUnlinkAllPathsRule",
]


def _call_name(node: ast.Call) -> str:
    """Trailing identifier of the called expression (``a.b.c()`` → ``c``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _receiver(node: ast.Call) -> ast.expr | None:
    """The object a method call is made on (``a.b()`` → ``a``)."""
    if isinstance(node.func, ast.Attribute):
        return node.func.value
    return None


def _const_str(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _keyword(node: ast.Call, name: str) -> ast.expr | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register
class NoForkRule(Rule):
    """No ``fork`` start method anywhere under ``engine/``."""

    name = "no-fork"
    rationale = (
        "fork from the multi-threaded engine driver can copy another "
        "thread's held lock into the child, which then deadlocks "
        "before running its first task"
    )
    hint = 'use get_context("forkserver") or get_context("spawn") instead'
    paths = ("*/engine/*.py",)

    _SETTERS = frozenset({"get_context", "set_start_method"})

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        for call in _calls(context.tree):
            name = _call_name(call)
            requested: str | None = None
            if name in self._SETTERS:
                arg = call.args[0] if call.args else _keyword(call, "method")
                requested = _const_str(arg)
            elif _const_str(_keyword(call, "mp_context")) is not None:
                requested = _const_str(_keyword(call, "mp_context"))
            if requested == "fork":
                yield self.diagnostic(
                    context,
                    call,
                    f"{name or 'call'} requests the 'fork' start method "
                    "under engine/",
                )


@register
class ShmLifecycleRule(Rule):
    """Every created shared-memory segment must reach ``unlink``."""

    name = "shm-lifecycle"
    rationale = (
        "a SharedMemory(create=True) segment outlives the process "
        "unless some owner unlinks it; an unowned segment leaks "
        "/dev/shm space on every crash path"
    )
    hint = (
        "bind the segment in a try/finally that unlinks it, or append "
        "it to a lease list an enclosing try/finally releases"
    )

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        for call in _calls(context.tree):
            if _call_name(call) != "SharedMemory":
                continue
            create = _keyword(call, "create")
            if not (isinstance(create, ast.Constant) and create.value is True):
                continue
            if self._owned(context, call):
                continue
            yield self.diagnostic(
                context,
                call,
                "SharedMemory(create=True) is not bound to an owner that "
                "reaches unlink()",
            )

    def _owned(self, context: LintContext, call: ast.Call) -> bool:
        parent = context.parent(call)
        # `with SharedMemory(create=True) as shm:` — the with suite is
        # the owner (still needs an unlink inside, but lifetime is
        # explicit; the finally check below would not see __exit__)
        if isinstance(parent, ast.withitem):
            return True
        if not (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            return False
        bound = parent.targets[0].id
        scope: ast.AST = context.enclosing_function(call) or context.tree
        for other in _calls(scope):
            name = _call_name(other)
            recv = _receiver(other)
            # ownership transfer: `leases.append(shm)` hands the
            # segment to a tracked lease list released in a finally
            if (
                name == "append"
                and len(other.args) == 1
                and isinstance(other.args[0], ast.Name)
                and other.args[0].id == bound
            ):
                return True
            # direct release: `shm.unlink()` inside a finally suite
            if (
                name == "unlink"
                and isinstance(recv, ast.Name)
                and recv.id == bound
                and context.in_finally(other)
            ):
                return True
        return False


@register
class LockWithOnlyRule(Rule):
    """No bare ``.acquire()``/``.release()`` on threading primitives."""

    name = "lock-with-only"
    rationale = (
        "a bare acquire without a finally leaves the lock held forever "
        "on any exception raised before the matching release"
    )
    hint = "replace the acquire/release pair with a `with lock:` block"

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        for call in _calls(context.tree):
            name = _call_name(call)
            if name not in ("acquire", "release"):
                continue
            yield self.diagnostic(
                context,
                call,
                f"bare .{name}() call outside a `with` block",
            )


@register
class InjectableClockRule(Rule):
    """Kernel/engine/trace modules read time only through an
    injectable clock parameter."""

    name = "injectable-clock"
    rationale = (
        "direct wall-clock reads make span trees and queue-wait "
        "telemetry non-deterministic; every timed component takes an "
        "injectable clock so tests drive a counting clock instead"
    )
    hint = (
        "take a `clock: Callable[[], float]` parameter defaulting to "
        "time.perf_counter (referencing the function is fine; calling "
        "it inline is not)"
    )
    paths = (
        "*/core/*.py",
        "*/engine/*.py",
        "*/trace/*.py",
        "*/serve/*.py",
        "*/calibrate/*.py",
        "*/distribute/*.py",
    )

    _CLOCKS = frozenset(
        {"time", "perf_counter", "monotonic", "perf_counter_ns", "monotonic_ns"}
    )

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        imported = self._imported_clocks(context.tree)
        for call in _calls(context.tree):
            func = call.func
            flagged: str | None = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in self._CLOCKS
            ):
                flagged = f"time.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in imported:
                flagged = f"time.{imported[func.id]}"
            if flagged is not None:
                yield self.diagnostic(
                    context,
                    call,
                    f"direct {flagged}() call; clocks must be injected",
                )

    def _imported_clocks(self, tree: ast.Module) -> dict[str, str]:
        out: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._CLOCKS:
                        out[alias.asname or alias.name] = alias.name
        return out


@register
class ExplicitDtypeRule(Rule):
    """Array constructors in the kernels must pass ``dtype=``."""

    name = "explicit-dtype"
    rationale = (
        "the Section 3 kernels are 64-bit index arithmetic; numpy's "
        "platform-default integer (int32 on Windows) silently corrupts "
        "successor indices above 2**31"
    )
    hint = "pass dtype= explicitly (INDEX_DTYPE for successor arrays)"
    paths = (
        "*/core/*.py",
        "*/engine/workers.py",
        "*/apps/*.py",
        "*/analysis/*.py",
        "*/kernels/*.py",
        "*/bench/*.py",
        "*/distribute/*.py",
    )

    #: constructor name -> number of positional args after which the
    #: dtype has been given positionally
    _CONSTRUCTORS = {"empty": 2, "zeros": 2, "ones": 2, "full": 3, "arange": 4}

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        for call in _calls(context.tree):
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
                and func.attr in self._CONSTRUCTORS
            ):
                continue
            if _keyword(call, "dtype") is not None:
                continue
            if len(call.args) >= self._CONSTRUCTORS[func.attr]:
                continue  # dtype given positionally
            yield self.diagnostic(
                context,
                call,
                f"np.{func.attr}(...) without an explicit dtype=",
            )


@register
class FingerprintKeyedCacheRule(Rule):
    """Cache keys may only come from the blessed fingerprint helper."""

    name = "fingerprint-keyed-cache"
    rationale = (
        "engine/cache.py's fingerprint() is the one digest that keys "
        "results; an ad-hoc key collides across structurally different "
        "problems and poisons every later hit"
    )
    hint = "derive the key with repro.engine.cache.fingerprint(...)"
    paths = ("*/engine/*.py",)

    _EXEMPT = ("*/engine/cache.py",)

    def applies_to(self, norm_path: str) -> bool:
        from fnmatch import fnmatch

        if any(fnmatch(norm_path, pat) for pat in self._EXEMPT):
            return False
        return super().applies_to(norm_path)

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        for call in _calls(context.tree):
            if _call_name(call) not in ("get", "put") or not call.args:
                continue
            recv = _receiver(call)
            if not self._is_cache(recv):
                continue
            scope: ast.AST = context.enclosing_function(call) or context.tree
            blessed_names, blessed_containers = self._blessings(scope)
            if self._blessed_key(call.args[0], blessed_names, blessed_containers):
                continue
            yield self.diagnostic(
                context,
                call,
                "cache key does not come from the blessed fingerprint() "
                "helper",
            )

    @staticmethod
    def _is_cache(recv: ast.expr | None) -> bool:
        if isinstance(recv, ast.Name):
            return "cache" in recv.id.lower()
        if isinstance(recv, ast.Attribute):
            return "cache" in recv.attr.lower()
        return False

    @staticmethod
    def _is_fingerprint_call(node: ast.expr) -> bool:
        return isinstance(node, ast.Call) and _call_name(node) == "fingerprint"

    def _blessings(self, scope: ast.AST) -> tuple[set[str], set[str]]:
        """Names assigned from ``fingerprint(...)`` and containers whose
        items are such names (one level of taint, same scope)."""
        names: set[str] = set()
        containers: set[str] = set()
        for node in ast.walk(scope):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if value is not None and self._is_fingerprint_call(value):
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        containers.add(target.value.id)
        # second pass: container[...] = blessed_name
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Name)
                and node.value.id in names
            ):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        containers.add(target.value.id)
        return names, containers

    def _blessed_key(
        self,
        key: ast.expr,
        blessed_names: set[str],
        blessed_containers: set[str],
    ) -> bool:
        if self._is_fingerprint_call(key):
            return True
        if isinstance(key, ast.Name) and key.id in blessed_names:
            return True
        if (
            isinstance(key, ast.Subscript)
            and isinstance(key.value, ast.Name)
            and key.value.id in blessed_containers
        ):
            return True
        return False


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Nodes belonging to ``fn``'s own body, not to nested functions
    (a blocking call inside a nested def does not run on ``fn``'s
    caller unless something invokes it — that call site is analyzed
    separately)."""
    todo = list(ast.iter_child_nodes(fn))
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        todo.extend(ast.iter_child_nodes(node))


def _dotted_text(node: ast.expr | None) -> str:
    """Flatten a Name/Attribute chain to dotted text (best effort)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)).lower()


@register
class NoBlockingInAsyncRule(Rule):
    """No blocking calls inside ``async def`` — directly or one hop
    away through a sync helper in the same module."""

    name = "no-blocking-in-async"
    rationale = (
        "the serve loop multiplexes every connection on one thread; a "
        "single blocking call inside an async def freezes all of them "
        "at once (the stall watchdog catches this at runtime, this "
        "rule catches it in review)"
    )
    hint = (
        "cross into a thread with loop.run_in_executor/asyncio.to_thread, "
        "or use the async equivalent (asyncio.sleep, non-blocking "
        "submit(block=False))"
    )

    _TIME_BLOCKERS = frozenset({"sleep"})
    _OS_BLOCKERS = frozenset({"system", "waitpid", "wait"})
    _SUBPROCESS_BLOCKERS = frozenset({"run", "call", "check_call", "check_output"})

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        time_sleeps = self._imported_time_sleeps(context.tree)
        helpers = self._blocking_helpers(context.tree, time_sleeps)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for sub in _own_nodes(node):
                if not isinstance(sub, ast.Call):
                    continue
                reason = self._blocking_reason(sub, time_sleeps)
                if reason is None:
                    helper = self._helper_target(sub)
                    if helper is not None and helper in helpers:
                        reason = (
                            f"{helper}() blocks ({helpers[helper]} inside it); "
                            "called from an async def"
                        )
                if reason is not None:
                    yield self.diagnostic(
                        context,
                        sub,
                        f"blocking call in async def {node.name}: {reason}",
                    )

    def _imported_time_sleeps(self, tree: ast.Module) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._TIME_BLOCKERS:
                        out.add(alias.asname or alias.name)
        return out

    def _blocking_reason(self, call: ast.Call, time_sleeps: set[str]) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in time_sleeps:
                return "time.sleep()"
            if func.id == "input":
                return "input()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        recv = func.value
        if isinstance(recv, ast.Name):
            if recv.id == "time" and func.attr in self._TIME_BLOCKERS:
                return "time.sleep()"
            if recv.id == "os" and func.attr in self._OS_BLOCKERS:
                return f"os.{func.attr}()"
            if recv.id == "subprocess" and func.attr in self._SUBPROCESS_BLOCKERS:
                return f"subprocess.{func.attr}()"
        if func.attr == "result" and not call.args and not call.keywords:
            return ".result() on a future (await it instead)"
        if func.attr == "run_batch":
            return "Engine.run_batch() runs kernels on the event loop"
        if func.attr == "submit" and "queue" in _dotted_text(recv):
            block = _keyword(call, "block")
            if not (isinstance(block, ast.Constant) and block.value is False):
                return "queue .submit() may block on backpressure; pass block=False"
        return None

    def _blocking_helpers(
        self, tree: ast.Module, time_sleeps: set[str]
    ) -> dict[str, str]:
        """Sync functions in this module whose bodies block directly —
        the one-hop cross-function half of the rule."""
        out: dict[str, str] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            for sub in _own_nodes(node):
                if isinstance(sub, ast.Call):
                    reason = self._blocking_reason(sub, time_sleeps)
                    if reason is not None:
                        out[node.name] = reason
                        break
        return out

    @staticmethod
    def _helper_target(call: ast.Call) -> str | None:
        """`helper()` or `self.helper()` — names resolvable in-module."""
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return func.attr
        return None


@register
class ShmUnlinkAllPathsRule(Rule):
    """The unlink of a created segment must dominate every exit path:
    nothing that can raise may sit between ``SharedMemory(create=True)``
    and the try/finally (or lease transfer) that owns the segment."""

    name = "shm-unlink-all-paths"
    rationale = (
        "shm-lifecycle proves an owner exists; this rule proves the "
        "owner is reached on every path — a call that raises between "
        "segment creation and the protecting try/finally leaks the "
        "segment on exactly the error paths the finally was written for"
    )
    hint = (
        "move the creation to the last statement before the try (or "
        "append it to the lease list immediately); do the risky work "
        "inside the protected region"
    )

    _RISKY_STMTS = (ast.Return, ast.Raise, ast.If, ast.For, ast.While,
                    ast.Break, ast.Continue, ast.With, ast.Match)

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        for call in _calls(context.tree):
            if _call_name(call) != "SharedMemory":
                continue
            create = _keyword(call, "create")
            if not (isinstance(create, ast.Constant) and create.value is True):
                continue
            parent = context.parent(call)
            if not (
                isinstance(parent, ast.Assign)
                and len(parent.targets) == 1
                and isinstance(parent.targets[0], ast.Name)
            ):
                continue  # with-item or unowned: shm-lifecycle's domain
            bound = parent.targets[0].id
            if self._born_protected(context, parent, bound):
                continue
            suite = self._enclosing_suite(context, parent)
            if suite is None:
                continue
            risky = self._gap_risk(suite, parent, bound)
            if risky is not None:
                yield self.diagnostic(
                    context,
                    risky,
                    f"statement between SharedMemory(create=True) -> {bound} "
                    "and its protecting try/finally can raise and leak the "
                    "segment",
                )

    @staticmethod
    def _mentions(node: ast.AST, bound: str) -> bool:
        return any(
            isinstance(sub, ast.Name) and sub.id == bound for sub in ast.walk(node)
        )

    def _born_protected(
        self, context: LintContext, assign: ast.Assign, bound: str
    ) -> bool:
        """Creation already inside a try whose finally mentions the
        binding (owner wraps the birth)."""
        cur: ast.AST | None = assign
        while cur is not None:
            parent = context.parent(cur)
            if (
                isinstance(parent, ast.Try)
                and parent.finalbody
                and any(cur is stmt or _contains_node(stmt, cur) for stmt in parent.body)
                and any(self._mentions(stmt, bound) for stmt in parent.finalbody)
            ):
                return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            cur = parent
        return False

    @staticmethod
    def _enclosing_suite(context: LintContext, stmt: ast.stmt) -> list[ast.stmt] | None:
        parent = context.parent(stmt)
        if parent is None:
            return None
        for field_name in ("body", "orelse", "finalbody"):
            suite = getattr(parent, field_name, None)
            if isinstance(suite, list) and stmt in suite:
                return suite
        return None

    def _gap_risk(
        self, suite: list[ast.stmt], assign: ast.stmt, bound: str
    ) -> ast.stmt | None:
        """First risky statement between the creation and its protector,
        or None when the protector comes first (or never appears — then
        shm-lifecycle owns the verdict)."""
        start = suite.index(assign) + 1
        tail = suite[start:]
        if not any(self._is_protector(stmt, bound) for stmt in tail):
            return None  # no owner anywhere: shm-lifecycle's verdict
        for stmt in tail:
            if self._is_protector(stmt, bound):
                return None
            if isinstance(stmt, self._RISKY_STMTS):
                return stmt
            if self._is_transfer(stmt, bound):
                continue
            if any(isinstance(sub, ast.Call) for sub in ast.walk(stmt)):
                return stmt
        return None

    def _is_protector(self, stmt: ast.stmt, bound: str) -> bool:
        if self._is_transfer(stmt, bound):
            return True
        return (
            isinstance(stmt, ast.Try)
            and bool(stmt.finalbody)
            and self._mentions(stmt, bound)
        )

    @staticmethod
    def _is_transfer(stmt: ast.stmt, bound: str) -> bool:
        """``leases.append(shm)`` — ownership handed to a lease list."""
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and _call_name(stmt.value) == "append"
            and len(stmt.value.args) == 1
            and isinstance(stmt.value.args[0], ast.Name)
            and stmt.value.args[0].id == bound
        )


@register
class LockGuardInferenceRule(Rule):
    """An attribute mutated both under and outside a ``with lock:``
    block is evidence that one of the sites forgot the lock."""

    name = "lock-guard-inference"
    rationale = (
        "the locking discipline for shared attributes is implicit in "
        "the with-blocks around their writes; a class that mutates the "
        "same attribute both under a lock and bare has (at least) one "
        "site racing the others — the dynamic race detector proves it "
        "at runtime, this rule flags it from the source alone"
    )
    hint = (
        "wrap the bare mutation in the same `with lock:` (or `with "
        "guarded(lock, ...):`) the other sites use, or document the "
        "attribute as single-threaded and stop locking it elsewhere"
    )
    paths = (
        "*/engine/*.py",
        "*/serve/*.py",
        "*/distribute/*.py",
        "*/calibrate/*.py",
    )

    _CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})
    _LOCKISH = ("lock", "mutex", "cv", "cond", "guard", "gate")

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(context, node)

    def _check_class(
        self, context: LintContext, cls: ast.ClassDef
    ) -> Iterable[Diagnostic]:
        locked: dict[str, list[ast.AST]] = {}
        bare: dict[str, list[ast.AST]] = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in self._CONSTRUCTORS:
                continue
            for site, attr in self._self_mutations(method):
                bucket = locked if self._under_lock(context, site, method) else bare
                bucket.setdefault(attr, []).append(site)
        for attr, sites in sorted(bare.items()):
            if attr not in locked:
                continue
            for site in sites:
                yield self.diagnostic(
                    context,
                    site,
                    f"self.{attr} is mutated here without the lock that "
                    f"guards its other mutation sites in {cls.name}",
                )

    def _self_mutations(
        self, method: ast.AST
    ) -> Iterator[tuple[ast.AST, str]]:
        for node in _own_nodes(method):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Tuple):
                    for elt in target.elts:
                        attr = self._self_attr(elt)
                        if attr is not None:
                            yield node, attr
                else:
                    attr = self._self_attr(target)
                    if attr is not None:
                        yield node, attr

    @staticmethod
    def _self_attr(target: ast.expr) -> str | None:
        # `self.x = ...` and `self.x[...] = ...` both mutate x
        if isinstance(target, ast.Subscript):
            target = target.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        return None

    def _under_lock(
        self, context: LintContext, site: ast.AST, method: ast.AST
    ) -> bool:
        for anc in context.ancestors(site):
            if anc is method:
                return False
            # sync with-blocks only: `async with` guards the event loop's
            # cooperative tasks, not cross-thread attribute access
            if isinstance(anc, ast.With) and any(
                self._lockish(item.context_expr) for item in anc.items
            ):
                return True
        return False

    def _lockish(self, expr: ast.expr) -> bool:
        for node in ast.walk(expr):
            ident = ""
            if isinstance(node, ast.Name):
                ident = node.id
            elif isinstance(node, ast.Attribute):
                ident = node.attr
            lowered = ident.lower()
            if lowered and any(token in lowered for token in self._LOCKISH):
                return True
        return False


def _contains_node(root: ast.AST, target: ast.AST) -> bool:
    return any(node is target for node in ast.walk(root))
