"""Project-invariant static analysis (``repro.lint``).

PRs 2-4 accumulated concurrency and numeric invariants that existed
only as prose — never ``fork`` from the threaded driver, every
``SharedMemory(create=True)`` owned and unlinked by its creator,
injectable clocks only, explicit dtypes in the kernels, cache keys
only from the blessed fingerprint helper.  This package turns each of
those invariants into an AST-based rule that CI enforces on every run
(``repro-c90 lint src``), so review memory is no longer the
enforcement mechanism.

Layout
------

``framework``
    :class:`Rule` base class, the rule registry, and the
    :class:`LintContext` each rule receives (parsed AST + source).
``rules``
    The six project rules (see ``docs/static-analysis.md`` for the
    catalog and rationale).
``suppress``
    ``# repolint: disable=RULE`` comment handling, including the
    unused-suppression check that keeps stale disables from rotting.
``runner``
    File collection and rule execution (:func:`lint_paths`).
``report``
    Human and JSON reporters.
``lockorder``
    The *runtime* companion: an instrumented lock wrapper that records
    the lock acquisition-order graph and raises on cycles, used by the
    engine-concurrency test suite to race-audit the thread/process
    drivers.
"""

from .diagnostics import Diagnostic
from .framework import LintContext, Rule, all_rules, get_rule, rule_names
from .lockorder import (
    CheckedLock,
    LockOrderError,
    LockOrderGraph,
    instrumented_locks,
)
from .report import render_human, render_json
from .runner import LintResult, lint_file, lint_paths, lint_source
from .suppress import Suppression, find_suppressions

__all__ = [
    "CheckedLock",
    "Diagnostic",
    "LintContext",
    "LintResult",
    "LockOrderError",
    "LockOrderGraph",
    "Rule",
    "Suppression",
    "all_rules",
    "find_suppressions",
    "get_rule",
    "instrumented_locks",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_human",
    "render_json",
    "rule_names",
]
