"""``# repolint: disable=RULE`` suppression comments.

A trailing (or whole-line) comment of the form::

    risky_call()  # repolint: disable=lock-with-only
    # repolint: disable=explicit-dtype,no-fork

suppresses diagnostics of the named rule(s) on that physical line.  A
whole-line disable comment applies to the *next* code line as well, so
a suppression can sit above the statement it covers without sharing
its line.

Suppressions are themselves checked: a disable comment that suppressed
nothing in a run reports an ``unused-suppression`` diagnostic, so
stale disables cannot silently accumulate and soften the gate.  The
unused check only considers rules that were actually selected for the
run — running a subset of rules never flags the other rules'
suppressions as stale.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .diagnostics import Diagnostic

__all__ = [
    "UNUSED_SUPPRESSION",
    "Suppression",
    "apply_suppressions",
    "find_suppressions",
]

#: pseudo-rule name carried by stale-disable diagnostics
UNUSED_SUPPRESSION = "unused-suppression"

_DISABLE_RE = re.compile(
    r"#\s*repolint:\s*disable=(?P<rules>[A-Za-z0-9_,\-\s]+)"
)


@dataclass
class Suppression:
    """One parsed disable comment.

    ``line`` is where the comment sits; ``covers`` is the set of
    physical lines it silences (its own line, plus the next code line
    for whole-line comments).  ``used`` accumulates the rules that
    actually had a diagnostic suppressed, for the unused check.
    """

    path: str
    line: int
    col: int
    rules: tuple[str, ...]
    covers: tuple[int, ...]
    used: set[str] = field(default_factory=set)


def find_suppressions(path: str, source: str) -> list[Suppression]:
    """Scan one file's comments for ``repolint: disable`` markers.

    Uses the tokenizer, not a line regex, so a marker inside a string
    literal is never misread as a suppression.
    """
    out: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover - runner
        return out  # parse errors are reported by the runner instead
    # line -> True when any non-comment token starts there (code lines)
    code_lines: set[int] = set()
    for tok in tokens:
        if tok.type not in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            code_lines.add(tok.start[0])
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DISABLE_RE.search(tok.string)
        if match is None:
            continue
        rules = tuple(
            name.strip()
            for name in match.group("rules").split(",")
            if name.strip()
        )
        if not rules:
            continue
        line = tok.start[0]
        covers = [line]
        if line not in code_lines:
            # whole-line comment: also cover the next code line below
            following = [ln for ln in code_lines if ln > line]
            if following:
                covers.append(min(following))
        out.append(
            Suppression(
                path=path,
                line=line,
                col=tok.start[1],
                rules=rules,
                covers=tuple(covers),
            )
        )
    return out


def apply_suppressions(
    diagnostics: list[Diagnostic],
    suppressions: list[Suppression],
    selected_rules: set[str],
    check_unused: bool = True,
) -> list[Diagnostic]:
    """Filter suppressed diagnostics; append stale-disable findings.

    Every diagnostic whose ``(line, rule)`` is covered by a suppression
    is dropped (and the suppression marked used).  With
    ``check_unused``, each suppression naming a *selected* rule that
    suppressed nothing becomes an ``unused-suppression`` diagnostic —
    the gate stays exactly as strict as the set of disables that still
    earn their keep.
    """
    by_line: dict[int, list[Suppression]] = {}
    for sup in suppressions:
        for line in sup.covers:
            by_line.setdefault(line, []).append(sup)

    kept: list[Diagnostic] = []
    for diag in diagnostics:
        suppressed = False
        for sup in by_line.get(diag.line, ()):
            if diag.rule in sup.rules:
                sup.used.add(diag.rule)
                suppressed = True
        if not suppressed:
            kept.append(diag)

    if check_unused:
        for sup in suppressions:
            stale = [
                rule
                for rule in sup.rules
                if rule in selected_rules and rule not in sup.used
            ]
            for rule in stale:
                kept.append(
                    Diagnostic(
                        path=sup.path,
                        line=sup.line,
                        col=sup.col,
                        rule=UNUSED_SUPPRESSION,
                        message=(
                            f"suppression of {rule!r} matched no diagnostic"
                        ),
                        hint="delete the stale `# repolint: disable` comment",
                    )
                )
    return kept
