"""Human and JSON reporters for a :class:`~repro.lint.runner.LintResult`.

The human form is one ``path:line:col: rule: message`` line per
finding with the fix-it hint indented below it.  The JSON form is the
machine-readable artifact CI uploads: stable keys, diagnostics in
reading order, plus the run's file and rule inventory so a consumer
can tell "clean" apart from "didn't look".
"""

from __future__ import annotations

import json
from typing import Any

from .runner import LintResult

__all__ = ["render_human", "render_json"]


def render_human(result: LintResult) -> str:
    if result.clean:
        return (
            f"clean: {len(result.files)} file(s), "
            f"{len(result.rules)} rule(s), no findings"
        )
    lines: list[str] = []
    for diag in result.diagnostics:
        lines.append(diag.format())
        if diag.hint:
            lines.append(f"    hint: {diag.hint}")
    lines.append(
        f"{len(result.diagnostics)} finding(s) in {len(result.files)} file(s)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload: dict[str, Any] = {
        "clean": result.clean,
        "files": len(result.files),
        "rules": result.rules,
        "findings": len(result.diagnostics),
        "diagnostics": [diag.as_dict() for diag in result.diagnostics],
    }
    return json.dumps(payload, indent=2)
