"""Rule base class, registry, and the per-file lint context.

A rule is a small class: a unique kebab-case ``name``, a one-line
``rationale``, a default ``hint`` (the fix-it suggestion attached to
its diagnostics), a set of ``paths`` glob patterns selecting the files
it applies to, and a ``check(context)`` generator yielding
:class:`~repro.lint.diagnostics.Diagnostic` records.

Rules register themselves with the :func:`register` decorator; the
runner and the CLI discover them through :func:`all_rules`.  Adding a
rule is therefore one class in ``rules.py`` plus a fixture in the
bad-fixture corpus — see ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import PurePosixPath
from collections.abc import Iterable, Iterator
from typing import Any

from .diagnostics import Diagnostic

__all__ = [
    "LintContext",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "rule_names",
]


@dataclass
class LintContext:
    """Everything a rule may inspect about one file.

    ``path`` is the path as given to the runner; ``norm_path`` is its
    POSIX form used for rule applicability matching, so path patterns
    behave identically on every platform.  ``tree`` is the parsed
    module AST (parents are linked — every node carries a
    ``_lint_parent`` attribute), ``source`` the raw text and ``lines``
    its splitlines.
    """

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()
        _link_parents(self.tree)

    @property
    def norm_path(self) -> str:
        return str(PurePosixPath(self.path.replace("\\", "/")))

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (``None`` for the module)."""
        return getattr(node, "_lint_parent", None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The innermost function definition containing ``node``."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def in_finally(self, node: ast.AST) -> bool:
        """True when ``node`` sits inside some ``finally`` suite."""
        cur: ast.AST | None = node
        while cur is not None:
            parent = self.parent(cur)
            if isinstance(parent, ast.Try) and any(
                cur is stmt or _contains(stmt, cur) for stmt in parent.finalbody
            ):
                return True
            cur = parent
        return False


def _contains(root: ast.AST, target: ast.AST) -> bool:
    return any(node is target for node in ast.walk(root))


def _link_parents(tree: ast.AST) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._lint_parent = parent  # type: ignore[attr-defined]


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`.
    ``paths`` holds glob patterns matched against the *normalized
    POSIX* path (``fnmatch``); an empty tuple means every file.
    """

    #: unique kebab-case identifier (used in reports and suppressions)
    name: str = ""
    #: one-line reason the rule exists (shown by ``lint --list-rules``)
    rationale: str = ""
    #: default fix-it hint attached to this rule's diagnostics
    hint: str = ""
    #: applicability globs over the normalized path; empty = all files
    paths: tuple[str, ...] = ()

    def applies_to(self, norm_path: str) -> bool:
        if not self.paths:
            return True
        return any(fnmatch(norm_path, pat) for pat in self.paths)

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # helpers shared by the concrete rules
    # ------------------------------------------------------------------

    def diagnostic(
        self,
        context: LintContext,
        node: ast.AST,
        message: str,
        hint: str | None = None,
        **data: Any,
    ) -> Diagnostic:
        return Diagnostic(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
            hint=self.hint if hint is None else hint,
            data=data,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index one rule by name."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"rule {cls.__name__} must set a name")
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {instance.name!r}")
    _REGISTRY[instance.name] = instance
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in name order."""
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def rule_names() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_rule(name: str) -> Rule:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown rule {name!r}; known rules: {', '.join(sorted(_REGISTRY))}"
        ) from None


def _ensure_loaded() -> None:
    # rules live in a sibling module that registers on import; imported
    # lazily so framework <-> rules stays acyclic
    from . import rules  # noqa: F401
