"""Runtime lock-order checking for the engine's concurrent drivers.

Static rules can prove a lock is only taken through ``with``; they
cannot prove two locks are always taken in the same *order* — the
classic AB/BA deadlock needs runtime observation.  This module wraps
``threading`` locks in :class:`CheckedLock`, records the acquisition-
order graph in a shared :class:`LockOrderGraph` (an edge A→B means
"some thread acquired B while holding A"), and raises
:class:`LockOrderError` the moment an acquisition would close a cycle
— i.e. at the first run that *could* deadlock, not the unlucky run
that does.

The engine-concurrency test suite enables this via
:func:`instrumented_locks`, which swaps the ``threading`` module seen
by the engine modules for a proxy whose ``Lock``/``RLock`` factories
produce checked locks.  Only the named modules are affected — the
interpreter's own locks (thread pools, condition variables) stay
untouched, so the audit measures the engine's ordering discipline and
nothing else.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from types import ModuleType, TracebackType
from collections.abc import Iterator
from typing import Any

__all__ = [
    "CheckedLock",
    "LockOrderError",
    "LockOrderGraph",
    "instrumented_locks",
]


class LockOrderError(RuntimeError):
    """An acquisition would create a cyclic lock order.

    ``cycle`` is the witness path ``[B, …, A]`` already in the graph
    that the offending edge ``A→B`` would close into a cycle.
    """

    def __init__(self, acquiring: str, held: str, cycle: list[str]):
        self.acquiring = acquiring
        self.held = held
        self.cycle = list(cycle)
        path = " -> ".join([*cycle, cycle[0]]) if cycle else f"{acquiring}"
        super().__init__(
            f"lock-order violation: acquiring {acquiring!r} while holding "
            f"{held!r} closes the cycle {path}"
        )


class LockOrderGraph:
    """Thread-safe acquisition-order graph.

    Nodes are lock names; a directed edge ``a -> b`` records that some
    thread acquired ``b`` while holding ``a``.  Edges are checked as
    they are added: if a path ``b ⇝ a`` already exists, the new edge
    would close a cycle and :class:`LockOrderError` is raised at the
    acquire site.  Because every edge is validated on entry, the graph
    is acyclic by construction — :meth:`assert_acyclic` re-verifies
    that invariant for test teardown.
    """

    def __init__(self) -> None:
        self._edges: dict[str, set[str]] = {}
        self._local = threading.local()
        # internal bookkeeping mutex: a plain, unchecked lock — the
        # checker must not audit itself
        self._mutex = threading.Lock()
        self.acquisitions = 0

    # ------------------------------------------------------------------
    # per-thread held stack
    # ------------------------------------------------------------------

    def _held(self) -> list[str]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = []
        return held

    def held_by_current_thread(self) -> tuple[str, ...]:
        """Names of locks the calling thread currently holds."""
        return tuple(self._held())

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record_acquire(self, name: str) -> None:
        """Note a successful acquisition of ``name`` by this thread.

        Adds an edge from every currently-held lock to ``name`` and
        raises :class:`LockOrderError` if any edge closes a cycle.
        The offending edge is *not* added, so a caught violation does
        not corrupt the graph for later assertions.
        """
        held = self._held()
        with self._mutex:
            self.acquisitions += 1
            for holder in held:
                if holder == name:
                    continue  # reentrant (RLock) re-acquire
                cycle = self._path(name, holder)
                if cycle is not None:
                    raise LockOrderError(name, holder, cycle)
                self._edges.setdefault(holder, set()).add(name)
                self._edges.setdefault(name, set())
            self._edges.setdefault(name, set())
        held.append(name)

    def record_release(self, name: str) -> None:
        """Note a release; tolerates out-of-LIFO-order releases."""
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return

    def _path(self, src: str, dst: str) -> list[str] | None:
        """DFS path ``src ⇝ dst`` in the current graph (caller holds
        the mutex), or ``None``."""
        stack: list[tuple[str, list[str]]] = [(src, [src])]
        seen = {src}
        while stack:
            node, path = stack.pop()
            if node == dst:
                return path
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, [*path, nxt]))
        return None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def edges(self) -> dict[str, frozenset[str]]:
        """Snapshot of the recorded order graph."""
        with self._mutex:
            return {a: frozenset(bs) for a, bs in self._edges.items()}

    def edge_count(self) -> int:
        with self._mutex:
            return sum(len(bs) for bs in self._edges.values())

    def assert_acyclic(self) -> None:
        """Re-verify the no-cycle invariant (test teardown hook)."""
        edges = self.edges()
        state: dict[str, int] = {}  # 0 in progress, 1 done

        def visit(node: str, trail: list[str]) -> None:
            state[node] = 0
            trail.append(node)
            for nxt in edges.get(node, ()):
                if state.get(nxt) == 0:
                    raise LockOrderError(nxt, node, trail[trail.index(nxt):])
                if nxt not in state:
                    visit(nxt, trail)
            trail.pop()
            state[node] = 1

        for root in edges:
            if root not in state:
                visit(root, [])


class CheckedLock:
    """A ``threading.Lock``/``RLock`` wrapper that reports to a graph.

    Supports the full lock protocol (``with``, ``acquire`` with
    blocking/timeout, ``release``, ``locked``).  Only *successful*
    acquisitions are recorded — a failed try-acquire establishes no
    ordering.  The direct ``acquire``/``release`` delegation below is
    exactly what the static ``lock-with-only`` rule exists to forbid
    in ordinary code, hence the inline suppressions.
    """

    def __init__(
        self,
        graph: LockOrderGraph,
        name: str,
        inner: Any = None,
        reentrant: bool = False,
    ):
        self._graph = graph
        self.name = name
        if inner is None:
            inner = threading.RLock() if reentrant else threading.Lock()
        self._inner = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)  # repolint: disable=lock-with-only
        if got:
            try:
                self._graph.record_acquire(self.name)
            except LockOrderError:
                self._inner.release()  # repolint: disable=lock-with-only
                raise
            # feed the sanitizer's happens-before model too: a module
            # under instrumented_locks gets its lock edges for free
            from ..sanitize.runtime import lock_acquired

            lock_acquired(self)
        return got

    def release(self) -> None:
        self._graph.record_release(self.name)
        from ..sanitize.runtime import lock_released

        lock_released(self)
        self._inner.release()  # repolint: disable=lock-with-only

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        return bool(inner_locked()) if callable(inner_locked) else False

    def __enter__(self) -> bool:
        return self.acquire()  # repolint: disable=lock-with-only

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.release()  # repolint: disable=lock-with-only
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckedLock({self.name!r})"


class _ThreadingProxy(ModuleType):
    """Stand-in for the ``threading`` module inside instrumented
    modules: ``Lock``/``RLock`` construct checked locks named after
    their creation site; everything else delegates to the real module.
    """

    def __init__(self, graph: LockOrderGraph, site: str):
        super().__init__("threading")
        self._graph = graph
        self._site = site
        self._counter = 0
        self._counter_mutex = threading.Lock()

    def _next_name(self, kind: str) -> str:
        with self._counter_mutex:
            self._counter += 1
            return f"{self._site}.{kind}#{self._counter}"

    def Lock(self) -> CheckedLock:  # noqa: N802 - mirrors threading.Lock
        return CheckedLock(self._graph, self._next_name("Lock"))

    def RLock(self) -> CheckedLock:  # noqa: N802 - mirrors threading.RLock
        return CheckedLock(self._graph, self._next_name("RLock"), reentrant=True)

    def __getattr__(self, attr: str) -> Any:
        return getattr(threading, attr)


@contextmanager
def instrumented_locks(
    *modules: ModuleType, graph: LockOrderGraph | None = None
) -> Iterator[LockOrderGraph]:
    """Audit every lock the given modules create while the context is
    active.

    Each module's module-level ``threading`` binding is replaced with a
    :class:`_ThreadingProxy`, so ``threading.Lock()`` calls made by
    code in that module produce checked locks reporting into one
    shared :class:`LockOrderGraph`.  Existing lock instances are
    untouched — instrument *before* constructing the engine under
    test.  The original bindings are restored on exit, even on error.

    Usage (the engine-concurrency suite)::

        with instrumented_locks(engine_mod, workers_mod, cache_mod) as graph:
            with Engine(executor="threads") as engine:
                ...
        assert graph.acquisitions > 0
        graph.assert_acyclic()
    """
    graph = graph if graph is not None else LockOrderGraph()
    saved: list[tuple[ModuleType, Any]] = []
    try:
        for module in modules:
            if not hasattr(module, "threading"):
                raise ValueError(
                    f"module {module.__name__!r} has no module-level "
                    "'threading' binding to instrument"
                )
            saved.append((module, module.threading))
            module.threading = _ThreadingProxy(graph, module.__name__)
        yield graph
    finally:
        for module, original in saved:
            module.threading = original
