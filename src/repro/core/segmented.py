"""Segmented scans: operator lifting for per-segment prefix sums.

The classic trick from the scan literature (paper reference [6]): to
scan many segments laid head-to-tail in one list without letting values
flow across boundaries, lift the operator to (flag, value) pairs::

    (f₁, v₁) ⊕̂ (f₂, v₂) = (f₁ ∨ f₂,  v₂ if f₂ else v₁ ⊕ v₂)

The lifted operator is associative whenever ⊕ is, so *any* of this
library's scan algorithms — serial, Wyllie, random mate, the sublist
algorithm — segments correctly without modification.  A flag marks the
first node of a segment.

This gives a second route to multi-list scans, complementary to
``core.forest``: the forest scan keeps lists physically separate, while
segmented scan concatenates them and separates logically.
"""

from __future__ import annotations


import numpy as np

from ..lists.generate import LinkedList
from .list_scan import list_scan
from .operators import Operator, SUM, get_operator

__all__ = [
    "segmented_operator",
    "pack_segmented_values",
    "segmented_list_scan",
]


def segmented_operator(op: Operator | str) -> Operator:
    """Lift a scalar operator to segmented (flag, value) pairs.

    Values are rows ``(flag, value)`` with flag ∈ {0, 1}.  The lifted
    identity is ``(0, identity)``.  Only scalar base operators are
    supported (the flag occupies the extra component).
    """
    base = get_operator(op)
    if base.value_width:
        raise ValueError("segmented lifting requires a scalar base operator")

    def combine(left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = np.asarray(left)
        right = np.asarray(right)
        out = np.empty(
            np.broadcast_shapes(left.shape, right.shape), dtype=left.dtype
        )
        f1, v1 = left[..., 0], left[..., 1]
        f2, v2 = right[..., 0], right[..., 1]
        out[..., 0] = np.maximum(f1, f2)
        crossed = base.combine(v1, v2)
        out[..., 1] = np.where(f2 != 0, v2, crossed)
        return out

    ident_val = base.identity
    if ident_val is None:
        # dtype-dependent identity (min/max): defer via a subclass-like
        # closure is overkill; use int64 extreme, adequate for the
        # integer workloads this library scans.
        ident_val = int(base.identity_for(np.int64))
    return Operator(
        name=f"segmented_{base.name}",
        combine=combine,
        identity=(0, ident_val),
        value_width=2,
        commutative=False,
    )


def pack_segmented_values(
    values: np.ndarray, segment_heads: np.ndarray
) -> np.ndarray:
    """Build the (flag, value) rows for a segmented scan.

    ``segment_heads`` are node indices that start a new segment (the
    list head is implicitly a segment start and need not be listed).
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("segmented packing requires scalar values")
    n = values.shape[0]
    rows = np.zeros((n, 2), dtype=values.dtype)
    rows[:, 1] = values
    rows[np.asarray(segment_heads), 0] = 1
    return rows


def segmented_list_scan(
    lst: LinkedList,
    segment_heads: np.ndarray,
    op: Operator | str = SUM,
    inclusive: bool = False,
    algorithm: str = "sublist",
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Per-segment exclusive (or inclusive) scan along one linked list.

    Segments are delimited by ``segment_heads`` (plus the list head);
    each segment scans independently, and the result is the plain value
    column (flags stripped).  The exclusive scan of a segment's first
    node is the operator identity.
    """
    base = get_operator(op)
    seg_op = segmented_operator(base)
    rows = pack_segmented_values(lst.values, segment_heads)
    seg_list = LinkedList(lst.next, lst.head, rows)
    out = list_scan(
        seg_list, seg_op, inclusive=inclusive, algorithm=algorithm, rng=rng
    )
    result = out[:, 1].copy()
    if not inclusive:
        # an exclusive lifted scan hands each segment head the previous
        # segment's total; the segment semantics want the identity there
        ident = base.identity_for(lst.values.dtype)
        heads = np.asarray(segment_heads)
        result[heads] = ident
        result[lst.head] = ident
    return result
