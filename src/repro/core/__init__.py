"""The paper's primary contribution: the sublist algorithm, operators,
pack scheduling, tuning, and the public dispatch API."""

from .list_scan import ALGORITHMS, list_rank, list_scan
from .operators import (
    AFFINE,
    AND,
    BUILTIN_OPERATORS,
    MAX,
    MIN,
    OR,
    PROD,
    SUM,
    XOR,
    Operator,
    get_operator,
)
from .schedule import (
    ScheduleIterator,
    every_step_schedule,
    integer_gaps,
    numeric_optimal_schedule,
    optimal_schedule,
    slope_condition_residuals,
    uniform_schedule,
)
from .early_reconnect import early_reconnect_list_scan
from .forest import (
    forest_list_scan,
    forest_tails,
    serial_forest_scan,
    wyllie_forest_scan,
)
from .stats import ScanStats
from .sublist import SublistConfig, choose_splitters, sublist_list_rank, sublist_list_scan
from .tuning import (
    PolylogFit,
    SERIAL_CUTOFF,
    WYLLIE_CUTOFF,
    default_parameters,
    fit_polylog,
    tune_grid,
    tuned_parameters,
)
from .segmented import (
    pack_segmented_values,
    segmented_list_scan,
    segmented_operator,
)
