"""Early reconnection — the paper's Section 6 future-work variant.

"A large part of the performance loss is due to short vector lengths.
… For these machines it may be better to reconnect the sublists into a
single reduced sublist before all the processors have reached the
tails.  The elements still remaining in the lists could then be packed
into contiguous memory and then Phase 1 recursively applied.  Keeping
track of which elements have been processed and which have not,
requires extra book keeping that would slow down the main ranking
portion of the algorithm.  But the trade off may be worth it if the
vector machine has long vector half lengths."

This module implements exactly that:

* Phases 1 and 3 run the normal vector traversal **with visited-node
  bookkeeping** (the extra scatter per step the paper warns about);
* when the live vector drops to ``switch_count`` virtual processors,
  the unconsumed straggler *suffixes* — which form a forest — are
  **compacted into contiguous memory** and handed to
  :func:`repro.core.forest.forest_list_scan`, which re-splits them into
  fresh sublists and processes them at full vector width;
* the forest scan is seeded with each straggler's partial sum, so its
  results are the exclusive scans *within* each original sublist; the
  Phase-2 carries are folded in afterwards using the forest's
  list-id by-product.

Because Phases 1 and 3 share the pack schedule, both phases switch at
the same traversal depth with the identical straggler set, so the
Phase-1 forest scan's outputs are exactly what Phase 3 needs.
"""

from __future__ import annotations


import numpy as np

from ..baselines.serial import serial_list_scan
from ..baselines.wyllie import wyllie_list_scan
from ..lists.generate import INDEX_DTYPE, LinkedList
from .forest import forest_list_scan, forest_tails
from .operators import Operator, SUM, get_operator
from .schedule import ScheduleIterator, optimal_schedule
from .stats import ScanStats
from .sublist import SublistConfig, choose_splitters, _resolve_parameters

__all__ = ["early_reconnect_list_scan"]


def early_reconnect_list_scan(
    lst: LinkedList,
    op: Operator | str = SUM,
    inclusive: bool = False,
    config: SublistConfig | None = None,
    switch_count: int | None = None,
    rng: np.random.Generator | int | None = None,
    stats: ScanStats | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """List scan with early straggler reconnection (Section 6).

    ``switch_count``: when the live vector shrinks to this many virtual
    processors, the remaining suffixes are compacted and rescanned at
    full width.  Defaults to ``m // 8``.  ``0`` disables the switch
    (behaviour then matches the standard algorithm).
    """
    op = get_operator(op)
    cfg = config or SublistConfig()
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    n = lst.n
    nxt = lst.next
    values = lst.values
    head = lst.head
    if out is None:
        out = np.empty_like(values)

    if n <= max(cfg.serial_cutoff, 4):
        serial_list_scan(lst, op, inclusive=inclusive, out=out)
        return out

    m_req, s1 = _resolve_parameters(n, cfg)
    m_req = int(min(m_req, max(2, n // 2)))
    idx_self = np.arange(n, dtype=INDEX_DTYPE)
    loops = np.flatnonzero(nxt == idx_self)
    if loops.size == 0:
        from ..lists.validate import ListStructureError

        raise ListStructureError(
            "the successor array has no self-loop tail; not a valid list"
        )
    tail = int(loops[0])
    positions = choose_splitters(n, m_req, tail, cfg.splitters, gen)
    m = int(positions.size) + 1
    if switch_count is None:
        switch_count = m // 8
    ident = op.identity_for(values.dtype)

    # ------------------- INITIALIZE (as in core.sublist) ---------------
    sl_random = np.empty(m, dtype=INDEX_DTYPE)
    sl_random[0] = -1
    sl_random[1:] = positions
    sl_head = np.empty(m, dtype=INDEX_DTYPE)
    sl_head[0] = head
    sl_head[1:] = nxt[positions]
    sl_value = op.identity_array(m, values.dtype)
    sl_value[1:] = values[positions]
    whole_tail_value = None
    values[positions] = ident
    nxt[positions] = positions

    sl_sum = op.identity_array(m, values.dtype)
    sl_tail = np.full(m, -1, dtype=INDEX_DTYPE)

    # the "extra book keeping": which nodes have been consumed
    visited = np.zeros(n, dtype=bool)

    # straggler-forest state shared between the phases
    forest_nodes = None  # original ids of the compacted suffix nodes
    forest_within = None  # exclusive-within-sublist scans of those nodes
    forest_proc = None  # original sublist index of each suffix node

    try:
        schedule = optimal_schedule(n, m, s1, cfg.costs, guard=cfg.schedule_guard)

        # ---------------------------- PHASE 1 --------------------------
        gaps1 = ScheduleIterator(schedule, cfg.tail_growth)
        vp_next = sl_head.copy()
        vp_sum = op.identity_array(m, values.dtype)
        vp_proc = np.arange(m, dtype=INDEX_DTYPE)
        switched = False
        while vp_next.size:
            if switch_count and vp_next.size <= switch_count:
                switched = True
                break
            gap = next(gaps1)
            x = vp_next.size
            for _ in range(gap):
                visited[vp_next] = True
                vp_sum = op.combine(vp_sum, values[vp_next])
                vp_next = nxt[vp_next]
            if stats is not None:
                stats.add_round(gap)
                stats.add_work(gap * x, phase="phase1")
                stats.add_scatter(gap * x)  # the bookkeeping scatter
            done = vp_next == nxt[vp_next]
            visited[vp_next[done]] = True  # tails count as consumed
            fin = vp_proc[done]
            sl_sum[fin] = vp_sum[done]
            sl_tail[fin] = vp_next[done]
            keep = ~done
            vp_next, vp_sum, vp_proc = vp_next[keep], vp_sum[keep], vp_proc[keep]
            if stats is not None:
                stats.add_pack()

        if switched:
            # compact the unconsumed suffixes into contiguous memory
            forest_nodes = np.flatnonzero(~visited).astype(INDEX_DTYPE)
            remap = np.full(n, -1, dtype=INDEX_DTYPE)
            remap[forest_nodes] = np.arange(forest_nodes.size, dtype=INDEX_DTYPE)
            f_next = remap[nxt[forest_nodes]]
            f_values = values[forest_nodes].copy()
            f_heads = remap[vp_next]
            if stats is not None:
                stats.add_gather(2 * forest_nodes.size)
                stats.add_scatter(2 * forest_nodes.size)
                stats.alloc(3 * forest_nodes.size)
            f_out = np.empty_like(f_values)
            scan_res = forest_list_scan(
                f_next,
                f_values,
                f_heads,
                op,
                carries=vp_sum,
                serial_cutoff=cfg.serial_cutoff,
                wyllie_cutoff=cfg.wyllie_cutoff,
                rng=gen,
                stats=stats,
                out=f_out,
                return_list_ids=True,
            )
            forest_within, f_ids = scan_res
            forest_proc = vp_proc[f_ids]
            # finish Phase 1: sublist sums and tails from the forest
            f_tails = forest_tails(f_next, f_heads)
            totals = op.combine(forest_within[f_tails], f_values[f_tails])
            sl_sum[vp_proc] = totals
            sl_tail[vp_proc] = forest_nodes[f_tails]

        # ----------------------- FIND_SUBLIST_LIST ---------------------
        nxt[sl_random[1:]] = -np.arange(1, m, dtype=INDEX_DTYPE)
        probe = nxt[sl_tail]
        sl_next = np.where(
            probe < 0, -probe, np.arange(m, dtype=INDEX_DTYPE)
        ).astype(INDEX_DTYPE)
        ends = np.flatnonzero(probe >= 0)
        if ends.size != 1:
            from ..lists.validate import ListStructureError

            raise ListStructureError(
                "reduced list has no unique tail sublist; the successor "
                "array appears to contain a cycle"
            )
        tail_subl = int(ends[0])
        whole_tail = int(sl_tail[tail_subl])
        sl_random[0] = whole_tail
        whole_tail_value = values[whole_tail].copy()
        sl_value[0] = whole_tail_value
        values[whole_tail] = ident
        nxt[sl_tail] = sl_tail
        # straggler sums from the forest exclude the (zeroed) splitter
        # tail values exactly like the vector path, so the standard
        # add-back applies uniformly.  (The tail sublist's sum may
        # double-count the whole-list tail when it was a straggler;
        # that sum never feeds the exclusive scan.)
        addback = sl_value[sl_next]
        addback[tail_subl] = sl_value[0]
        sl_sum = op.combine(sl_sum, addback)

        # ----------------------------- PHASE 2 --------------------------
        carries = np.empty_like(sl_sum)
        reduced = LinkedList(sl_next, 0, sl_sum)
        if m > cfg.serial_cutoff and op.invertible:
            carries[...] = wyllie_list_scan(reduced, op, stats=stats)
        else:
            serial_list_scan(reduced, op, out=carries)

        # ----------------------------- PHASE 3 --------------------------
        gaps3 = ScheduleIterator(schedule, cfg.tail_growth)
        vp_next = sl_head.copy()
        vp_sum = carries.copy()
        vp_proc = np.arange(m, dtype=INDEX_DTYPE)
        while vp_next.size:
            if switch_count and vp_next.size <= switch_count:
                # the stragglers are identical to Phase 1's; fold the
                # Phase-2 carries into the precomputed within-sublist
                # scans and scatter
                out[forest_nodes] = op.combine(
                    carries[forest_proc], forest_within
                )
                if stats is not None:
                    stats.add_scatter(forest_nodes.size)
                break
            gap = next(gaps3)
            x = vp_next.size
            for _ in range(gap):
                out[vp_next] = vp_sum
                vp_sum = op.combine(vp_sum, values[vp_next])
                vp_next = nxt[vp_next]
            if stats is not None:
                stats.add_round(gap)
                stats.add_work(gap * x, phase="phase3")
            done = vp_next == nxt[vp_next]
            if np.any(done):
                out[vp_next] = vp_sum
                keep = ~done
                vp_next, vp_sum, vp_proc = (
                    vp_next[keep],
                    vp_sum[keep],
                    vp_proc[keep],
                )
            if stats is not None:
                stats.add_pack()
    finally:
        if whole_tail_value is not None:
            values[sl_random[0]] = whole_tail_value
        nxt[sl_random[1:]] = sl_head[1:]
        values[sl_random[1:]] = sl_value[1:]

    if inclusive:
        out = op.combine(out, values)
    return out
