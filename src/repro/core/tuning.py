"""Parameter tuning for the sublist algorithm (paper Section 4.4).

The algorithm has two free parameters: the number of sublists *m* and
the first pack point *S₁* (which, through the Eq. 6 recurrence, fixes
the whole schedule and hence the number of packs *l*).  The paper's
procedure, reproduced here:

1. For a given *n*, evaluate the expected-time model (Eq. 3/7 plus the
   Phase-2 dispatch cost) over a grid of (m, S₁) values and keep the
   minimizer (:func:`tuned_parameters`; the paper kept any point
   "within about two percent" of the optimum).
2. Fit cubic polynomials in ``ln n`` to the tuned *m(n)* and *S₁(n)*
   (:func:`fit_polylog`); the fits are what the real implementation
   evaluates at run time (:class:`PolylogFit`).  This matches the
   paper's observation that "m and S₁ are approximately cubic
   polynomials of log n" and Table 1's note that the tuned
   ``m = O((log n)³)`` on the C-90.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from collections.abc import Sequence

import numpy as np

from ..analysis.cost_model import KernelCosts, PAPER_C90_COSTS, total_time
from .schedule import optimal_schedule

__all__ = [
    "tuned_parameters",
    "tune_grid",
    "PolylogFit",
    "fit_polylog",
    "default_parameters",
]

#: Phase-2 dispatch cutoffs shared with the implementation.
SERIAL_CUTOFF = 256
WYLLIE_CUTOFF = 65536


def _m_candidates(n: int) -> np.ndarray:
    """Log-spaced sublist counts, seeded around the (log n)³ scale."""
    if n <= 8:
        return np.asarray([2], dtype=np.int64)
    hi = max(4, n // 4)
    lo = 2
    grid = np.unique(
        np.round(np.geomspace(lo, hi, num=28)).astype(np.int64)
    )
    cube = int(round(0.35 * math.log(n) ** 3))
    extra = np.asarray(
        [c for c in (cube // 2, cube, 2 * cube) if lo <= c <= hi], dtype=np.int64
    )
    return np.unique(np.concatenate((grid, extra)))


def _s1_candidates(n: int, m: int) -> np.ndarray:
    """First-pack-point candidates, scaled by the mean sublist length."""
    mean_len = n / m
    lo = max(1.0, 0.1 * mean_len)
    hi = max(lo + 1.0, 3.0 * mean_len)
    return np.geomspace(lo, hi, num=14)


def tune_grid(
    n: int,
    costs: KernelCosts = PAPER_C90_COSTS,
    n_processors: int = 1,
) -> tuple[int, float, float]:
    """Grid-search (m, S₁) minimizing the expected-time model.

    Returns ``(m, s1, predicted_clocks)``.
    """
    best = (2, 1.0, math.inf)
    for m in _m_candidates(n):
        m = int(m)
        if m >= n:
            continue
        for s1 in _s1_candidates(n, m):
            schedule = optimal_schedule(n, m, float(s1), costs)
            t = total_time(
                n,
                m,
                schedule,
                costs,
                n_processors=n_processors,
                serial_cutoff=SERIAL_CUTOFF,
                recursive_cutoff=WYLLIE_CUTOFF,
            )
            if t < best[2]:
                best = (m, float(s1), t)
    return best


@lru_cache(maxsize=512)
def _tuned_cached(
    n: int, costs: KernelCosts, n_processors: int
) -> tuple[int, float, float]:
    return tune_grid(n, costs, n_processors)


def tuned_parameters(
    n: int,
    costs: KernelCosts = PAPER_C90_COSTS,
    n_processors: int = 1,
) -> tuple[int, float]:
    """Model-optimal ``(m, s1)`` for a list of length ``n`` (cached).

    ``n`` is rounded to the nearest power of √2 before lookup so the
    cache stays small across sweeps; the model is flat enough near the
    optimum (the paper accepted anything within ~2%) for this to be
    harmless.
    """
    if n < 4:
        return 2, 1.0
    bucket = int(round(2 ** (round(2 * math.log2(n)) / 2)))
    m, s1, _ = _tuned_cached(bucket, costs, n_processors)
    m = min(m, max(2, n // 2))
    return m, s1


@dataclass(frozen=True)
class PolylogFit:
    """Cubic-in-log-n fits of the tuned parameters (paper Section 4.4).

    ``m(n) = exp(poly₃(ln n))`` clipped to [2, n/2] and
    ``s1(n) = exp(poly₃(ln n))`` clipped to ≥ 1; the log-log form keeps
    the cubic well-behaved across six decades of n.
    """

    m_coeffs: tuple[float, float, float, float]
    s1_coeffs: tuple[float, float, float, float]

    def m(self, n: int) -> int:
        x = math.log(max(n, 2))
        val = math.exp(_horner(self.m_coeffs, x))
        return int(np.clip(round(val), 2, max(2, n // 2)))

    def s1(self, n: int) -> float:
        x = math.log(max(n, 2))
        return float(max(1.0, math.exp(_horner(self.s1_coeffs, x))))


def _horner(coeffs: Sequence[float], x: float) -> float:
    acc = 0.0
    for c in coeffs:
        acc = acc * x + c
    return acc


def fit_polylog(
    ns: Sequence[int],
    costs: KernelCosts = PAPER_C90_COSTS,
    n_processors: int = 1,
) -> PolylogFit:
    """Tune every ``n`` in ``ns`` and fit the cubic log-log polynomials."""
    ns = [int(n) for n in ns]
    if len(ns) < 4:
        raise ValueError("need at least 4 sample sizes for a cubic fit")
    ms, s1s = [], []
    for n in ns:
        m, s1, _ = tune_grid(n, costs, n_processors)
        ms.append(m)
        s1s.append(s1)
    x = np.log(np.asarray(ns, dtype=np.float64))
    m_coeffs = tuple(np.polyfit(x, np.log(ms), deg=3))
    s1_coeffs = tuple(np.polyfit(x, np.log(s1s), deg=3))
    return PolylogFit(m_coeffs=m_coeffs, s1_coeffs=s1_coeffs)


def default_parameters(n: int) -> tuple[int, float]:
    """Runtime default ``(m, s1)``: the cached model optimum for the
    paper's C-90 cost table."""
    return tuned_parameters(n, PAPER_C90_COSTS, 1)
