"""Public dispatch API: one entry point over every implementation.

``list_scan`` / ``list_rank`` select an algorithm by name and handle
validation, copying and common ergonomics.  This is the interface a
downstream user of the library sees; the per-algorithm modules remain
importable for research use.

Algorithms
----------

==================  ====================================================
``"sublist"``       the paper's algorithm (default) — work efficient,
                    small constants; `core.sublist`
``"wyllie"``        pointer jumping — O(n log n) work; best for short
                    lists; `baselines.wyllie`
``"serial"``        direct traversal — the O(n) reference;
                    `baselines.serial`
``"random_mate"``   Miller/Reif randomized contraction;
                    `baselines.random_mate`
``"anderson_miller"``  Anderson/Miller queued splicing;
                    `baselines.anderson_miller`
``"early_reconnect"``  the Section 6 variant: straggler suffixes are
                    compacted and rescanned at full vector width;
                    `core.early_reconnect`
``"auto"``          cost-model routing: the Section 3/4 kernel
                    equations predict each algorithm's time and the
                    cheapest wins (`engine.router`).  When no
                    calibration is available the historic fixed
                    crossover applies — serial below 4K nodes, sublist
                    above, mirroring the paper's Figure 1
==================  ====================================================

Batched execution: pass ``engine=`` (a :class:`repro.engine.Engine`)
to serve the call through the batched engine — structural result
cache, cost-model routing and the engine's stats counters — instead of
dispatching directly.
"""

from __future__ import annotations


from typing import TYPE_CHECKING, Any

import numpy as np

from ..lists.generate import LinkedList
from ..lists.validate import validate_list_strict
from ..trace.tracer import Tracer, null_span, resolve_trace
from .operators import Operator, SUM, get_operator
from .stats import ScanStats

if TYPE_CHECKING:  # pragma: no cover - annotation only (avoids a cycle)
    from ..engine.engine import Engine

__all__ = ["list_scan", "list_rank", "ALGORITHMS"]

#: Fallback crossover below which "auto" uses the serial traversal,
#: applied only when cost-model routing is unavailable (no calibration,
#: or the router cannot be constructed).  The paper's crossovers on the
#: C-90 (serial fastest on short lists, the sublist algorithm on long
#: ones) have the same structure.  The primary "auto" path routes via
#: ``repro.engine.router``, which evaluates the Section 3/4 kernel cost
#: equations instead of trusting this constant.
_AUTO_SERIAL_BELOW = 4096


def _auto_algorithm(n: int) -> str:
    """Resolve ``algorithm="auto"`` for an ``n``-node list.

    Routes through the cost-model router when available; falls back to
    the fixed :data:`_AUTO_SERIAL_BELOW` crossover only when the router
    subsystem cannot be *imported* (a stripped deployment).  A router
    that imports but then raises is a genuine bug and propagates — the
    fallback must not mask it.
    """
    try:
        from ..engine.router import route_algorithm
    except ImportError:
        return "serial" if n < _AUTO_SERIAL_BELOW else "sublist"
    return route_algorithm(n)

ALGORITHMS = (
    "sublist",
    "wyllie",
    "serial",
    "random_mate",
    "anderson_miller",
    "early_reconnect",
    "auto",
)


def list_scan(
    lst: LinkedList,
    op: Operator | str = SUM,
    inclusive: bool = False,
    algorithm: str = "sublist",
    validate: bool = False,
    rng: np.random.Generator | int | None = None,
    stats: ScanStats | None = None,
    engine: Engine | None = None,
    trace: str | Tracer | None = None,
    kernel_backend: str | None = None,
    **kwargs: Any,
) -> np.ndarray:
    """Scan a linked list under a binary associative operator.

    Parameters
    ----------
    lst:
        The linked list (successor array with self-loop tail, head
        index, per-node values).
    op:
        Operator instance or name (``"sum"``, ``"max"``, …).
    inclusive:
        Include each node's own value in its result (default: the
        exclusive prescan, the paper's semantics).
    algorithm:
        One of :data:`ALGORITHMS`.
    validate:
        Run the strict structural validator first (O(n log n)).
    rng:
        Seed or generator for the randomized algorithms.
    stats:
        Optional :class:`~repro.core.stats.ScanStats` to fill with
        work/space accounting.
    engine:
        Optional :class:`repro.engine.Engine`; when given, the call is
        served through the batched engine (result cache + cost-model
        routing) rather than dispatched directly.  The engine manages
        its own RNG stream and statistics and forwards nothing to the
        kernels, so passing ``rng``, ``stats``, ``trace`` or
        implementation ``**kwargs`` together with ``engine`` raises
        :class:`TypeError` instead of silently dropping them (attach a
        tracer to the engine itself via ``Engine(trace=...)``).
    trace:
        ``None`` (default — tracing hooks are skipped entirely),
        ``"off"`` (hooks run against a disabled tracer; the overhead
        configuration the benchmarks measure) or a
        :class:`repro.trace.Tracer` collecting per-phase spans and
        pack events.  See ``docs/tracing.md``.
    kernel_backend:
        Kernel backend for the hot loops of the sublist algorithm
        (``"numpy"`` / ``"python"`` / ``"numba"`` / ``None`` for
        env-var-then-auto selection; ``docs/kernels.md``).  Ignored by
        the other algorithms, which have no pluggable kernels.
        Incompatible with ``engine=`` — the engine selects its own
        backend (``Engine(kernel_backend=...)``).
    **kwargs:
        Forwarded to the selected implementation (e.g. ``config=`` for
        the sublist algorithm, ``variant=`` for Wyllie).

    Returns
    -------
    numpy.ndarray
        Scan values indexed by node.
    """
    op = get_operator(op)
    if validate:
        validate_list_strict(lst)
    if engine is not None:
        dropped = [
            name
            for name, value in (
                ("rng", rng),
                ("stats", stats),
                ("trace", trace),
                ("kernel_backend", kernel_backend),
            )
            if value is not None
        ]
        dropped.extend(sorted(kwargs))
        if dropped:
            raise TypeError(
                "list_scan(engine=...) serves the call through the batched "
                "engine, which manages its own RNG stream, statistics and "
                "tracer (Engine(trace=...)) and forwards no implementation "
                f"kwargs; incompatible argument(s): {', '.join(dropped)}"
            )
        return engine.scan(lst, op, inclusive=inclusive, algorithm=algorithm)
    if algorithm == "auto":
        algorithm = _auto_algorithm(lst.n)

    tracer = resolve_trace(trace)
    span = tracer.span if tracer is not None else null_span
    with span("list_scan", algorithm=algorithm, n=lst.n, inclusive=inclusive):
        if algorithm == "sublist":
            from .sublist import sublist_list_scan

            return sublist_list_scan(
                lst, op, inclusive=inclusive, rng=rng, stats=stats,
                trace=tracer, kernel_backend=kernel_backend, **kwargs,
            )
        if algorithm == "wyllie":
            from ..baselines.wyllie import wyllie_list_scan

            return wyllie_list_scan(lst, op, inclusive=inclusive, stats=stats, **kwargs)
        if algorithm == "serial":
            from ..baselines.serial import serial_list_scan

            return serial_list_scan(lst, op, inclusive=inclusive, **kwargs)
        if algorithm == "random_mate":
            from ..baselines.random_mate import random_mate_list_scan

            return random_mate_list_scan(
                lst, op, inclusive=inclusive, rng=rng, stats=stats, **kwargs
            )
        if algorithm == "anderson_miller":
            from ..baselines.anderson_miller import anderson_miller_list_scan

            return anderson_miller_list_scan(
                lst, op, inclusive=inclusive, rng=rng, stats=stats, **kwargs
            )
        if algorithm == "early_reconnect":
            from .early_reconnect import early_reconnect_list_scan

            return early_reconnect_list_scan(
                lst, op, inclusive=inclusive, rng=rng, stats=stats, **kwargs
            )
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )


def list_rank(
    lst: LinkedList,
    algorithm: str = "sublist",
    validate: bool = False,
    rng: np.random.Generator | int | None = None,
    stats: ScanStats | None = None,
    engine: Engine | None = None,
    trace: str | Tracer | None = None,
    kernel_backend: str | None = None,
    **kwargs: Any,
) -> np.ndarray:
    """Rank every node: its link distance from the head (head = 0).

    Equivalent to ``list_scan`` of all-ones values under ``+`` —
    "list ranking is the list scan where plus is the operator and the
    values to be summed are all equal to one" (Section 1).

    ``engine=`` serves the ranking through a batched
    :class:`repro.engine.Engine` and ``trace=`` attaches a
    :class:`repro.trace.Tracer`, exactly as for :func:`list_scan` —
    including the guard: combining ``engine=`` with ``rng``, ``stats``,
    ``trace``, ``kernel_backend`` or implementation ``**kwargs`` raises
    :class:`TypeError` instead of silently dropping them.
    """
    ones = LinkedList(lst.next, lst.head, np.ones(lst.n, dtype=np.int64))
    return list_scan(
        ones,
        SUM,
        inclusive=False,
        algorithm=algorithm,
        validate=validate,
        rng=rng,
        stats=stats,
        engine=engine,
        trace=trace,
        kernel_backend=kernel_backend,
        **kwargs,
    )
