"""Lightweight instrumentation shared by all host-backend algorithms.

Table 1 of the paper compares the algorithms on *work* (total element
operations), *constants*, and *space* (auxiliary words per list
element).  :class:`ScanStats` lets every algorithm report exactly those
quantities without affecting the hot loops: counters are bumped once
per vector operation (with the vector length), never per element.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ScanStats"]


@dataclass
class ScanStats:
    """Operation and space accounting for one scan invocation.

    Attributes
    ----------
    element_ops:
        Total element operations across all vector steps — the "work"
        column of Table 1.  One traversal step over a vector of ``x``
        live sublists adds ``x``.
    gathers / scatters:
        Total elements moved through indexed loads/stores; the paper's
        machines pay ≈2 clocks per element for these, so they dominate
        the constant factors.
    rounds:
        Number of data-parallel steps (pointer-jump rounds, traversal
        steps, pack steps …).
    packs:
        Number of load-balancing (pack) operations performed.
    peak_aux_words:
        High-water mark of auxiliary array words allocated beyond the
        input/output, the "space" column of Table 1 (paper: serial n,
        Wyllie 4n, ours 3n + 5m, random mate ≥ 5n).
    phases:
        Per-phase element-op breakdown (e.g. ``{"phase1": …}``).
    """

    element_ops: int = 0
    gathers: int = 0
    scatters: int = 0
    rounds: int = 0
    packs: int = 0
    peak_aux_words: int = 0
    _live_aux_words: int = 0
    phases: dict[str, int] = field(default_factory=dict)

    def add_work(self, n_elements: int, phase: str = "") -> None:
        """Record a vector step over ``n_elements`` elements."""
        self.element_ops += int(n_elements)
        if phase:
            self.phases[phase] = self.phases.get(phase, 0) + int(n_elements)

    def add_gather(self, n_elements: int) -> None:
        self.gathers += int(n_elements)

    def add_scatter(self, n_elements: int) -> None:
        self.scatters += int(n_elements)

    def add_round(self, count: int = 1) -> None:
        self.rounds += int(count)

    def add_pack(self, count: int = 1) -> None:
        self.packs += int(count)

    def alloc(self, words: int) -> None:
        """Record allocation of ``words`` auxiliary words."""
        self._live_aux_words += int(words)
        if self._live_aux_words > self.peak_aux_words:
            self.peak_aux_words = self._live_aux_words

    def free(self, words: int) -> None:
        """Record release of ``words`` auxiliary words."""
        self._live_aux_words -= int(words)

    def merge(self, other: "ScanStats") -> None:
        """Fold a sub-invocation (e.g. the recursive Phase 2) into this one."""
        self.element_ops += other.element_ops
        self.gathers += other.gathers
        self.scatters += other.scatters
        self.rounds += other.rounds
        self.packs += other.packs
        self.peak_aux_words = max(
            self.peak_aux_words, self._live_aux_words + other.peak_aux_words
        )
        for key, val in other.phases.items():
            self.phases[key] = self.phases.get(key, 0) + val

    def work_per_element(self, n: int) -> float:
        """Work normalized by list length (Table 1's O(·) column, measured)."""
        return self.element_ops / max(n, 1)
