"""The paper's list-scan algorithm (Sections 2.4 and 3) — host backend.

The algorithm randomly breaks the list of length *n* into *m* sublists
that are processed independently and in parallel:

* **Initialize** — choose *m − 1* splitter positions; each becomes the
  (self-looped, identity-valued) tail of the sublist that precedes it,
  and its old successor becomes the head of the next sublist.  The
  self-loop/identity trick removes every conditional from the hot
  loops: a finished virtual processor just keeps folding the identity
  into its sum.
* **Phase 1** — the *m* virtual processors traverse their sublists in
  lock-step vector steps, accumulating sublist sums; after
  ``s_1, s_2, …`` steps (the pack schedule of ``core.schedule``) the
  completed sublists are packed out.
* **Find sublist list** — the write-index/read-back trick links the
  sublist sums into a reduced list of length *m*.
* **Phase 2** — scan the reduced list serially, with Wyllie, or
  recursively, by size.
* **Phase 3** — traverse the sublists again, scattering each node's
  exclusive scan (Phase-2 carry ⊕ prefix within the sublist).
* **Restore** — put the saved links and values back; the input arrays
  are bit-identical to their initial state afterwards.

This module is the *host* backend: plain NumPy, one array operation per
data-parallel step, measured in real time by the benchmark suite.  The
cycle-accounted Cray C-90 version lives in ``simulate.sublist_sim``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.cost_model import KernelCosts, PAPER_C90_COSTS
from ..baselines.serial import serial_list_scan
from ..baselines.wyllie import wyllie_list_scan
from ..kernels.backend import KernelBackend, resolve_backend
from ..lists.generate import INDEX_DTYPE, LinkedList
from ..trace.tracer import Tracer, null_span, resolve_trace
from .operators import Operator, SUM, get_operator
from .schedule import ScheduleIterator, optimal_schedule
from .stats import ScanStats
from .tuning import SERIAL_CUTOFF, WYLLIE_CUTOFF, tuned_parameters

__all__ = [
    "SublistConfig",
    "sublist_list_scan",
    "sublist_list_rank",
    "choose_splitters",
]


@dataclass(frozen=True)
class SublistConfig:
    """Tuning knobs for the sublist algorithm.

    Attributes
    ----------
    m:
        Number of sublists; ``None`` uses the model-tuned value
        (Section 4.4).
    s1:
        First pack point; ``None`` uses the model-tuned value.
    splitters:
        ``"spaced"`` — equally spaced positions, the paper's choice for
        randomly ordered lists; ``"random"`` — distinct uniform random
        positions; ``"random_competition"`` — uniform positions drawn
        *with* replacement, deduplicated by the paper's write-index/
        read-back competition.
    serial_cutoff / wyllie_cutoff:
        Phase-2 dispatch: serial scan for reduced lists up to
        ``serial_cutoff`` nodes, Wyllie up to ``wyllie_cutoff``, and a
        recursive invocation beyond ("We determined empirically the
        size m should be when we switch between algorithms").
    schedule_guard:
        Guard mode passed to :func:`repro.core.schedule.optimal_schedule`.
    tail_growth:
        Growth factor for pack gaps past the expected schedule.
    short_vector_fallback:
        When > 0, Phases 1/3 finish the last stragglers *serially* once
        the live vector is shorter than this, instead of spinning short
        vector steps — the practical form of the paper's Section 6
        note that machines with long vector half-performance lengths
        should not chase the longest sublists with tiny vectors.
        0 disables the fallback (pure paper behaviour).
    costs:
        Kernel cost table used for schedule generation and tuning.
    max_depth:
        Recursion depth limit for Phase 2.
    """

    m: int | None = None
    s1: float | None = None
    splitters: str = "spaced"
    serial_cutoff: int = SERIAL_CUTOFF
    wyllie_cutoff: int = WYLLIE_CUTOFF
    schedule_guard: str = "monotonic_gaps"
    tail_growth: float = 1.5
    short_vector_fallback: int = 0
    costs: KernelCosts = field(default_factory=lambda: PAPER_C90_COSTS)
    max_depth: int = 8

    def __post_init__(self) -> None:
        if self.splitters not in ("spaced", "random", "random_competition"):
            raise ValueError(f"unknown splitter strategy {self.splitters!r}")
        if self.serial_cutoff < 1:
            raise ValueError("serial_cutoff must be >= 1")
        if self.wyllie_cutoff < self.serial_cutoff:
            raise ValueError("wyllie_cutoff must be >= serial_cutoff")
        if self.m is not None and self.m < 2:
            raise ValueError("m must be >= 2 when given")
        if self.s1 is not None and self.s1 <= 0:
            raise ValueError("s1 must be positive when given")


def choose_splitters(
    n: int,
    m: int,
    tail: int,
    strategy: str,
    rng: np.random.Generator,
) -> np.ndarray:
    """Choose the ``m − 1`` splitter positions (sublist tails).

    Positions must be distinct and must exclude the tail of the whole
    list ("We do not let a processor choose the tail of the whole list
    … because it is convenient not to worry about a zero length list in
    Phase 2").  The returned array may be shorter than ``m − 1`` for
    the competition strategy (duplicates drop out, exactly as the
    paper's duplicate processors do).

    Degenerate inputs fall back instead of failing: ``m`` larger than
    the list clamps to ``n - 1`` usable splitters (every non-tail node),
    and a list with fewer than two nodes has no splittable interior, so
    the result is empty and the caller's serial path takes over.
    """
    # A splitter must be a non-tail node, so at most n - 1 exist; a
    # request for more (m > n) clamps rather than erroring so callers
    # with a fixed m(n) schedule degrade cleanly on tiny lists.
    want = min(m - 1, n - 1)
    if want < 1:
        return np.empty(0, dtype=INDEX_DTYPE)
    if strategy == "spaced":
        positions = np.unique(
            (np.arange(1, want + 1, dtype=np.float64) * n / (want + 1)).astype(INDEX_DTYPE)
        )
    elif strategy == "random":
        pool = n - 1  # choose from [0, n) \ {tail} via shifted sampling
        draw = rng.choice(pool, size=want, replace=False).astype(INDEX_DTYPE)
        draw[draw >= tail] += 1
        positions = np.sort(draw)
    elif strategy == "random_competition":
        draw = rng.integers(0, n, size=want, dtype=INDEX_DTYPE)
        # competition: write our id at the position, read it back, and
        # drop out if someone else's id is there (paper Section 2.4)
        claim = np.full(n, -1, dtype=INDEX_DTYPE)
        claim[draw] = np.arange(want, dtype=INDEX_DTYPE)
        winners = claim[draw] == np.arange(want, dtype=INDEX_DTYPE)
        positions = np.unique(draw[winners])
    else:  # pragma: no cover - config validates upstream
        raise ValueError(f"unknown splitter strategy {strategy!r}")
    positions = positions[positions != tail]
    if positions.size == 0:
        # degenerate tiny list (or every draw hit the tail): fall back
        # to the first non-tail node so Phase 2 still sees >= 2 sublists
        fallback = 0 if tail != 0 else 1
        positions = np.asarray([fallback], dtype=INDEX_DTYPE)
    return positions


def sublist_list_scan(
    lst: LinkedList,
    op: Operator | str = SUM,
    inclusive: bool = False,
    config: SublistConfig | None = None,
    rng: np.random.Generator | int | None = None,
    stats: ScanStats | None = None,
    out: np.ndarray | None = None,
    trace: str | Tracer | None = None,
    kernel_backend: str | KernelBackend | None = None,
) -> np.ndarray:
    """List scan with the paper's sublist algorithm.

    The input list's ``next`` and ``values`` arrays are modified in
    place during the computation (self-loops and identity values at the
    splitters) and restored before returning, exactly as in the paper;
    on any exception the arrays are restored as well.

    ``trace`` attaches a :class:`repro.trace.Tracer` (or ``"off"`` for
    the instrumented-but-disabled path): the run records a
    ``sublist_scan`` span with per-phase children and one ``pack``
    event per pack carrying the live-sublist count before/after — the
    observed counterpart of the paper's ``g(s)`` trajectory
    (``repro.trace.compare`` overlays the two).  Hooks fire per phase
    and per pack, never per element, so the untraced path pays only a
    handful of branch checks.

    ``kernel_backend`` selects how the hot loops run (``"numpy"`` /
    ``"python"`` / ``"numba"`` / a :class:`repro.kernels.KernelBackend`
    instance / ``None`` for env-var-then-auto selection; see
    ``docs/kernels.md``).  A backend that does not support ``op`` over
    this value dtype silently falls back to the NumPy reference.

    Returns the exclusive (default) or inclusive scan indexed by node.
    """
    op = get_operator(op)
    cfg = config or SublistConfig()
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    tracer = resolve_trace(trace)
    n = lst.n
    values = lst.values
    backend = resolve_backend(kernel_backend)
    if not backend.supports(op, values):
        backend = resolve_backend("numpy")
    if out is None:
        out = np.empty_like(values)
    if stats is not None:
        stats.alloc(n)  # the output vector
    _scan_in_place(
        lst.next, values, lst.head, op, cfg, gen, stats, out, depth=0,
        tracer=tracer, backend=backend,
    )
    if inclusive:
        out = op.combine(out, values)
    return out


def sublist_list_rank(
    lst: LinkedList,
    config: SublistConfig | None = None,
    rng: np.random.Generator | int | None = None,
    stats: ScanStats | None = None,
) -> np.ndarray:
    """List ranking: the sublist scan of all-ones values under ``+``."""
    ones = LinkedList(lst.next, lst.head, np.ones(lst.n, dtype=np.int64))
    return sublist_list_scan(ones, SUM, config=config, rng=rng, stats=stats)


def _resolve_parameters(n: int, cfg: SublistConfig) -> tuple[int, float]:
    if cfg.m is not None and cfg.s1 is not None:
        return cfg.m, cfg.s1
    m_t, s1_t = tuned_parameters(n, cfg.costs)
    m = cfg.m if cfg.m is not None else m_t
    s1 = cfg.s1 if cfg.s1 is not None else s1_t
    return m, s1


def _scan_in_place(
    nxt: np.ndarray,
    values: np.ndarray,
    head: int,
    op: Operator,
    cfg: SublistConfig,
    rng: np.random.Generator,
    stats: ScanStats | None,
    out: np.ndarray,
    depth: int,
    tracer: Tracer | None = None,
    backend: KernelBackend | None = None,
) -> None:
    """Exclusive scan of the list (nxt, values, head) into ``out``.

    Temporarily rewrites ``nxt``/``values`` and restores them before
    returning (also on error).  ``tracer`` (a
    :class:`repro.trace.Tracer` or ``None``) records per-phase spans
    and per-pack live-count events; every hook is guarded so the
    untraced path only pays branch checks, once per pack or phase.
    ``backend`` runs the hot loops (the NumPy reference when ``None``);
    the caller must have checked ``backend.supports(op, values)``.
    """
    if backend is None:
        backend = resolve_backend("numpy")
    n = nxt.shape[0]
    span = tracer.span if tracer is not None else null_span
    if n <= cfg.serial_cutoff or n < 4 or depth >= cfg.max_depth:
        with span("serial_scan", n=n, depth=depth):
            serial_list_scan(LinkedList(nxt, head, values), op, out=out)
        if stats is not None:
            stats.add_work(n, phase="serial")
        return

    with span("sublist_scan", n=n, depth=depth) as scan_span:
        m_req, s1 = _resolve_parameters(n, cfg)
        m_req = int(min(m_req, max(2, n // 2)))
        idx_self = np.arange(n, dtype=INDEX_DTYPE)
        loops = np.flatnonzero(nxt == idx_self)
        if loops.size == 0:
            from ..lists.validate import ListStructureError

            raise ListStructureError(
                "the successor array has no self-loop tail; not a valid list"
            )
        tail = int(loops[0])
        positions = choose_splitters(n, m_req, tail, cfg.splitters, rng)
        m = int(positions.size) + 1
        if m < 2:
            serial_list_scan(LinkedList(nxt, head, values), op, out=out)
            return
        if scan_span is not None:
            scan_span.attrs.update(m=m, s1=float(s1), splitters=cfg.splitters)

        ident = op.identity_for(values.dtype)

        # --------------------------------------------------------------
        # INITIALIZE (Section 3): save links/values at the splitters,
        # then cut the list into m independent self-loop-terminated
        # sublists.
        # --------------------------------------------------------------
        with span("initialize", m=m):
            sl_random = np.empty(m, dtype=INDEX_DTYPE)
            sl_random[0] = -1  # becomes the whole-list tail below
            sl_random[1:] = positions
            sl_head = np.empty(m, dtype=INDEX_DTYPE)
            sl_head[0] = head
            sl_head[1:] = nxt[positions]  # gather heads (before cutting!)
            sl_value = op.identity_array(m, values.dtype)
            sl_value[1:] = values[positions]  # gather+save splitter values
            whole_tail_value = None  # filled in FIND_SUBLIST_LIST

            values[positions] = ident  # scatter identity at sublist tails
            nxt[positions] = positions  # scatter self-loops at sublist tails

            sl_sum = op.identity_array(m, values.dtype)
            sl_tail = np.full(m, -1, dtype=INDEX_DTYPE)

        if stats is not None:
            stats.alloc(6 * m)
            stats.add_gather(2 * m)
            stats.add_scatter(2 * m)

        try:
            # ----------------------------------------------------------
            # PHASE 1: reduce each sublist to its sum, packing on
            # schedule.
            # ----------------------------------------------------------
            schedule = optimal_schedule(
                n, m, s1, cfg.costs, guard=cfg.schedule_guard
            )
            if scan_span is not None:
                scan_span.attrs["scheduled_packs"] = int(
                    np.asarray(schedule).size
                )
            gaps1 = ScheduleIterator(schedule, cfg.tail_growth)

            with span("phase1", m=m):
                vp_next = sl_head.copy()
                vp_sum = op.identity_array(m, values.dtype)
                vp_proc = np.arange(m, dtype=INDEX_DTYPE)
                total_steps = 0
                while vp_next.size:
                    if (
                        cfg.short_vector_fallback
                        and vp_next.size <= cfg.short_vector_fallback
                    ):
                        if tracer is not None:
                            tracer.event(
                                "serial_tail",
                                step=int(total_steps),
                                live=int(vp_next.size),
                            )
                        _finish_phase1_serial(
                            nxt, values, op, vp_next, vp_sum, vp_proc,
                            sl_sum, sl_tail, stats,
                        )
                        break
                    gap = next(gaps1)
                    total_steps = _guard_steps(total_steps, gap, n)
                    x = vp_next.size
                    vp_next, vp_sum = backend.traverse_phase1(
                        nxt, values, vp_next, vp_sum, gap, op
                    )
                    if stats is not None:
                        stats.add_round(gap)
                        stats.add_work(gap * x, phase="phase1")
                        stats.add_gather(2 * gap * x)
                    vp_next, vp_sum, vp_proc, n_finished = backend.pack_phase1(
                        nxt, vp_next, vp_sum, vp_proc, sl_sum, sl_tail
                    )
                    if stats is not None:
                        stats.add_pack()
                        stats.add_gather(x)
                        stats.add_scatter(2 * n_finished + 3 * vp_next.size)
                    if tracer is not None:
                        tracer.event(
                            "pack",
                            step=int(total_steps),
                            gap=int(gap),
                            live_before=int(x),
                            live_after=int(vp_next.size),
                            finished=int(n_finished),
                        )

            # ----------------------------------------------------------
            # FIND_SUBLIST_LIST: link the sublist sums into a reduced
            # list.  Scatter the *negated* sublist index at each
            # splitter so it is distinguishable from the original
            # self-loop at the whole tail.
            # ----------------------------------------------------------
            with span("find_sublist_list", m=m):
                nxt[sl_random[1:]] = -np.arange(1, m, dtype=INDEX_DTYPE)
                probe = nxt[sl_tail]  # gather: index written by my successor
                sl_next = np.where(
                    probe < 0, -probe, np.arange(m, dtype=INDEX_DTYPE)
                )
                sl_next = sl_next.astype(INDEX_DTYPE)
                ends = np.flatnonzero(probe >= 0)
                if ends.size != 1:
                    from ..lists.validate import ListStructureError

                    raise ListStructureError(
                        "reduced list has no unique tail sublist; the "
                        "successor array appears to contain a cycle"
                    )
                tail_subl = int(ends[0])
                whole_tail = int(sl_tail[tail_subl])
                sl_random[0] = whole_tail
                whole_tail_value = values[whole_tail].copy()
                sl_value[0] = whole_tail_value
                values[whole_tail] = ident  # Phase 3 repeatedly folds this
                nxt[sl_tail] = sl_tail  # restore sublist-tail self-loops
                # fold the saved splitter values (each sublist's true
                # tail value) back into the sublist sums; the tail
                # sublist gets the value of the whole-list tail.
                addback = sl_value[sl_next]
                addback[tail_subl] = sl_value[0]
                sl_sum = op.combine(sl_sum, addback)
            if stats is not None:
                stats.add_work(m, phase="find_sublist")
                stats.add_gather(2 * m)
                stats.add_scatter(2 * m)

            # ----------------------------------------------------------
            # PHASE 2: scan the reduced list (serial/Wyllie/recursive).
            # ----------------------------------------------------------
            with span("phase2", m=m) as phase2_span:
                carries = np.empty_like(sl_sum)
                if backend.has_blocked_scan and backend.supports(op, sl_sum):
                    # Blelloch blocked exclusive scan over the reduced
                    # chain (snippet-1 shape).  Re-associates: exact for
                    # integer operators, documented tolerance for
                    # floats (docs/kernels.md).
                    if phase2_span is not None:
                        phase2_span.attrs["method"] = "blocked"
                    backend.reduced_scan(
                        sl_next, sl_sum,
                        np.zeros(1, dtype=INDEX_DTYPE), None, op, carries,
                    )
                    if stats is not None:
                        stats.add_work(m, phase="phase2_blocked")
                elif m > cfg.wyllie_cutoff and depth + 1 < cfg.max_depth:
                    if phase2_span is not None:
                        phase2_span.attrs["method"] = "recursive"
                    sub_stats = ScanStats() if stats is not None else None
                    _scan_in_place(
                        sl_next, sl_sum, 0, op, cfg, rng, sub_stats,
                        carries, depth + 1, tracer=tracer, backend=backend,
                    )
                    if stats is not None and sub_stats is not None:
                        stats.merge(sub_stats)
                elif m > cfg.serial_cutoff:
                    if phase2_span is not None:
                        phase2_span.attrs["method"] = "wyllie"
                    reduced = LinkedList(sl_next, 0, sl_sum)
                    carries[...] = wyllie_list_scan(reduced, op, stats=stats)
                else:
                    if phase2_span is not None:
                        phase2_span.attrs["method"] = "serial"
                    reduced = LinkedList(sl_next, 0, sl_sum)
                    serial_list_scan(reduced, op, out=carries)
                    if stats is not None:
                        stats.add_work(m, phase="phase2_serial")

            # ----------------------------------------------------------
            # PHASE 3: expand the carries back along each sublist.
            # ----------------------------------------------------------
            with span("phase3", m=m):
                gaps3 = ScheduleIterator(schedule, cfg.tail_growth)
                vp_next = sl_head.copy()
                vp_sum = carries
                total_steps = 0
                while vp_next.size:
                    if (
                        cfg.short_vector_fallback
                        and vp_next.size <= cfg.short_vector_fallback
                    ):
                        if tracer is not None:
                            tracer.event(
                                "serial_tail",
                                step=int(total_steps),
                                live=int(vp_next.size),
                            )
                        _finish_phase3_serial(
                            nxt, values, op, vp_next, vp_sum, out, stats
                        )
                        break
                    gap = next(gaps3)
                    total_steps = _guard_steps(total_steps, gap, n)
                    x = vp_next.size
                    vp_next, vp_sum = backend.traverse_phase3(
                        nxt, values, vp_next, vp_sum, gap, op, out
                    )
                    if stats is not None:
                        stats.add_round(gap)
                        stats.add_work(gap * x, phase="phase3")
                        stats.add_gather(2 * gap * x)
                        stats.add_scatter(gap * x)
                    vp_next, vp_sum = backend.pack_phase3(
                        nxt, vp_next, vp_sum, out
                    )
                    if stats is not None:
                        stats.add_pack()
                        stats.add_gather(x)
                        stats.add_scatter(x + 2 * vp_next.size)
                    if tracer is not None:
                        tracer.event(
                            "pack",
                            step=int(total_steps),
                            gap=int(gap),
                            live_before=int(x),
                            live_after=int(vp_next.size),
                        )
        finally:
            # ----------------------------------------------------------
            # RESTORE_LIST: the input arrays return bit-identical.
            # ----------------------------------------------------------
            with span("restore", m=m):
                if whole_tail_value is not None:
                    values[sl_random[0]] = whole_tail_value
                nxt[sl_random[1:]] = sl_head[1:]
                values[sl_random[1:]] = sl_value[1:]
            if stats is not None:
                stats.add_scatter(2 * m)
                stats.free(6 * m)


def _guard_steps(total: int, gap: int, n: int) -> int:
    """Bound the traversal against corrupted (cyclic) inputs.

    A valid list finishes every virtual processor within ``n`` steps
    (no sublist is longer than the list); a structure containing a
    cycle that never reaches a self-loop would otherwise spin forever.
    """
    total += gap
    if total > 4 * n + 64:
        from ..lists.validate import ListStructureError

        raise ListStructureError(
            "traversal exceeded the maximum possible list length; the "
            "successor array appears to contain a cycle without a "
            "self-loop tail (run validate_list_strict to diagnose)"
        )
    return total


def _finish_phase1_serial(
    nxt: np.ndarray,
    values: np.ndarray,
    op: Operator,
    vp_next: np.ndarray,
    vp_sum: np.ndarray,
    vp_proc: np.ndarray,
    sl_sum: np.ndarray,
    sl_tail: np.ndarray,
    stats: ScanStats | None,
) -> None:
    """Scalar completion of the last Phase-1 stragglers (Section 6 ablation)."""
    limit = nxt.shape[0] + 1
    for k in range(vp_next.size):
        cur = int(vp_next[k])
        acc = vp_sum[k]
        steps = 0
        while True:
            succ = int(nxt[cur])
            if succ == cur:
                break
            acc = op.combine(acc, values[cur])
            cur = succ
            steps += 1
            if steps > limit:
                from ..lists.validate import ListStructureError

                raise ListStructureError("cycle detected in straggler sublist")
        proc = int(vp_proc[k])
        sl_sum[proc] = acc
        sl_tail[proc] = cur
        if stats is not None:
            stats.add_work(steps, phase="phase1_serial_tail")


def _finish_phase3_serial(
    nxt: np.ndarray,
    values: np.ndarray,
    op: Operator,
    vp_next: np.ndarray,
    vp_sum: np.ndarray,
    out: np.ndarray,
    stats: ScanStats | None,
) -> None:
    """Scalar completion of the last Phase-3 stragglers."""
    limit = nxt.shape[0] + 1
    for k in range(vp_next.size):
        cur = int(vp_next[k])
        acc = vp_sum[k]
        steps = 0
        while True:
            out[cur] = acc
            acc = op.combine(acc, values[cur])
            succ = int(nxt[cur])
            if succ == cur:
                break
            cur = succ
            steps += 1
            if steps > limit:
                from ..lists.validate import ListStructureError

                raise ListStructureError("cycle detected in straggler sublist")
        if stats is not None:
            stats.add_work(steps + 1, phase="phase3_serial_tail")
