"""Forest scan: list scan over many linked lists simultaneously.

A *forest* is a set of disjoint linked lists sharing one node array:
each list has its own head and its own self-loop tail.  Scanning all of
them in one vectorized pass is the natural generalization of the
paper's algorithm — the virtual-processor machinery never cared that
the sublists came from one list — and it is the building block for the
paper's Section 6 early-reconnection idea (see
``repro.core.early_reconnect``): the straggler suffixes left when the
vector gets short are exactly a forest.

The implementation mirrors ``core.sublist`` phase by phase:

* splitters are drawn from the whole node set (excluding tails),
  subdividing every list into sublists;
* Phase 1 reduces each sublist to its sum;
* the write-index/read-back trick links the sublist sums into a
  *reduced forest* — one reduced chain per original list (a sublist
  whose tail is an original tail reads no index and terminates its
  chain);
* Phase 2 scans the reduced forest serially, with a forest variant of
  Wyllie, or recursively;
* Phase 3 expands the carries; per-list ``carries`` seed the first
  sublist of each chain.

Public entry point: :func:`forest_list_scan`.  It can also return the
*list id* of every node (which original list it belongs to) — a useful
by-product computed from the reduced forest.
"""

from __future__ import annotations


import numpy as np

from ..analysis.cost_model import KernelCosts, PAPER_C90_COSTS
from ..core.operators import Operator, SUM, get_operator
from ..kernels.backend import KernelBackend, resolve_backend
from ..core.schedule import ScheduleIterator, optimal_schedule
from ..core.stats import ScanStats
from ..core.tuning import SERIAL_CUTOFF, WYLLIE_CUTOFF, tuned_parameters
from ..lists.generate import INDEX_DTYPE
from ..trace.tracer import Tracer, null_span, resolve_trace

__all__ = [
    "forest_list_scan",
    "serial_forest_scan",
    "wyllie_forest_scan",
    "forest_tails",
]


def forest_tails(nxt: np.ndarray, heads: np.ndarray) -> np.ndarray:
    """Tail (self-loop) of each list in the forest, by pointer doubling."""
    ptr = nxt.copy()
    n = nxt.shape[0]
    rounds = max(1, int(np.ceil(np.log2(max(n, 2)))))
    for _ in range(rounds):
        ptr = ptr[ptr]
    return ptr[heads]


def serial_forest_scan(
    nxt: np.ndarray,
    values: np.ndarray,
    heads: np.ndarray,
    op: Operator,
    carries: np.ndarray | None,
    out: np.ndarray,
) -> None:
    """Scalar reference: exclusive scan of each list, seeded by its carry."""
    op = get_operator(op)
    limit = nxt.shape[0]
    for k in range(heads.shape[0]):
        acc = (
            carries[k]
            if carries is not None
            else op.identity_for(values.dtype)
        )
        cur = int(heads[k])
        for _ in range(limit):
            out[cur] = acc
            acc = op.combine(acc, values[cur])
            succ = int(nxt[cur])
            if succ == cur:
                break
            cur = succ
        else:
            raise ValueError(
                "forest chain did not terminate within the node count"
            )


def wyllie_forest_scan(
    nxt: np.ndarray,
    values: np.ndarray,
    heads: np.ndarray,
    op: Operator,
    carries: np.ndarray | None,
    out: np.ndarray,
    stats: ScanStats | None = None,
) -> None:
    """Pointer jumping over a forest — every chain jumps independently.

    Uses the predecessor (prefix) dataflow so any associative operator
    works: each node's working value converges to the ⊕-sum of its
    chain prefix (heads pinned at the identity), and the per-chain head
    value plus carry are folded in at the end via the converged
    head-pointer map.
    """
    op = get_operator(op)
    n = nxt.shape[0]
    idx = np.arange(n, dtype=INDEX_DTYPE)
    pred = np.empty(n, dtype=INDEX_DTYPE)
    pred[heads] = heads
    proper = nxt != idx
    pred[nxt[proper]] = idx[proper]

    ident = op.identity_for(values.dtype)
    work = values.copy()
    work[heads] = ident
    ptr = pred.copy()
    rounds = max(0, int(np.ceil(np.log2(max(n - 1, 2)))) if n > 2 else 0)
    for _ in range(rounds):
        work = op.combine(work[ptr], work)
        ptr = ptr[ptr]
        if stats is not None:
            stats.add_round()
            stats.add_work(n, phase="wyllie_forest")
            stats.add_gather(3 * n)
    # ptr now maps every node to its chain head; fold head value + carry
    head_value = values.copy()
    if carries is not None:
        head_value[heads] = op.combine(carries, values[heads])
    # exclusive = (carry ⊕ head_value ⊕ prefix-without-head) shifted:
    # exclusive[v] = seed_chain ⊕ work_at_pred(v); heads get their seed
    full = op.combine(head_value[ptr], work[pred])
    out[...] = full
    if carries is not None:
        out[heads] = carries
    else:
        out[heads] = ident


def forest_list_scan(
    nxt: np.ndarray,
    values: np.ndarray,
    heads: np.ndarray,
    op: Operator | str = SUM,
    carries: np.ndarray | None = None,
    inclusive: bool = False,
    m: int | None = None,
    s1: float | None = None,
    costs: KernelCosts = PAPER_C90_COSTS,
    serial_cutoff: int = SERIAL_CUTOFF,
    wyllie_cutoff: int = WYLLIE_CUTOFF,
    rng: np.random.Generator | int | None = None,
    stats: ScanStats | None = None,
    out: np.ndarray | None = None,
    return_list_ids: bool = False,
    trace: str | Tracer | None = None,
    kernel_backend: str | KernelBackend | None = None,
    _depth: int = 0,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Exclusive (or inclusive) scan of every list in a forest.

    Parameters
    ----------
    nxt, values:
        Shared node arrays; every list terminates in its own self-loop.
        Temporarily modified and restored, as in the paper.
    heads:
        Head node of each list.
    carries:
        Optional per-list seed values (shape like ``values[heads]``);
        list *k*'s exclusive scan starts at ``carries[k]`` instead of
        the identity.  This is what the early-reconnect caller uses.
    return_list_ids:
        Also return, for every node, the index into ``heads`` of the
        list containing it.
    trace:
        ``None`` / ``"off"`` / a :class:`repro.trace.Tracer`; a traced
        run records a ``forest_scan`` span with per-phase children and
        per-pack live-count events, the same shape ``core.sublist``
        emits (so ``repro.trace.compare`` works on fused engine shards
        too).
    kernel_backend:
        How the hot loops run — ``"numpy"`` / ``"python"`` /
        ``"numba"`` / a :class:`repro.kernels.KernelBackend` instance /
        ``None`` for env-var-then-auto selection (``docs/kernels.md``).
        A backend that does not support ``op`` over this value dtype
        silently falls back to the NumPy reference.

    Returns the scan array (indexed by node), optionally with the list
    id array.  Nodes not reachable from any head keep arbitrary values.
    """
    op = get_operator(op)
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    tracer = resolve_trace(trace)
    backend = resolve_backend(kernel_backend)
    if not backend.supports(op, values):
        backend = resolve_backend("numpy")
    span = tracer.span if tracer is not None else null_span
    heads = np.asarray(heads, dtype=INDEX_DTYPE)
    n = nxt.shape[0]
    n_lists = heads.shape[0]
    if n_lists == 0:
        raise ValueError("forest must contain at least one list")
    if out is None:
        out = np.empty_like(values)
    ident = op.identity_for(values.dtype)
    if carries is not None:
        carries = np.asarray(carries)
        if carries.shape[0] != n_lists:
            raise ValueError("carries must have one entry per list")

    # ------------------------------------------------------------------
    # base cases: serial per chain / forest Wyllie
    # ------------------------------------------------------------------
    if n <= serial_cutoff or n < 4 * n_lists or _depth >= 4:
        with span("forest_serial", n=n, n_lists=n_lists, depth=_depth):
            serial_forest_scan(nxt, values, heads, op, carries, out)
        if stats is not None:
            stats.add_work(n, phase="forest_serial")
        if return_list_ids:
            return out, _list_ids(nxt, heads)
        return out

    if m is None or s1 is None:
        m_t, s1_t = tuned_parameters(n, costs)
        m = m if m is not None else max(m_t, 2 * n_lists)
        s1 = s1 if s1 is not None else s1_t
    m = int(min(max(m, n_lists + 1), max(n_lists + 1, n // 2)))

    with span("forest_scan", n=n, n_lists=n_lists, depth=_depth) as scan_span:
        idx_self = np.arange(n, dtype=INDEX_DTYPE)
        is_tail = nxt == idx_self
        candidates = idx_self[~is_tail]
        want = m - n_lists
        if want > 0 and candidates.size:
            take = min(want, candidates.size)
            positions = np.sort(
                gen.choice(candidates, size=take, replace=False)
            ).astype(INDEX_DTYPE)
        else:
            positions = np.empty(0, dtype=INDEX_DTYPE)
        n_split = int(positions.size)
        m_eff = n_lists + n_split  # total virtual processors / sublists
        if scan_span is not None:
            scan_span.attrs.update(m=m_eff, s1=float(s1))

        # --------------------------------------------------------------
        # INITIALIZE: cut at the splitters.  vp layout: [original
        # lists, splitter-created sublists].
        # --------------------------------------------------------------
        with span("initialize", m=m_eff):
            sl_head = np.empty(m_eff, dtype=INDEX_DTYPE)
            sl_head[:n_lists] = heads
            sl_head[n_lists:] = nxt[positions]
            sl_value = op.identity_array(m_eff, values.dtype)
            sl_value[n_lists:] = values[positions]
            values[positions] = ident
            nxt[positions] = positions

            sl_sum = op.identity_array(m_eff, values.dtype)
            sl_tail = np.full(m_eff, -1, dtype=INDEX_DTYPE)
            end_tails = np.empty(0, dtype=INDEX_DTYPE)
            saved_end_values = None

        try:
            # ----------------------------------------------------------
            # PHASE 1
            # ----------------------------------------------------------
            schedule = optimal_schedule(n, m_eff, s1, costs)
            if scan_span is not None:
                scan_span.attrs["scheduled_packs"] = int(np.asarray(schedule).size)
            gaps = ScheduleIterator(schedule)
            with span("phase1", m=m_eff):
                vp_next = sl_head.copy()
                vp_sum = op.identity_array(m_eff, values.dtype)
                vp_proc = np.arange(m_eff, dtype=INDEX_DTYPE)
                total_steps = 0
                while vp_next.size:
                    gap = next(gaps)
                    total_steps += int(gap)
                    x = vp_next.size
                    vp_next, vp_sum = backend.traverse_phase1(
                        nxt, values, vp_next, vp_sum, gap, op
                    )
                    if stats is not None:
                        stats.add_round(gap)
                        stats.add_work(gap * x, phase="forest_phase1")
                    vp_next, vp_sum, vp_proc, n_fin = backend.pack_phase1(
                        nxt, vp_next, vp_sum, vp_proc, sl_sum, sl_tail
                    )
                    if stats is not None:
                        stats.add_pack()
                    if tracer is not None:
                        tracer.event(
                            "pack",
                            step=total_steps,
                            gap=int(gap),
                            live_before=int(x),
                            live_after=int(vp_next.size),
                            finished=int(n_fin),
                        )

            # ----------------------------------------------------------
            # FIND_SUBLIST_LIST: reduced *forest* of sublist sums.
            # Chains terminate at sublists whose tail is an original
            # tail.
            # ----------------------------------------------------------
            with span("find_sublist_list", m=m_eff):
                nxt[positions] = -(np.arange(n_split, dtype=INDEX_DTYPE) + n_lists)
                probe = nxt[sl_tail]
                sl_next = np.where(
                    probe < 0, -probe, np.arange(m_eff, dtype=INDEX_DTYPE)
                ).astype(INDEX_DTYPE)
                chain_ends = np.flatnonzero(probe >= 0)  # one per original list
                end_tails = sl_tail[chain_ends]
                saved_end_values = values[end_tails].copy()
                values[end_tails] = ident  # Phase 3 folds these repeatedly
                nxt[sl_tail] = sl_tail  # restore self-loops
                addback = sl_value[sl_next]
                addback[chain_ends] = saved_end_values
                sl_sum = op.combine(sl_sum, addback)
            if stats is not None:
                stats.add_work(m_eff, phase="forest_find_sublist")

            # ----------------------------------------------------------
            # PHASE 2: scan the reduced forest (chains: one per list).
            # ----------------------------------------------------------
            with span("phase2", m=m_eff) as phase2_span:
                reduced_carries = None
                if carries is not None:
                    reduced_carries = carries
                sub_carries = (
                    np.asarray(reduced_carries)
                    if reduced_carries is not None
                    else None
                )
                carries_out = np.empty_like(sl_sum)
                if backend.has_blocked_scan and backend.supports(op, sl_sum):
                    # Blelloch blocked exclusive scan, one reduced
                    # chain per original list (snippet-1 shape).
                    if phase2_span is not None:
                        phase2_span.attrs["method"] = "blocked"
                    backend.reduced_scan(
                        sl_next,
                        sl_sum,
                        np.arange(n_lists, dtype=INDEX_DTYPE),
                        sub_carries,
                        op,
                        carries_out,
                    )
                    if stats is not None:
                        stats.add_work(m_eff, phase="forest_phase2_blocked")
                elif m_eff > wyllie_cutoff and _depth < 3:
                    if phase2_span is not None:
                        phase2_span.attrs["method"] = "recursive"
                    res = forest_list_scan(
                        sl_next,
                        sl_sum,
                        np.arange(n_lists, dtype=INDEX_DTYPE),
                        op,
                        carries=sub_carries,
                        serial_cutoff=serial_cutoff,
                        wyllie_cutoff=wyllie_cutoff,
                        rng=gen,
                        stats=stats,
                        out=carries_out,
                        trace=tracer,
                        kernel_backend=backend,
                        _depth=_depth + 1,
                    )
                    carries_out = res
                elif m_eff > serial_cutoff:
                    if phase2_span is not None:
                        phase2_span.attrs["method"] = "wyllie"
                    wyllie_forest_scan(
                        sl_next,
                        sl_sum,
                        np.arange(n_lists, dtype=INDEX_DTYPE),
                        op,
                        sub_carries,
                        carries_out,
                        stats=stats,
                    )
                else:
                    if phase2_span is not None:
                        phase2_span.attrs["method"] = "serial"
                    serial_forest_scan(
                        sl_next,
                        sl_sum,
                        np.arange(n_lists, dtype=INDEX_DTYPE),
                        op,
                        sub_carries,
                        carries_out,
                    )

            # ----------------------------------------------------------
            # PHASE 3: expand along every sublist.
            # ----------------------------------------------------------
            with span("phase3", m=m_eff):
                gaps3 = ScheduleIterator(schedule)
                vp_next = sl_head.copy()
                vp_sum = carries_out
                total_steps = 0
                while vp_next.size:
                    gap = next(gaps3)
                    total_steps += int(gap)
                    x = vp_next.size
                    vp_next, vp_sum = backend.traverse_phase3(
                        nxt, values, vp_next, vp_sum, gap, op, out
                    )
                    if stats is not None:
                        stats.add_round(gap)
                        stats.add_work(gap * x, phase="forest_phase3")
                    vp_next, vp_sum = backend.pack_phase3(
                        nxt, vp_next, vp_sum, out
                    )
                    if stats is not None:
                        stats.add_pack()
                    if tracer is not None:
                        tracer.event(
                            "pack",
                            step=total_steps,
                            gap=int(gap),
                            live_before=int(x),
                            live_after=int(vp_next.size),
                        )
        finally:
            # ----------------------------------------------------------
            # RESTORE
            # ----------------------------------------------------------
            with span("restore", m=m_eff):
                if saved_end_values is not None:
                    values[end_tails] = saved_end_values
                nxt[positions] = sl_head[n_lists:]
                values[positions] = sl_value[n_lists:]

    if inclusive:
        out = op.combine(out, values)
    if return_list_ids:
        return out, _list_ids(nxt, heads)
    return out


def _list_ids(nxt: np.ndarray, heads: np.ndarray) -> np.ndarray:
    """Which list (index into ``heads``) each node belongs to.

    Pointer doubling maps every node to its tail; tails map back to the
    list index.  Unreachable nodes get −1.
    """
    n = nxt.shape[0]
    ptr = nxt.copy()
    rounds = max(1, int(np.ceil(np.log2(max(n, 2)))))
    for _ in range(rounds):
        ptr = ptr[ptr]
    tails = ptr[heads]
    ids = np.full(n, -1, dtype=INDEX_DTYPE)
    tail_to_id = np.full(n, -1, dtype=INDEX_DTYPE)
    tail_to_id[tails] = np.arange(heads.shape[0], dtype=INDEX_DTYPE)
    ids = tail_to_id[ptr]
    return ids
