"""Binary associative operators for list scan.

"List scan … computes the 'sum' of the values on the links in a linked
list …, where 'sum' is any binary associative operator" (Section 2).
This module captures that abstraction: an :class:`Operator` bundles a
vectorized combine function, its identity, and the metadata the
algorithms need (whether the operator is a commutative group operation,
which enables Wyllie's suffix-to-prefix conversion without building
predecessor pointers).

Built-in operators
------------------

==========  =======================================  ===========
name        semantics                                invertible
==========  =======================================  ===========
``SUM``     integer/float addition                   yes
``PROD``    multiplication                           no (zeros)
``MIN``     minimum                                  no
``MAX``     maximum                                  no
``XOR``     bitwise exclusive-or                     yes
``AND``     bitwise and                              no
``OR``      bitwise or                               no
``AFFINE``  composition of affine maps x ↦ a·x + b   no
==========  =======================================  ===========

``AFFINE`` is the canonical *non-commutative* associative operator: node
values are rows ``(a, b)`` and scanning the list composes the maps in
list order.  It exercises every ordering assumption in the kernels (a
scan that silently commutes its operands fails the AFFINE tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

__all__ = [
    "Operator",
    "SUM",
    "PROD",
    "MIN",
    "MAX",
    "XOR",
    "AND",
    "OR",
    "AFFINE",
    "BUILTIN_OPERATORS",
    "get_operator",
]


@dataclass(frozen=True)
class Operator:
    """A binary associative operator usable by every scan kernel.

    Parameters
    ----------
    name:
        Short identifier (used by :func:`get_operator` and reprs).
    combine:
        Vectorized ``combine(left, right)``; *left* is the value that
        occurs earlier in list order.  Must be associative; need not be
        commutative.
    identity:
        The operator identity, or ``None`` when it is dtype-dependent
        (``MIN``/``MAX``); then :meth:`identity_for` supplies it.
    ufunc:
        The backing NumPy ufunc, when one exists.  Enables the fast
        ``ufunc.accumulate`` path in :meth:`accumulate`.
    invertible:
        True when the operator is a commutative group operation; then
        ``remove(total, part)`` solves ``x ⊕ part = total``.
    remove:
        Vectorized inverse used for the suffix→prefix conversion in
        Wyllie's algorithm.  Required when ``invertible`` is True.
    value_width:
        Number of trailing components each value occupies.  0 for
        scalar operators; ``AFFINE`` uses 2 (values have shape
        ``(n, 2)``).
    commutative:
        Informational flag consumed by tests and kernel assertions.
    nan_hostile:
        True for comparison-based operators (``min``/``max``) whose
        results are poisoned by NaN values; the engine's probe-time
        validation rejects NaN inputs for these instead of returning
        garbage.
    """

    name: str
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray]
    identity: object | None = None
    ufunc: np.ufunc | None = None
    invertible: bool = False
    remove: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None
    value_width: int = 0
    commutative: bool = True
    nan_hostile: bool = False

    def __post_init__(self) -> None:
        if self.invertible and self.remove is None:
            raise ValueError(f"operator {self.name}: invertible requires remove()")

    def identity_for(self, dtype: np.dtype) -> np.ndarray:
        """Identity element as a value of ``dtype`` (shape ``(value_width,)``
        for structured operators, scalar otherwise)."""
        dtype = np.dtype(dtype)
        if self.identity is not None:
            return np.asarray(self.identity, dtype=dtype)
        # dtype-dependent identities (MIN/MAX)
        if self.name == "min":
            if np.issubdtype(dtype, np.floating):
                return np.asarray(np.inf, dtype=dtype)
            return np.asarray(np.iinfo(dtype).max, dtype=dtype)
        if self.name == "max":
            if np.issubdtype(dtype, np.floating):
                return np.asarray(-np.inf, dtype=dtype)
            return np.asarray(np.iinfo(dtype).min, dtype=dtype)
        raise TypeError(f"operator {self.name} has no identity for dtype {dtype}")

    def identity_array(self, n: int, dtype: np.dtype) -> np.ndarray:
        """Array of ``n`` identity values (shape ``(n,)`` or ``(n, width)``)."""
        ident = self.identity_for(dtype)
        if self.value_width:
            out = np.empty((n, self.value_width), dtype=dtype)
            out[...] = ident
            return out
        return np.full(n, ident, dtype=dtype)

    def accumulate(self, values: np.ndarray) -> np.ndarray:
        """Inclusive left-to-right scan of a plain array.

        Uses ``ufunc.accumulate`` when available; otherwise a
        Hillis–Steele doubling scan — O(n log n) operations but fully
        vectorized, valid for any associative ``combine``.
        """
        values = np.asarray(values)
        n = values.shape[0]
        if n == 0:
            return values.copy()
        if self.ufunc is not None and values.ndim == 1:
            return self.ufunc.accumulate(values)
        acc = values.copy()
        shift = 1
        while shift < n:
            nxt = acc.copy()
            nxt[shift:] = self.combine(acc[:-shift], acc[shift:])
            acc = nxt
            shift *= 2
        return acc

    def reduce(self, values: np.ndarray) -> np.ndarray:
        """Reduce an array to a single combined value."""
        values = np.asarray(values)
        if values.shape[0] == 0:
            return self.identity_for(values.dtype)
        if self.ufunc is not None and values.ndim == 1:
            return self.ufunc.reduce(values)
        acc = self.accumulate(values)
        return acc[-1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Operator({self.name!r})"


def _affine_combine(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Compose affine maps: apply *first* (earlier in list order), then
    *second*.  ``(a1,b1) ∘then∘ (a2,b2) = (a2·a1, a2·b1 + b2)``."""
    first = np.asarray(first)
    second = np.asarray(second)
    out = np.empty(np.broadcast_shapes(first.shape, second.shape), dtype=first.dtype)
    a1, b1 = first[..., 0], first[..., 1]
    a2, b2 = second[..., 0], second[..., 1]
    out[..., 0] = a2 * a1
    out[..., 1] = a2 * b1 + b2
    return out


SUM = Operator(
    name="sum",
    combine=np.add,
    identity=0,
    ufunc=np.add,
    invertible=True,
    remove=np.subtract,
)

PROD = Operator(name="prod", combine=np.multiply, identity=1, ufunc=np.multiply)

MIN = Operator(name="min", combine=np.minimum, ufunc=np.minimum, nan_hostile=True)

MAX = Operator(name="max", combine=np.maximum, ufunc=np.maximum, nan_hostile=True)

XOR = Operator(
    name="xor",
    combine=np.bitwise_xor,
    identity=0,
    ufunc=np.bitwise_xor,
    invertible=True,
    remove=np.bitwise_xor,
)

AND = Operator(name="and", combine=np.bitwise_and, identity=-1, ufunc=np.bitwise_and)

OR = Operator(name="or", combine=np.bitwise_or, identity=0, ufunc=np.bitwise_or)

AFFINE = Operator(
    name="affine",
    combine=_affine_combine,
    identity=(1, 0),
    value_width=2,
    commutative=False,
)

BUILTIN_OPERATORS = {
    op.name: op for op in (SUM, PROD, MIN, MAX, XOR, AND, OR, AFFINE)
}


def get_operator(name_or_op: Operator | str) -> Operator:
    """Resolve an operator by name or pass an :class:`Operator` through."""
    if isinstance(name_or_op, Operator):
        return name_or_op
    try:
        return BUILTIN_OPERATORS[name_or_op]
    except KeyError:
        raise KeyError(
            f"unknown operator {name_or_op!r}; available: "
            f"{sorted(BUILTIN_OPERATORS)}"
        ) from None
