"""Pack (load-balance) scheduling — paper Sections 4.2–4.3.

Phases 1 and 3 traverse the sublists in lock-step vector steps.  A
*pack* removes completed sublists from the virtual-processor vectors,
shortening every subsequent step, but itself costs time proportional to
the current vector length.  "If we pack too frequently we pack none or
only a few sublists … If we do not pack often enough, we may have many
processors performing needless work repeatedly chasing the sublists'
tails."

With expected live count ``g(s) = m·e^(−m·s/n)`` and per-step costs
``T_rank(x) = a·x + b``, ``T_pack(x) = c·x + d``, setting
``∂T/∂S_i = 0`` yields the slope condition (paper Eq. 5)::

    g'(S_i) = (g(S_i) − g(S_{i−1})) / (S_{i+1} − S_i + c/a)

which rearranges into the forward recurrence (paper Eq. 6)::

    S_{i+1} = S_i + (g(S_i) − g(S_{i−1})) / g'(S_i) − c/a

so that two consecutive pack points determine the next.  The paper
found ``S_1`` to be "a very sensitive parameter": if it is too small
the recurrence collapses into packing at every step, so — like the
paper — the generator enforces non-collapsing gaps ("we modified
Equation 6 so that successive S's are always increasing").
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterator, Sequence

import numpy as np

from ..analysis.cost_model import KernelCosts, PAPER_C90_COSTS
from ..analysis.distribution import (
    expected_live_sublists,
    expected_longest,
    live_sublists_derivative,
)

__all__ = [
    "optimal_schedule",
    "uniform_schedule",
    "every_step_schedule",
    "integer_gaps",
    "ScheduleIterator",
    "numeric_optimal_schedule",
    "slope_condition_residuals",
]

_MAX_PACKS = 10_000


def optimal_schedule(
    n: int,
    m: int,
    s1: float,
    costs: KernelCosts = PAPER_C90_COSTS,
    guard: str = "monotonic_gaps",
    s_max: float | None = None,
) -> np.ndarray:
    """Generate pack points ``S_1 < S_2 < …`` from the Eq. 6 recurrence.

    Parameters
    ----------
    n, m:
        List length and sublist count.
    s1:
        First pack point (the free parameter tuned in Section 4.4).
    costs:
        Kernel cost table providing the ``c/a`` pack/rank cost ratio.
    guard:
        ``"monotonic_gaps"`` (paper's protection: gaps never shrink),
        ``"positive"`` (gaps merely stay ≥ 1 step), or ``"none"``
        (raw recurrence; used by the optimality tests on
        well-conditioned inputs).
    s_max:
        Stop once a pack point reaches this depth; defaults to the
        expected longest sublist ``(n/m)·ln(2(m+1))`` plus one gap.

    Returns
    -------
    numpy.ndarray
        Strictly increasing pack points, the last one ≥ the expected
        longest sublist (so the expected schedule covers Phase 1).
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if s1 <= 0:
        raise ValueError("s1 must be positive")
    if guard not in ("monotonic_gaps", "positive", "none"):
        raise ValueError(f"unknown guard {guard!r}")
    if s_max is None:
        s_max = expected_longest(n, m)
    c_over_a = costs.c / costs.a

    points = [float(s1)]
    prev, cur = 0.0, float(s1)
    while cur < s_max and len(points) < _MAX_PACKS:
        g_prev = expected_live_sublists(prev, n, m)
        g_cur = expected_live_sublists(cur, n, m)
        dg = live_sublists_derivative(cur, n, m)
        gap = (g_cur - g_prev) / dg - c_over_a
        if guard == "monotonic_gaps":
            gap = max(gap, cur - prev)
        elif guard == "positive":
            gap = max(gap, 1.0)
        else:
            if gap <= 0:
                raise ValueError(
                    f"recurrence collapsed at S={cur:.3f} (gap={gap:.3f}); "
                    "s1 is too small for guard='none'"
                )
        prev, cur = cur, cur + gap
        points.append(cur)
    # the traversal loop stops when every sublist is done, so there is
    # no value in a final pack point far beyond the expected longest
    # sublist: clamp the overshoot (the numeric optimizer pins its last
    # point at s_max for the same reason).
    if len(points) >= 2 and points[-1] > s_max:
        points[-1] = max(points[-2] + 1.0, s_max)
    return np.asarray(points, dtype=np.float64)


def uniform_schedule(n: int, m: int, n_packs: int, s_max: float | None = None) -> np.ndarray:
    """Evenly spaced pack points: "divide l into the expected length of
    the longest sublist and pack every fixed number of intervals" — the
    naive baseline the paper argues against (Section 4.3)."""
    if n_packs < 1:
        raise ValueError("n_packs must be >= 1")
    if s_max is None:
        s_max = expected_longest(n, m)
    return np.linspace(s_max / n_packs, s_max, n_packs)


def every_step_schedule(n: int, m: int, s_max: float | None = None) -> np.ndarray:
    """Pack after every single traversal step (minimum wasted work,
    maximum pack overhead) — the other ablation endpoint."""
    if s_max is None:
        s_max = expected_longest(n, m)
    return np.arange(1.0, math.ceil(s_max) + 1.0, dtype=np.float64)


def integer_gaps(schedule: Sequence[float]) -> np.ndarray:
    """Convert real-valued pack points into executable integer step
    counts ``s_i ≥ 1`` between consecutive packs."""
    pts = np.asarray(schedule, dtype=np.float64)
    rounded = np.maximum(np.round(pts).astype(np.int64), 1)
    rounded = np.maximum.accumulate(rounded)
    # deduplicate: strictly increasing integer pack points
    gaps = np.diff(np.concatenate(([0], rounded)))
    gaps = gaps[gaps > 0]
    if gaps.size == 0:
        gaps = np.asarray([1], dtype=np.int64)
    return gaps.astype(np.int64)


class ScheduleIterator:
    """Endless supply of traversal step counts between packs.

    Yields the integer gaps of the supplied schedule; once exhausted it
    keeps yielding the last gap scaled by ``tail_growth`` (the actual
    longest sublist can exceed its expectation, so Phase 1/3's
    ``while vp.n > 0`` loop may need more packs than the expected
    schedule provides).
    """

    def __init__(self, schedule: Sequence[float], tail_growth: float = 1.5):
        self._gaps = integer_gaps(schedule)
        if tail_growth < 1.0:
            raise ValueError("tail_growth must be >= 1")
        self._tail_growth = tail_growth
        self._pos = 0
        self._last = float(self._gaps[-1])

    def __iter__(self) -> Iterator[int]:
        return self

    def __next__(self) -> int:
        if self._pos < self._gaps.size:
            gap = int(self._gaps[self._pos])
            self._pos += 1
            return gap
        self._last *= self._tail_growth
        return max(1, int(round(self._last)))


def slope_condition_residuals(
    schedule: Sequence[float],
    n: int,
    m: int,
    costs: KernelCosts = PAPER_C90_COSTS,
) -> np.ndarray:
    """Residuals of the Eq. 5 optimality condition at each interior
    pack point (zero ⇔ locally optimal).  Used by Figure 13's bench and
    by the property tests."""
    pts = np.concatenate(([0.0], np.asarray(schedule, dtype=np.float64)))
    res = []
    for i in range(1, len(pts) - 1):
        g_prev = expected_live_sublists(pts[i - 1], n, m)
        g_cur = expected_live_sublists(pts[i], n, m)
        dg = live_sublists_derivative(pts[i], n, m)
        lhs = dg
        rhs = (g_cur - g_prev) / (pts[i + 1] - pts[i] + costs.c / costs.a)
        res.append(lhs - rhs)
    return np.asarray(res, dtype=np.float64)


def numeric_optimal_schedule(
    n: int,
    m: int,
    n_packs: int,
    costs: KernelCosts = PAPER_C90_COSTS,
    iterations: int = 2000,
) -> np.ndarray:
    """Directly minimize the Eq. 4 objective over ``n_packs`` pack points.

    Coordinate descent with golden-section line search on each interior
    point; the final point is pinned at the expected longest sublist.
    Independent of the recurrence — the test suite uses it to verify
    that Eq. 6 reproduces the true optimum.
    """
    if n_packs < 1:
        raise ValueError("n_packs must be >= 1")
    s_max = expected_longest(n, m)
    pts = np.linspace(s_max / n_packs, s_max, n_packs)

    def objective(points: np.ndarray) -> float:
        full = np.concatenate(([0.0], points))
        if np.any(np.diff(full) <= 0):
            return math.inf
        g_vals = expected_live_sublists(full[:-1], n, m)
        gaps = np.diff(full)
        rank = float(np.sum(gaps * (costs.a * g_vals + costs.b)))
        pack = float(np.sum(costs.c * g_vals + costs.d))
        return rank + pack

    def golden(
        lo: float, hi: float, fn: Callable[[float], float], tol: float = 1e-6
    ) -> float:
        phi = (math.sqrt(5.0) - 1.0) / 2.0
        x1 = hi - phi * (hi - lo)
        x2 = lo + phi * (hi - lo)
        f1, f2 = fn(x1), fn(x2)
        while hi - lo > tol:
            if f1 < f2:
                hi, x2, f2 = x2, x1, f1
                x1 = hi - phi * (hi - lo)
                f1 = fn(x1)
            else:
                lo, x1, f1 = x1, x2, f2
                x2 = lo + phi * (hi - lo)
                f2 = fn(x2)
        return (lo + hi) / 2.0

    for _ in range(max(1, iterations // max(n_packs, 1))):
        moved = 0.0
        for i in range(n_packs - 1):  # last point stays pinned at s_max
            lo = pts[i - 1] if i > 0 else 0.0
            hi = pts[i + 1]

            def fn(x: float, i: int = i) -> float:
                trial = pts.copy()
                trial[i] = x
                return objective(trial)

            new = golden(lo + 1e-9, hi - 1e-9, fn)
            moved = max(moved, abs(new - pts[i]))
            pts[i] = new
        if moved < 1e-7:
            break
    return pts
