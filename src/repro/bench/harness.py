"""Experiment harness: table formatting and paper-vs-measured records.

Every benchmark module regenerates one table or figure of the paper.
The harness gives them a common way to (a) print the regenerated
rows/series in a readable fixed-width table and (b) record the headline
paper-vs-measured comparisons that ``EXPERIMENTS.md`` documents.
Records accumulate in a process-wide registry; the benchmark session
prints a summary at the end via the ``conftest`` hook.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

__all__ = [
    "ExperimentRecord",
    "record",
    "record_speedup",
    "record_fit_sample",
    "all_records",
    "all_fit_samples",
    "clear_records",
    "records_as_dicts",
    "write_records_json",
    "format_table",
    "print_table",
    "summary_lines",
]

_REGISTRY: list["ExperimentRecord"] = []
_FIT_SAMPLES: list[dict[str, Any]] = []


@dataclass
class ExperimentRecord:
    """One paper-vs-measured data point.

    ``ok`` is a loose qualitative check ("shape holds"), typically that
    the measured value is within the stated factor of the paper's, or
    that an ordering claim holds.
    """

    experiment: str  #: e.g. "fig14"
    claim: str  #: human-readable description of the quantity
    paper: float | None
    measured: float
    unit: str = ""
    ok: bool = True
    note: str = ""
    #: optional structured attachment — e.g. a serialized span tree or a
    #: ``DeviationReport.as_dict()`` from ``repro.trace``; carried into
    #: the JSON export so the CI artifact keeps the full trajectory.
    trace: dict[str, Any] | None = field(default=None, repr=False)


def record(
    experiment: str,
    claim: str,
    paper: float | None,
    measured: float,
    unit: str = "",
    ok: bool = True,
    note: str = "",
    trace: dict[str, Any] | None = None,
) -> ExperimentRecord:
    """Register one paper-vs-measured comparison.

    ``trace`` optionally attaches trace-derived structure (a span tree,
    a deviation report) that the JSON export preserves verbatim.
    """
    rec = ExperimentRecord(
        experiment=experiment,
        claim=claim,
        paper=paper,
        measured=measured,
        unit=unit,
        ok=ok,
        note=note,
        trace=trace,
    )
    _REGISTRY.append(rec)
    return rec


def record_speedup(
    experiment: str,
    claim: str,
    baseline_seconds: float,
    measured_seconds: float,
    threshold: float = 1.0,
    note: str = "",
) -> ExperimentRecord:
    """Register a baseline-vs-measured speedup claim.

    The recorded value is ``baseline / measured`` (>1 means the
    measured configuration is faster); ``ok`` iff the ratio meets
    ``threshold``.  Used by the batched-engine benchmarks, whose claim
    is an ordering ("batching ≥ 1× sequential"), not a paper constant.
    """
    ratio = (
        baseline_seconds / measured_seconds
        if measured_seconds > 0
        else float("inf")
    )
    return record(
        experiment,
        claim,
        paper=None,
        measured=ratio,
        unit="x",
        ok=ratio >= threshold,
        note=note,
    )


def record_fit_sample(
    kind: str,
    x: int,
    seconds: float,
    n_lists: int = 1,
    source: str = "bench",
    **meta: Any,
) -> dict[str, Any]:
    """Register one calibration fit sample alongside the records.

    Benchmarks that time a forced-algorithm run call this with the raw
    observation (``kind`` ∈ serial/wyllie/sublist, ``x`` total nodes,
    wall ``seconds``); the JSON export lands them under ``fit_samples``
    so ``repro-c90 calibrate fit --from-bench`` can refit the cost
    model from the same artifact CI already uploads.  Stored as a plain
    dict matching ``repro.calibrate.records.FitSample.as_dict`` — the
    harness stays importable without the calibration package.
    """
    sample: dict[str, Any] = {
        "kind": kind,
        "x": int(x),
        "seconds": float(seconds),
        "n_lists": int(n_lists),
        "source": source,
    }
    if meta:
        sample["meta"] = dict(meta)
    _FIT_SAMPLES.append(sample)
    return sample


def all_records() -> list[ExperimentRecord]:
    """All records accumulated so far (in registration order)."""
    return list(_REGISTRY)


def all_fit_samples() -> list[dict[str, Any]]:
    """All fit samples recorded so far (in registration order)."""
    return list(_FIT_SAMPLES)


def clear_records() -> None:
    _REGISTRY.clear()
    _FIT_SAMPLES.clear()


def records_as_dicts() -> list[dict[str, Any]]:
    """All records as JSON-ready dicts (trace attachments included)."""
    from ..trace.export import jsonable

    return [
        jsonable(
            {
                "experiment": rec.experiment,
                "claim": rec.claim,
                "paper": rec.paper,
                "measured": rec.measured,
                "unit": rec.unit,
                "ok": rec.ok,
                "note": rec.note,
                "trace": rec.trace,
            }
        )
        for rec in _REGISTRY
    ]


def write_records_json(path: str) -> int:
    """Write every record (and fit sample) to ``path``; returns the
    record count.  This is the CI bench-smoke artifact."""
    records = records_as_dicts()
    payload: dict[str, Any] = {"records": records}
    if _FIT_SAMPLES:
        payload["fit_samples"] = list(_FIT_SAMPLES)
    with open(path, "w") as fp:
        json.dump(payload, fp, indent=2)
    return len(records)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table; floats rendered with 3 significant
    decimals, right-aligned numerics."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell != cell:  # NaN
                return "-"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            return f"{cell:.3g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(sep)
    for r in str_rows:
        lines.append(" | ".join(r[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> None:
    print()
    print(format_table(headers, rows, title))


def summary_lines() -> list[str]:
    """One line per record, for the end-of-session summary."""
    lines = []
    for rec in _REGISTRY:
        paper = f"{rec.paper:.3g}" if rec.paper is not None else "—"
        status = "OK " if rec.ok else "DIFF"
        lines.append(
            f"[{status}] {rec.experiment:<10} {rec.claim}: paper={paper} "
            f"measured={rec.measured:.3g} {rec.unit} {rec.note}".rstrip()
        )
    return lines
