"""Perf-regression gate: bench records vs a committed baseline.

The bench harness records headline speedup ratios (engine batching,
kernel backends, serve adaptive window — unit ``"x"``, higher is
better).  ``benchmarks/baselines/`` commits a snapshot of those ratios;
this module compares a fresh run's records against it with a tolerance
band:

* ``ok``       — within ``warn_ratio`` of baseline (or faster);
* ``warn``     — regressed by more than ``warn_ratio`` but at most
  ``fail_ratio`` (PR runs surface this without failing — shared CI
  runners are noisy);
* ``fail``     — regressed by more than ``fail_ratio`` (default 2× —
  the hard gate);
* ``new``      — recorded now but absent from the baseline (informational;
  refresh the baseline to start tracking it);
* ``missing``  — in the baseline but not recorded by this run (treated
  as a failure by the gate: a silently vanished benchmark must not
  pass).

Keys are ``experiment|claim`` — stable identifiers for a recorded
quantity across runs.  Only ratio-valued records (unit ``"x"``)
participate; paper-constant comparisons have their own ``ok`` flags.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

__all__ = [
    "GateResult",
    "WARN_RATIO",
    "FAIL_RATIO",
    "baseline_from_records",
    "compare_records",
    "gate_rows",
    "load_baseline",
    "load_bench_records",
    "results_as_dict",
]

#: Default tolerance band: warn beyond 1.5× slower, fail beyond 2×.
WARN_RATIO = 1.5
FAIL_RATIO = 2.0

#: Baseline file schema version (bump on layout changes).
BASELINE_SCHEMA = 1


class GateError(ValueError):
    """A baseline or report artifact is unreadable or malformed."""


@dataclass(frozen=True)
class GateResult:
    """One baseline-vs-measured comparison."""

    key: str
    status: str  #: ok / warn / fail / new / missing
    baseline: float | None
    measured: float | None
    regression: float | None  #: baseline / measured (>1 = slower now)
    note: str = ""


def _record_key(rec: dict[str, Any]) -> str:
    return f"{rec.get('experiment', '?')}|{rec.get('claim', '?')}"


def load_bench_records(path: str) -> list[dict[str, Any]]:
    """The ``records`` array of a bench JSON artifact."""
    try:
        with open(path) as fp:
            payload = json.load(fp)
    except OSError as exc:
        raise GateError(f"{path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise GateError(f"{path}: not valid JSON: {exc}") from None
    records = payload.get("records") if isinstance(payload, dict) else None
    if not isinstance(records, list):
        raise GateError(f"{path}: no 'records' array (not a bench artifact?)")
    return [rec for rec in records if isinstance(rec, dict)]


def baseline_from_records(
    records: list[dict[str, Any]], created_at: float = 0.0, note: str = ""
) -> dict[str, Any]:
    """Build a committable baseline document from a run's records.

    Keeps only ratio-valued records (unit ``"x"``) with a positive
    finite measurement; duplicate keys keep the *last* occurrence
    (reruns within a session supersede earlier ones).
    """
    kept: dict[str, Any] = {}
    for rec in records:
        measured = rec.get("measured")
        if rec.get("unit") != "x" or not isinstance(measured, (int, float)):
            continue
        if not measured > 0 or measured != measured or measured == float("inf"):
            continue
        kept[_record_key(rec)] = {
            "measured": float(measured),
            "unit": "x",
            "note": rec.get("note", ""),
        }
    return {
        "schema_version": BASELINE_SCHEMA,
        "created_at": created_at,
        "note": note,
        "records": kept,
    }


def load_baseline(path: str) -> dict[str, dict[str, Any]]:
    """The baseline's ``key -> {measured, ...}`` mapping."""
    try:
        with open(path) as fp:
            payload = json.load(fp)
    except OSError as exc:
        raise GateError(f"{path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise GateError(f"{path}: not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or not isinstance(
        payload.get("records"), dict
    ):
        raise GateError(f"{path}: no 'records' mapping (not a baseline file?)")
    version = payload.get("schema_version")
    if version != BASELINE_SCHEMA:
        raise GateError(
            f"{path}: baseline schema {version!r} unsupported "
            f"(expected {BASELINE_SCHEMA})"
        )
    return {
        str(key): dict(entry)
        for key, entry in payload["records"].items()
        if isinstance(entry, dict)
    }


def compare_records(
    records: list[dict[str, Any]],
    baseline: dict[str, dict[str, Any]],
    warn_ratio: float = WARN_RATIO,
    fail_ratio: float = FAIL_RATIO,
) -> list[GateResult]:
    """Judge a run's ratio records against the baseline band."""
    if not 1.0 < warn_ratio <= fail_ratio:
        raise ValueError(
            f"need 1 < warn_ratio <= fail_ratio, got {warn_ratio}/{fail_ratio}"
        )
    measured_by_key: dict[str, tuple[float, str]] = {}
    for rec in records:
        value = rec.get("measured")
        if rec.get("unit") != "x" or not isinstance(value, (int, float)):
            continue
        measured_by_key[_record_key(rec)] = (float(value), rec.get("note", ""))

    results: list[GateResult] = []
    for key in sorted(set(baseline) | set(measured_by_key)):
        base_entry = baseline.get(key)
        if base_entry is None:
            value, note = measured_by_key[key]
            results.append(
                GateResult(key, "new", None, value, None, note=note)
            )
            continue
        base = float(base_entry.get("measured", 0.0))
        if key not in measured_by_key:
            results.append(
                GateResult(
                    key, "missing", base, None, None,
                    note="baselined benchmark produced no record this run",
                )
            )
            continue
        value, note = measured_by_key[key]
        regression = base / value if value > 0 else float("inf")
        if regression > fail_ratio:
            status = "fail"
        elif regression > warn_ratio:
            status = "warn"
        else:
            status = "ok"
        results.append(GateResult(key, status, base, value, regression, note))
    return results


def gate_rows(results: list[GateResult]) -> list[list[object]]:
    """Rows for ``format_table``: key, baseline, measured, regression, status."""
    rows: list[list[object]] = []
    for res in results:
        rows.append([
            res.key,
            res.baseline if res.baseline is not None else "-",
            res.measured if res.measured is not None else "-",
            res.regression if res.regression is not None else "-",
            res.status.upper(),
        ])
    return rows


def results_as_dict(
    results: list[GateResult],
    warn_ratio: float = WARN_RATIO,
    fail_ratio: float = FAIL_RATIO,
) -> dict[str, Any]:
    """The comparison-report artifact CI uploads."""
    return {
        "schema_version": BASELINE_SCHEMA,
        "warn_ratio": warn_ratio,
        "fail_ratio": fail_ratio,
        "counts": {
            status: sum(1 for r in results if r.status == status)
            for status in ("ok", "warn", "fail", "new", "missing")
        },
        "results": [
            {
                "key": r.key,
                "status": r.status,
                "baseline": r.baseline,
                "measured": r.measured,
                "regression": r.regression,
                "note": r.note,
            }
            for r in results
        ],
    }
