"""Benchmark harness helpers shared by the benchmarks/ suite."""

from .harness import (
    ExperimentRecord,
    all_records,
    clear_records,
    format_table,
    print_table,
    record,
    summary_lines,
)
from .workloads import K, get_random_list, get_valued_list, paper_sizes
from .figures import ALL_FIGURES, write_csv
