"""Shared benchmark workloads (cached so sweeps don't regenerate them).

All benchmark inputs are random-permutation lists — the paper's
standard workload — generated from fixed seeds so every bench run sees
identical lists.  The algorithms restore their inputs, so cached lists
are safe to share across benchmark cases.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..lists.generate import LinkedList, random_list

__all__ = ["get_random_list", "get_valued_list", "paper_sizes", "K"]

#: 1K = 1024 elements, matching the paper's axis labels (8K … 32768K).
K = 1024


@lru_cache(maxsize=64)
def get_random_list(n: int, seed: int = 0) -> LinkedList:
    """A cached random-permutation list of ``n`` nodes (unit values)."""
    return random_list(n, np.random.default_rng(seed))


@lru_cache(maxsize=64)
def get_valued_list(n: int, seed: int = 0) -> LinkedList:
    """A cached random list with random integer values in [−999, 999]."""
    rng = np.random.default_rng(seed + 1)
    lst = random_list(n, rng)
    return LinkedList(lst.next, lst.head, rng.integers(-999, 1000, n))


def paper_sizes(lo_k: int = 8, hi_k: int = 32768, step: int = 4) -> list:
    """The paper's x-axis: list lengths lo_k·K … hi_k·K in ×``step``
    hops (Figure 1 uses 8K, 32K, …, 32768K)."""
    sizes = []
    n = lo_k * K
    while n <= hi_k * K:
        sizes.append(n)
        n *= step
    return sizes
