"""CSV series for every figure in the paper.

Plotting libraries are deliberately not required: each function returns
(and optionally writes as CSV) the x/y series of one figure, suitable
for any plotting tool.  Used by ``repro.cli figures`` and the
``examples/make_figures.py`` script.
"""

from __future__ import annotations

import csv
import os
from collections.abc import Sequence

import numpy as np

from ..analysis.distribution import empirical_order_stats, expected_order_stat
from ..analysis.predict import predict_run
from ..core.schedule import optimal_schedule
from ..analysis.distribution import expected_live_sublists
from ..lists.generate import INDEX_DTYPE, random_list
from ..simulate.contraction_sim import (
    anderson_miller_scan_sim,
    random_mate_scan_sim,
)
from ..simulate.serial_sim import serial_rank_sim
from ..simulate.sublist_sim import SimSublistConfig, sublist_rank_sim
from ..simulate.wyllie_sim import wyllie_rank_sim

__all__ = [
    "figure1_series",
    "figure3_series",
    "figure4_series",
    "figure11_series",
    "figure12_series",
    "figure14_series",
    "figure15_series",
    "write_csv",
    "ALL_FIGURES",
]

K = 1024


def write_csv(path: str, header: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Write one series table as CSV; returns the path."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def _sizes(max_k: int) -> list[int]:
    out = []
    k = 8
    while k <= max_k:
        out.append(k)
        k *= 4
    return out


def figure1_series(max_k: int = 2048, out_dir: str | None = None) -> Dict:
    """ns/element of the five algorithms on one simulated CPU."""
    rows = []
    for size_k in _sizes(max_k):
        n = size_k * K
        lst = random_list(n, np.random.default_rng(size_k))
        rows.append(
            [
                n,
                random_mate_scan_sim(lst, rng=0).ns_per_element,
                anderson_miller_scan_sim(lst, rng=0).ns_per_element,
                wyllie_rank_sim(lst).ns_per_element,
                serial_rank_sim(lst).ns_per_element,
                sublist_rank_sim(lst, rng=0).ns_per_element,
            ]
        )
    header = ["n", "miller_reif", "anderson_miller", "wyllie", "serial", "ours"]
    if out_dir:
        write_csv(os.path.join(out_dir, "figure01.csv"), header, rows)
    return {"header": header, "rows": rows}


def figure3_series(max_k: int = 512, out_dir: str | None = None) -> Dict:
    """Wyllie ns/element on 1/2/4/8 CPUs over dense sizes (sawtooth)."""
    bases = [1 << k for k in range(8, int(np.log2(max_k * K)) + 1)]
    sizes = sorted({x for b in bases for x in (b - 1, b + 2, b + (b >> 1))})
    rows = []
    for n in sizes:
        lst = random_list(n, np.random.default_rng(n))
        rows.append(
            [n]
            + [
                wyllie_rank_sim(lst, n_processors=p).ns_per_element
                for p in (1, 2, 4, 8)
            ]
        )
    header = ["n", "p1", "p2", "p4", "p8"]
    if out_dir:
        write_csv(os.path.join(out_dir, "figure03.csv"), header, rows)
    return {"header": header, "rows": rows}


def figure4_series(out_dir: str | None = None) -> Dict:
    """Relative speedup of the sublist algorithm vs processor count."""
    rows = []
    for p in range(1, 9):
        row = [p]
        for size_k in (8, 128, 2048):
            n = size_k * K
            lst = random_list(n, np.random.default_rng(size_k))
            base = sublist_rank_sim(lst, n_processors=1, rng=0).cycles
            row.append(base / sublist_rank_sim(lst, n_processors=p, rng=0).cycles)
        rows.append(row)
    header = ["p", "speedup_8K", "speedup_128K", "speedup_2048K"]
    if out_dir:
        write_csv(os.path.join(out_dir, "figure04.csv"), header, rows)
    return {"header": header, "rows": rows}


def figure11_series(out_dir: str | None = None) -> Dict:
    """Expected and observed i-th shortest sublist lengths (n=1000)."""
    n = 1000
    rows = []
    rng = np.random.default_rng(11)
    for m in (100, 150, 200):
        obs = empirical_order_stats(n, m, samples=20, rng=rng)
        idx = np.arange(1, m + 2, dtype=INDEX_DTYPE)
        exp = expected_order_stat(idx, n, m)
        for i in range(m + 1):
            rows.append([m, i + 1, exp[i], obs["mean"][i], obs["min"][i], obs["max"][i]])
    header = ["m", "order_index", "expected", "observed_mean", "observed_min", "observed_max"]
    if out_dir:
        write_csv(os.path.join(out_dir, "figure11.csv"), header, rows)
    return {"header": header, "rows": rows}


def figure12_series(out_dir: str | None = None) -> Dict:
    """g(s) curve and the optimal pack points (n=10000, m=200)."""
    n, m = 10_000, 200
    sch = optimal_schedule(n, m, 14.7)
    s_axis = np.linspace(0, float(sch[-1]), 200)
    rows = [[float(s), float(expected_live_sublists(s, n, m)), 0] for s in s_axis]
    rows += [[float(s), float(expected_live_sublists(s, n, m)), 1] for s in sch]
    header = ["s", "g", "is_pack_point"]
    if out_dir:
        write_csv(os.path.join(out_dir, "figure12.csv"), header, rows)
    return {"header": header, "rows": rows}


def figure14_series(max_k: int = 2048, out_dir: str | None = None) -> Dict:
    """Predicted vs measured ns/element, one CPU."""
    rows = []
    for size_k in _sizes(max_k):
        n = size_k * K
        pred = predict_run(n)
        lst = random_list(n, np.random.default_rng(size_k))
        meas = sublist_rank_sim(
            lst, sim_config=SimSublistConfig(m=pred.m, s1=pred.s1), rng=0
        )
        rows.append([n, pred.ns_per_element, meas.ns_per_element])
    header = ["n", "predicted_ns_per_elem", "measured_ns_per_elem"]
    if out_dir:
        write_csv(os.path.join(out_dir, "figure14.csv"), header, rows)
    return {"header": header, "rows": rows}


def figure15_series(max_k: int = 2048, out_dir: str | None = None) -> Dict:
    """Sublist algorithm ns/element on 1/2/4/8 CPUs."""
    rows = []
    for size_k in _sizes(max_k):
        n = size_k * K
        lst = random_list(n, np.random.default_rng(size_k))
        rows.append(
            [n]
            + [
                sublist_rank_sim(lst, n_processors=p, rng=0).ns_per_element
                for p in (1, 2, 4, 8)
            ]
        )
    header = ["n", "p1", "p2", "p4", "p8"]
    if out_dir:
        write_csv(os.path.join(out_dir, "figure15.csv"), header, rows)
    return {"header": header, "rows": rows}


ALL_FIGURES = {
    "fig01": figure1_series,
    "fig03": figure3_series,
    "fig04": figure4_series,
    "fig11": figure11_series,
    "fig12": figure12_series,
    "fig14": figure14_series,
    "fig15": figure15_series,
}
