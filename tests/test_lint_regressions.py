"""Regression tests for the real violations the static analyzer
surfaced when first run on the tree (see docs/static-analysis.md).

Two classes of finding were real and fixed in the same change:

* ``explicit-dtype`` — ``every_step_schedule`` built its pack schedule
  with a platform-default dtype.
* ``injectable-clock`` — the engine and the submission queue read
  ``time.perf_counter()`` directly, so queue-wait telemetry could not
  be driven deterministically from tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import every_step_schedule
from repro.engine import Engine
from repro.engine.queue import ScanRequest, SubmissionQueue
from repro.lists.generate import random_list


class CountingClock:
    """Deterministic clock: 0.0, 1.0, 2.0, … per call."""

    def __init__(self) -> None:
        self.calls = 0

    def __call__(self) -> float:
        value = float(self.calls)
        self.calls += 1
        return value


def test_every_step_schedule_dtype_is_pinned():
    sched = every_step_schedule(1 << 12, 64)
    assert sched.dtype == np.float64
    assert sched[0] == 1.0
    assert np.all(np.diff(sched) == 1.0)


def test_queue_stamps_admission_with_injected_clock():
    clock = CountingClock()
    queue = SubmissionQueue(clock=clock)
    reqs = [ScanRequest(random_list(16, rng=i)) for i in range(3)]
    for req in reqs:
        queue.submit(req)
    assert [req.submitted_at for req in reqs] == [0.0, 1.0, 2.0]
    assert clock.calls == 3


def test_queue_defaults_to_perf_counter():
    import time

    assert SubmissionQueue().clock is time.perf_counter


def test_engine_shares_its_clock_with_the_queue():
    clock = CountingClock()
    with Engine(executor="sync", clock=clock) as engine:
        assert engine.clock is clock
        assert engine.queue.clock is clock
        engine.submit(random_list(64, rng=1))
        responses = engine.flush()
    assert len(responses) == 1
    assert responses[0].ok
    # admission stamp and batch timing both came from the fake clock
    assert clock.calls > 1


def test_engine_results_unaffected_by_clock_injection():
    lst = random_list(256, rng=7)
    with Engine(executor="sync", cache_capacity=0) as plain:
        expected = plain.scan(lst)
    with Engine(
        executor="sync", cache_capacity=0, clock=CountingClock()
    ) as faked:
        got = faked.scan(lst)
    np.testing.assert_array_equal(got, expected)
