"""End-to-end tests for the batched execution engine.

The engine contract: a batch of requests submitted together returns,
for every request, exactly the array the dispatch API would have
produced for that request alone — regardless of how requests were
sharded, fused, routed or cached.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.serial import serial_list_scan
from repro.core.list_scan import list_rank, list_scan
from repro.core.operators import AFFINE, MAX, SUM, XOR
from repro.engine import BackpressureError, Engine, ScanRequest
from repro.lists.generate import random_list, random_values

from .conftest import make_affine_values


def mixed_batch(count=64, max_n=4000, seed=0, op=SUM, values=True):
    """``count`` random lists with log-uniform sizes in [1, max_n]."""
    rng = np.random.default_rng(seed)
    sizes = np.exp(rng.uniform(0, np.log(max_n), count)).astype(int)
    sizes = np.clip(sizes, 1, max_n)
    lists = []
    for n in sizes:
        vals = random_values(int(n), rng) if values else None
        lists.append(random_list(int(n), rng, values=vals))
    return lists


class TestEquivalence:
    """Engine results are element-for-element equal to per-list scans."""

    def test_acceptance_64_mixed_lists(self):
        # the PR's acceptance criterion: >= 64 mixed-size lists through
        # the engine match individual list_scan calls exactly
        lists = mixed_batch(count=72, max_n=6000, seed=42)
        engine = Engine()
        results = engine.map_scan(lists, SUM)
        assert len(results) == 72
        for lst, got in zip(lists, results):
            np.testing.assert_array_equal(got, list_scan(lst, SUM))
        assert engine.stats.requests == 72
        assert engine.stats.fused_lists + engine.stats.solo_runs == 72

    @pytest.mark.parametrize("op", [SUM, MAX, XOR])
    @pytest.mark.parametrize("inclusive", [False, True])
    def test_operators_and_inclusive(self, op, inclusive):
        lists = mixed_batch(count=24, max_n=1500, seed=7)
        engine = Engine()
        results = engine.map_scan(lists, op, inclusive=inclusive)
        for lst, got in zip(lists, results):
            ref = serial_list_scan(lst, op, inclusive=inclusive)
            np.testing.assert_array_equal(got, ref)

    def test_affine_noncommutative(self):
        rng = np.random.default_rng(11)
        lists = [
            random_list(n, rng, values=make_affine_values(rng, n))
            for n in (3, 17, 120, 700, 2500)
        ]
        engine = Engine()
        for lst, got in zip(lists, engine.map_scan(lists, AFFINE)):
            np.testing.assert_array_equal(got, serial_list_scan(lst, AFFINE))

    @pytest.mark.parametrize(
        "algorithm", ["serial", "wyllie", "sublist", "random_mate"]
    )
    def test_forced_algorithms(self, algorithm):
        lists = mixed_batch(count=12, max_n=600, seed=3)
        engine = Engine()
        results = engine.map_scan(lists, SUM, algorithm=algorithm)
        for lst, got in zip(lists, results):
            np.testing.assert_array_equal(got, serial_list_scan(lst, SUM))

    def test_threaded_driver_matches_sync(self):
        lists = mixed_batch(count=40, max_n=3000, seed=9)
        sync = Engine(cache_capacity=0)
        threaded = Engine(cache_capacity=0, max_workers=4)
        got_sync = sync.map_scan(lists, SUM)
        got_threaded = threaded.map_scan(lists, SUM, parallel=True)
        for a, b in zip(got_sync, got_threaded):
            np.testing.assert_array_equal(a, b)

    def test_single_node_lists(self):
        lists = [random_list(1, i) for i in range(8)]
        engine = Engine()
        for lst, got in zip(lists, engine.map_scan(lists, SUM)):
            np.testing.assert_array_equal(got, serial_list_scan(lst, SUM))

    def test_inputs_never_mutated(self):
        lists = mixed_batch(count=16, max_n=800, seed=5)
        snapshots = [(x.next.copy(), x.values.copy()) for x in lists]
        Engine().map_scan(lists, SUM)
        for lst, (nxt, vals) in zip(lists, snapshots):
            np.testing.assert_array_equal(lst.next, nxt)
            np.testing.assert_array_equal(lst.values, vals)

    def test_rank_convenience(self):
        lst = random_list(500, 0)
        engine = Engine()
        np.testing.assert_array_equal(engine.rank(lst), list_rank(lst))


class TestCachingBehavior:
    def test_resubmission_hits_cache(self):
        lists = mixed_batch(count=10, max_n=500, seed=1)
        engine = Engine()
        first = engine.map_scan(lists, SUM)
        assert engine.stats.cache_hits == 0
        second = engine.map_scan(lists, SUM)
        assert engine.stats.cache_hits == 10
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_cached_responses_flagged(self):
        lst = random_list(100, 0)
        engine = Engine()
        engine.scan(lst, SUM)
        [resp] = engine.run_batch([ScanRequest(lst=lst, op=SUM)])
        assert resp.cached
        assert resp.algorithm == "cached"

    def test_different_semantics_do_not_collide(self):
        lst = random_list(64, 0, values=random_values(64, 0))
        engine = Engine()
        ex = engine.scan(lst, SUM, inclusive=False)
        inc = engine.scan(lst, SUM, inclusive=True)
        assert engine.stats.cache_hits == 0
        np.testing.assert_array_equal(
            inc, serial_list_scan(lst, SUM, inclusive=True)
        )
        np.testing.assert_array_equal(ex, serial_list_scan(lst, SUM))

    def test_cache_disabled(self):
        lists = mixed_batch(count=6, max_n=200, seed=2)
        engine = Engine(cache_capacity=0)
        engine.map_scan(lists, SUM)
        engine.map_scan(lists, SUM)
        assert engine.stats.cache_hits == 0

    def test_mutating_returned_result_does_not_poison_cache(self):
        lst = random_list(50, 0)
        engine = Engine()
        first = engine.scan(lst, SUM)
        first[:] = -999
        np.testing.assert_array_equal(
            engine.scan(lst, SUM), serial_list_scan(lst, SUM)
        )


class TestSubmissionFlow:
    def test_submit_flush_roundtrip(self):
        lists = mixed_batch(count=8, max_n=300, seed=4)
        engine = Engine()
        ids = [
            engine.submit(lst, SUM, tag=f"req-{k}")
            for k, lst in enumerate(lists)
        ]
        responses = engine.flush()
        assert [r.request_id for r in responses] == ids
        assert [r.tag for r in responses] == [f"req-{k}" for k in range(8)]
        for lst, resp in zip(lists, responses):
            np.testing.assert_array_equal(
                resp.result, serial_list_scan(lst, SUM)
            )
        assert len(engine.queue) == 0

    def test_submit_backpressure(self):
        engine = Engine(max_pending=2)
        engine.submit(random_list(10, 0))
        engine.submit(random_list(10, 1))
        with pytest.raises(BackpressureError):
            engine.submit(random_list(10, 2), block=False)
        engine.flush()
        engine.submit(random_list(10, 2), block=False)

    def test_submit_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            Engine().submit(random_list(10, 0), algorithm="quantum")

    def test_list_scan_engine_path(self):
        lst = random_list(300, 0, values=random_values(300, 0))
        engine = Engine()
        got = list_scan(lst, SUM, algorithm="auto", engine=engine)
        np.testing.assert_array_equal(got, serial_list_scan(lst, SUM))
        assert engine.stats.requests == 1

    def test_list_rank_engine_kwarg(self):
        lst = random_list(200, 0)
        engine = Engine()
        np.testing.assert_array_equal(
            list_rank(lst, engine=engine), list_rank(lst)
        )


class TestStats:
    def test_counters_accumulate(self):
        lists = mixed_batch(count=20, max_n=1000, seed=6)
        engine = Engine()
        engine.map_scan(lists, SUM)
        s = engine.stats
        assert s.batches == 1
        assert s.requests == 20
        assert s.shards >= 1
        assert s.fused_nodes > 0
        assert sum(s.algorithms.values()) == 20
        assert s.seconds_executing > 0

    def test_as_rows_table_friendly(self):
        from repro.bench.harness import format_table

        engine = Engine()
        engine.map_scan(mixed_batch(count=4, max_n=100, seed=8), SUM)
        table = format_table(["counter", "value"], engine.stats.as_rows())
        assert "requests" in table and "fused lists" in table

    def test_fingerprint_failure_is_not_a_cache_miss(self):
        # regression: requests whose fingerprint raises never probe the
        # cache, so they must not inflate cache_misses (the old code
        # derived misses as len(requests) - hits)
        rng = np.random.default_rng(5)
        good = random_list(40, rng, values=random_values(40, rng))
        bad = random_list(8, rng)
        bad.values = np.array([object()] * 8, dtype=object)  # unfingerprintable
        engine = Engine()
        responses = engine.run_batch(
            [ScanRequest(lst=good), ScanRequest(lst=bad)]
        )
        assert [r.ok for r in responses] == [True, False]
        assert responses[1].error.code == "fingerprint"
        assert engine.stats.cache_misses == 1  # only the good request probed
        assert engine.stats.cache_hits == 0
        assert engine.stats.errors == 1
        # and the engine's counters agree with the cache's own probes
        assert engine.stats.cache_misses == engine.cache.stats()["misses"]
        assert engine.stats.cache_hits == engine.cache.stats()["hits"]


@st.composite
def batch_shapes(draw):
    """Random batch shapes: several lists with arbitrary small sizes."""
    return draw(
        st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=24)
    )


class TestPropertyEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        sizes=batch_shapes(),
        op=st.sampled_from([SUM, MAX, XOR]),
        inclusive=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_batch_shapes_match_serial(self, sizes, op, inclusive, seed):
        rng = np.random.default_rng(seed)
        lists = [
            random_list(n, rng, values=random_values(n, rng)) for n in sizes
        ]
        engine = Engine(cache_capacity=0, seed=seed)
        results = engine.map_scan(lists, op, inclusive=inclusive)
        for lst, got in zip(lists, results):
            ref = serial_list_scan(lst, op, inclusive=inclusive)
            np.testing.assert_array_equal(got, ref)

    @settings(max_examples=25, deadline=None)
    @given(
        sizes=batch_shapes(),
        dup_every=st.integers(min_value=2, max_value=5),
        repeats=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_engine_stats_reconcile_with_cache_stats(
        self, sizes, dup_every, repeats, seed
    ):
        # reconciliation property: on every workload — duplicates that
        # coalesce, resubmissions that hit the cache — the engine's
        # hit/miss counters equal the cache's own probe accounting, and
        # probes partition the fingerprintable requests
        rng = np.random.default_rng(seed)
        lists = [
            random_list(n, rng, values=random_values(n, rng)) for n in sizes
        ]
        engine = Engine(seed=seed)
        for _ in range(repeats):
            reqs = []
            for i, lst in enumerate(lists):
                reqs.append(ScanRequest(lst=lst))
                if i % dup_every == 0:  # in-batch duplicate
                    reqs.append(ScanRequest(lst=lst.copy()))
            engine.run_batch(reqs)
        s = engine.stats
        cache_stats = engine.cache.stats()
        assert s.cache_hits == cache_stats["hits"]
        assert s.cache_misses == cache_stats["misses"]
        assert s.cache_hits + s.cache_misses == s.requests
