"""Unit tests for parallel tree contraction (expression evaluation)."""

import numpy as np
import pytest

from repro.apps.tree_contraction import (
    OP_ADD,
    OP_MUL,
    ExpressionTree,
    evaluate_expression_tree,
    random_expression_tree,
)
from repro.lists.generate import INDEX_DTYPE


def manual_tree(parent, ops, values, root=0):
    return ExpressionTree(
        np.asarray(parent, dtype=INDEX_DTYPE),
        np.asarray(ops, dtype=np.int8),
        np.asarray(values, dtype=np.float64),
        root=root,
    )


class TestExpressionTree:
    def test_single_leaf(self):
        t = manual_tree([0], [OP_ADD], [42.0])
        assert t.evaluate_serial() == 42.0
        assert evaluate_expression_tree(t) == 42.0

    def test_one_add(self):
        # root 0 with children 1, 2
        t = manual_tree([0, 0, 0], [OP_ADD, 0, 0], [0, 3.0, 4.0])
        assert t.evaluate_serial() == 7.0
        assert evaluate_expression_tree(t) == pytest.approx(7.0)

    def test_one_mul(self):
        t = manual_tree([0, 0, 0], [OP_MUL, 0, 0], [0, 3.0, 4.0])
        assert evaluate_expression_tree(t) == pytest.approx(12.0)

    def test_nested(self):
        # (2 + 3) * (4 + 5) = 45
        parent = [0, 0, 0, 1, 1, 2, 2]
        ops = [OP_MUL, OP_ADD, OP_ADD, 0, 0, 0, 0]
        values = [0, 0, 0, 2.0, 3.0, 4.0, 5.0]
        t = manual_tree(parent, ops, values)
        assert t.evaluate_serial() == 45.0
        assert evaluate_expression_tree(t) == pytest.approx(45.0)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="two children"):
            manual_tree([0, 0], [OP_ADD, 0], [0, 1.0])

    def test_rejects_bad_root(self):
        with pytest.raises(ValueError, match="root"):
            manual_tree([1, 1, 0], [0, 0, 0], [0, 0, 0], root=0)


class TestRandomTrees:
    @pytest.mark.parametrize("n_leaves", [1, 2, 3, 5, 16, 64, 257])
    def test_matches_serial(self, n_leaves, rng):
        t = random_expression_tree(n_leaves, rng, value_low=0.5, value_high=1.5)
        ref = t.evaluate_serial()
        got = evaluate_expression_tree(t, algorithm="serial")
        assert got == pytest.approx(ref, rel=1e-9)

    def test_many_seeds(self):
        for seed in range(25):
            t = random_expression_tree(30, seed, value_low=0.5, value_high=1.5)
            assert evaluate_expression_tree(t, algorithm="serial") == pytest.approx(
                t.evaluate_serial(), rel=1e-9
            )

    def test_large_tree_with_sublist_ranking(self, rng):
        t = random_expression_tree(2000, rng, value_low=0.8, value_high=1.2)
        got = evaluate_expression_tree(t, algorithm="sublist", rng=rng)
        assert got == pytest.approx(t.evaluate_serial(), rel=1e-7)

    def test_add_only_exact(self, rng):
        """Pure addition trees evaluate exactly: the root value equals
        the sum of the leaves."""
        t = random_expression_tree(100, rng)
        t.ops[:] = OP_ADD
        expect = t.leaf_values[t.is_leaf].sum()
        assert evaluate_expression_tree(t) == pytest.approx(expect, rel=1e-12)

    def test_deep_left_chain(self, rng):
        """A maximally unbalanced tree (contraction's worst case for
        naive leaf-raking orders)."""
        n_leaves = 64
        total = 2 * n_leaves - 1
        parent = np.zeros(total, dtype=np.int64)
        # internal nodes 0..n_leaves-2 chain to the left; leaves fill in
        leaf_id = n_leaves - 1
        for internal in range(n_leaves - 1):
            if internal < n_leaves - 2:
                parent[internal + 1] = internal
            else:
                parent[leaf_id] = internal
                leaf_id += 1
            parent[leaf_id] = internal
            leaf_id += 1
        ops = np.full(total, OP_ADD, dtype=np.int8)
        values = np.ones(total, dtype=np.float64)
        t = ExpressionTree(parent, ops, values)
        assert evaluate_expression_tree(t) == pytest.approx(float(n_leaves))

    def test_rejects_zero_leaves(self):
        with pytest.raises(ValueError):
            random_expression_tree(0)
