"""Tests for the simulated algorithm runs (correctness + cost sanity)."""

import numpy as np
import pytest

from repro.baselines.serial import serial_list_scan
from repro.core.operators import MAX, XOR
from repro.lists.generate import random_list
from repro.machine.config import CRAY_C90, CRAY_YMP
from repro.simulate.contraction_sim import (
    anderson_miller_scan_sim,
    random_mate_scan_sim,
    stats_to_cycles,
)
from repro.simulate.serial_sim import serial_rank_sim, serial_scan_sim
from repro.simulate.sublist_sim import (
    SimSublistConfig,
    sublist_rank_sim,
    sublist_scan_sim,
)
from repro.simulate.wyllie_sim import wyllie_rank_sim, wyllie_scan_sim


class TestResultsAreExact:
    """The simulator executes the real algorithms — outputs must be
    bit-identical to the serial reference."""

    @pytest.mark.parametrize("n", [10, 100, 1000, 20_000])
    def test_sublist(self, n, rng):
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        res = sublist_scan_sim(lst, rng=rng)
        assert np.array_equal(res.out, serial_list_scan(lst))

    @pytest.mark.parametrize("n", [10, 100, 1000])
    def test_wyllie(self, n, rng):
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        res = wyllie_scan_sim(lst)
        assert np.array_equal(res.out, serial_list_scan(lst))

    def test_serial(self, rng):
        lst = random_list(500, rng, values=rng.integers(-9, 9, 500))
        assert np.array_equal(serial_scan_sim(lst).out, serial_list_scan(lst))

    def test_contraction_sims(self, rng):
        lst = random_list(2000, rng, values=rng.integers(-9, 9, 2000))
        expect = serial_list_scan(lst)
        assert np.array_equal(random_mate_scan_sim(lst, rng=rng).out, expect)
        assert np.array_equal(anderson_miller_scan_sim(lst, rng=rng).out, expect)

    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_multiprocessor_results_identical(self, p, rng):
        lst = random_list(30_000, rng, values=rng.integers(-9, 9, 30_000))
        res = sublist_scan_sim(lst, n_processors=p, rng=3)
        assert np.array_equal(res.out, serial_list_scan(lst))

    def test_sublist_restores_input(self, rng):
        lst = random_list(5000, rng)
        before = lst.next.copy()
        sublist_scan_sim(lst, rng=rng)
        assert np.array_equal(lst.next, before)

    def test_operators(self, rng):
        lst = random_list(5000, rng, values=rng.integers(0, 1 << 20, 5000))
        assert np.array_equal(
            sublist_scan_sim(lst, XOR, rng=rng).out, serial_list_scan(lst, XOR)
        )
        assert np.array_equal(
            sublist_scan_sim(lst, MAX, rng=rng).out, serial_list_scan(lst, MAX)
        )

    def test_wyllie_rejects_non_invertible(self, rng):
        lst = random_list(100, rng)
        with pytest.raises(ValueError, match="invertible"):
            wyllie_scan_sim(lst, MAX)

    def test_rank_sims(self, rng):
        lst = random_list(3000, rng)
        for sim in (serial_rank_sim, wyllie_rank_sim, sublist_rank_sim):
            out = sim(lst).out
            assert sorted(out) == list(range(3000)), sim.__name__
            assert out[lst.head] == 0


class TestCycleSanity:
    def test_serial_matches_paper_rate(self, rng):
        n = 10_000
        res = serial_scan_sim(random_list(n, rng))
        assert res.cycles_per_element == pytest.approx(34.0, rel=0.02)
        # ≈143 ns/element on the 4.2 ns clock (Figure 1's serial line)
        assert res.ns_per_element == pytest.approx(143, rel=0.05)

    def test_breakdown_sums_to_total(self, rng):
        res = sublist_scan_sim(random_list(20_000, rng), rng=rng)
        assert sum(res.breakdown.values()) == pytest.approx(res.cycles)

    def test_sublist_approaches_paper_asymptote(self, rng):
        """Figure 14: the per-element cost falls toward ≈8.6 clocks."""
        res = sublist_scan_sim(random_list(2_000_000, rng), rng=rng)
        assert 8.0 < res.cycles_per_element < 12.0

    def test_sublist_beats_serial_at_large_n(self, rng):
        n = 500_000
        lst = random_list(n, rng)
        ours = sublist_scan_sim(lst, rng=rng)
        ser = serial_scan_sim(lst)
        # paper: >4× over serial on one processor
        assert ser.cycles / ours.cycles > 2.5

    def test_wyllie_sawtooth(self, rng):
        """Per-element cycles jump when n crosses a power of two."""
        below = wyllie_rank_sim(random_list((1 << 14) + 1, rng))
        above = wyllie_rank_sim(random_list((1 << 15) + 2, rng))
        # one more round: per-element cost increases despite larger n
        assert above.cycles_per_element > below.cycles_per_element

    def test_wyllie_work_inefficient(self, rng):
        """Wyllie's clocks/element grows with log n (Figure 1's rise)."""
        small = wyllie_rank_sim(random_list(1 << 12, rng))
        large = wyllie_rank_sim(random_list(1 << 18, rng))
        assert large.cycles_per_element > small.cycles_per_element * 1.3

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_multiprocessor_speedup_in_range(self, p, rng):
        n = 1_000_000
        lst = random_list(n, rng)
        t1 = sublist_scan_sim(lst, n_processors=1, rng=5).cycles
        tp = sublist_scan_sim(lst, n_processors=p, rng=5).cycles
        speedup = t1 / tp
        assert 0.5 * p < speedup <= p * 1.02, f"p={p}: speedup={speedup:.2f}"

    def test_per_cpu_cycles_reported(self, rng):
        res = sublist_scan_sim(random_list(100_000, rng), n_processors=4, rng=rng)
        assert len(res.per_cpu_cycles) == 4
        assert all(c > 0 for c in res.per_cpu_cycles)

    def test_bank_conflicts_on_regular_splitters(self, rng):
        """The paper's systematic-conflict scenario: equally spaced
        splitters on an *ordered* list make every sublist's cursor sit
        exactly ``n/m`` apart, so when ``n/m`` is a multiple of the
        bank count the whole gather strip hits one bank.  Random list
        layouts avoid this ("systematic memory bank conflicts are
        unlikely")."""
        from repro.lists.generate import ordered_list

        n = CRAY_C90.n_banks * 512  # n/m == n_banks below
        m = 512
        cfg = SimSublistConfig(m=m, s1=64.0, conflict_sample_every=1)
        bad = sublist_scan_sim(ordered_list(n), sim_config=cfg, rng=0)
        good = sublist_scan_sim(random_list(n, rng), sim_config=cfg, rng=0)
        assert bad.cycles > 1.5 * good.cycles

    def test_conflicts_can_be_disabled(self, rng):
        from repro.lists.generate import ordered_list

        n = CRAY_C90.n_banks * 256
        cfg_on = SimSublistConfig(m=256, s1=64.0, conflict_sample_every=1)
        cfg_off = SimSublistConfig(
            m=256, s1=64.0, conflict_sample_every=1, bank_conflicts=False
        )
        with_c = sublist_scan_sim(ordered_list(n), sim_config=cfg_on, rng=0)
        without = sublist_scan_sim(ordered_list(n), sim_config=cfg_off, rng=0)
        assert with_c.cycles > 1.2 * without.cycles

    def test_ymp_slower_than_c90(self, rng):
        lst = random_list(200_000, rng)
        c90 = sublist_scan_sim(lst, config=CRAY_C90, rng=7)
        ymp = sublist_scan_sim(lst, config=CRAY_YMP, rng=7)
        assert ymp.time_ns > c90.time_ns

    def test_contraction_sims_slower_than_sublist(self, rng):
        """Figure 1's ordering: ours ≪ serial < Anderson/Miller <
        Miller/Reif at large n."""
        n = 200_000
        lst = random_list(n, rng)
        ours = sublist_scan_sim(lst, rng=1).cycles
        ser = 34.0 * n
        rm = random_mate_scan_sim(lst, rng=1).cycles
        am = anderson_miller_scan_sim(lst, rng=1).cycles
        assert rm > 4 * ours
        assert am > 2 * ours
        assert am > ser
        assert rm > am

    def test_processor_limit_enforced(self, rng):
        lst = random_list(1000, rng)
        with pytest.raises(ValueError):
            sublist_scan_sim(lst, n_processors=17)
        with pytest.raises(ValueError):
            wyllie_scan_sim(lst, n_processors=99)


class TestSimConfig:
    def test_explicit_m_s1(self, rng):
        lst = random_list(50_000, rng)
        cfg = SimSublistConfig(m=500, s1=20.0)
        res = sublist_scan_sim(lst, sim_config=cfg, rng=rng)
        assert np.array_equal(res.out, serial_list_scan(lst))

    def test_recursive_phase2(self, rng):
        lst = random_list(60_000, rng, values=rng.integers(-9, 9, 60_000))
        cfg = SimSublistConfig(m=8000, s1=2.0, wyllie_cutoff=1000, serial_cutoff=64)
        res = sublist_scan_sim(lst, sim_config=cfg, rng=rng)
        assert np.array_equal(res.out, serial_list_scan(lst))
        assert "phase2_recursive" in res.breakdown

    def test_inclusive(self, rng):
        lst = random_list(10_000, rng, values=rng.integers(-9, 9, 10_000))
        res = sublist_scan_sim(lst, inclusive=True, rng=rng)
        assert np.array_equal(res.out, serial_list_scan(lst, inclusive=True))

    def test_stats_to_cycles_total(self):
        from repro.core.stats import ScanStats

        st = ScanStats()
        st.add_work(100, "contract")
        st.add_gather(50)
        breakdown = stats_to_cycles(st, CRAY_C90)
        parts = {k: v for k, v in breakdown.items() if k != "total"}
        assert breakdown["total"] == pytest.approx(sum(parts.values()))
