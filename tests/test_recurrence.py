"""Unit tests for the linear-recurrence application."""

import numpy as np
import pytest

from repro.apps.recurrence import recurrence_list, solve_linear_recurrence


def serial_solve(a, b, x0):
    xs = np.empty(len(a) + 1)
    xs[0] = x0
    for k in range(len(a)):
        xs[k + 1] = a[k] * xs[k] + b[k]
    return xs


class TestRecurrenceList:
    def test_shapes(self, rng):
        lst = recurrence_list(rng.random(10), rng.random(10))
        assert lst.values.shape == (10, 2)

    def test_rejects_mismatch(self, rng):
        with pytest.raises(ValueError):
            recurrence_list(np.ones(3), np.ones(4))

    def test_custom_order(self, rng):
        order = rng.permutation(20)
        a, b = rng.random(20), rng.random(20)
        lst = recurrence_list(a, b, order=order)
        # node order[k] holds the k-th coefficients
        assert np.allclose(lst.values[order[5], 0], a[5])

    def test_order_cast_to_index_dtype(self, rng):
        from repro.lists.generate import INDEX_DTYPE

        order = rng.permutation(16).astype(np.int32)
        lst = recurrence_list(rng.random(16), rng.random(16), order=order)
        assert lst.next.dtype == INDEX_DTYPE

    def test_rejects_duplicate_order(self, rng):
        order = np.array([0, 1, 1, 3])
        with pytest.raises(ValueError, match="permutation"):
            recurrence_list(rng.random(4), rng.random(4), order=order)

    def test_rejects_out_of_range_order(self, rng):
        order = np.array([0, 1, 2, 7])
        with pytest.raises(ValueError, match="out of range"):
            recurrence_list(rng.random(4), rng.random(4), order=order)

    def test_rejects_negative_order(self, rng):
        order = np.array([0, 1, 2, -1])
        with pytest.raises(ValueError, match="out of range"):
            recurrence_list(rng.random(4), rng.random(4), order=order)

    def test_rejects_wrong_length_order(self, rng):
        with pytest.raises(ValueError, match="permutation"):
            recurrence_list(rng.random(4), rng.random(4), order=np.arange(3))

    def test_rejects_float_order(self, rng):
        order = np.arange(4, dtype=np.float64)
        with pytest.raises(ValueError, match="integer"):
            recurrence_list(rng.random(4), rng.random(4), order=order)


class TestSolve:
    @pytest.mark.parametrize("n", [1, 2, 10, 1000, 20_000])
    def test_matches_serial_iteration(self, n, rng):
        a = rng.uniform(0.5, 1.5, n)
        b = rng.uniform(-1.0, 1.0, n)
        x0 = 2.5
        lst = recurrence_list(a, b)
        got = solve_linear_recurrence(lst, x0=x0, rng=rng)
        expect = serial_solve(a, b, x0)[:-1]  # state before each node
        assert np.allclose(got, expect, rtol=1e-9)

    def test_shuffled_memory_layout(self, rng):
        n = 5000
        order = rng.permutation(n)
        a = rng.uniform(0.5, 1.5, n)
        b = rng.uniform(-1.0, 1.0, n)
        lst = recurrence_list(a, b, order=order)
        got = solve_linear_recurrence(lst, x0=1.0, rng=rng)
        expect = serial_solve(a, b, 1.0)[:-1]
        # node order[k] holds state x_k
        assert np.allclose(got[order], expect, rtol=1e-9)

    def test_geometric_series(self, rng):
        """x_{k+1} = 2·x_k with x0=1 gives powers of two."""
        n = 30
        lst = recurrence_list(np.full(n, 2.0), np.zeros(n))
        got = solve_linear_recurrence(lst, x0=1.0)
        assert np.allclose(got, 2.0 ** np.arange(n))

    def test_fibonacci_like_affine(self):
        """x_{k+1} = x_k + 1 counts steps."""
        n = 100
        lst = recurrence_list(np.ones(n), np.ones(n))
        got = solve_linear_recurrence(lst, x0=0.0)
        assert np.allclose(got, np.arange(n, dtype=float))

    def test_rejects_scalar_values(self, rng):
        from repro.lists.generate import random_list

        lst = random_list(10, rng)
        with pytest.raises(ValueError, match="shape"):
            solve_linear_recurrence(lst)

    @pytest.mark.parametrize("algorithm", ["serial", "wyllie", "sublist"])
    def test_any_algorithm(self, algorithm, rng):
        n = 2000
        a = rng.uniform(0.9, 1.1, n)
        b = rng.uniform(-0.5, 0.5, n)
        lst = recurrence_list(a, b)
        got = solve_linear_recurrence(lst, x0=1.0, algorithm=algorithm, rng=rng)
        expect = serial_solve(a, b, 1.0)[:-1]
        assert np.allclose(got, expect, rtol=1e-8)
