"""Tests for the performance prediction model (Figure 14's machinery)."""

import pytest

from repro.analysis.predict import (
    asymptotic_clocks_per_element,
    predict_curve,
    predict_run,
)
from repro.lists.generate import random_list
from repro.simulate.sublist_sim import SimSublistConfig, sublist_scan_sim


class TestPredictRun:
    def test_fields(self):
        pred = predict_run(100_000)
        assert pred.n == 100_000
        assert pred.m >= 2
        assert pred.s1 > 0
        assert pred.n_packs >= 1
        assert pred.cycles > 0

    def test_per_element_decreases_with_n(self):
        """Figure 14's falling curve: constants amortize."""
        small = predict_run(16 * 1024)
        large = predict_run(4 * 1024 * 1024)
        assert large.clocks_per_element < small.clocks_per_element

    def test_asymptote_near_paper(self):
        """Paper: "an asymptote of about 8.6 clocks per element"."""
        asym = asymptotic_clocks_per_element()
        assert 8.4 <= asym <= 10.0

    def test_ns_per_element(self):
        pred = predict_run(1 << 20)
        assert pred.ns_per_element == pytest.approx(
            pred.clocks_per_element * 4.2
        )

    def test_multiprocessor_speedup(self):
        p1 = predict_run(1 << 23, n_processors=1)
        p8 = predict_run(1 << 23, n_processors=8)
        speedup = p1.cycles / p8.cycles
        # paper: 6.7 on 8 CPUs
        assert 4.5 < speedup <= 8.0

    def test_explicit_parameters(self):
        pred = predict_run(100_000, m=500, s1=25.0)
        assert pred.m == 500 and pred.s1 == 25.0


class TestPredictCurve:
    def test_sweep(self):
        preds = predict_curve([1 << 14, 1 << 16, 1 << 18])
        assert [p.n for p in preds] == [1 << 14, 1 << 16, 1 << 18]


class TestPredictionAccuracy:
    """Figure 14's claim: "the equation is an accurate predictor of the
    running time"."""

    @pytest.mark.parametrize("n", [1 << 17, 1 << 20])
    def test_tracks_simulator(self, n, rng):
        pred = predict_run(n)
        lst = random_list(n, rng)
        cfg = SimSublistConfig(m=pred.m, s1=pred.s1)
        measured = sublist_scan_sim(lst, sim_config=cfg, rng=0)
        ratio = measured.cycles / pred.cycles
        assert 0.75 < ratio < 1.35, f"n={n}: ratio={ratio:.3f}"
