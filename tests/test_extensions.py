"""Unit tests for the Section 6 extension models."""

import pytest

from repro.analysis.cost_model import PAPER_C90_COSTS
from repro.analysis.extensions import (
    early_reconnect_advantage,
    half_performance_length,
    reconnect_cost,
    tail_cost,
    with_half_length,
)


class TestHalfLength:
    def test_c90_half_length(self):
        # b/a = 180/8.4 ≈ 21.4
        assert half_performance_length() == pytest.approx(180 / 8.4)

    def test_with_half_length_sets_target(self):
        costs = with_half_length(500.0)
        assert costs.b / costs.a == pytest.approx(500.0)

    def test_throughput_unchanged(self):
        costs = with_half_length(500.0)
        assert costs.a == PAPER_C90_COSTS.a


class TestTailCost:
    def test_zero_when_no_stragglers(self):
        assert tail_cost(10_000, 100, 100) == 0.0

    def test_grows_with_step_constant(self):
        base = tail_cost(1_000_000, 3000, 300)
        long_pipe = tail_cost(1_000_000, 3000, 300, with_half_length(1000))
        assert long_pipe > 2 * base

    def test_fewer_stragglers_cheaper_tail(self):
        late = tail_cost(1_000_000, 3000, 30)
        early = tail_cost(1_000_000, 3000, 600)
        assert late < early


class TestReconnectCost:
    def test_positive(self):
        assert reconnect_cost(1_000_000, 3000, 300) > 0

    def test_bookkeeping_dominated_by_n(self):
        """The per-element bookkeeping scatter scales with n."""
        small = reconnect_cost(100_000, 3000, 300)
        big = reconnect_cost(1_000_000, 3000, 300)
        assert big > 5 * small


class TestAdvantage:
    def test_not_worth_it_on_the_c90(self):
        """The paper did not implement the variant on the C-90 — the
        model agrees: short pipes make the tail cheap."""
        assert early_reconnect_advantage(1_000_000, 3000) < 1.0

    def test_crosses_over_on_long_pipes(self):
        """"The trade off may be worth it if the vector machine has
        long vector half lengths"."""
        adv = early_reconnect_advantage(
            1_000_000, 3000, costs=with_half_length(1000.0)
        )
        assert adv > 2.0

    def test_monotone_in_half_length(self):
        advs = [
            early_reconnect_advantage(
                1_000_000, 3000, costs=with_half_length(h)
            )
            for h in (20, 100, 500, 2000)
        ]
        assert all(a < b for a, b in zip(advs, advs[1:]))
