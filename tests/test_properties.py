"""Property-based tests (hypothesis) on the library's core invariants.

These encode the DESIGN.md invariants: every algorithm ≡ the serial
reference on arbitrary valid lists / values / operators; inputs are
restored bit-identically; ranks are permutations; schedules are
strictly increasing; the distribution functions are proper tails.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.anderson_miller import anderson_miller_list_scan
from repro.baselines.random_mate import random_mate_list_scan
from repro.baselines.serial import serial_list_rank, serial_list_scan
from repro.baselines.wyllie import wyllie_prefix, wyllie_suffix
from repro.core.operators import AFFINE, MAX, MIN, SUM, XOR
from repro.core.schedule import integer_gaps, optimal_schedule
from repro.core.sublist import SublistConfig, sublist_list_scan
from repro.lists.convert import rank_to_order, reorder_by_rank
from repro.lists.generate import from_order
from repro.lists.validate import validate_list_strict

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def linked_lists(draw, max_n=200, value_low=-50, value_high=50):
    """A random valid linked list with random int64 values."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    values = draw(
        st.lists(
            st.integers(min_value=value_low, max_value=value_high),
            min_size=n,
            max_size=n,
        )
    )
    return from_order(order, np.asarray(values, dtype=np.int64))


@st.composite
def affine_lists(draw, max_n=150):
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    vals = np.stack(
        [rng.integers(1, 3, n), rng.integers(-5, 6, n)], axis=1
    ).astype(np.int64)
    return from_order(order, vals)


SCAN_OPS = [SUM, MAX, MIN, XOR]


class TestAlgorithmEquivalence:
    @settings(max_examples=60, **COMMON)
    @given(lst=linked_lists(), seed=st.integers(0, 1000))
    def test_sublist_equals_serial(self, lst, seed):
        cfg = SublistConfig(serial_cutoff=4)  # force the parallel path
        got = sublist_list_scan(lst, config=cfg, rng=seed)
        assert np.array_equal(got, serial_list_scan(lst))

    @settings(max_examples=60, **COMMON)
    @given(lst=linked_lists())
    def test_wyllie_equals_serial(self, lst):
        assert np.array_equal(wyllie_suffix(lst), serial_list_scan(lst))
        assert np.array_equal(wyllie_prefix(lst), serial_list_scan(lst))

    @settings(max_examples=40, **COMMON)
    @given(lst=linked_lists(), seed=st.integers(0, 1000))
    def test_random_mate_equals_serial(self, lst, seed):
        got = random_mate_list_scan(lst, rng=seed)
        assert np.array_equal(got, serial_list_scan(lst))

    @settings(max_examples=40, **COMMON)
    @given(lst=linked_lists(), seed=st.integers(0, 1000))
    def test_anderson_miller_equals_serial(self, lst, seed):
        got = anderson_miller_list_scan(lst, rng=seed)
        assert np.array_equal(got, serial_list_scan(lst))

    @settings(max_examples=30, **COMMON)
    @given(lst=linked_lists(value_low=0, value_high=1 << 20), seed=st.integers(0, 99))
    def test_operators_agree(self, lst, seed):
        for op in SCAN_OPS:
            expect = serial_list_scan(lst, op)
            cfg = SublistConfig(serial_cutoff=4)
            assert np.array_equal(
                sublist_list_scan(lst, op, config=cfg, rng=seed), expect
            ), op.name

    @settings(max_examples=30, **COMMON)
    @given(lst=affine_lists(), seed=st.integers(0, 99))
    def test_non_commutative_operator(self, lst, seed):
        expect = serial_list_scan(lst, AFFINE)
        cfg = SublistConfig(serial_cutoff=4)
        assert np.array_equal(
            sublist_list_scan(lst, AFFINE, config=cfg, rng=seed), expect
        )
        assert np.array_equal(wyllie_prefix(lst, AFFINE), expect)
        assert np.array_equal(random_mate_list_scan(lst, AFFINE, rng=seed), expect)


class TestStructuralInvariants:
    @settings(max_examples=60, **COMMON)
    @given(lst=linked_lists(), seed=st.integers(0, 1000))
    def test_input_restored(self, lst, seed):
        before_next = lst.next.copy()
        before_vals = lst.values.copy()
        sublist_list_scan(lst, config=SublistConfig(serial_cutoff=4), rng=seed)
        assert np.array_equal(lst.next, before_next)
        assert np.array_equal(lst.values, before_vals)

    @settings(max_examples=60, **COMMON)
    @given(lst=linked_lists())
    def test_rank_is_permutation(self, lst):
        rank = serial_list_rank(lst)
        assert sorted(rank) == list(range(lst.n))

    @settings(max_examples=60, **COMMON)
    @given(lst=linked_lists())
    def test_rank_respects_links(self, lst):
        """Following a proper link increments the rank by exactly 1."""
        rank = serial_list_rank(lst)
        idx = np.arange(lst.n)
        proper = lst.next != idx
        assert np.all(rank[lst.next[proper]] == rank[idx[proper]] + 1)

    @settings(max_examples=40, **COMMON)
    @given(lst=linked_lists())
    def test_reorder_roundtrip(self, lst):
        rank = serial_list_rank(lst)
        order = rank_to_order(rank)
        assert np.array_equal(rank[order], np.arange(lst.n))
        payload = lst.values
        in_order = reorder_by_rank(payload, rank)
        assert np.array_equal(in_order[rank], payload)

    @settings(max_examples=40, **COMMON)
    @given(lst=linked_lists())
    def test_generated_lists_valid(self, lst):
        validate_list_strict(lst)

    @settings(max_examples=40, **COMMON)
    @given(lst=linked_lists())
    def test_inclusive_exclusive_relation(self, lst):
        excl = serial_list_scan(lst)
        incl = serial_list_scan(lst, inclusive=True)
        assert np.array_equal(incl, excl + lst.values)

    @settings(max_examples=40, **COMMON)
    @given(lst=linked_lists())
    def test_scan_telescopes(self, lst):
        """scan[next[v]] − scan[v] == value[v] along proper links."""
        out = serial_list_scan(lst)
        idx = np.arange(lst.n)
        proper = lst.next != idx
        assert np.all(
            out[lst.next[proper]] - out[idx[proper]] == lst.values[idx[proper]]
        )


class TestScheduleProperties:
    @settings(max_examples=60, **COMMON)
    @given(
        n=st.integers(1000, 10**7),
        m_frac=st.floats(0.001, 0.4),
        s1=st.floats(0.5, 500.0),
    )
    def test_schedule_strictly_increasing(self, n, m_frac, s1):
        m = max(2, int(n * m_frac))
        sch = optimal_schedule(n, m, s1)
        assert np.all(np.diff(sch) > 0)
        assert sch[0] == pytest.approx(s1)

    @settings(max_examples=60, **COMMON)
    @given(
        points=st.lists(
            st.floats(0.3, 1e5), min_size=1, max_size=30
        )
    )
    def test_integer_gaps_properties(self, points):
        pts = np.sort(np.asarray(points))
        gaps = integer_gaps(pts)
        assert np.all(gaps >= 1)
        assert gaps.sum() >= 1
