"""Unit and golden-value tests for the pluggable kernel backends.

The contract under test (docs/kernels.md): for integer operators every
backend is *bit-identical* to the NumPy reference; for float operators
the blocked Phase-2 scan re-associates, so results are element-wise
equal within a small tolerance.  The Hypothesis suites at the bottom
are the golden-value gate for both.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.serial import serial_list_scan
from repro.core.operators import (
    AFFINE,
    BUILTIN_OPERATORS,
    MAX,
    MIN,
    SUM,
    XOR,
    Operator,
)
from repro.core.sublist import sublist_list_scan
from repro.kernels import (
    ENV_VAR,
    HAVE_NUMBA,
    PairSpec,
    available_backends,
    default_backend_name,
    operator_from_pair,
    pair_for,
    register_pair,
    resolve_backend,
)
from repro.kernels.backend import NumpyBackend, PythonLoopBackend
from repro.kernels.loops import BLOCK, py_kernels
from repro.kernels.pairs import OP_ADD, OP_MAX, OP_MUL, OP_XOR
from repro.lists.generate import random_list

from .conftest import make_affine_values


class TestPairSpec:
    def test_width_1_roundtrip(self):
        spec = PairSpec(width=1, companion=OP_ADD)
        assert PairSpec.from_tuple(spec.as_tuple()) == spec

    def test_width_2_roundtrip(self):
        spec = PairSpec(width=2, companion=OP_MUL, cross=OP_MUL, plus=OP_ADD)
        assert PairSpec.from_tuple(spec.as_tuple()) == spec

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError, match="width"):
            PairSpec(width=3, companion=OP_ADD)

    def test_rejects_unknown_opcode(self):
        with pytest.raises(ValueError, match="opcode"):
            PairSpec(width=1, companion=99)

    def test_width_2_validates_cross_and_plus(self):
        with pytest.raises(ValueError, match="opcode"):
            PairSpec(width=2, companion=OP_MUL)  # cross/plus default -1

    def test_integer_only(self):
        assert PairSpec(width=1, companion=OP_XOR).integer_only()
        assert not PairSpec(width=1, companion=OP_ADD).integer_only()


class TestPairRegistry:
    def test_builtins_are_registered(self):
        for op in BUILTIN_OPERATORS.values():
            assert pair_for(op) is not None, op.name

    def test_affine_is_width_2(self):
        spec = pair_for(AFFINE)
        assert spec is not None and spec.width == 2

    def test_identity_check_rejects_impostor(self):
        # same name, different object: must NOT get SUM's opcodes
        impostor = Operator(name="sum", combine=np.subtract, identity=0)
        assert pair_for(impostor) is None

    def test_register_rejects_width_mismatch(self):
        op = Operator(name="w2test", combine=np.add, identity=0, value_width=2)
        with pytest.raises(ValueError, match="width"):
            register_pair(op, PairSpec(width=1, companion=OP_ADD))

    def test_custom_registration(self):
        op = Operator(name="my_max", combine=np.maximum, identity=None)
        register_pair(op, PairSpec(width=1, companion=OP_MAX))
        try:
            assert pair_for(op) == PairSpec(width=1, companion=OP_MAX)
        finally:
            from repro.kernels.pairs import _PAIR_REGISTRY

            _PAIR_REGISTRY.pop("my_max", None)


class TestOperatorFromPair:
    def test_builtin_name_returns_builtin(self):
        spec = pair_for(SUM)
        assert operator_from_pair("sum", spec, 0) is SUM

    def test_width_1_rehydration(self):
        op = operator_from_pair("shipped", PairSpec(width=1, companion=OP_ADD), 0)
        assert np.array_equal(
            op.combine(np.array([1, 2]), np.array([10, 20])),
            np.array([11, 22]),
        )

    def test_width_2_matches_affine(self, rng):
        spec = pair_for(AFFINE)
        op = operator_from_pair("shipped_affine", spec, AFFINE.identity)
        x = make_affine_values(rng, 64).astype(np.float64)
        y = make_affine_values(rng, 64).astype(np.float64)
        np.testing.assert_array_equal(op.combine(x, y), AFFINE.combine(x, y))


class TestBackendSelection:
    def test_available_contains_references(self):
        names = available_backends()
        assert "numpy" in names and "python" in names
        assert ("numba" in names) == HAVE_NUMBA

    def test_default_matches_numba_presence(self):
        assert default_backend_name() == ("numba" if HAVE_NUMBA else "numpy")

    def test_explicit_name(self):
        assert resolve_backend("numpy").name == "numpy"
        assert resolve_backend("python").name == "python"

    def test_instance_passthrough(self):
        backend = resolve_backend("python")
        assert resolve_backend(backend) is backend

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "python")
        assert resolve_backend(None).name == "python"

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "python")
        assert resolve_backend("numpy").name == "numpy"

    def test_name_is_normalized(self):
        assert resolve_backend("  NumPy ").name == "numpy"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("fortran")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is importable here")
    def test_numba_unavailable_rejected(self):
        with pytest.raises(ValueError, match="numba"):
            resolve_backend("numba")


class TestSupports:
    def test_numpy_supports_everything(self):
        backend = NumpyBackend()
        assert backend.supports(SUM, np.zeros(4, dtype=np.uint64))

    def test_loop_backend_gates_unsigned(self):
        backend = PythonLoopBackend()
        assert backend.supports(SUM, np.zeros(4, dtype=np.int64))
        assert not backend.supports(SUM, np.zeros(4, dtype=np.uint64))

    def test_loop_backend_gates_float_bitwise(self):
        backend = PythonLoopBackend()
        assert backend.supports(XOR, np.zeros(4, dtype=np.int64))
        assert not backend.supports(XOR, np.zeros(4, dtype=np.float64))

    def test_loop_backend_checks_width(self):
        backend = PythonLoopBackend()
        affine_vals = np.zeros((4, 2), dtype=np.float64)
        assert backend.supports(AFFINE, affine_vals)
        assert not backend.supports(AFFINE, np.zeros(4, dtype=np.float64))
        assert not backend.supports(SUM, affine_vals)

    def test_unregistered_operator_unsupported(self):
        backend = PythonLoopBackend()
        custom = Operator(name="custom", combine=np.add, identity=0)
        assert not backend.supports(custom, np.zeros(4, dtype=np.int64))


def exclusive_cumsum(vals, seed):
    out = np.empty_like(vals)
    acc = seed
    for i in range(vals.shape[0]):
        out[i] = acc
        acc = acc + vals[i]
    return out


class TestBlockedScan:
    @pytest.mark.parametrize("n", [0, 1, 7, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK + 5])
    def test_int_exact(self, n, rng):
        k = py_kernels()
        vals = rng.integers(-50, 50, n).astype(np.int64)
        scanned = np.empty_like(vals)
        temp = np.empty(BLOCK, dtype=np.int64)
        k["blocked_exscan"](vals, scanned, np.int64(3), np.int64(0), 0, BLOCK, temp)
        np.testing.assert_array_equal(scanned, exclusive_cumsum(vals, np.int64(3)))

    def test_float_tolerance(self, rng):
        k = py_kernels()
        vals = rng.uniform(-1, 1, 1000)
        scanned = np.empty_like(vals)
        temp = np.empty(BLOCK, dtype=np.float64)
        k["blocked_exscan"](vals, scanned, 0.5, 0.0, 0, BLOCK, temp)
        np.testing.assert_allclose(scanned, exclusive_cumsum(vals, 0.5), rtol=1e-12)

    def test_noncommutative_pair_order(self, rng):
        # AFFINE composition is non-commutative: the down-sweep must
        # keep the earlier operand on the left or this diverges wildly
        k = py_kernels()
        n = 3 * BLOCK + 17
        vals = make_affine_values(rng, n).astype(np.float64)
        scanned = np.empty_like(vals)
        temp = np.empty((BLOCK, 2), dtype=np.float64)
        k["blocked_exscan_pair"](
            vals, scanned, 1.0, 0.0, 1.0, 0.0, OP_MUL, OP_MUL, OP_ADD, BLOCK, temp
        )
        expect = np.empty_like(vals)
        acc = np.array([1.0, 0.0])
        for i in range(n):
            expect[i] = acc
            acc = AFFINE.combine(acc, vals[i])
        np.testing.assert_allclose(scanned, expect, rtol=1e-9)


# ----------------------------------------------------------------------
# golden-value gate: full algorithm, loop backend vs NumPy reference
# ----------------------------------------------------------------------

INT_OPS = {"sum": SUM, "min": MIN, "max": MAX, "xor": XOR}


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=4000),
    seed=st.integers(min_value=0, max_value=2**31),
    op_name=st.sampled_from(sorted(INT_OPS)),
)
def test_golden_int_bit_identical(n, seed, op_name):
    rng = np.random.default_rng(seed)
    op = INT_OPS[op_name]
    lst = random_list(n, rng, values=rng.integers(-100, 100, n))
    ref = sublist_list_scan(lst, op, rng=0, kernel_backend="numpy")
    got = sublist_list_scan(lst, op, rng=0, kernel_backend="python")
    np.testing.assert_array_equal(got, ref)
    np.testing.assert_array_equal(got, serial_list_scan(lst, op))


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=4000),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_golden_affine_tolerance(n, seed):
    rng = np.random.default_rng(seed)
    values = np.stack(
        [rng.uniform(0.5, 1.5, n), rng.uniform(-1.0, 1.0, n)], axis=1
    )
    lst = random_list(n, rng, values=values)
    ref = sublist_list_scan(lst, AFFINE, rng=0, kernel_backend="numpy")
    got = sublist_list_scan(lst, AFFINE, rng=0, kernel_backend="python")
    np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(
        got, serial_list_scan(lst, AFFINE), rtol=1e-9, atol=1e-12
    )


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=4000),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_golden_float_sum_tolerance(n, seed):
    rng = np.random.default_rng(seed)
    lst = random_list(n, rng, values=rng.uniform(-1, 1, n))
    ref = sublist_list_scan(lst, SUM, rng=0, kernel_backend="numpy")
    got = sublist_list_scan(lst, SUM, rng=0, kernel_backend="python")
    np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)


def test_unsupported_dtype_falls_back(rng):
    # uint64 is outside the loop backends' envelope; the scan must
    # silently use the NumPy reference instead of failing
    n = 2000
    lst = random_list(n, rng, values=rng.integers(0, 100, n).astype(np.uint64))
    got = sublist_list_scan(lst, SUM, rng=0, kernel_backend="python")
    np.testing.assert_array_equal(got, serial_list_scan(lst, SUM))


def test_input_restored_bit_identical(rng):
    n = 3000
    lst = random_list(n, rng, values=rng.integers(-9, 9, n))
    before_next, before_vals = lst.next.copy(), lst.values.copy()
    sublist_list_scan(lst, SUM, rng=0, kernel_backend="python")
    np.testing.assert_array_equal(lst.next, before_next)
    np.testing.assert_array_equal(lst.values, before_vals)
