"""Tests for the public dispatch API and package surface."""

import numpy as np
import pytest

import repro
from repro.baselines.serial import serial_list_rank, serial_list_scan
from repro.core.list_scan import ALGORITHMS, list_rank, list_scan
from repro.core.operators import MAX
from repro.core.stats import ScanStats
from repro.lists.generate import LinkedList, random_list
from repro.lists.validate import ListStructureError


class TestListScanDispatch:
    @pytest.mark.parametrize(
        "algorithm",
        ["sublist", "wyllie", "serial", "random_mate", "anderson_miller"],
    )
    def test_all_algorithms_agree(self, algorithm, rng):
        lst = random_list(2000, rng, values=rng.integers(-9, 9, 2000))
        got = list_scan(lst, algorithm=algorithm, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst))

    def test_auto_small_uses_serial(self, rng):
        lst = random_list(100, rng, values=rng.integers(-9, 9, 100))
        assert np.array_equal(
            list_scan(lst, algorithm="auto"), serial_list_scan(lst)
        )

    def test_auto_large(self, rng):
        lst = random_list(10_000, rng, values=rng.integers(-9, 9, 10_000))
        assert np.array_equal(
            list_scan(lst, algorithm="auto", rng=rng), serial_list_scan(lst)
        )

    def test_operator_by_name(self, rng):
        lst = random_list(500, rng, values=rng.integers(-9, 9, 500))
        assert np.array_equal(
            list_scan(lst, "max", rng=rng), serial_list_scan(lst, MAX)
        )

    def test_inclusive_flag(self, rng):
        lst = random_list(500, rng, values=rng.integers(-9, 9, 500))
        assert np.array_equal(
            list_scan(lst, inclusive=True, rng=rng),
            serial_list_scan(lst, inclusive=True),
        )

    def test_unknown_algorithm(self, small_list):
        with pytest.raises(ValueError, match="unknown algorithm"):
            list_scan(small_list, algorithm="quantum")

    def test_validate_rejects_corrupt(self):
        from repro.lists.generate import INDEX_DTYPE

        lst = LinkedList.__new__(LinkedList)
        lst.next = np.array([1, 2, 0], dtype=INDEX_DTYPE)
        lst.head = 0
        lst.values = np.ones(3, dtype=np.int64)
        with pytest.raises(ListStructureError):
            list_scan(lst, validate=True)

    def test_validate_accepts_good(self, small_list):
        got = list_scan(small_list, validate=True)
        assert np.array_equal(got, serial_list_scan(small_list))

    def test_kwargs_forwarded(self, rng):
        from repro.core.sublist import SublistConfig

        lst = random_list(3000, rng, values=rng.integers(-9, 9, 3000))
        got = list_scan(lst, config=SublistConfig(m=64, s1=8.0), rng=rng)
        assert np.array_equal(got, serial_list_scan(lst))

    def test_stats_filled(self, rng):
        lst = random_list(5000, rng)
        stats = ScanStats()
        list_scan(lst, rng=rng, stats=stats)
        assert stats.element_ops > 0


class TestAutoRouting:
    def test_router_errors_propagate(self, monkeypatch, rng):
        # regression: a genuine router bug used to be silently masked
        # by the fixed-crossover fallback (bare `except Exception`)
        import repro.engine.router as router_mod

        def boom(n):
            raise RuntimeError("router bug")

        monkeypatch.setattr(router_mod, "route_algorithm", boom)
        lst = random_list(100, rng)
        with pytest.raises(RuntimeError, match="router bug"):
            list_scan(lst, algorithm="auto")

    def test_import_error_falls_back_to_fixed_crossover(self, monkeypatch, rng):
        import sys

        # a stripped deployment without the router subsystem: setting
        # the module entry to None makes `from ..engine.router import
        # route_algorithm` raise ImportError
        monkeypatch.setitem(sys.modules, "repro.engine.router", None)
        lst = random_list(100, rng, values=rng.integers(-9, 9, 100))
        assert np.array_equal(
            list_scan(lst, algorithm="auto"), serial_list_scan(lst)
        )


class TestEngineArgumentCompatibility:
    def test_engine_with_rng_raises(self, rng):
        from repro.engine import Engine

        lst = random_list(50, 0)
        with pytest.raises(TypeError, match="rng"):
            list_scan(lst, engine=Engine(), rng=rng)

    def test_engine_with_stats_raises(self):
        from repro.engine import Engine

        lst = random_list(50, 0)
        with pytest.raises(TypeError, match="stats"):
            list_scan(lst, engine=Engine(), stats=ScanStats())

    def test_engine_with_impl_kwargs_raises(self):
        from repro.core.sublist import SublistConfig
        from repro.engine import Engine

        lst = random_list(50, 0)
        with pytest.raises(TypeError, match="config"):
            list_scan(lst, engine=Engine(), config=SublistConfig(m=8, s1=4.0))

    def test_engine_with_validate_still_works(self, small_list):
        from repro.engine import Engine

        got = list_scan(small_list, engine=Engine(), validate=True)
        assert np.array_equal(got, serial_list_scan(small_list))


class TestListRank:
    @pytest.mark.parametrize(
        "algorithm",
        ["sublist", "wyllie", "serial", "random_mate", "anderson_miller", "auto"],
    )
    def test_matches_serial(self, algorithm, rng):
        lst = random_list(1500, rng)
        got = list_rank(lst, algorithm=algorithm, rng=rng)
        assert np.array_equal(got, serial_list_rank(lst))

    def test_ignores_values(self, rng):
        """Ranking never reads node values."""
        lst = random_list(400, rng, values=rng.integers(-1000, 1000, 400))
        got = list_rank(lst, rng=rng)
        assert sorted(got) == list(range(400))

    def test_engine_named_param(self):
        from repro.engine import Engine

        lst = random_list(300, 0)
        got = list_rank(lst, engine=Engine())
        assert np.array_equal(got, serial_list_rank(lst))

    def test_trace_named_param(self):
        from repro.trace.tracer import Tracer, counting_clock

        tracer = Tracer(clock=counting_clock())
        lst = random_list(3000, 0)
        got = list_rank(lst, algorithm="sublist", rng=0, trace=tracer)
        assert np.array_equal(got, serial_list_rank(lst))
        assert tracer.roots  # the scan actually recorded under it

    def test_engine_with_rng_raises(self, rng):
        # same contract as list_scan: engine mode owns rng/stats
        from repro.engine import Engine

        lst = random_list(50, 0)
        with pytest.raises(TypeError, match="rng"):
            list_rank(lst, engine=Engine(), rng=rng)

    def test_engine_with_stats_raises(self):
        from repro.engine import Engine

        lst = random_list(50, 0)
        with pytest.raises(TypeError, match="stats"):
            list_rank(lst, engine=Engine(), stats=ScanStats())

    def test_kernel_backend_named_param(self):
        lst = random_list(3000, 0)
        got = list_rank(lst, algorithm="sublist", rng=0, kernel_backend="python")
        assert np.array_equal(got, serial_list_rank(lst))


class TestPackageSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_algorithms_constant(self):
        assert "sublist" in ALGORITHMS and "auto" in ALGORITHMS

    def test_readme_quickstart_works(self):
        lst = repro.random_list(10_000, rng=0)
        ranks = repro.list_rank(lst)
        sums = repro.list_scan(lst, "sum")
        assert ranks[lst.head] == 0
        assert sums[lst.head] == 0
        res = repro.sublist_scan_sim(lst, n_processors=8)
        assert res.config.name == "CRAY C-90"
        assert res.ns_per_element > 0
