"""Tests for the reorder and load-balance applications."""

import numpy as np
import pytest

from repro.apps.load_balance import partition_list, partition_summary
from repro.apps.reorder import list_to_array, scan_via_reorder
from repro.baselines.serial import serial_list_scan
from repro.core.operators import MAX
from repro.lists.generate import from_order, random_list


class TestListToArray:
    def test_values_in_list_order(self, rng):
        order = rng.permutation(100)
        vals = rng.integers(0, 1000, 100)
        lst = from_order(order, vals)
        got = list_to_array(lst, rng=rng)
        assert np.array_equal(got["values"], vals[order])

    def test_order_matches(self, rng):
        order = rng.permutation(64)
        lst = from_order(order)
        got = list_to_array(lst, rng=rng)
        assert np.array_equal(got["order"], order)

    def test_rank_is_inverse(self, rng):
        lst = random_list(128, rng)
        got = list_to_array(lst, rng=rng)
        assert np.array_equal(got["order"][got["rank"]], np.arange(128))


class TestScanViaReorder:
    @pytest.mark.parametrize("n", [1, 2, 10, 1000])
    def test_matches_direct_scan(self, n, rng):
        lst = random_list(n, rng, values=rng.integers(-9, 9, n))
        assert np.array_equal(scan_via_reorder(lst, rng=rng), serial_list_scan(lst))

    def test_inclusive(self, rng):
        lst = random_list(500, rng, values=rng.integers(-9, 9, 500))
        assert np.array_equal(
            scan_via_reorder(lst, inclusive=True, rng=rng),
            serial_list_scan(lst, inclusive=True),
        )

    def test_max_operator(self, rng):
        lst = random_list(500, rng, values=rng.integers(-99, 99, 500))
        assert np.array_equal(
            scan_via_reorder(lst, MAX, rng=rng), serial_list_scan(lst, MAX)
        )

    @pytest.mark.parametrize("algorithm", ["serial", "wyllie", "sublist"])
    def test_any_ranking_algorithm(self, algorithm, rng):
        lst = random_list(2000, rng, values=rng.integers(-9, 9, 2000))
        got = scan_via_reorder(lst, algorithm=algorithm, rng=rng)
        assert np.array_equal(got, serial_list_scan(lst))


class TestPartitionList:
    def test_owners_in_range(self, rng):
        lst = random_list(1000, rng, values=rng.integers(1, 10, 1000))
        owner = partition_list(lst, 7, rng=rng)
        assert owner.min() >= 0 and owner.max() < 7

    def test_contiguous_in_list_order(self, rng):
        from repro.lists.generate import list_order

        lst = random_list(1000, rng, values=rng.integers(1, 10, 1000))
        owner = partition_list(lst, 5, rng=rng)
        along = owner[list_order(lst)]
        assert np.all(np.diff(along) >= 0)  # monotone → contiguous runs

    def test_balanced_uniform_weights(self, rng):
        lst = random_list(10_000, rng)
        owner = partition_list(lst, 8, rng=rng)
        counts = np.bincount(owner, minlength=8)
        assert counts.max() - counts.min() <= 2

    def test_balanced_random_weights(self, rng):
        lst = random_list(10_000, rng, values=rng.integers(1, 100, 10_000))
        owner = partition_list(lst, 16, rng=rng)
        s = partition_summary(lst, owner, 16)
        assert s["imbalance"] < 1.05

    def test_heavy_items_respected(self, rng):
        """One huge item: its processor may exceed the mean, everyone
        else still gets assigned work."""
        vals = np.ones(1000, dtype=np.int64)
        vals[0] = 10_000
        lst = random_list(1000, rng, values=vals)
        owner = partition_list(lst, 4, rng=rng)
        assert len(np.unique(owner)) >= 2

    def test_single_processor(self, rng):
        lst = random_list(100, rng)
        assert np.all(partition_list(lst, 1, rng=rng) == 0)

    def test_zero_weights(self, rng):
        lst = random_list(100, rng, values=np.zeros(100, dtype=np.int64))
        assert np.all(partition_list(lst, 4, rng=rng) == 0)

    def test_rejects_negative_weights(self, rng):
        lst = random_list(10, rng, values=np.array([1] * 9 + [-1]))
        with pytest.raises(ValueError, match="non-negative"):
            partition_list(lst, 2)

    def test_rejects_zero_processors(self, rng):
        with pytest.raises(ValueError):
            partition_list(random_list(10, rng), 0)

    def test_summary_totals(self, rng):
        lst = random_list(500, rng, values=rng.integers(1, 10, 500))
        owner = partition_list(lst, 4, rng=rng)
        s = partition_summary(lst, owner, 4)
        assert s["totals"].sum() == lst.values.sum()
        assert s["counts"].sum() == 500
